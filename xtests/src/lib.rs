pub fn touch() {}
