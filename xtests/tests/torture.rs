//! Degeneracy torture: inputs engineered to break floating-point filters,
//! tie-breaking, and chain assembly, pushed through both unsorted-input
//! parallel algorithms and the sequential baselines.

use ipch_geom::hull_chain::{verify_upper_hull, UpperHull};
use ipch_geom::Point2;
use ipch_hull2d::parallel::dac::upper_hull_dac;
use ipch_hull2d::parallel::unsorted::{upper_hull_unsorted, UnsortedParams};
use ipch_hull2d::seq::{chan, ks, monotone, quickhull, SeqStats};
use ipch_pram::{Machine, Shm};

fn geometric_hull(pts: &[Point2], h: &UpperHull) -> Vec<Point2> {
    h.vertices.iter().map(|&i| pts[i]).collect()
}

fn torture_cases() -> Vec<(&'static str, Vec<Point2>)> {
    let mut cases: Vec<(&'static str, Vec<Point2>)> = Vec::new();

    // two columns only
    cases.push((
        "two-columns",
        vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.0, 1.0),
            Point2::new(0.0, 2.0),
            Point2::new(5.0, -1.0),
            Point2::new(5.0, 3.0),
        ],
    ));

    // V shape: lower chain heavy, upper hull is just two points
    cases.push((
        "v-shape",
        (0..60)
            .map(|i| {
                let x = i as f64 / 4.0;
                Point2::new(x, (x - 7.5).abs())
            })
            .collect(),
    ));

    // near-collinear fan: dyadic slopes differing in the last bits
    cases.push((
        "near-collinear-fan",
        (0..40)
            .map(|i| {
                let x = 1.0 + i as f64 / 8.0;
                Point2::new(x, x * (1.0 + (i as f64) * f64::EPSILON))
            })
            .collect(),
    ));

    // duplicate-heavy: 10 distinct points repeated 15 times
    let base: Vec<Point2> = (0..10)
        .map(|i| Point2::new((i * i % 7) as f64, (i * 3 % 5) as f64))
        .collect();
    cases.push(("duplicates", ipch_geom::generators::duplicated(&base, 150)));

    // staircase: alternating collinear runs
    cases.push((
        "staircase",
        (0..50)
            .map(|i| Point2::new(i as f64 / 2.0, (i / 10) as f64))
            .collect(),
    ));

    // huge coordinate spread (filter stress)
    cases.push((
        "spread",
        vec![
            Point2::new(-1e12, 0.0),
            Point2::new(0.0, 1e-12),
            Point2::new(1e12, 0.0),
            Point2::new(0.5, 0.25e-12),
        ],
    ));

    cases
}

#[test]
fn unsorted_survives_torture() {
    for (name, pts) in torture_cases() {
        let mut m = Machine::new(1);
        let mut shm = Shm::new();
        let (out, _) = upper_hull_unsorted(&mut m, &mut shm, &pts, &UnsortedParams::default());
        verify_upper_hull(&pts, &out.hull).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            geometric_hull(&pts, &out.hull),
            geometric_hull(&pts, &UpperHull::of(&pts)),
            "{name}"
        );
        out.verify_pointers(&pts)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn dac_survives_torture() {
    for (name, pts) in torture_cases() {
        let mut m = Machine::new(2);
        let mut shm = Shm::new();
        let out = upper_hull_dac(&mut m, &mut shm, &pts, false);
        assert_eq!(
            geometric_hull(&pts, &out.hull),
            geometric_hull(&pts, &UpperHull::of(&pts)),
            "{name}"
        );
    }
}

#[test]
fn sequential_baselines_survive_torture() {
    for (name, pts) in torture_cases() {
        for (alg, f) in [
            (
                "monotone",
                monotone::upper_hull as fn(&[Point2], &mut SeqStats) -> UpperHull,
            ),
            ("ks", ks::upper_hull),
            ("chan", chan::upper_hull),
            ("quickhull", quickhull::upper_hull),
        ] {
            let h = f(&pts, &mut SeqStats::default());
            verify_upper_hull(&pts, &h).unwrap_or_else(|e| panic!("{name}/{alg}: {e}"));
            assert_eq!(
                geometric_hull(&pts, &h),
                geometric_hull(&pts, &UpperHull::of(&pts)),
                "{name}/{alg}"
            );
        }
    }
}

#[test]
fn coplanar_3d_torture() {
    use ipch_hull3d::parallel::unsorted3d::{upper_hull3_unsorted, Unsorted3Params};
    // exactly coplanar cloud: every algorithm must terminate and verify
    let pts = ipch_geom::gen3d::coplanar(60, (0.5, -0.25, 1.0), 3);
    let mut m = Machine::new(3);
    let mut shm = Shm::new();
    let (out, _) = upper_hull3_unsorted(&mut m, &mut shm, &pts, &Unsorted3Params::default());
    // the facet set must at least be supporting (coverage may legitimately
    // use any triangulation of the single planar face)
    for f in &out.facets {
        for &q in &pts {
            assert!(
                ipch_geom::predicates::orient3d_sign(pts[f.a], pts[f.b], pts[f.c], q) >= 0,
                "point above coplanar facet"
            );
        }
    }
}
