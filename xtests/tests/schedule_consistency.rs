//! Lemma 7 consistency on *real* runs: the scheduled time at p = 1 must
//! recover the total work, and at p → ∞ the step count, for actual
//! algorithm executions (not synthetic metrics).

use ipch_geom::generators::uniform_disk;
use ipch_hull2d::parallel::unsorted::{upper_hull_unsorted, UnsortedParams};
use ipch_pram::{schedule, Machine, Shm};

#[test]
fn lemma7_limits_bracket_real_runs() {
    let pts = uniform_disk(2000, 3);
    let mut m = Machine::new(5);
    let mut shm = Shm::new();
    upper_hull_unsorted(&mut m, &mut shm, &pts, &UnsortedParams::default());
    let t = m.metrics.total_steps() as f64;
    let w = m.metrics.total_work() as f64;

    let p1 = schedule::simulate_with_p(&m.metrics, 1, 0.0);
    assert!((p1.time - (t + w)).abs() < 1e-6, "{} vs {}", p1.time, t + w);

    let pinf = schedule::simulate_with_p(&m.metrics, u64::MAX / 2, 0.0);
    assert!(pinf.time >= t && pinf.time < t + 1.0);

    // the sweep is monotone and bracketed between the two limits
    let sweep = schedule::sweep_p(&m.metrics, 1 << 24, 1.0);
    for w2 in sweep.windows(2) {
        assert!(w2[1].time <= w2[0].time);
    }
    assert!(sweep.first().unwrap().time >= sweep.last().unwrap().time);
}

#[test]
fn brents_principle_efficiency() {
    // at p = w/t processors, the ideal time is within 2x of t (Brent)
    let pts = uniform_disk(1500, 7);
    let mut m = Machine::new(9);
    let mut shm = Shm::new();
    upper_hull_unsorted(&mut m, &mut shm, &pts, &UnsortedParams::default());
    let t = m.metrics.total_steps() as f64;
    let w = m.metrics.total_work() as f64;
    let p = (w / t).ceil() as u64;
    let c = schedule::simulate_with_p(&m.metrics, p, 0.0);
    assert!(c.ideal_time <= 2.0 * t + 1.0, "{} vs {}", c.ideal_time, t);
}
