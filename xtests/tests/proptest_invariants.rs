//! Property-based invariants (proptest) over the core data structures and
//! algorithms: arbitrary point clouds, occupancy patterns, and LP
//! instances.

use proptest::prelude::*;

use ipch_geom::hull_chain::{verify_upper_hull, UpperHull};
use ipch_geom::predicates::{orient2d_exact, orient2d_sign};
use ipch_geom::Point2;
use ipch_pram::{Machine, Shm, EMPTY};

fn pt() -> impl Strategy<Value = Point2> {
    // grid-snapped coordinates so degenerate collinear/tie configurations
    // occur often
    (-50i32..50, -50i32..50).prop_map(|(x, y)| Point2::new(x as f64 / 4.0, y as f64 / 4.0))
}

fn pts(max: usize) -> impl Strategy<Value = Vec<Point2>> {
    proptest::collection::vec(pt(), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn orient2d_filter_matches_exact(a in pt(), b in pt(), c in pt()) {
        prop_assert_eq!(orient2d_sign(a, b, c), orient2d_exact(a, b, c));
    }

    #[test]
    fn orient2d_is_antisymmetric(a in pt(), b in pt(), c in pt()) {
        prop_assert_eq!(orient2d_sign(a, b, c), -orient2d_sign(b, a, c));
        prop_assert_eq!(orient2d_sign(a, b, c), orient2d_sign(b, c, a));
    }

    #[test]
    fn oracle_hull_always_verifies(points in pts(60)) {
        let h = UpperHull::of(&points);
        prop_assert!(verify_upper_hull(&points, &h).is_ok());
    }

    #[test]
    fn unsorted_algorithm_matches_oracle(points in pts(48), seed in 0u64..1000) {
        use ipch_hull2d::parallel::unsorted::{upper_hull_unsorted, UnsortedParams};
        let mut m = Machine::new(seed);
        let mut shm = Shm::new();
        let (out, _) = upper_hull_unsorted(&mut m, &mut shm, &points, &UnsortedParams::default());
        prop_assert!(verify_upper_hull(&points, &out.hull).is_ok(), "verify failed");
        let got: Vec<Point2> = out.hull.vertices.iter().map(|&i| points[i]).collect();
        let expect: Vec<Point2> = UpperHull::of(&points).vertices.iter().map(|&i| points[i]).collect();
        prop_assert_eq!(got, expect);
        prop_assert!(out.verify_pointers(&points).is_ok());
    }

    #[test]
    fn dac_matches_oracle(points in pts(64)) {
        use ipch_hull2d::parallel::dac::upper_hull_dac;
        let mut m = Machine::new(1);
        let mut shm = Shm::new();
        let out = upper_hull_dac(&mut m, &mut shm, &points, false);
        let got: Vec<Point2> = out.hull.vertices.iter().map(|&i| points[i]).collect();
        let expect: Vec<Point2> = UpperHull::of(&points).vertices.iter().map(|&i| points[i]).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn ks_matches_oracle(points in pts(64)) {
        use ipch_hull2d::seq::{ks, SeqStats};
        let h = ks::upper_hull(&points, &mut SeqStats::default());
        prop_assert!(verify_upper_hull(&points, &h).is_ok());
        let got: Vec<Point2> = h.vertices.iter().map(|&i| points[i]).collect();
        let expect: Vec<Point2> = UpperHull::of(&points).vertices.iter().map(|&i| points[i]).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn ragde_compaction_preserves_payloads(
        positions in proptest::collection::btree_set(0usize..500, 0..5),
        m_seed in 0u64..100,
    ) {
        let mut m = Machine::new(m_seed);
        let mut shm = Shm::new();
        let src = shm.alloc("src", 500, EMPTY);
        for &p in &positions {
            shm.host_set(src, p, 1000 + p as i64);
        }
        let c = ipch_inplace::ragde::ragde_compact_det(&mut m, &mut shm, src, 5).unwrap();
        let got = ipch_inplace::ragde::payloads(&shm, &c);
        let expect: Vec<i64> = positions.iter().map(|&p| 1000 + p as i64).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn inplace_compaction_preserves_payloads(
        positions in proptest::collection::btree_set(0usize..2000, 0..6),
        delta in 0.2f64..0.6,
    ) {
        let mut m = Machine::new(3);
        let mut shm = Shm::new();
        let src = shm.alloc("src", 2000, EMPTY);
        for &p in &positions {
            shm.host_set(src, p, p as i64 + 7);
        }
        let c = ipch_inplace::compact::inplace_compact(&mut m, &mut shm, src, 6, delta).unwrap();
        prop_assert_eq!(c.count, positions.len());
        let mut got: Vec<i64> = (0..shm.len(c.slots))
            .map(|s| shm.get(c.slots, s))
            .filter(|&v| v != EMPTY)
            .collect();
        got.sort_unstable();
        let expect: Vec<i64> = positions.iter().map(|&p| p as i64 + 7).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn sample_is_subset_of_active(
        active in proptest::collection::btree_set(0usize..300, 1..80),
        k in 1usize..12,
        seed in 0u64..50,
    ) {
        let active: Vec<usize> = active.into_iter().collect();
        let mut m = Machine::new(seed);
        let mut shm = Shm::new();
        let out = ipch_inplace::sample::random_sample(&mut m, &mut shm, &active, 300, k, 4);
        for &e in &out.sample {
            prop_assert!(active.contains(&e));
        }
        prop_assert!(out.sample.len() <= 4 * k + k); // sample never exceeds Θ(k)
    }

    #[test]
    fn prefix_sum_matches_reference(vals in proptest::collection::vec(-100i64..100, 0..200)) {
        let mut m = Machine::new(5);
        let mut shm = Shm::new();
        let a = shm.alloc("a", vals.len(), 0);
        for (i, &v) in vals.iter().enumerate() {
            shm.host_set(a, i, v);
        }
        ipch_pram::prefix::inclusive_prefix_sum(&mut m, &mut shm, a);
        let mut acc = 0i64;
        for (i, &v) in vals.iter().enumerate() {
            acc += v;
            prop_assert_eq!(shm.get(a, i), acc);
        }
    }

    #[test]
    fn am_lp_matches_brute(nc in 4usize..40, seed in 0u64..200) {
        use ipch_lp::alon_megiddo::{solve_lp2_am, AmConfig};
        use ipch_lp::brute::{solve_lp2_brute, Lp2Outcome};
        use ipch_lp::constraint::{Halfplane, Objective2};
        use ipch_pram::rng::SplitMix64;
        let mut rng = SplitMix64::new(seed);
        // three fixed tangents bound the region (unbounded instances have
        // no vertex optimum and the solvers may legitimately disagree)
        let mut cs: Vec<Halfplane> = [0.25f64, 2.35, 4.45]
            .iter()
            .map(|&t| Halfplane { a: -t.cos(), b: -t.sin(), c: -2.0 })
            .collect();
        cs.extend((0..nc).map(|_| {
            let t = rng.next_f64() * std::f64::consts::TAU;
            Halfplane { a: -t.cos(), b: -t.sin(), c: -1.0 - rng.next_f64() }
        }));
        let th = rng.next_f64() * std::f64::consts::TAU;
        let obj = Objective2 { cx: th.cos(), cy: th.sin() };
        let mut m = Machine::new(seed);
        let mut shm = Shm::new();
        let am = solve_lp2_am(&mut m, &mut shm, &cs, &obj, &AmConfig::default());
        let mut m2 = Machine::new(seed + 1);
        let mut shm2 = Shm::new();
        if let (Some((s, _)), Lp2Outcome::Optimal(b)) =
            (am, solve_lp2_brute(&mut m2, &mut shm2, &cs, &obj))
        {
            let fa = obj.cx * s.x + obj.cy * s.y;
            let fb = obj.cx * b.x + obj.cy * b.y;
            prop_assert!((fa - fb).abs() < 1e-7 * (1.0 + fb.abs()), "{} vs {}", fa, fb);
        }
    }
}
