//! Chaos suite: fault plans × supervised algorithms.
//!
//! The supervisor's contract, asserted here for every algorithm family:
//! under *any* installed fault plan a supervised run returns either a
//! certificate-verified, oracle-correct value or a typed `RunError` —
//! never a silently wrong answer, never a panic. The plans:
//!
//! * **budget** — a step budget every randomized attempt must exceed: a
//!   deterministic function of the plan, so it defeats all retries and the
//!   run lands on the (unbudgeted) deterministic fallback → `FellBack`.
//! * **corrupt** — transient cell corruption at a moderate per-step rate:
//!   the fault schedule re-derives from each attempt child's seed, so
//!   failures decorrelate across retries; sweeping pinned seeds must show
//!   at least one `Retried(k)` recovery per algorithm.
//! * **bias** — the RNG fault that forces sampling/dart coins to a fixed
//!   outcome; at rate 1.0 it starves every randomized sample and drives
//!   the Las Vegas loops to their typed failure paths.
//!
//! Seeds are pinned; everything here is reproducible byte-for-byte.

use ipch_geom::generators::uniform_disk;
use ipch_geom::hull_chain::verify_upper_hull;
use ipch_geom::point::sorted_by_x;
use ipch_geom::UpperHull;
use ipch_hull2d::parallel::logstar::LogstarParams;
use ipch_hull2d::parallel::supervised::{
    upper_hull_dac_supervised, upper_hull_logstar_supervised, upper_hull_unsorted_supervised,
};
use ipch_hull2d::parallel::unsorted::UnsortedParams;
use ipch_hull3d::parallel::supervised::upper_hull3_unsorted_supervised;
use ipch_hull3d::parallel::unsorted3d::Unsorted3Params;
use ipch_hull3d::verify_upper_hull3;
use ipch_inplace::supervised::{ragde_compact_supervised, random_sample_supervised};
use ipch_lp::inplace_bridge::IbConfig;
use ipch_lp::supervised::{bridge_brute_supervised, find_bridge_inplace_supervised};
use ipch_pram::{
    Budget, FaultPlan, KernelBackend, Machine, Outcome, RngBias, RunError, Shm, SuperviseConfig,
    Tuning, EMPTY,
};

/// A machine with `plan` installed (empty plan = clean control run).
fn rig(seed: u64, plan: &FaultPlan) -> Machine {
    let mut m = Machine::new(seed);
    if !plan.is_empty() {
        m.install_faults(plan.clone());
    }
    m
}

fn budget_plan(max_steps: u64) -> FaultPlan {
    FaultPlan {
        budget: Some(Budget {
            max_steps,
            max_work: u64::MAX,
        }),
        ..FaultPlan::default()
    }
}

fn corrupt_plan(rate: f64) -> FaultPlan {
    FaultPlan {
        corrupt_rate: rate,
        ..FaultPlan::default()
    }
}

fn bias_plan(rate: f64, force: bool) -> FaultPlan {
    FaultPlan {
        rng_bias: Some(RngBias { rate, force }),
        ..FaultPlan::default()
    }
}

/// What one chaos run produced, reduced to what the contract talks about.
#[derive(Debug, PartialEq, Eq)]
enum Verdict {
    /// Success whose value matched the oracle, with the supervision outcome.
    Correct(Outcome),
    /// A typed error — the permitted failure mode.
    Typed,
}

/// Run `f` across `seeds` under `plan`; panic (failing the test) if any
/// run panics or returns a wrong value. `f` must itself compare against
/// the oracle and return the outcome.
fn sweep(
    seeds: std::ops::Range<u64>,
    plan: &FaultPlan,
    mut f: impl FnMut(&mut Machine) -> Result<Outcome, RunError>,
) -> Vec<Verdict> {
    seeds
        .map(|seed| {
            let mut m = rig(seed, plan);
            match f(&mut m) {
                Ok(o) => Verdict::Correct(o),
                Err(_) => Verdict::Typed,
            }
        })
        .collect()
}

fn count_retried(vs: &[Verdict]) -> usize {
    vs.iter()
        .filter(|v| matches!(v, Verdict::Correct(Outcome::Retried(_))))
        .count()
}

// ---------------------------------------------------------------- hull2d

fn logstar_run(m: &mut Machine, pts: &[ipch_geom::Point2]) -> Result<Outcome, RunError> {
    let s = upper_hull_logstar_supervised(
        m,
        pts,
        &LogstarParams::default(),
        &SuperviseConfig::default(),
    )?;
    assert_eq!(s.value.0.hull, UpperHull::of(pts), "silently wrong hull");
    verify_upper_hull(pts, &s.value.0.hull).unwrap();
    Ok(s.outcome)
}

#[test]
fn chaos_logstar_budget_falls_back() {
    let pts = sorted_by_x(&uniform_disk(900, 21));
    let vs = sweep(0..6, &budget_plan(4), |m| logstar_run(m, &pts));
    assert!(
        vs.iter()
            .all(|v| matches!(v, Verdict::Correct(Outcome::FellBack))),
        "budget must defeat every attempt, fallback must answer: {vs:?}"
    );
}

#[test]
fn chaos_logstar_corruption_retries_and_never_lies() {
    let pts = sorted_by_x(&uniform_disk(700, 22));
    let vs = sweep(0..24, &corrupt_plan(0.5), |m| logstar_run(m, &pts));
    assert!(
        count_retried(&vs) > 0,
        "no Retried recovery in sweep: {vs:?}"
    );
}

#[test]
fn chaos_unsorted_budget_and_corruption() {
    let pts = uniform_disk(800, 23);
    let run = |m: &mut Machine| -> Result<Outcome, RunError> {
        let s = upper_hull_unsorted_supervised(
            m,
            &pts,
            &UnsortedParams::default(),
            &SuperviseConfig::default(),
        )?;
        assert_eq!(s.value.0.hull, UpperHull::of(&pts), "silently wrong hull");
        Ok(s.outcome)
    };
    let vs = sweep(0..6, &budget_plan(4), run);
    assert!(
        vs.iter()
            .all(|v| matches!(v, Verdict::Correct(Outcome::FellBack))),
        "{vs:?}"
    );
    let vs = sweep(0..24, &corrupt_plan(0.01), run);
    assert!(
        count_retried(&vs) > 0,
        "no Retried recovery in sweep: {vs:?}"
    );
}

#[test]
fn chaos_dac_budget_and_corruption() {
    let pts = sorted_by_x(&uniform_disk(700, 24));
    let run = |m: &mut Machine| -> Result<Outcome, RunError> {
        let s = upper_hull_dac_supervised(m, &pts, true, &SuperviseConfig::default())?;
        assert_eq!(s.value.hull, UpperHull::of(&pts), "silently wrong hull");
        Ok(s.outcome)
    };
    let vs = sweep(0..6, &budget_plan(4), run);
    assert!(
        vs.iter()
            .all(|v| matches!(v, Verdict::Correct(Outcome::FellBack))),
        "{vs:?}"
    );
    let vs = sweep(0..24, &corrupt_plan(0.5), run);
    assert!(
        count_retried(&vs) > 0,
        "no Retried recovery in sweep: {vs:?}"
    );
}

#[test]
fn chaos_hull2d_bias_starves_sampling_but_cannot_force_a_wrong_hull() {
    // rate-1.0 forced-false coins kill every dart/sample attempt
    // deterministically; the algorithms' own sweeping plus supervision
    // must still deliver a correct hull or a typed error.
    let pts = sorted_by_x(&uniform_disk(600, 25));
    let vs = sweep(0..8, &bias_plan(1.0, false), |m| logstar_run(m, &pts));
    for v in &vs {
        assert!(
            matches!(v, Verdict::Correct(_) | Verdict::Typed),
            "contract violated: {v:?}"
        );
    }
}

// ---------------------------------------------------------------- hull3d

fn hull3_run(m: &mut Machine, pts: &[ipch_geom::Point3]) -> Result<Outcome, RunError> {
    let s = upper_hull3_unsorted_supervised(
        m,
        pts,
        &Unsorted3Params::default(),
        &SuperviseConfig::default(),
    )?;
    verify_upper_hull3(pts, &s.value.0.facets, false).expect("silently wrong facet set");
    Ok(s.outcome)
}

#[test]
fn chaos_hull3d_budget_falls_back() {
    let pts = ipch_geom::gen3d::sphere_plus_interior(14, 260, 26);
    let vs = sweep(0..6, &budget_plan(4), |m| hull3_run(m, &pts));
    assert!(
        vs.iter()
            .all(|v| matches!(v, Verdict::Correct(Outcome::FellBack))),
        "{vs:?}"
    );
}

#[test]
fn chaos_hull3d_corruption_retries_and_never_lies() {
    let pts = ipch_geom::gen3d::sphere_plus_interior(12, 220, 27);
    let vs = sweep(0..24, &corrupt_plan(0.01), |m| hull3_run(m, &pts));
    assert!(
        count_retried(&vs) > 0,
        "no Retried recovery in sweep: {vs:?}"
    );
}

// ------------------------------------------------------------------- lp

fn bridge_run(
    m: &mut Machine,
    pts: &[ipch_geom::Point2],
    active: &[usize],
) -> Result<Outcome, RunError> {
    let s = find_bridge_inplace_supervised(
        m,
        pts,
        active,
        0.0,
        &IbConfig::default(),
        &SuperviseConfig::default(),
    )?;
    // oracle: the supervised certificate is necessary AND sufficient for a
    // bridge; cross-check against the hull edge over x0 = 0.
    let hull = UpperHull::of(pts);
    let (u, v) = hull
        .edge_above(pts, ipch_geom::Point2::new(0.0, 0.0))
        .expect("disk spans x = 0");
    assert_eq!(
        (s.value.0.left, s.value.0.right),
        (u, v),
        "silently wrong bridge"
    );
    Ok(s.outcome)
}

#[test]
fn chaos_bridge_budget_falls_back() {
    let pts = uniform_disk(500, 28);
    let active: Vec<usize> = (0..pts.len()).collect();
    let vs = sweep(0..6, &budget_plan(2), |m| bridge_run(m, &pts, &active));
    assert!(
        vs.iter()
            .all(|v| matches!(v, Verdict::Correct(Outcome::FellBack))),
        "{vs:?}"
    );
}

#[test]
fn chaos_bridge_bias_defeats_darts_then_brute_answers() {
    // forced-false coins: no processor ever volunteers for a sample, the
    // dart rounds come up empty, every attempt fails its invariant — the
    // brute-force fallback still answers exactly.
    let pts = uniform_disk(400, 29);
    let active: Vec<usize> = (0..pts.len()).collect();
    let vs = sweep(0..6, &bias_plan(1.0, false), |m| {
        bridge_run(m, &pts, &active)
    });
    assert!(
        vs.iter()
            .all(|v| matches!(v, Verdict::Correct(Outcome::FellBack))),
        "{vs:?}"
    );
}

#[test]
fn chaos_bridge_corruption_retries_and_never_lies() {
    let pts = uniform_disk(500, 30);
    let active: Vec<usize> = (0..pts.len()).collect();
    let vs = sweep(0..24, &corrupt_plan(0.5), |m| bridge_run(m, &pts, &active));
    assert!(
        count_retried(&vs) > 0,
        "no Retried recovery in sweep: {vs:?}"
    );
}

#[test]
fn chaos_brute_bridge_without_fallback_gives_typed_errors_only() {
    // No fallback exists for the last-resort brute probe: under a budget
    // no attempt can finish, and the result must be a typed exhaustion —
    // not a panic, not a bogus bridge.
    let pts = uniform_disk(200, 31);
    let active: Vec<usize> = (0..pts.len()).collect();
    for seed in 0..4 {
        let mut m = rig(seed, &budget_plan(1));
        let err = bridge_brute_supervised(&mut m, &pts, &active, 0.0, &SuperviseConfig::default())
            .unwrap_err();
        assert!(matches!(err, RunError::AttemptsExhausted { .. }), "{err}");
    }
}

// -------------------------------------------------------------- inplace

#[test]
fn chaos_sample_bias_starves_attempts_then_falls_back() {
    let active: Vec<usize> = (0..600).collect();
    let run = |m: &mut Machine| -> Result<Outcome, RunError> {
        let s = random_sample_supervised(m, &active, 600, 16, 4, &SuperviseConfig::default())?;
        assert!(
            s.value.iter().all(|e| *e < 600),
            "sample outside the universe"
        );
        Ok(s.outcome)
    };
    // forced-false coins: nobody attempts, the sample is empty, Lemma 3.1's
    // bound fails every retry; the strided deterministic sample answers.
    let vs = sweep(0..6, &bias_plan(1.0, false), run);
    assert!(
        vs.iter()
            .all(|v| matches!(v, Verdict::Correct(Outcome::FellBack))),
        "{vs:?}"
    );
    // A low-rate forced-TRUE bias inflates the attempter count to hover
    // around the 4k Lemma bound, so whether an attempt fails is a coin of
    // its own fault schedule — reseeded retries decorrelate, and sweeping
    // seeds must show at least one Retried recovery.
    let vs = sweep(0..24, &bias_plan(0.06, true), run);
    assert!(
        count_retried(&vs) > 0,
        "no Retried recovery in sweep: {vs:?}"
    );
}

#[test]
fn chaos_ragde_corruption_and_budget() {
    let run_with = |m: &mut Machine| -> Result<Outcome, RunError> {
        let mut shm = Shm::new();
        let src = shm.alloc("src", 256, EMPTY);
        for i in [5usize, 50, 111, 180, 254] {
            shm.host_set(src, i, (2000 + i) as i64);
        }
        let s = ragde_compact_supervised(m, &mut shm, src, 8, 6, &SuperviseConfig::default())?;
        let mut got = ipch_inplace::ragde::payloads(&shm, &s.value);
        got.sort_unstable();
        // Oracle relative to the *current* source: injected corruption may
        // legitimately rewrite src (the input itself is faulty memory), but
        // the destination must hold exactly what src holds now — anything
        // else is a silently wrong compaction.
        let mut want = ipch_inplace::ragde::expected_payloads(&shm, src);
        want.sort_unstable();
        assert_eq!(got, want, "silently wrong compaction");
        Ok(s.outcome)
    };
    let vs = sweep(0..6, &budget_plan(2), run_with);
    assert!(
        vs.iter()
            .all(|v| matches!(v, Verdict::Correct(Outcome::FellBack))),
        "{vs:?}"
    );
    let vs = sweep(0..32, &corrupt_plan(0.4), run_with);
    assert!(
        count_retried(&vs) > 0,
        "no Retried recovery in sweep: {vs:?}"
    );
}

// ------------------------------------------------------- cross-cutting

#[test]
fn chaos_metrics_count_what_happened() {
    // One budget-defeated logstar run: 3 budget-voided attempts, 1 fallback.
    let pts = sorted_by_x(&uniform_disk(400, 33));
    let mut m = rig(7, &budget_plan(3));
    let s = upper_hull_logstar_supervised(
        &mut m,
        &pts,
        &LogstarParams::default(),
        &SuperviseConfig::default(),
    )
    .expect("fallback answers");
    assert_eq!(s.outcome, Outcome::FellBack);
    assert_eq!(m.metrics.supervisor.runs, 1);
    assert_eq!(m.metrics.supervisor.attempts, 3);
    assert_eq!(m.metrics.supervisor.retries, 2);
    assert_eq!(m.metrics.supervisor.fallbacks, 1);
    assert_eq!(m.metrics.supervisor.budget_aborts, 3);
    assert!(m.metrics.faults.budget_exhaustions >= 3);
    assert!(s
        .errors
        .iter()
        .all(|e| matches!(e, RunError::BudgetExhausted { .. })));
}

#[test]
fn chaos_fault_counters_identical_under_parallel_backend() {
    // Fault injection must be execution-mode-blind: the same seeded run
    // under the sequential Fused backend and under the data-parallel
    // backend (at a 2-lane cap and uncapped) injects the *same* faults —
    // identical `FaultCounters`, supervisor stats, and PRAM accounting —
    // and produces the same verified hull. The fault schedule derives from
    // (seed, step, pid), never from host threads or chunk scheduling.
    let pts = uniform_disk(900, 36);
    let run = |backend: KernelBackend, lanes: Option<usize>| {
        let mut m = rig(23, &corrupt_plan(0.003));
        m.tuning = Tuning {
            kernel_backend: backend,
            kernel_par_threshold: 1,
            num_threads: lanes,
            ..Tuning::default()
        };
        let s = upper_hull_unsorted_supervised(
            &mut m,
            &pts,
            &UnsortedParams::default(),
            &SuperviseConfig::default(),
        )
        .expect("supervised run answers under moderate corruption");
        verify_upper_hull(&pts, &s.value.0.hull).expect("verified hull");
        (
            s.outcome,
            s.value.0.hull.vertices.clone(),
            m.metrics.faults,
            m.metrics.supervisor,
            m.metrics.steps,
            m.metrics.work,
            m.metrics.writes_buffered,
            m.metrics.writes_committed,
            m.metrics.write_conflicts,
        )
    };
    let fused = run(KernelBackend::Fused, None);
    assert!(
        fused.2.total() > 0,
        "the corruption plan must actually inject faults"
    );
    let par2 = run(KernelBackend::Parallel, Some(2));
    let par = run(KernelBackend::Parallel, None);
    assert_eq!(fused, par2, "2-lane parallel backend diverged under faults");
    assert_eq!(
        fused, par,
        "uncapped parallel backend diverged under faults"
    );
}

#[test]
fn chaos_empty_plan_is_the_clean_machine() {
    // Control: the supervised entry points under an empty plan behave as
    // with no plan at all — FirstTry, no fault counters.
    let pts = sorted_by_x(&uniform_disk(300, 34));
    let mut m = rig(11, &FaultPlan::default());
    assert!(!m.faults_installed());
    let s = upper_hull_logstar_supervised(
        &mut m,
        &pts,
        &LogstarParams::default(),
        &SuperviseConfig::default(),
    )
    .unwrap();
    assert_eq!(s.outcome, Outcome::FirstTry);
    assert_eq!(m.metrics.faults.total(), 0);
}
