//! Headline-bound shape checks across crates — the T1/T3/T5 claims as
//! hard assertions at test scale.

use ipch_geom::gen3d;
use ipch_geom::generators as g2;
use ipch_geom::point::sorted_by_x;
use ipch_hull2d::parallel::presorted::{upper_hull_presorted, PresortedParams};
use ipch_hull2d::parallel::unsorted::{upper_hull_unsorted, UnsortedParams};
use ipch_hull3d::parallel::unsorted3d::{upper_hull3_unsorted, Unsorted3Params};
use ipch_pram::{Machine, Shm};

#[test]
fn presorted_steps_bounded_by_constant() {
    // Lemma 2.5: O(1) time — a fixed cap must hold across a 32× n range.
    for n in [512usize, 2048, 8192, 16384] {
        let pts = sorted_by_x(&g2::uniform_disk(n, 1));
        let mut m = Machine::new(2);
        let mut shm = Shm::new();
        upper_hull_presorted(&mut m, &mut shm, &pts, &PresortedParams::default());
        assert!(
            m.metrics.total_steps() <= 400,
            "n={n}: {} steps",
            m.metrics.total_steps()
        );
    }
}

#[test]
fn unsorted_work_tracks_output_not_input() {
    // Theorem 5: at fixed h, work/n must not grow with n. Single instances
    // have high variance (the random splitter can draw several unbalanced
    // levels in a row), so compare means over a few seeded instances.
    let h = 16;
    let seeds = 5u64;
    let mut per_point = Vec::new();
    for n in [2048usize, 8192] {
        let mut mean = 0.0;
        for seed in 0..seeds {
            let pts = g2::circle_plus_interior(h, n, seed);
            let mut m = Machine::new(seed + 100);
            let mut shm = Shm::new();
            upper_hull_unsorted(&mut m, &mut shm, &pts, &UnsortedParams::default());
            mean += m.metrics.total_work() as f64 / n as f64 / seeds as f64;
        }
        per_point.push(mean);
    }
    assert!(
        per_point[1] < per_point[0] * 2.0,
        "mean work/n grew with n at fixed h: {per_point:?}"
    );
}

#[test]
fn unsorted_time_is_logarithmic() {
    // Theorem 5: O(log n) time.
    for n in [1024usize, 8192] {
        let pts = g2::uniform_disk(n, 5);
        let mut m = Machine::new(6);
        let mut shm = Shm::new();
        upper_hull_unsorted(&mut m, &mut shm, &pts, &UnsortedParams::default());
        let cap = 120.0 * (n as f64).log2();
        assert!(
            (m.metrics.total_steps() as f64) < cap,
            "n={n}: {} steps ≥ {cap}",
            m.metrics.total_steps()
        );
    }
}

#[test]
fn hull3d_work_saturates_via_fallback() {
    // Theorem 6's min{·, n log n} arm: huge-h inputs trigger the fallback
    // and stay within an n-log-n-ish work envelope.
    let n = 600;
    let pts = gen3d::on_sphere(n, 7);
    let mut m = Machine::new(8);
    let mut shm = Shm::new();
    let (out, trace) = upper_hull3_unsorted(&mut m, &mut shm, &pts, &Unsorted3Params::default());
    assert!(trace.fallback);
    ipch_hull3d::verify_upper_hull3(&pts, &out.facets, false).unwrap();
}
