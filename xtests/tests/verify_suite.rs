//! The static-verification acceptance suite.
//!
//! Sweeps every paper entry point's symbolic step plan through
//! [`ipch_pram::verify`] and pins three properties:
//!
//! 1. **Coverage** — the four crate registries together cover exactly the
//!    entry points `xlint` enforces contracts for, and every plan passes
//!    at a range of input sizes with its expected verdict
//!    (`VerifiedStatic` for the provable algorithms, an honest
//!    `NeedsDynamic` for the randomized in-place primitives whose
//!    indices are data-dependent).
//! 2. **Rejection** — mutated plans (out-of-bounds scatter, a contract
//!    claiming a weaker machine than the plan needs, undecidable shapes
//!    with the fallback disabled) are rejected with the right typed
//!    error and stable code.
//! 3. **Agreement** — for algorithms that actually run here, the class
//!    observed by the dynamic analyzer never exceeds the class the
//!    static checker derived: the symbolic result is a true upper bound.
//!
//! The suite also runs the `xlint` rules over the repository itself, so
//! `cargo test` fails if the tree regresses on the lint conventions.

use ipch_geom::generators as g2;
use ipch_geom::point::sorted_by_x;
use ipch_pram::verify::{
    verify, verify_all, Affine, AlgorithmPlan, IndexSet, StepPlan, Verdict, VerifyConfig,
    VerifyError,
};
use ipch_pram::{
    AnalyzeConfig, Machine, ModelClass, ModelContract, RaceExpectation, Shm, WritePolicy,
};

/// Every entry-point plan in the workspace, across all four registries.
fn all_plans() -> Vec<AlgorithmPlan> {
    let mut plans = ipch_hull2d::parallel::verify_plans::verify_plans();
    plans.extend(ipch_hull3d::parallel::verify_plans());
    plans.extend(ipch_lp::verify_plans());
    plans.extend(ipch_inplace::verify_plans());
    plans
}

/// The randomized in-place primitives whose plans honestly declare
/// data-dependent (opaque) index shapes.
const NEEDS_DYNAMIC: &[&str] = &[
    "inplace/ragde_det",
    "inplace/ragde_rand",
    "inplace/compact",
    "inplace/sample",
];

#[test]
fn registries_cover_every_linted_entry_point() {
    let plans = all_plans();
    let mut planned: Vec<&str> = plans.iter().map(|p| p.contract.algorithm).collect();
    planned.sort_unstable();
    let mut linted: Vec<&str> = xlint::ENTRY_POINTS.to_vec();
    linted.sort_unstable();
    assert_eq!(
        planned, linted,
        "plan registries and the xlint entry-point table drifted apart"
    );
}

#[test]
fn every_plan_passes_with_its_expected_verdict() {
    // n = 0 runs zero processors, so everything is trivially static;
    // start at 1 where the opaque shapes actually appear.
    for n in [1usize, 2, 17, 256, 4096] {
        let reports = verify_all(&all_plans(), n, &VerifyConfig::default())
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
        assert_eq!(reports.len(), xlint::ENTRY_POINTS.len());
        for r in &reports {
            let expected = if NEEDS_DYNAMIC.contains(&r.algorithm) {
                Verdict::NeedsDynamic
            } else {
                Verdict::VerifiedStatic
            };
            assert_eq!(r.verdict, expected, "{} at n={n}", r.algorithm);
            assert!(r.steps_checked > 0, "{}: empty plan", r.algorithm);
            if r.verdict == Verdict::NeedsDynamic {
                assert!(
                    !r.dynamic_reasons.is_empty(),
                    "{}: NeedsDynamic without reasons",
                    r.algorithm
                );
            }
        }
    }
}

#[test]
fn zero_size_inputs_are_trivially_static() {
    for r in verify_all(&all_plans(), 0, &VerifyConfig::default()).expect("n=0") {
        assert_eq!(r.verdict, Verdict::VerifiedStatic, "{}", r.algorithm);
    }
}

// ---------------------------------------------------------------------------
// Negative controls: defective plans must be rejected, not waved through.
// ---------------------------------------------------------------------------

const MUTANT_CONTRACT: ModelContract = ModelContract {
    algorithm: "xtests/mutant",
    class: ModelClass::Crcw,
    races: RaceExpectation::SeedDependent,
};

#[test]
fn off_by_one_scatter_is_rejected() {
    // n + 1 processors write pid into an n-cell array: provably out of
    // bounds for every n ≥ 0 (pid = n hits index n).
    let mut plan = AlgorithmPlan::new(MUTANT_CONTRACT);
    let arr = plan.array("mutant.dst", Affine::n());
    plan.step(
        StepPlan::new("scatter", Affine::n().plus(1), WritePolicy::Arbitrary)
            .write(arr, IndexSet::Exact(Affine::pid())),
    );
    let err = verify(&plan, 64, &VerifyConfig::default()).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::OutOfBoundsPlan {
                step: "scatter",
                ..
            }
        ),
        "{err}"
    );
    assert_eq!(err.code(), "plan_out_of_bounds");
    assert_eq!(err.algorithm(), "xtests/mutant");
}

#[test]
fn crew_claim_on_a_crcw_election_is_rejected() {
    // A contract that promises CREW (concurrent reads only) over a step
    // where n processors all write cell 0: a provable write collision.
    let mut plan = AlgorithmPlan::new(ModelContract {
        algorithm: "xtests/mutant",
        class: ModelClass::Crew,
        races: RaceExpectation::Forbidden,
    });
    let win = plan.array("mutant.win", Affine::k(1));
    plan.step(
        StepPlan::new("elect", Affine::n(), WritePolicy::PriorityMin)
            .write(win, IndexSet::Exact(Affine::k(0))),
    );
    let err = verify(&plan, 64, &VerifyConfig::default()).unwrap_err();
    assert!(
        matches!(err, VerifyError::ContractViolation { step: "elect", .. }),
        "{err}"
    );
    assert_eq!(err.code(), "plan_contract_violation");
}

#[test]
fn opaque_shapes_fail_when_the_fallback_is_disabled() {
    let mut plan = AlgorithmPlan::new(MUTANT_CONTRACT);
    let dst = plan.array("mutant.dst", Affine::n());
    plan.step(
        StepPlan::new("throw", Affine::n(), WritePolicy::Arbitrary).write(dst, IndexSet::Opaque),
    );
    let strict = VerifyConfig {
        allow_dynamic_fallback: false,
    };
    let err = verify(&plan, 64, &strict).unwrap_err();
    // Strict-mode rejection aggregates at plan level; the offending step
    // is named in the detail.
    match &err {
        VerifyError::UnknownShape { detail, .. } => {
            assert!(detail.contains("throw"), "{err}")
        }
        other => panic!("expected UnknownShape, got {other}"),
    }
    assert_eq!(err.code(), "plan_unknown_shape");
    // With the default config the same plan is an honest NeedsDynamic.
    let r = verify(&plan, 64, &VerifyConfig::default()).expect("fallback");
    assert_eq!(r.verdict, Verdict::NeedsDynamic);
}

// ---------------------------------------------------------------------------
// Static-vs-dynamic agreement.
// ---------------------------------------------------------------------------

/// Run `algorithm`'s plan through the static checker and the real code
/// through the dynamic analyzer; the observed class must not exceed the
/// statically derived upper bound.
fn assert_agreement(label: &str, algorithm: &str, m: &Machine, n: usize) {
    let plans = all_plans();
    let plan = plans
        .iter()
        .find(|p| p.contract.algorithm == algorithm)
        .unwrap_or_else(|| panic!("{label}: no plan for {algorithm}"));
    let derived = verify(plan, n, &VerifyConfig::default())
        .unwrap_or_else(|e| panic!("{label}: {e}"))
        .derived;
    let report = m
        .analysis_report()
        .unwrap_or_else(|| panic!("{label}: no dynamic report"));
    assert!(
        report.class <= derived,
        "{label}: dynamic analyzer observed {} but the static checker derived {derived} \
         — the symbolic upper bound is wrong",
        report.class
    );
}

fn analyzed(seed: u64) -> (Machine, Shm) {
    let mut m = Machine::new(seed);
    m.enable_analysis(AnalyzeConfig::default());
    let mut shm = Shm::new();
    shm.enable_shadow(true);
    (m, shm)
}

#[test]
fn static_bound_dominates_dynamic_observation() {
    let n = 512;

    let pts = g2::uniform_disk(n, 11);
    let (mut m, mut shm) = analyzed(11);
    ipch_hull2d::parallel::unsorted::upper_hull_unsorted(
        &mut m,
        &mut shm,
        &pts,
        &Default::default(),
    );
    assert_agreement("unsorted", "hull2d/unsorted", &m, n);

    let pts = sorted_by_x(&g2::uniform_disk(n, 12));
    let (mut m, mut shm) = analyzed(12);
    ipch_hull2d::parallel::dac::upper_hull_dac(&mut m, &mut shm, &pts, false);
    assert_agreement("dac", "hull2d/dac", &m, pts.len());

    let pts = sorted_by_x(&g2::uniform_disk(n, 13));
    let ids: Vec<usize> = (0..pts.len()).collect();
    let (mut m, mut shm) = analyzed(13);
    ipch_hull2d::parallel::folklore::upper_hull_folklore(&mut m, &mut shm, &pts, &ids, 3);
    assert_agreement("folklore", "hull2d/folklore", &m, pts.len());
}

// ---------------------------------------------------------------------------
// The repository itself stays lint-clean.
// ---------------------------------------------------------------------------

#[test]
fn repository_passes_xlint() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtests sits under the repo root")
        .to_path_buf();
    let findings = xlint::lint_root(&root).expect("walk repo");
    assert!(
        findings.is_empty(),
        "xlint findings:\n{}",
        findings
            .iter()
            .map(xlint::Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
