//! Replayability: every randomized algorithm is a deterministic function
//! of (input, machine seed) — the property all experiment tables rely on.

use ipch_geom::generators as g2;
use ipch_hull2d::parallel::unsorted::{upper_hull_unsorted, UnsortedParams};
use ipch_hull3d::parallel::unsorted3d::{upper_hull3_unsorted, Unsorted3Params};
use ipch_pram::{Machine, Shm};

#[test]
fn unsorted2d_replays_exactly() {
    let pts = g2::uniform_disk(1000, 3);
    let run = |seed: u64| {
        let mut m = Machine::new(seed);
        let mut shm = Shm::new();
        let (out, trace) = upper_hull_unsorted(&mut m, &mut shm, &pts, &UnsortedParams::default());
        (
            out.hull.vertices,
            out.edge_above,
            trace.levels.len(),
            m.metrics.total_work(),
        )
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "same seed must replay identically");
    let c = run(43);
    // hull is the same object regardless of seed; the execution differs
    assert_eq!(a.0, c.0, "hull independent of randomness");
    assert!(
        a.3 != c.3 || a.2 != c.2,
        "different seeds should explore differently (work or levels)"
    );
}

#[test]
fn unsorted3d_replays_exactly() {
    let pts = ipch_geom::gen3d::in_ball(300, 5);
    let run = |seed: u64| {
        let mut m = Machine::new(seed);
        let mut shm = Shm::new();
        let (out, _) = upper_hull3_unsorted(&mut m, &mut shm, &pts, &Unsorted3Params::default());
        (out.facets, m.metrics.total_work())
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}

#[test]
fn machines_with_same_seed_agree_on_arbitrary_winners() {
    // Arbitrary-CRCW winners are seeded: an identical step sequence picks
    // identical winners.
    let run = |seed: u64| {
        let mut m = Machine::new(seed);
        let mut shm = Shm::new();
        let cell = shm.alloc("c", 4, -1);
        for _ in 0..10 {
            m.step(&mut shm, 0..64, |ctx| {
                let pid = ctx.pid;
                ctx.write(cell, pid % 4, pid as i64);
            });
        }
        (0..4).map(|i| shm.get(cell, i)).collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1), run(2));
}
