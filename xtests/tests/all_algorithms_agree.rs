//! End-to-end agreement: every hull algorithm in the workspace — five
//! sequential, six parallel — must produce the same upper hull on the same
//! input, across distributions.

use ipch_geom::generators as g2;
use ipch_geom::point::sorted_by_x;
use ipch_geom::{Point2, UpperHull};
use ipch_hull2d::parallel::{brute, dac, folklore, logstar, presorted, unsorted};
use ipch_hull2d::seq::{chan, graham, jarvis, ks, monotone, SeqStats};
use ipch_pram::{Machine, Shm};

fn hull_points(pts: &[Point2], h: &UpperHull) -> Vec<Point2> {
    h.vertices.iter().map(|&i| pts[i]).collect()
}

fn check_all(pts: &[Point2], label: &str) {
    let oracle = hull_points(pts, &UpperHull::of(pts));

    // sequential
    let seqs: Vec<(&str, UpperHull)> = vec![
        (
            "monotone",
            monotone::upper_hull(pts, &mut SeqStats::default()),
        ),
        ("graham", graham::upper_hull(pts, &mut SeqStats::default())),
        ("jarvis", jarvis::upper_hull(pts, &mut SeqStats::default())),
        ("ks", ks::upper_hull(pts, &mut SeqStats::default())),
        ("chan", chan::upper_hull(pts, &mut SeqStats::default())),
    ];
    for (name, h) in seqs {
        assert_eq!(hull_points(pts, &h), oracle, "{label}: seq {name}");
    }

    // parallel — unsorted input
    let mut m = Machine::new(1);
    let mut shm = Shm::new();
    let (o, _) =
        unsorted::upper_hull_unsorted(&mut m, &mut shm, pts, &unsorted::UnsortedParams::default());
    assert_eq!(hull_points(pts, &o.hull), oracle, "{label}: unsorted");

    let mut m = Machine::new(2);
    let mut shm = Shm::new();
    let o = dac::upper_hull_dac(&mut m, &mut shm, pts, false);
    assert_eq!(hull_points(pts, &o.hull), oracle, "{label}: dac");

    if pts.len() <= 120 {
        let mut m = Machine::new(3);
        let mut shm = Shm::new();
        let ids: Vec<usize> = (0..pts.len()).collect();
        let h = brute::upper_hull_brute(&mut m, &mut shm, pts, &ids);
        assert_eq!(hull_points(pts, &h), oracle, "{label}: brute");
    }

    // parallel — presorted input
    let sorted = sorted_by_x(pts);
    let oracle_sorted = hull_points(&sorted, &UpperHull::of(&sorted));
    let mut m = Machine::new(4);
    let mut shm = Shm::new();
    let (o, _) = presorted::upper_hull_presorted(
        &mut m,
        &mut shm,
        &sorted,
        &presorted::PresortedParams::default(),
    );
    assert_eq!(
        hull_points(&sorted, &o.hull),
        oracle_sorted,
        "{label}: presorted"
    );

    let mut m = Machine::new(5);
    let mut shm = Shm::new();
    let (o, _) = logstar::upper_hull_logstar(
        &mut m,
        &mut shm,
        &sorted,
        &logstar::LogstarParams::default(),
    )
    .unwrap();
    assert_eq!(
        hull_points(&sorted, &o.hull),
        oracle_sorted,
        "{label}: logstar"
    );

    let mut m = Machine::new(6);
    let mut shm = Shm::new();
    let ids: Vec<usize> = (0..sorted.len()).collect();
    let h = folklore::upper_hull_folklore(&mut m, &mut shm, &sorted, &ids, 3);
    assert_eq!(hull_points(&sorted, &h), oracle_sorted, "{label}: folklore");
}

#[test]
fn disk_inputs() {
    for seed in 0..3 {
        check_all(&g2::uniform_disk(500, seed), &format!("disk/{seed}"));
    }
}

#[test]
fn square_inputs() {
    check_all(&g2::uniform_square(800, 1), "square");
}

#[test]
fn circle_inputs() {
    check_all(&g2::on_circle(300, 2), "circle");
}

#[test]
fn controlled_h_inputs() {
    for h in [4usize, 16, 64] {
        check_all(&g2::circle_plus_interior(h, 600, 3), &format!("h={h}"));
    }
}

#[test]
fn gaussian_inputs() {
    check_all(&g2::gaussian(700, 4), "gaussian");
}

#[test]
fn degenerate_inputs() {
    check_all(&g2::grid(100), "grid");
    check_all(&g2::collinear_on_line(80, 1.5, -2.0, 5), "collinear");
    check_all(
        &[
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(2.0, 0.5),
        ],
        "tri",
    );
}
