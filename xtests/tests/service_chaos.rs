//! Chaos soak for the serving runtime (`ipch-service`).
//!
//! The service contract, asserted end to end: every submitted request
//! resolves **exactly once**, into exactly one of
//!
//! 1. a certificate-verified, oracle-correct value,
//! 2. a typed error (`ServiceError::Run` wrapping a typed `RunError`), or
//! 3. a typed shed (`ServiceError::Rejected` with a retry hint),
//!
//! under any mix of injected faults, overload, tight deadlines, malformed
//! inputs, and client cancellations — no panic escapes, no request is
//! lost. The ledger is `ServiceStats`: `submitted` must equal the sum of
//! terminal outcomes (`total_resolved`), which a silently dropped or
//! double-resolved request would break.
//!
//! The breaker lifecycle (trip → half-open probe → recover) is asserted
//! separately in deterministic single-threaded mode (`workers: 0` +
//! `drain`), where every step of the walk is observable.

use std::time::Duration;

use ipch_geom::{Point2, Point3};
use ipch_hull2d::seq::{monotone, SeqStats};
use ipch_hull2d::verify_upper_hull;
use ipch_hull3d::verify_upper_hull3;
use ipch_pram::{Budget, FaultPlan, Outcome, RunError, ServiceStats};
use ipch_service::{
    BreakerConfig, Hull2dAlgo, RejectReason, Request, Response, ResponseValue, Service,
    ServiceConfig, ServiceError, Ticket, Tier, Workload,
};

/// SplitMix64 — the suite's own pinned-seed stream.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(rng: &mut u64) -> f64 {
    (mix(rng) >> 11) as f64 / (1u64 << 53) as f64
}

fn points2(rng: &mut u64, n: usize) -> Vec<Point2> {
    (0..n)
        .map(|_| Point2 {
            x: unit(rng),
            y: unit(rng),
        })
        .collect()
}

fn points3(rng: &mut u64, n: usize) -> Vec<Point3> {
    (0..n)
        .map(|_| Point3 {
            x: unit(rng),
            y: unit(rng),
            z: unit(rng),
        })
        .collect()
}

fn corrupt_plan(rate: f64) -> FaultPlan {
    FaultPlan {
        corrupt_rate: rate,
        ..FaultPlan::default()
    }
}

fn budget_plan(max_steps: u64) -> FaultPlan {
    FaultPlan {
        budget: Some(Budget {
            max_steps,
            max_work: u64::MAX,
        }),
        ..FaultPlan::default()
    }
}

fn assert_ledger(stats: &ServiceStats) {
    assert_eq!(
        stats.submitted,
        stats.total_resolved(),
        "a request was lost or double-counted: {stats:?}"
    );
}

/// Certificate + oracle check of a completed response against its input.
fn check_response(req: &Request, resp: &Response) {
    match (&req.workload, &resp.value) {
        (Workload::Hull2d { points, .. }, ResponseValue::Hull2d(hull)) => {
            verify_upper_hull(points, hull).expect("response certificate");
            let mut stats = SeqStats::default();
            let oracle = monotone::upper_hull(points, &mut stats);
            assert_eq!(
                hull.vertices, oracle.vertices,
                "served hull disagrees with the sequential oracle"
            );
        }
        (Workload::Hull3d { points }, ResponseValue::Hull3d(facets)) => {
            verify_upper_hull3(points, facets, true).expect("response certificate");
        }
        _ => panic!("response value kind does not match the request workload"),
    }
}

/// How one soak request was set up, so its resolution can be judged.
struct Flight {
    req: Request,
    ticket: Ticket,
    cancelled: bool,
    malformed: bool,
}

/// ≥500 requests against a live two-worker service: fault plans on a
/// slice of the traffic, queue overload from bursty submission, tight
/// deadlines, malformed inputs, and client cancellations. Every request
/// must land in exactly one of the three typed buckets.
#[test]
fn soak_500_requests_under_faults_overload_and_cancellation() {
    const REQUESTS: usize = 520;
    // Two queue shards (capacity is per shard, so the same 24 slots in
    // total) with batch admission on: the soak mixes fused batch members,
    // solo runs, chaos, deadlines, and malformed inputs through the same
    // ledger.
    let svc = Service::new(ServiceConfig {
        workers: 2,
        shards: 2,
        queue_capacity: 12,
        batch_window: 8,
        batch_max: 6,
        per_tenant_inflight: 10,
        ..ServiceConfig::default()
    });
    let mut rng = 0x5EA5_0AC5_0000_0001u64;
    let tenants = ["alpha", "beta", "gamma", "delta"];

    let mut flights: Vec<Flight> = Vec::new();
    let mut shed_at_admission = 0u64;

    for i in 0..REQUESTS {
        let r = mix(&mut rng);
        let n = 8 + (r % 160) as usize;
        let workload = match r % 3 {
            0 => Workload::Hull2d {
                points: points2(&mut rng, n),
                algo: Hull2dAlgo::Unsorted,
            },
            1 => Workload::Hull2d {
                points: points2(&mut rng, n),
                algo: Hull2dAlgo::Dac,
            },
            _ => Workload::Hull3d {
                points: points3(&mut rng, n),
            },
        };
        let mut req = Request::new(tenants[i % tenants.len()], r, workload);
        let mut malformed = false;
        match r % 20 {
            // Transient corruption: retries and fallbacks, still correct.
            0..=3 => req.chaos = Some(corrupt_plan(0.5)),
            // A step budget every attempt exceeds: deterministic fallback.
            4 | 5 => req.chaos = Some(budget_plan(2)),
            // Deadlines from instantly-expired to mid-run.
            6 | 7 => req.deadline = Some(Duration::from_micros(r % 400)),
            // Malformed input: typed rejection before any step.
            8 => {
                malformed = true;
                match &mut req.workload {
                    Workload::Hull2d { points, .. } => points[0].y = f64::NAN,
                    Workload::Hull3d { points } => points[0].z = f64::INFINITY,
                }
            }
            _ => {}
        }
        match svc.submit(req.clone()) {
            Ok(ticket) => {
                let cancelled = r % 16 == 9;
                if cancelled {
                    ticket.cancel();
                }
                flights.push(Flight {
                    req,
                    ticket,
                    cancelled,
                    malformed,
                });
            }
            Err(e) => {
                // Admission sheds must be typed rejections, nothing else.
                match e {
                    ServiceError::Rejected { retry_after, .. } => {
                        assert!(retry_after > Duration::ZERO);
                        shed_at_admission += 1;
                    }
                    other => panic!("admission returned a non-shed error: {other:?}"),
                }
            }
        }
        // Bursty but paced traffic: submission is instant while a run
        // costs milliseconds, so without back-pressure the workers would
        // shed nearly everything. Let the queue mostly drain after each
        // burst — overflow (and tenant-limit) sheds still happen at the
        // burst fronts.
        if i % 30 == 29 {
            while svc.health().queue_depth > 4 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    let (mut completed, mut typed_errors, mut shed_in_queue) = (0u64, 0u64, 0u64);
    for flight in flights {
        // Exactly-once resolution: `wait` consumes the ticket, and every
        // arm below is one of the three contract buckets.
        match flight.ticket.wait() {
            Ok(resp) => {
                assert!(!flight.malformed, "malformed input served as a value");
                check_response(&flight.req, &resp);
                completed += 1;
            }
            Err(ServiceError::Rejected {
                reason: RejectReason::Expired,
                ..
            }) => shed_in_queue += 1,
            Err(ServiceError::Rejected { reason, .. }) => {
                panic!("queued request shed for a non-deadline reason: {reason:?}")
            }
            Err(ServiceError::Run(e)) => {
                assert!(!e.code().is_empty());
                if flight.malformed {
                    assert!(
                        matches!(e, RunError::InvalidInput { .. }),
                        "malformed input resolved as {e}"
                    );
                }
                if matches!(e, RunError::Cancelled { .. }) {
                    assert!(flight.cancelled, "spurious cancellation: {e}");
                }
                typed_errors += 1;
            }
            Err(ServiceError::ShuttingDown) => panic!("service dropped a live ticket"),
        }
    }

    let health = svc.health();
    let stats = health.stats;
    assert_ledger(&stats);
    assert_eq!(stats.submitted, REQUESTS as u64);
    assert_eq!(
        stats.admitted + stats.rejected_queue_full + stats.rejected_tenant_limit,
        stats.submitted
    );
    assert_eq!(completed, stats.completed);
    assert_eq!(
        shed_at_admission,
        stats.rejected_queue_full + stats.rejected_tenant_limit
    );
    assert_eq!(shed_in_queue, stats.shed_expired);
    assert_eq!(
        typed_errors,
        stats.cancelled
            + stats.deadline_exceeded
            + stats.invalid_inputs
            + stats.run_errors
            + stats.panics_isolated
    );
    // The soak actually exercised what it claims to: work completed, load
    // was shed, clients cancelled, malformed inputs were typed.
    assert!(completed > 200, "soak barely completed anything: {stats:?}");
    assert!(stats.total_shed() > 0, "no load shedding observed");
    assert!(stats.cancelled > 0, "no cancellation observed");
    assert!(stats.invalid_inputs > 0, "no input rejection observed");
    assert!(
        stats.batches_formed > 0,
        "bursty small-request traffic never fused a batch: {stats:?}"
    );
    assert!(stats.batch_members >= 2 * stats.batches_formed);
    // Every panic stayed inside its request (and none crossed `wait`,
    // or this test itself would have died).
    let m = svc.shutdown();
    assert_eq!(m.service.submitted, stats.submitted);
    assert!(
        m.steps > 0,
        "request metrics were absorbed into the aggregate"
    );
}

/// The full breaker lifecycle, deterministically (`workers: 0`): strained
/// traffic trips Full → ReducedRetry → Sequential, degraded service keeps
/// completing (host-side exact hull), a half-open probe goes out, and
/// clean traffic recovers the breaker tier by tier back to Full.
#[test]
fn breaker_trips_half_opens_and_recovers_deterministically() {
    let svc = Service::new(ServiceConfig {
        workers: 0,
        breaker: BreakerConfig {
            trip_after: 2,
            probe_after: 2,
        },
        ..ServiceConfig::default()
    });
    let mut rng = 0xB4EA_4E40_0000_0002u64;
    let mk = |rng: &mut u64, seed: u64, chaos: Option<FaultPlan>| {
        let mut req = Request::new(
            "acme",
            seed,
            Workload::Hull2d {
                points: points2(rng, 48),
                algo: Hull2dAlgo::Unsorted,
            },
        );
        req.chaos = chaos;
        req
    };
    let run = |req: Request| -> Result<Response, ServiceError> {
        let t = svc.submit(req).unwrap();
        svc.drain();
        t.wait()
    };
    let tier = |svc: &Service| svc.health().breakers.first().map(|b| b.tier);

    // Phase 1 — trip. A tiny step budget defeats every randomized attempt
    // deterministically; each run falls back (strained success).
    let mut tiers_seen = Vec::new();
    for seed in 0..32u64 {
        if tier(&svc) == Some(Tier::Sequential) {
            break;
        }
        let resp = run(mk(&mut rng, seed, Some(budget_plan(2)))).expect("fallback certifies");
        assert_eq!(resp.outcome, Some(Outcome::FellBack));
        tiers_seen.push(resp.tier);
    }
    let h = svc.health();
    assert_eq!(h.breakers[0].tier, Tier::Sequential, "breaker floored");
    assert_eq!(h.stats.breaker_trips, 2, "one trip per tier walked down");
    assert!(
        tiers_seen.contains(&Tier::Full) && tiers_seen.contains(&Tier::ReducedRetry),
        "requests were served at each tier on the way down: {tiers_seen:?}"
    );

    // Phase 2 — degraded service still serves, exactly and certified.
    let resp = run(mk(&mut rng, 100, None)).expect("sequential tier serves");
    assert_eq!(resp.tier, Tier::Sequential);
    assert_eq!(resp.outcome, None, "no supervisor at the sequential tier");
    assert_eq!(resp.attempts, 0);

    // Phase 3 — recover. Clean traffic: after `probe_after` degraded
    // completions a half-open probe goes out one tier up; each clean probe
    // climbs one tier until the breaker is Full again.
    let mut probe_observed = false;
    for seed in 101..140u64 {
        if tier(&svc) == Some(Tier::Full) {
            break;
        }
        let before = tier(&svc).unwrap();
        let resp = run(mk(&mut rng, seed, None)).expect("clean traffic");
        if resp.tier < before {
            // Served above the breaker's tier: that's the half-open probe.
            probe_observed = true;
            assert_eq!(resp.outcome, Some(Outcome::FirstTry));
        }
    }
    let h = svc.health();
    assert_eq!(h.breakers[0].tier, Tier::Full, "breaker recovered");
    assert!(probe_observed, "a half-open probe was served above tier");
    assert!(h.stats.breaker_probes >= 2);
    assert_eq!(h.stats.breaker_recoveries, 1, "counted on reaching Full");
    assert!(h.stats.degraded_tier1_runs > 0 && h.stats.degraded_tier2_runs > 0);
    assert_ledger(&h.stats);
}

/// Overload against a tiny queue: exactly the overflow is shed, each shed
/// is typed with a growing backoff hint, and every admitted request still
/// completes. Capacity is per queue shard and a tenant hashes to exactly
/// one shard, so a single-tenant burst sees the per-shard limit even with
/// several shards configured — the depth assertion below is shard-aware.
#[test]
fn overload_sheds_exactly_the_overflow_and_serves_the_rest() {
    const CAPACITY: usize = 8;
    const BURST: usize = 20;
    let svc = Service::new(ServiceConfig {
        workers: 0,
        shards: 3,
        queue_capacity: CAPACITY,
        per_tenant_inflight: BURST,
        ..ServiceConfig::default()
    });
    let mut rng = 0x0E4_10AD_0000_0003u64;
    let mut tickets = Vec::new();
    let mut hints = Vec::new();
    for seed in 0..BURST as u64 {
        let req = Request::new(
            "burst",
            seed,
            Workload::Hull2d {
                points: points2(&mut rng, 24),
                algo: Hull2dAlgo::Dac,
            },
        );
        match svc.submit(req) {
            Ok(t) => tickets.push(t),
            Err(ServiceError::Rejected {
                reason: RejectReason::QueueFull { depth },
                retry_after,
            }) => {
                assert_eq!(depth, CAPACITY);
                hints.push(retry_after);
            }
            other => panic!("unexpected admission result: {other:?}"),
        }
    }
    assert_eq!(tickets.len(), CAPACITY);
    assert_eq!(hints.len(), BURST - CAPACITY);
    let depths = svc.health().shard_depths;
    assert_eq!(depths.len(), 3);
    assert_eq!(
        depths.iter().filter(|&&d| d == CAPACITY).count(),
        1,
        "the tenant's shard is full and the others untouched: {depths:?}"
    );
    assert_eq!(depths.iter().sum::<usize>(), CAPACITY);
    assert!(
        hints.windows(2).all(|w| w[1] >= w[0]),
        "backoff hints never shrink within a rejection streak: {hints:?}"
    );
    assert!(hints[1] > hints[0], "backoff grows");
    svc.drain();
    for t in tickets {
        t.wait().expect("admitted requests complete");
    }
    let stats = svc.health().stats;
    assert_eq!(stats.rejected_queue_full, (BURST - CAPACITY) as u64);
    assert_eq!(stats.completed, CAPACITY as u64);
    assert_ledger(&stats);
}

/// A cancellation storm: every queued ticket cancelled before anything
/// runs. All must resolve typed, none may run a single step, and the
/// service keeps serving afterwards.
#[test]
fn cancellation_storm_resolves_every_ticket_typed() {
    let svc = Service::new(ServiceConfig {
        workers: 0,
        queue_capacity: 64,
        per_tenant_inflight: 64,
        ..ServiceConfig::default()
    });
    let mut rng = 0xCA4C_E150_0000_0004u64;
    let tickets: Vec<Ticket> = (0..50u64)
        .map(|seed| {
            svc.submit(Request::new(
                "storm",
                seed,
                Workload::Hull2d {
                    points: points2(&mut rng, 32),
                    algo: Hull2dAlgo::Unsorted,
                },
            ))
            .unwrap()
        })
        .collect();
    for t in &tickets {
        t.cancel();
    }
    svc.drain();
    for t in tickets {
        match t.wait() {
            Err(ServiceError::Run(RunError::Cancelled { .. })) => {}
            other => panic!("expected typed cancellation, got {other:?}"),
        }
    }
    let stats = svc.health().stats;
    assert_eq!(stats.cancelled, 50);
    assert_ledger(&stats);
    assert_eq!(svc.metrics().steps, 0, "cancelled-in-queue ran no steps");

    // The storm left no residue: a fresh request is served normally.
    let t = svc
        .submit(Request::new(
            "storm",
            999,
            Workload::Hull2d {
                points: points2(&mut rng, 32),
                algo: Hull2dAlgo::Unsorted,
            },
        ))
        .unwrap();
    svc.drain();
    t.wait().expect("service serves after the storm");
    assert_ledger(&svc.health().stats);
}

/// A deadline short enough to expire during the simulation: the machine
/// aborts cooperatively (within one step of expiry), the error is typed,
/// and the partial run's metrics still reach the service aggregate.
#[test]
fn deadline_expiring_mid_run_is_typed_and_keeps_partial_metrics() {
    let svc = Service::new(ServiceConfig {
        workers: 0,
        ..ServiceConfig::default()
    });
    let mut rng = 0xDEAD_11E4_0000_0005u64;
    let mut req = Request::new(
        "acme",
        7,
        Workload::Hull2d {
            points: points2(&mut rng, 120_000),
            algo: Hull2dAlgo::Unsorted,
        },
    );
    // Far too short for 120k points, but long enough to survive the queue
    // (drained immediately below), so the expiry lands mid-simulation.
    req.deadline = Some(Duration::from_millis(2));
    let t = svc.submit(req).unwrap();
    svc.drain();
    match t.wait() {
        Err(ServiceError::Run(RunError::DeadlineExceeded { algorithm })) => {
            assert_eq!(algorithm, "hull2d/unsorted");
            assert_eq!(svc.health().stats.deadline_exceeded, 1);
            // If the expiry landed after the first simulated step (the
            // common case at this input size), the aborted run's partial
            // metrics must have reached the aggregate. The step-boundary
            // abort-with-intact-metrics guarantee itself is proven
            // deterministically in ipch-pram's cancel and supervise tests;
            // this exercises it through the whole service stack.
            let m = svc.metrics();
            if m.steps > 0 {
                assert!(m.work > 0, "partial metrics absorbed with the steps");
            }
        }
        // On a pathologically slow host the deadline can lapse before the
        // drain dequeues the job; that is the (equally typed) queue-shed
        // path.
        Err(ServiceError::Rejected {
            reason: RejectReason::Expired,
            ..
        }) => assert_eq!(svc.health().stats.shed_expired, 1),
        other => panic!("expected a typed deadline outcome, got {other:?}"),
    }
    assert_ledger(&svc.health().stats);
}
