//! Batch-admission and shard-split equivalence suite for `ipch-service`.
//!
//! The contract under test: batching and sharding are *transparent*
//! admission/execution strategies. A fused batch member or a shard-split
//! request must return exactly the value (and pass exactly the
//! certificate) that the same request would produce served alone — and a
//! misbehaving batch member (malformed, cancelled, fault-poisoned) must
//! resolve typed without poisoning its siblings or the resolution ledger.
//!
//! Everything runs in deterministic single-threaded mode (`workers: 0` +
//! `drain`) on pinned seeds, so batch composition is reproducible.

use ipch_geom::{Point2, UpperHull};
use ipch_hull2d::seq::{monotone, SeqStats};
use ipch_hull2d::verify_upper_hull;
use ipch_pram::{FaultPlan, Outcome, RunError, ServiceStats};
use ipch_service::{
    Hull2dAlgo, Request, Response, ResponseValue, Service, ServiceConfig, ServiceError, Ticket,
    Workload,
};

/// SplitMix64 — the suite's own pinned-seed stream.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn points2(rng: &mut u64, n: usize) -> Vec<Point2> {
    (0..n)
        .map(|_| Point2 {
            x: (mix(rng) >> 11) as f64 / (1u64 << 53) as f64,
            y: (mix(rng) >> 11) as f64 / (1u64 << 53) as f64,
        })
        .collect()
}

fn req2(tenant: &str, seed: u64, points: Vec<Point2>) -> Request {
    Request::new(
        tenant,
        seed,
        Workload::Hull2d {
            points,
            algo: Hull2dAlgo::Unsorted,
        },
    )
}

fn assert_ledger(stats: &ServiceStats) {
    assert_eq!(
        stats.submitted,
        stats.total_resolved(),
        "a request was lost or double-counted: {stats:?}"
    );
}

/// External re-check of a served hull: certificate against the request's
/// own input, then bit-equality with the sequential oracle.
fn check_hull(points: &[Point2], resp: &Response) -> UpperHull {
    let ResponseValue::Hull2d(hull) = &resp.value else {
        panic!("expected a 2-D hull response");
    };
    verify_upper_hull(points, hull).expect("response certificate");
    let mut stats = SeqStats::default();
    let oracle = monotone::upper_hull(points, &mut stats);
    assert_eq!(hull.vertices, oracle.vertices, "disagrees with the oracle");
    hull.clone()
}

/// Serve the same pinned-seed request set batched and unbatched; the
/// responses must be **bit-identical** (values and certificate-relevant
/// fields), because a certified upper hull is unique.
#[test]
fn batched_results_are_bit_identical_to_unbatched() {
    let serve = |batch_window: usize| -> (Vec<(Vec<Point2>, Response)>, ServiceStats) {
        let svc = Service::new(ServiceConfig {
            workers: 0,
            batch_window,
            batch_max: 8,
            queue_capacity: 64,
            per_tenant_inflight: 64,
            ..ServiceConfig::default()
        });
        let mut rng = 0xB17E_0001u64;
        let mut inputs = Vec::new();
        let mut tickets = Vec::new();
        for i in 0..24u64 {
            let n = 8 + (mix(&mut rng) % 80) as usize;
            let pts = points2(&mut rng, n);
            let tenant = if i.is_multiple_of(3) {
                "acme"
            } else {
                "globex"
            };
            tickets.push(svc.submit(req2(tenant, i, pts.clone())).unwrap());
            inputs.push(pts);
        }
        svc.drain();
        let served = inputs
            .into_iter()
            .zip(tickets)
            .map(|(pts, t)| (pts, t.wait().expect("clean member completes")))
            .collect();
        (served, svc.health().stats)
    };

    let (solo, solo_stats) = serve(0);
    let (fused, fused_stats) = serve(16);
    assert_eq!(solo_stats.batches_formed, 0);
    assert!(
        fused_stats.batches_formed > 0,
        "the batched run never fused: {fused_stats:?}"
    );
    assert!(fused_stats.batch_members > 0);
    assert_ledger(&solo_stats);
    assert_ledger(&fused_stats);

    for ((pts_a, a), (pts_b, b)) in solo.iter().zip(&fused) {
        assert_eq!(pts_a, pts_b, "pinned streams diverged");
        let ha = check_hull(pts_a, a);
        let hb = check_hull(pts_b, b);
        assert_eq!(ha, hb, "batched hull differs from unbatched");
        assert_eq!(a.value, b.value, "response values are bit-identical");
        assert_eq!(a.tier, b.tier);
    }
}

/// One malformed member inside a fused batch: it resolves as a typed
/// `InvalidInput` while every sibling completes certified and
/// oracle-correct, and the ledger still balances.
#[test]
fn invalid_member_does_not_poison_batch_siblings() {
    let svc = Service::new(ServiceConfig {
        workers: 0,
        batch_window: 16,
        batch_max: 8,
        queue_capacity: 64,
        per_tenant_inflight: 64,
        ..ServiceConfig::default()
    });
    let mut rng = 0xB17E_0002u64;
    let mut flights: Vec<(Vec<Point2>, Ticket, bool)> = Vec::new();
    for i in 0..8u64 {
        let mut pts = points2(&mut rng, 32);
        let malformed = i == 3;
        if malformed {
            pts[5].y = f64::NAN;
        }
        let t = svc.submit(req2("acme", i, pts.clone())).unwrap();
        flights.push((pts, t, malformed));
    }
    svc.drain();
    for (pts, t, malformed) in flights {
        match t.wait() {
            Ok(resp) => {
                assert!(!malformed, "malformed member served as a value");
                check_hull(&pts, &resp);
                assert_eq!(resp.outcome, Some(Outcome::FirstTry));
            }
            Err(ServiceError::Run(RunError::InvalidInput { .. })) => {
                assert!(malformed, "clean member rejected")
            }
            other => panic!("unexpected resolution: {other:?}"),
        }
    }
    let stats = svc.health().stats;
    assert_eq!(stats.completed, 7);
    assert_eq!(stats.invalid_inputs, 1);
    assert_eq!(stats.batches_formed, 1);
    assert_eq!(stats.batch_members, 8);
    assert_ledger(&stats);
}

/// One member cancelled while queued inside a would-be batch: the
/// cancellation is typed, the siblings fuse and complete.
#[test]
fn cancelled_member_does_not_poison_batch_siblings() {
    let svc = Service::new(ServiceConfig {
        workers: 0,
        batch_window: 16,
        batch_max: 8,
        queue_capacity: 64,
        per_tenant_inflight: 64,
        ..ServiceConfig::default()
    });
    let mut rng = 0xB17E_0003u64;
    let flights: Vec<(Vec<Point2>, Ticket)> = (0..6u64)
        .map(|i| {
            let pts = points2(&mut rng, 40);
            let t = svc.submit(req2("acme", i, pts.clone())).unwrap();
            (pts, t)
        })
        .collect();
    flights[2].1.cancel();
    svc.drain();
    for (i, (pts, t)) in flights.into_iter().enumerate() {
        match t.wait() {
            Ok(resp) => {
                assert_ne!(i, 2);
                check_hull(&pts, &resp);
            }
            Err(ServiceError::Run(RunError::Cancelled { .. })) => assert_eq!(i, 2),
            other => panic!("member {i}: unexpected resolution {other:?}"),
        }
    }
    let stats = svc.health().stats;
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.cancelled, 1);
    assert_ledger(&stats);
}

/// A fault-poisoned request mixed into batchable traffic: chaos carriers
/// are never batch-eligible, so the poisoned request runs solo (and may
/// retry or fall back) while its clean neighbours fuse — nothing leaks
/// across, and every request resolves.
#[test]
fn fault_poisoned_member_runs_solo_while_siblings_fuse() {
    let svc = Service::new(ServiceConfig {
        workers: 0,
        batch_window: 16,
        batch_max: 8,
        queue_capacity: 64,
        per_tenant_inflight: 64,
        ..ServiceConfig::default()
    });
    let mut rng = 0xB17E_0004u64;
    let mut flights: Vec<(Vec<Point2>, Ticket, bool)> = Vec::new();
    for i in 0..7u64 {
        let pts = points2(&mut rng, 48);
        let poisoned = i == 4;
        let mut req = req2("acme", i, pts.clone());
        if poisoned {
            req.chaos = Some(FaultPlan {
                corrupt_rate: 0.9,
                ..FaultPlan::default()
            });
        }
        let t = svc.submit(req).unwrap();
        flights.push((pts, t, poisoned));
    }
    svc.drain();
    for (pts, t, poisoned) in flights {
        // Under supervision even the poisoned run must end in a certified
        // value (retry or host fallback) or a typed error — never a panic.
        match t.wait() {
            Ok(resp) => {
                check_hull(&pts, &resp);
                if !poisoned {
                    assert_eq!(resp.outcome, Some(Outcome::FirstTry));
                }
            }
            Err(ServiceError::Run(e)) => {
                assert!(poisoned, "clean member failed: {e}");
            }
            other => panic!("unexpected resolution: {other:?}"),
        }
    }
    let stats = svc.health().stats;
    assert_eq!(stats.batches_formed, 1);
    assert_eq!(stats.batch_members, 6, "the chaos carrier stayed solo");
    assert_ledger(&stats);
}

/// A request above the split threshold is shard-split and merged; the
/// result is bit-identical to the unsplit run of the same request, and
/// the shard counters land in the service ledger.
#[test]
fn shard_split_is_bit_identical_to_unsplit() {
    let mut rng = 0xB17E_0005u64;
    let pts = points2(&mut rng, 2500);

    let serve = |split_threshold: Option<usize>| -> (Response, ServiceStats) {
        let svc = Service::new(ServiceConfig {
            workers: 0,
            shards: 4,
            split_threshold,
            ..ServiceConfig::default()
        });
        let t = svc.submit(req2("acme", 42, pts.clone())).unwrap();
        svc.drain();
        (t.wait().expect("request completes"), svc.health().stats)
    };

    let (split, split_stats) = serve(Some(1000));
    let (solo, solo_stats) = serve(None);
    assert_eq!(split_stats.shard_splits, 1);
    assert_eq!(split_stats.shard_merge_failures, 0);
    assert_eq!(solo_stats.shard_splits, 0);
    assert_ledger(&split_stats);
    assert_ledger(&solo_stats);

    let hs = check_hull(&pts, &split);
    let hu = check_hull(&pts, &solo);
    assert_eq!(hs, hu, "sharded hull differs from unsharded");
    assert_eq!(split.value, solo.value);
    assert_eq!(split.outcome, Some(Outcome::FirstTry));
}

/// Ledger regression under sustained batched traffic: several drained
/// waves of mixed eligible/ineligible requests keep
/// `submitted == total_resolved` at every quiescent point.
#[test]
fn resolution_ledger_holds_under_batched_waves() {
    let svc = Service::new(ServiceConfig {
        workers: 0,
        shards: 2,
        batch_window: 8,
        batch_max: 4,
        queue_capacity: 32,
        per_tenant_inflight: 32,
        ..ServiceConfig::default()
    });
    let mut rng = 0xB17E_0006u64;
    let tenants = ["alpha", "beta", "gamma"];
    let mut completed = 0u64;
    for wave in 0..5u64 {
        let mut tickets = Vec::new();
        for i in 0..12u64 {
            let r = mix(&mut rng);
            // a third of the traffic is too big to batch, the rest fuses
            let n = if r.is_multiple_of(3) {
                200
            } else {
                16 + (r % 64) as usize
            };
            let pts = points2(&mut rng, n);
            let req = req2(tenants[(wave + i) as usize % tenants.len()], r, pts);
            tickets.push(svc.submit(req).unwrap());
        }
        svc.drain();
        for t in tickets {
            t.wait().expect("clean traffic completes");
            completed += 1;
        }
        assert_ledger(&svc.health().stats);
    }
    let stats = svc.health().stats;
    assert_eq!(stats.completed, completed);
    assert!(stats.batches_formed >= 5, "every wave had fusible runs");
    assert!(stats.batch_members >= 2 * stats.batches_formed);
    assert!(stats.batch_members <= stats.completed);
}
