//! The analyzer acceptance suite: every paper algorithm runs under the
//! dynamic concurrency analyzer ([`ipch_pram::analyze`]) with shadow-init
//! tracking, at a small and a large input size, and must produce a report
//! with
//!
//! * zero violations against its declared [`ModelContract`] (in
//!   particular: no tiebreak-seed-dependent memory, no unconfirmed
//!   `Arbitrary` races, no uninitialised reads, no access errors),
//! * the model class its entry point declares (the paper's machine for
//!   that algorithm: EREW for the divide-and-conquer baseline, CRCW for
//!   everything else).
//!
//! Superlinear-work algorithms (the Θ(n³)/Θ(n⁴) brute-force oracles) run
//! at proportionally scaled sizes so the traced-event volume stays
//! test-suite sized; every other algorithm runs at n = 256 and n = 4096.
//!
//! A second half sweeps the write-policy taxonomy on primitive conflicting
//! steps: each policy's races must land in exactly the expected bucket of
//! the race census, for the generic and the fused-kernel path alike.

use ipch_geom::generators as g2;
use ipch_geom::point::sorted_by_x;
use ipch_hull2d::parallel::{brute, dac, folklore, logstar, presorted, unsorted};
use ipch_pram::{
    AnalyzeConfig, Machine, ModelClass, ModelContract, RaceExpectation, Shm, WritePolicy, EMPTY,
};

fn analyzed(seed: u64) -> (Machine, Shm) {
    let mut m = Machine::new(seed);
    m.enable_analysis(AnalyzeConfig::default());
    let mut shm = Shm::new();
    shm.enable_shadow(true);
    (m, shm)
}

/// The suite's acceptance predicate: contract declared and satisfied,
/// expected machine class, and none of the hard violation classes.
fn check(label: &str, m: &Machine, algorithm: &str, class: ModelClass) {
    let r = m
        .analysis_report()
        .unwrap_or_else(|| panic!("{label}: no report"));
    let c = r
        .contract
        .unwrap_or_else(|| panic!("{label}: entry point declared no contract"));
    assert_eq!(c.algorithm, algorithm, "{label}: wrong contract");
    assert_eq!(c.class, class, "{label}: contract class drifted");
    // The contract class is an upper bound: a lucky run may avoid every
    // concurrent access (observe a weaker class), but never need a
    // stronger machine than declared.
    assert!(r.class <= class, "{label}: observed class {}", r.class);
    assert!(r.is_clean(), "{label}:\n{}", r.render());
    assert_eq!(r.seed_dependent_races, 0, "{label}: seed-dependent memory");
    assert_eq!(r.unconfirmed_arbitrary_races, 0, "{label}");
    assert_eq!(r.uninit_reads, 0, "{label}: uninitialised reads");
    assert!(r.steps_analyzed > 0, "{label}: nothing traced");
}

// ---------------------------------------------------------------------------
// 2-D hull algorithms
// ---------------------------------------------------------------------------

#[test]
fn hull2d_brute_clean() {
    // Θ(n³) work: scaled sizes.
    for (seed, n) in [(1u64, 64usize), (2, 256)] {
        let pts = g2::uniform_disk(n, seed);
        let ids: Vec<usize> = (0..n).collect();
        let (mut m, mut shm) = analyzed(seed);
        brute::upper_hull_brute(&mut m, &mut shm, &pts, &ids);
        check("hull2d/brute", &m, "hull2d/brute", ModelClass::Crcw);
    }
}

#[test]
fn hull2d_folklore_clean() {
    for (seed, n) in [(3u64, 256usize), (4, 4096)] {
        let pts = sorted_by_x(&g2::uniform_disk(n, seed));
        let ids: Vec<usize> = (0..pts.len()).collect();
        let (mut m, mut shm) = analyzed(seed);
        folklore::upper_hull_folklore(&mut m, &mut shm, &pts, &ids, 3);
        check("hull2d/folklore", &m, "hull2d/folklore", ModelClass::Crcw);
    }
}

#[test]
fn hull2d_presorted_clean() {
    for (seed, n) in [(5u64, 256usize), (6, 4096)] {
        let pts = sorted_by_x(&g2::uniform_disk(n, seed));
        let (mut m, mut shm) = analyzed(seed);
        presorted::upper_hull_presorted(&mut m, &mut shm, &pts, &Default::default());
        check("hull2d/presorted", &m, "hull2d/presorted", ModelClass::Crcw);
    }
}

#[test]
fn hull2d_logstar_clean() {
    for (seed, n) in [(7u64, 256usize), (8, 4096)] {
        let pts = sorted_by_x(&g2::uniform_disk(n, seed));
        let (mut m, mut shm) = analyzed(seed);
        logstar::upper_hull_logstar(&mut m, &mut shm, &pts, &Default::default()).unwrap();
        check("hull2d/logstar", &m, "hull2d/logstar", ModelClass::Crcw);
    }
}

#[test]
fn hull2d_unsorted_clean() {
    for (seed, n) in [(9u64, 256usize), (10, 4096)] {
        let pts = g2::uniform_disk(n, seed);
        let (mut m, mut shm) = analyzed(seed);
        unsorted::upper_hull_unsorted(&mut m, &mut shm, &pts, &Default::default());
        check("hull2d/unsorted", &m, "hull2d/unsorted", ModelClass::Crcw);
    }
}

#[test]
fn hull2d_dac_is_erew() {
    for (seed, n) in [(11u64, 256usize), (12, 4096)] {
        let pts = g2::uniform_disk(n, seed);
        let (mut m, mut shm) = analyzed(seed);
        dac::upper_hull_dac(&mut m, &mut shm, &pts, false);
        let r = m.analysis_report().unwrap();
        assert_eq!(r.total_races(), 0, "EREW algorithm raced:\n{}", r.render());
        check("hull2d/dac", &m, "hull2d/dac", ModelClass::Erew);
    }
}

// ---------------------------------------------------------------------------
// 3-D hull algorithms
// ---------------------------------------------------------------------------

#[test]
fn hull3d_find_facet_clean() {
    use ipch_hull3d::parallel::probe;
    for (seed, n) in [(13u64, 256usize), (14, 4096)] {
        let pts = ipch_geom::gen3d::in_ball(n, seed);
        let active: Vec<usize> = (0..n).collect();
        let (mut m, mut shm) = analyzed(seed);
        probe::find_facet_inplace(
            &mut m,
            &mut shm,
            &pts,
            &active,
            0.01,
            0.02,
            &probe::FpConfig::default(),
        );
        check(
            "hull3d/find_facet",
            &m,
            "hull3d/find_facet",
            ModelClass::Crcw,
        );
    }
}

#[test]
fn hull3d_unsorted3d_clean() {
    use ipch_hull3d::parallel::unsorted3d;
    // The full 3-D algorithm probes Θ(hull-size) facets; 4096 points under
    // full tracing is minutes of host time, so the large size is 1024.
    for (seed, n) in [(15u64, 256usize), (16, 1024)] {
        let pts = ipch_geom::gen3d::in_ball(n, seed);
        let (mut m, mut shm) = analyzed(seed);
        unsorted3d::upper_hull3_unsorted(&mut m, &mut shm, &pts, &Default::default());
        check(
            "hull3d/unsorted3d",
            &m,
            "hull3d/unsorted3d",
            ModelClass::Crcw,
        );
    }
}

// ---------------------------------------------------------------------------
// Linear programming
// ---------------------------------------------------------------------------

#[test]
fn lp_brute2_clean() {
    use ipch_lp::brute::solve_lp2_brute;
    // Θ(n³) work: scaled sizes.
    for (seed, n) in [(17u64, 64usize), (18, 256)] {
        let pts = g2::uniform_disk(512, seed);
        let active: Vec<usize> = (0..n).collect();
        let cons = ipch_lp::bridge::bridge_lp_constraints(&pts, &active);
        let obj = ipch_lp::bridge::bridge_lp_objective(0.0);
        let (mut m, mut shm) = analyzed(seed);
        solve_lp2_brute(&mut m, &mut shm, &cons, &obj);
        check("lp/brute2", &m, "lp/brute2", ModelClass::Crcw);
    }
}

#[test]
fn lp_brute3_clean() {
    use ipch_lp::constraint::Halfspace;
    use ipch_lp::lp3d::{solve_lp3_brute, Objective3};
    // Θ(n⁴) work: scaled sizes. Tangent planes of the unit sphere bound
    // the instance in every direction.
    for (seed, n) in [(19u64, 16usize), (20, 40)] {
        let cons: Vec<Halfspace> = (0..n)
            .map(|i| {
                let t = std::f64::consts::TAU * i as f64 / n as f64;
                let ph = std::f64::consts::PI * (i as f64 + 0.5) / n as f64;
                let (a, b, c) = (ph.sin() * t.cos(), ph.sin() * t.sin(), ph.cos());
                Halfspace { a, b, c, d: -1.0 }
            })
            .collect();
        let obj = Objective3 {
            cx: 0.3,
            cy: -0.2,
            cz: 1.0,
        };
        let (mut m, mut shm) = analyzed(seed);
        solve_lp3_brute(&mut m, &mut shm, &cons, &obj);
        check("lp/brute3", &m, "lp/brute3", ModelClass::Crcw);
    }
}

#[test]
fn lp_alon_megiddo_clean() {
    use ipch_lp::alon_megiddo::{solve_lp2_am, AmConfig};
    for (seed, n) in [(21u64, 256usize), (22, 4096)] {
        let pts = g2::uniform_disk(n, seed);
        let active: Vec<usize> = (0..n).collect();
        let cons = ipch_lp::bridge::bridge_lp_constraints(&pts, &active);
        let obj = ipch_lp::bridge::bridge_lp_objective(0.0);
        let (mut m, mut shm) = analyzed(seed);
        solve_lp2_am(&mut m, &mut shm, &cons, &obj, &AmConfig::default());
        check("lp/alon_megiddo", &m, "lp/alon_megiddo", ModelClass::Crcw);
    }
}

#[test]
fn lp_inplace_bridge_clean() {
    use ipch_lp::inplace_bridge::{find_bridge_inplace_traced, IbConfig};
    for (seed, n) in [(23u64, 256usize), (24, 4096)] {
        let pts = g2::uniform_disk(n, seed);
        let active: Vec<usize> = (0..n).collect();
        let (mut m, mut shm) = analyzed(seed);
        find_bridge_inplace_traced(&mut m, &mut shm, &pts, &active, 0.0, &IbConfig::default());
        check(
            "lp/inplace_bridge",
            &m,
            "lp/inplace_bridge",
            ModelClass::Crcw,
        );
    }
}

// ---------------------------------------------------------------------------
// In-place toolbox
// ---------------------------------------------------------------------------

#[test]
fn inplace_sample_clean() {
    use ipch_inplace::sample::random_sample;
    for (seed, n) in [(25u64, 256usize), (26, 4096)] {
        let active: Vec<usize> = (0..n).filter(|i| i % 3 == 0).collect();
        let (mut m, mut shm) = analyzed(seed);
        random_sample(&mut m, &mut shm, &active, n, 8, 4);
        check("inplace/sample", &m, "inplace/sample", ModelClass::Crcw);
    }
}

#[test]
fn inplace_vote_clean() {
    use ipch_inplace::vote::random_vote;
    for (seed, n) in [(27u64, 256usize), (28, 4096)] {
        let active: Vec<usize> = (0..n).filter(|i| i % 3 == 0).collect();
        let (mut m, mut shm) = analyzed(seed);
        random_vote(&mut m, &mut shm, &active, n, 8, 4);
        check("inplace/vote", &m, "inplace/vote", ModelClass::Crcw);
    }
}

#[test]
fn inplace_compact_clean() {
    use ipch_inplace::compact::inplace_compact;
    for (seed, n) in [(29u64, 256usize), (30, 4096)] {
        let (mut m, mut shm) = analyzed(seed);
        let src = shm.alloc("src", n, EMPTY);
        for (j, i) in (0..n).step_by(n / 16).enumerate() {
            shm.host_set(src, i, j as i64);
        }
        inplace_compact(&mut m, &mut shm, src, 24, 0.25);
        check("inplace/compact", &m, "inplace/compact", ModelClass::Crcw);
    }
}

#[test]
fn inplace_ragde_det_clean() {
    use ipch_inplace::ragde::ragde_compact_det;
    for (seed, n) in [(31u64, 256usize), (32, 4096)] {
        let (mut m, mut shm) = analyzed(seed);
        let src = shm.alloc("src", n, EMPTY);
        for (j, i) in (0..n).step_by(n / 8).enumerate() {
            shm.host_set(src, i, j as i64);
        }
        ragde_compact_det(&mut m, &mut shm, src, 8);
        check(
            "inplace/ragde_det",
            &m,
            "inplace/ragde_det",
            ModelClass::Crcw,
        );
    }
}

#[test]
fn inplace_ragde_rand_clean() {
    use ipch_inplace::ragde::ragde_compact_rand;
    for (seed, n) in [(33u64, 256usize), (34, 4096)] {
        let (mut m, mut shm) = analyzed(seed);
        let src = shm.alloc("src", n, EMPTY);
        for (j, i) in (0..n).step_by(n / 8).enumerate() {
            shm.host_set(src, i, j as i64);
        }
        ragde_compact_rand(&mut m, &mut shm, src, 8, 8);
        check(
            "inplace/ragde_rand",
            &m,
            "inplace/ragde_rand",
            ModelClass::Crcw,
        );
    }
}

// ---------------------------------------------------------------------------
// Write-policy taxonomy sweep: a conflicting scatter under every policy,
// on the generic path and the fused-kernel path, must land its races in
// exactly the expected census bucket.
// ---------------------------------------------------------------------------

/// Expected census bucket for a policy resolving *distinct* values.
fn expectation_for(policy: WritePolicy) -> RaceExpectation {
    match policy {
        WritePolicy::Arbitrary => RaceExpectation::SeedDependent,
        _ => RaceExpectation::Deterministic,
    }
}

const ALL_POLICIES: [WritePolicy; 6] = [
    WritePolicy::Arbitrary,
    WritePolicy::PriorityMin,
    WritePolicy::CombineMin,
    WritePolicy::CombineMax,
    WritePolicy::CombineSum,
    WritePolicy::CombineOr,
];

#[test]
fn policy_sweep_distinct_values() {
    for &policy in &ALL_POLICIES {
        let contract = ModelContract {
            algorithm: "sweep/distinct",
            class: ModelClass::Crcw,
            races: expectation_for(policy),
        };
        // generic step
        let (mut m, mut shm) = analyzed(40);
        m.declare_contract(&contract);
        let a = shm.alloc("a", 8, 0);
        m.step_with_policy(&mut shm, 0..64, policy, move |ctx| {
            let pid = ctx.pid;
            ctx.write(a, pid % 8, pid as i64 + 1);
        });
        let r = m.analysis_report().unwrap();
        assert!(r.is_clean(), "{policy:?} generic:\n{}", r.render());
        assert_eq!(r.class, ModelClass::Crcw, "{policy:?}");
        let contended = match policy {
            WritePolicy::Arbitrary => r.seed_dependent_races + r.unconfirmed_arbitrary_races,
            _ => r.deterministic_races,
        };
        assert_eq!(contended, 8, "{policy:?}: race census off:\n{}", r.render());

        // fused kernel path, same shape
        let (mut m, mut shm) = analyzed(41);
        m.declare_contract(&contract);
        let a = shm.alloc("a", 8, 0);
        m.kernel_scatter_with_policy(&mut shm, 0..64, policy, move |_, pid| {
            Some((a, pid % 8, pid as i64 + 1))
        });
        let r = m.analysis_report().unwrap();
        assert!(r.is_clean(), "{policy:?} kernel:\n{}", r.render());
        let contended = match policy {
            WritePolicy::Arbitrary => r.seed_dependent_races + r.unconfirmed_arbitrary_races,
            _ => r.deterministic_races,
        };
        assert_eq!(contended, 8, "{policy:?} kernel:\n{}", r.render());
    }
}

#[test]
fn policy_sweep_agreeing_values() {
    // When every contender writes the same value the race is benign under
    // every policy — a SameValue contract must hold even for Arbitrary.
    for &policy in &ALL_POLICIES {
        let contract = ModelContract {
            algorithm: "sweep/agree",
            class: ModelClass::Crcw,
            races: RaceExpectation::SameValue,
        };
        let (mut m, mut shm) = analyzed(42);
        m.declare_contract(&contract);
        let a = shm.alloc("a", 4, 0);
        m.step_with_policy(&mut shm, 0..32, policy, move |ctx| {
            ctx.write(a, ctx.pid % 4, 7);
        });
        let r = m.analysis_report().unwrap();
        assert!(r.is_clean(), "{policy:?} agree:\n{}", r.render());
        assert_eq!(r.benign_races, 4, "{policy:?}:\n{}", r.render());
        assert_eq!(r.seed_dependent_races, 0, "{policy:?}");
    }
}

#[test]
fn seed_dependence_is_caught() {
    // The negative control: distinct values under Arbitrary violate a
    // Deterministic contract — the analyzer must flag it, not excuse it.
    let contract = ModelContract {
        algorithm: "sweep/negative",
        class: ModelClass::Crcw,
        races: RaceExpectation::Deterministic,
    };
    let (mut m, mut shm) = analyzed(43);
    m.declare_contract(&contract);
    let a = shm.alloc("a", 2, 0);
    m.step(&mut shm, 0..64, move |ctx| {
        let pid = ctx.pid;
        ctx.write(a, pid % 2, pid as i64 + 1);
    });
    let r = m.analysis_report().unwrap();
    assert!(!r.is_clean(), "arbitrary races must violate Deterministic");
    assert!(r.seed_dependent_races + r.unconfirmed_arbitrary_races > 0);
}
