//! Execution-path equivalence: the machine's observable behaviour — final
//! memory AND the PRAM/observability accounting — must be a pure function
//! of (seed, program), identical across every host execution mode:
//!
//! * sequential vs pool-parallel compute,
//! * conflict-free fast-path vs sorted slow-path commits,
//! * parallel vs sequential sort/resolve in the slow path.
//!
//! Random step programs cover every [`WritePolicy`], in-order and reversed
//! scatters (fast vs slow path triggers), conflict pile-ups, RNG-driven
//! targets, and duplicate writes from one processor.

use proptest::collection::vec;
use proptest::prelude::*;

use ipch_pram::{
    AnalysisReport, AnalyzeConfig, KernelBackend, Machine, ReduceOp, Shm, Tuning, Word, WritePolicy,
};

const POLICIES: [WritePolicy; 6] = [
    WritePolicy::Arbitrary,
    WritePolicy::PriorityMin,
    WritePolicy::CombineMin,
    WritePolicy::CombineMax,
    WritePolicy::CombineSum,
    WritePolicy::CombineOr,
];

/// One randomly generated step: processor count, conflict-resolution rule,
/// write pattern, and a pattern parameter.
#[derive(Clone, Copy, Debug)]
struct StepSpec {
    nprocs: usize,
    policy: WritePolicy,
    pattern: u8,
    param: u64,
}

/// Everything observable about a run (minus host wall-clock and the
/// fast-path counter, which legitimately differ across modes). The
/// analyzer's report is part of the observable surface: classification,
/// race census, and the rendered violation list must not depend on how the
/// host happened to execute the step (threads, chunking, kernel fusion).
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    memory: Vec<Vec<Word>>,
    steps: u64,
    work: u64,
    peak: u64,
    writes_buffered: u64,
    writes_committed: u64,
    write_conflicts: u64,
    analysis: Option<Box<AnalysisReport>>,
}

fn run_program(tuning: Tuning, lens: &[usize], program: &[StepSpec]) -> Observed {
    let mut m = Machine::new(0xA11CE);
    m.tuning = tuning;
    m.enable_analysis(AnalyzeConfig::default());
    let mut shm = Shm::new();
    shm.enable_shadow(true);
    let arrays: Vec<_> = lens
        .iter()
        .enumerate()
        .map(|(i, &len)| shm.alloc(format!("a{i}"), len, 0))
        .collect();

    for spec in program {
        let a0 = arrays[0];
        let a1 = arrays[spec.param as usize % arrays.len()];
        let len0 = shm.len(a0);
        let len1 = shm.len(a1);
        let (pattern, param) = (spec.pattern, spec.param);
        m.step_with_policy(&mut shm, 0..spec.nprocs, spec.policy, move |ctx| {
            let pid = ctx.pid;
            match pattern {
                // in-order scatter — the fast-path shape (when nprocs <= len0)
                0 => ctx.write(a0, pid % len0, pid as Word),
                // reversed scatter — conflict-free but out of order
                1 => ctx.write(a0, len0 - 1 - (pid % len0), pid as Word),
                // conflict pile-up on a handful of cells
                2 => ctx.write(a0, (pid.wrapping_mul(param as usize)) % len0.min(7), 1),
                // RNG-driven target (exercises the lazy per-pid stream)
                3 => {
                    let i = ctx.rng().next_below(len1 as u64) as usize;
                    ctx.write(a1, i, pid as Word + 1);
                }
                // duplicate writes from one processor to one cell
                4 => {
                    ctx.write(a1, pid % len1, 5);
                    ctx.write(a1, pid % len1, pid as Word);
                }
                // read-only step (commit sees an empty log)
                _ => {
                    let row = ctx.slice(a0);
                    let _ = std::hint::black_box(row[pid % len0]);
                }
            }
        });
    }

    Observed {
        memory: arrays.iter().map(|&a| shm.slice(a).to_vec()).collect(),
        steps: m.metrics.steps,
        work: m.metrics.work,
        peak: m.metrics.peak_processors,
        writes_buffered: m.metrics.writes_buffered,
        writes_committed: m.metrics.writes_committed,
        write_conflicts: m.metrics.write_conflicts,
        analysis: m.metrics.analysis.clone(),
    }
}

fn step_spec() -> impl Strategy<Value = StepSpec> {
    (1usize..3000, 0usize..6, 0u8..6, 1u64..64).prop_map(|(nprocs, pol, pattern, param)| StepSpec {
        nprocs,
        policy: POLICIES[pol],
        pattern,
        param,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_execution_paths_are_equivalent(
        lens in vec(1usize..300, 1..4),
        program in vec(step_spec(), 1..6),
    ) {
        let base = run_program(
            Tuning { force_sequential: true, ..Tuning::default() },
            &lens,
            &program,
        );
        let auto = run_program(Tuning::default(), &lens, &program);
        let parallel = run_program(
            Tuning { force_parallel: true, ..Tuning::default() },
            &lens,
            &program,
        );
        let slow_only = run_program(
            Tuning { disable_fast_path: true, ..Tuning::default() },
            &lens,
            &program,
        );
        let parallel_slow = run_program(
            Tuning { force_parallel: true, disable_fast_path: true, ..Tuning::default() },
            &lens,
            &program,
        );
        prop_assert_eq!(&base, &auto, "auto-threshold diverged");
        prop_assert_eq!(&base, &parallel, "parallel compute/commit diverged");
        prop_assert_eq!(&base, &slow_only, "sorted slow path diverged");
        prop_assert_eq!(&base, &parallel_slow, "parallel slow path diverged");
    }

    #[test]
    fn replay_is_bit_identical(
        lens in vec(1usize..200, 1..3),
        program in vec(step_spec(), 1..5),
    ) {
        let a = run_program(Tuning::default(), &lens, &program);
        let b = run_program(Tuning::default(), &lens, &program);
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Kernel/generic equivalence: every fused kernel shape must be observably
// identical — final memory AND steps/work/write/conflict metrics — to the
// generic step path it replaces (`Tuning::disable_kernels`), under every
// write policy / reduce op and both sequential and parallel execution.
// ---------------------------------------------------------------------------

const REDUCE_OPS: [ReduceOp; 5] = [
    ReduceOp::Or,
    ReduceOp::Sum,
    ReduceOp::Min,
    ReduceOp::Max,
    ReduceOp::First,
];

/// One randomly generated kernel invocation.
#[derive(Clone, Copy, Debug)]
struct KernelSpec {
    /// 0 = map, 1 = permute, 2 = scatter, 3 = reduce.
    shape: u8,
    nprocs: usize,
    /// Scatter conflict rule.
    policy: WritePolicy,
    /// Reduce combining rule.
    op: ReduceOp,
    param: u64,
}

fn kernel_spec() -> impl Strategy<Value = KernelSpec> {
    (0u8..4, 1usize..3000, 0usize..6, 0usize..5, 1u64..64).prop_map(
        |(shape, nprocs, pol, op, param)| KernelSpec {
            shape,
            nprocs,
            policy: POLICIES[pol],
            op: REDUCE_OPS[op],
            param,
        },
    )
}

fn run_kernel_program(tuning: Tuning, lens: &[usize], program: &[KernelSpec]) -> Observed {
    let mut m = Machine::new(0xB0B);
    m.tuning = tuning;
    m.enable_analysis(AnalyzeConfig::default());
    let mut shm = Shm::new();
    shm.enable_shadow(true);
    let arrays: Vec<_> = lens
        .iter()
        .enumerate()
        .map(|(i, &len)| shm.alloc(format!("a{i}"), len, 0))
        .collect();
    // map/permute output (pid-indexed, so sized to the largest pid set) and
    // the reduce target cell
    let out = shm.alloc("out", 20_000, 0);
    let cell = shm.alloc("cell", 1, 0);

    for spec in program {
        let a0 = arrays[0];
        let a1 = arrays[spec.param as usize % arrays.len()];
        let len0 = shm.len(a0);
        let len1 = shm.len(a1);
        let param = spec.param as usize;
        match spec.shape {
            // map: out[pid] = g(a0[pid % len0])
            0 => m.kernel_map(&mut shm, 0..spec.nprocs, out, move |t, pid| {
                t.read(a0, pid % len0).wrapping_mul(3) ^ param as Word
            }),
            // permute: rotate by param — a bijection on 0..nprocs
            1 => {
                let n = spec.nprocs;
                m.kernel_permute(&mut shm, 0..n, out, move |t, pid| {
                    ((pid + param) % n, t.read(a1, pid % len1) + pid as Word)
                })
            }
            // scatter: conflicting conditional writes under a random policy
            2 => m.kernel_scatter_with_policy(
                &mut shm,
                0..spec.nprocs,
                spec.policy,
                move |t, pid| {
                    if pid % 3 == 0 {
                        return None;
                    }
                    let i = pid.wrapping_mul(param) % len1.min(11);
                    Some((a1, i, t.read(a0, pid % len0) + pid as Word))
                },
            ),
            // reduce: combine contributions of ~4/5 of the processors
            _ => m.kernel_reduce(&mut shm, 0..spec.nprocs, spec.op, cell, 0, move |t, pid| {
                if pid % 5 == 4 {
                    None
                } else {
                    Some(t.read(a0, pid % len0).wrapping_add(pid as Word))
                }
            }),
        }
    }

    let mut memory: Vec<Vec<Word>> = arrays.iter().map(|&a| shm.slice(a).to_vec()).collect();
    memory.push(shm.slice(out).to_vec());
    memory.push(shm.slice(cell).to_vec());
    Observed {
        memory,
        steps: m.metrics.steps,
        work: m.metrics.work,
        peak: m.metrics.peak_processors,
        writes_buffered: m.metrics.writes_buffered,
        writes_committed: m.metrics.writes_committed,
        write_conflicts: m.metrics.write_conflicts,
        analysis: m.metrics.analysis.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernels_are_equivalent_to_generic_steps(
        lens in vec(1usize..300, 1..4),
        program in vec(kernel_spec(), 1..6),
    ) {
        let fused = run_kernel_program(
            Tuning { force_sequential: true, ..Tuning::default() },
            &lens,
            &program,
        );
        let generic = run_kernel_program(
            Tuning { force_sequential: true, disable_kernels: true, ..Tuning::default() },
            &lens,
            &program,
        );
        prop_assert_eq!(&fused, &generic, "fused kernels diverged from generic steps");

        let fused_par = run_kernel_program(
            Tuning { force_parallel: true, ..Tuning::default() },
            &lens,
            &program,
        );
        let generic_par = run_kernel_program(
            Tuning { force_parallel: true, disable_kernels: true, ..Tuning::default() },
            &lens,
            &program,
        );
        prop_assert_eq!(&fused, &fused_par, "parallel fused kernels diverged");
        prop_assert_eq!(&fused, &generic_par, "parallel generic path diverged");

        let generic_slow = run_kernel_program(
            Tuning { disable_kernels: true, disable_fast_path: true, ..Tuning::default() },
            &lens,
            &program,
        );
        prop_assert_eq!(&fused, &generic_slow, "slow-path generic diverged from kernels");
    }
}

// ---------------------------------------------------------------------------
// Backend equivalence: the data-parallel kernel backend must be observably
// identical — memory, Metrics counters, AnalysisReport — to the sequential
// Fused backend at *every* worker-count cap (1 lane, 2 lanes, uncapped),
// with the dispatch threshold forced to 1 so even tiny kernels take the
// parallel code path, and with processor counts spanning multiple CHUNK
// (8192) boundaries so cross-chunk combining is actually exercised.
// ---------------------------------------------------------------------------

/// `kernel_spec` with processor counts up to 20 000 (1–3 chunks).
fn kernel_spec_large() -> impl Strategy<Value = KernelSpec> {
    (0u8..4, 1usize..20_000, 0usize..6, 0usize..5, 1u64..64).prop_map(
        |(shape, nprocs, pol, op, param)| KernelSpec {
            shape,
            nprocs,
            policy: POLICIES[pol],
            op: REDUCE_OPS[op],
            param,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn kernel_backends_are_equivalent_at_every_worker_count(
        lens in vec(1usize..300, 1..4),
        program in vec(kernel_spec_large(), 1..5),
    ) {
        let fused = run_kernel_program(
            Tuning { kernel_backend: KernelBackend::Fused, ..Tuning::default() },
            &lens,
            &program,
        );
        for lanes in [Some(1), Some(2), None] {
            let par = run_kernel_program(
                Tuning {
                    kernel_backend: KernelBackend::Parallel,
                    kernel_par_threshold: 1,
                    num_threads: lanes,
                    ..Tuning::default()
                },
                &lens,
                &program,
            );
            prop_assert_eq!(
                &fused, &par,
                "parallel backend diverged at num_threads={:?}", lanes
            );
        }
        // the parallel backend must also agree with the generic step path
        let generic = run_kernel_program(
            Tuning { disable_kernels: true, ..Tuning::default() },
            &lens,
            &program,
        );
        prop_assert_eq!(&fused, &generic, "generic path diverged at large n");
    }
}
