//! Execution-path equivalence: the machine's observable behaviour — final
//! memory AND the PRAM/observability accounting — must be a pure function
//! of (seed, program), identical across every host execution mode:
//!
//! * sequential vs pool-parallel compute,
//! * conflict-free fast-path vs sorted slow-path commits,
//! * parallel vs sequential sort/resolve in the slow path.
//!
//! Random step programs cover every [`WritePolicy`], in-order and reversed
//! scatters (fast vs slow path triggers), conflict pile-ups, RNG-driven
//! targets, and duplicate writes from one processor.

use proptest::collection::vec;
use proptest::prelude::*;

use ipch_pram::{Machine, Shm, Tuning, Word, WritePolicy};

const POLICIES: [WritePolicy; 6] = [
    WritePolicy::Arbitrary,
    WritePolicy::PriorityMin,
    WritePolicy::CombineMin,
    WritePolicy::CombineMax,
    WritePolicy::CombineSum,
    WritePolicy::CombineOr,
];

/// One randomly generated step: processor count, conflict-resolution rule,
/// write pattern, and a pattern parameter.
#[derive(Clone, Copy, Debug)]
struct StepSpec {
    nprocs: usize,
    policy: WritePolicy,
    pattern: u8,
    param: u64,
}

/// Everything observable about a run (minus host wall-clock and the
/// fast-path counter, which legitimately differ across modes).
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    memory: Vec<Vec<Word>>,
    steps: u64,
    work: u64,
    peak: u64,
    writes_buffered: u64,
    writes_committed: u64,
    write_conflicts: u64,
}

fn run_program(tuning: Tuning, lens: &[usize], program: &[StepSpec]) -> Observed {
    let mut m = Machine::new(0xA11CE);
    m.tuning = tuning;
    let mut shm = Shm::new();
    let arrays: Vec<_> = lens
        .iter()
        .enumerate()
        .map(|(i, &len)| shm.alloc(&format!("a{i}"), len, 0))
        .collect();

    for spec in program {
        let a0 = arrays[0];
        let a1 = arrays[spec.param as usize % arrays.len()];
        let len0 = shm.len(a0);
        let len1 = shm.len(a1);
        let (pattern, param) = (spec.pattern, spec.param);
        m.step_with_policy(&mut shm, 0..spec.nprocs, spec.policy, move |ctx| {
            let pid = ctx.pid;
            match pattern {
                // in-order scatter — the fast-path shape (when nprocs <= len0)
                0 => ctx.write(a0, pid % len0, pid as Word),
                // reversed scatter — conflict-free but out of order
                1 => ctx.write(a0, len0 - 1 - (pid % len0), pid as Word),
                // conflict pile-up on a handful of cells
                2 => ctx.write(a0, (pid.wrapping_mul(param as usize)) % len0.min(7), 1),
                // RNG-driven target (exercises the lazy per-pid stream)
                3 => {
                    let i = ctx.rng().next_below(len1 as u64) as usize;
                    ctx.write(a1, i, pid as Word + 1);
                }
                // duplicate writes from one processor to one cell
                4 => {
                    ctx.write(a1, pid % len1, 5);
                    ctx.write(a1, pid % len1, pid as Word);
                }
                // read-only step (commit sees an empty log)
                _ => {
                    let row = ctx.slice(a0);
                    let _ = std::hint::black_box(row[pid % len0]);
                }
            }
        });
    }

    Observed {
        memory: arrays.iter().map(|&a| shm.slice(a).to_vec()).collect(),
        steps: m.metrics.steps,
        work: m.metrics.work,
        peak: m.metrics.peak_processors,
        writes_buffered: m.metrics.writes_buffered,
        writes_committed: m.metrics.writes_committed,
        write_conflicts: m.metrics.write_conflicts,
    }
}

fn step_spec() -> impl Strategy<Value = StepSpec> {
    (1usize..3000, 0usize..6, 0u8..6, 1u64..64).prop_map(|(nprocs, pol, pattern, param)| StepSpec {
        nprocs,
        policy: POLICIES[pol],
        pattern,
        param,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_execution_paths_are_equivalent(
        lens in vec(1usize..300, 1..4),
        program in vec(step_spec(), 1..6),
    ) {
        let base = run_program(
            Tuning { force_sequential: true, ..Tuning::default() },
            &lens,
            &program,
        );
        let auto = run_program(Tuning::default(), &lens, &program);
        let parallel = run_program(
            Tuning { force_parallel: true, ..Tuning::default() },
            &lens,
            &program,
        );
        let slow_only = run_program(
            Tuning { disable_fast_path: true, ..Tuning::default() },
            &lens,
            &program,
        );
        let parallel_slow = run_program(
            Tuning { force_parallel: true, disable_fast_path: true, ..Tuning::default() },
            &lens,
            &program,
        );
        prop_assert_eq!(&base, &auto, "auto-threshold diverged");
        prop_assert_eq!(&base, &parallel, "parallel compute/commit diverged");
        prop_assert_eq!(&base, &slow_only, "sorted slow path diverged");
        prop_assert_eq!(&base, &parallel_slow, "parallel slow path diverged");
    }

    #[test]
    fn replay_is_bit_identical(
        lens in vec(1usize..200, 1..3),
        program in vec(step_spec(), 1..5),
    ) {
        let a = run_program(Tuning::default(), &lens, &program);
        let b = run_program(Tuning::default(), &lens, &program);
        prop_assert_eq!(a, b);
    }
}
