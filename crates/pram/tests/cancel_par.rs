//! Chunk-boundary cancellation under the data-parallel kernel backend.
//!
//! Pinned-seed regression tests: a cancel tripped *inside* a running
//! multi-chunk kernel must abort at a chunk boundary with the typed
//! [`CancelUnwind`] payload (or [`RunError::Cancelled`] /
//! [`RunError::DeadlineExceeded`] through the supervisor), leave `Metrics`
//! intact (the aborted step is never recorded), and leave the machine and
//! shared memory serviceable.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use ipch_pram::{
    silence_cancel_unwinds, supervise, CancelCause, CancelToken, CancelUnwind, KernelBackend,
    Machine, RunError, Shm, SuperviseConfig, Tuning,
};

/// The kernel chunk size (`machine::CHUNK`); pinned here so the tests span
/// several chunk boundaries by construction.
const CHUNK: usize = 8192;

fn parallel_tuning(lanes: usize) -> Tuning {
    Tuning {
        kernel_backend: KernelBackend::Parallel,
        kernel_par_threshold: 1,
        num_threads: Some(lanes),
        ..Tuning::default()
    }
}

fn caught_cause<T>(r: std::thread::Result<T>) -> CancelCause {
    match r {
        Err(payload) => {
            payload
                .downcast_ref::<CancelUnwind>()
                .expect("typed CancelUnwind payload")
                .cause
        }
        Ok(_) => panic!("expected a cancel unwind"),
    }
}

/// A closure running under the parallel backend trips the token while the
/// kernel is mid-flight (first element of chunk 1 of 32). Later chunk
/// claims observe the flag, the wave drains, and the kernel unwinds typed —
/// with the aborted step never recorded and the machine reusable.
#[test]
fn cancel_mid_parallel_kernel_aborts_typed_with_intact_metrics() {
    silence_cancel_unwinds();
    let token = CancelToken::new();
    let mut m = Machine::new(0xC0FFEE);
    m.tuning = parallel_tuning(2);
    m.set_cancel_token(token.clone());

    let n = 32 * CHUNK;
    let mut shm = Shm::new();
    let out = shm.alloc("out", n, 0);

    let t = token.clone();
    let r = catch_unwind(AssertUnwindSafe(|| {
        m.kernel_map(&mut shm, 0..n, out, move |_t, pid| {
            if pid == CHUNK {
                t.cancel();
            }
            pid as i64
        });
    }));
    assert_eq!(caught_cause(r), CancelCause::Cancelled);

    // Metrics intact: the aborted step's launch and compute work are
    // recorded (same as a generic step aborted mid-compute), but none of
    // its writes and no completed kernel step.
    assert_eq!(m.metrics.steps, 1);
    assert_eq!(m.metrics.work, n as u64);
    assert_eq!(m.metrics.kernel_steps, 0);
    assert_eq!(m.metrics.writes_buffered, 0);
    assert_eq!(m.metrics.writes_committed, 0);
    assert!(m.metrics.threads >= 1, "parallel dispatch records lane use");

    // The machine and memory stay serviceable after the unwind.
    m.clear_cancel_token();
    m.kernel_map(&mut shm, 0..n, out, |_t, _pid| 9);
    assert!(shm.slice(out).iter().all(|&v| v == 9));
    assert_eq!(m.metrics.steps, 2);
    assert_eq!(m.metrics.kernel_steps, 1);
    assert_eq!(m.metrics.writes_committed, n as u64);
}

/// Same shape for a deadline: the closure burns time until the token's
/// deadline passes, so a *chunk-boundary* poll (not the entry poll) is what
/// observes expiry — the unwind must carry `DeadlineExceeded`. The lane cap
/// is pinned to 1 (still the parallel backend's chunked dispatch) so chunk
/// order is deterministic: with a second lane free, it could drain every
/// remaining chunk while this one spins, leaving no boundary to poll.
#[test]
fn deadline_expiry_mid_parallel_kernel_is_typed() {
    silence_cancel_unwinds();
    let token = CancelToken::with_deadline(Duration::from_millis(20));
    let mut m = Machine::new(0xDEAD11);
    m.tuning = parallel_tuning(1);
    m.set_cancel_token(token.clone());

    let n = 16 * CHUNK;
    let mut shm = Shm::new();
    let out = shm.alloc("out", n, 0);

    let t = token.clone();
    let r = catch_unwind(AssertUnwindSafe(|| {
        m.kernel_map(&mut shm, 0..n, out, move |_t, pid| {
            if pid == CHUNK {
                // spin past the deadline inside the running chunk
                while t.check().is_ok() {
                    std::hint::spin_loop();
                }
            }
            pid as i64
        });
    }));
    assert_eq!(caught_cause(r), CancelCause::DeadlineExceeded);
    assert_eq!(m.metrics.steps, 1, "launch recorded, step never completed");
    assert_eq!(m.metrics.kernel_steps, 0);
    assert_eq!(m.metrics.writes_committed, 0);
}

/// Through the supervisor the same mid-kernel cancel surfaces as the typed
/// terminal [`RunError::Cancelled`] — no retry, no fallback — and the
/// deadline flavour as [`RunError::DeadlineExceeded`].
#[test]
fn supervisor_converts_mid_parallel_kernel_cancel_to_typed_run_error() {
    silence_cancel_unwinds();
    let token = CancelToken::new();
    let mut m = Machine::new(0x5EED);
    m.tuning = parallel_tuning(2);
    m.set_cancel_token(token.clone());

    let n = 8 * CHUNK;
    let attempts = AtomicUsize::new(0);
    let err = supervise(
        &mut m,
        "cancel-par-test",
        &SuperviseConfig::default(),
        |child| {
            attempts.fetch_add(1, Ordering::Relaxed);
            let mut shm = Shm::new();
            let out = shm.alloc("out", n, 0);
            let t = token.clone();
            child.kernel_map(&mut shm, 0..n, out, move |_t, pid| {
                if pid == CHUNK / 2 {
                    t.cancel();
                }
                pid as i64
            });
            Ok(shm.get(out, 0))
        },
        None,
    )
    .expect_err("cancelled run must not produce a value");
    assert!(
        matches!(err, RunError::Cancelled { .. }),
        "expected RunError::Cancelled, got {err:?}"
    );
    assert_eq!(
        attempts.load(Ordering::Relaxed),
        1,
        "cancellation is terminal: no retry, no fallback"
    );
}
