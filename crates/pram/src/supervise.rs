//! Las Vegas supervision: attempt → verify → retry → fall back.
//!
//! Every output-sensitive algorithm in the paper is Las Vegas: it is always
//! *checkable* (the hull certificates, pointer checks and LP feasibility
//! tests the crates already carry) and succeeds with high probability, so
//! the paper's own prescription for a failed randomized attempt is to detect
//! it and retry — and, should failures persist, to run the deterministic
//! worst-case algorithm instead. [`supervise`] packages that prescription as
//! a reusable state machine:
//!
//! 1. **Attempt** — run the randomized algorithm on a fresh child machine
//!    (new derived seed, so every retry re-randomizes; installed
//!    [`crate::faults::FaultPlan`]s are inherited, so injected faults keep
//!    applying). Panics inside the attempt are caught and converted to the
//!    typed [`RunError::Panic`] — under supervision a failure path is data,
//!    never a crash.
//! 2. **Verify** — the attempt closure returns `Err` when its certificate
//!    rejects the result ([`RunError::Verify`]) or an internal invariant
//!    fails ([`RunError::Invariant`]). An attempt whose machine tripped a
//!    fault-plane budget is voided to [`RunError::BudgetExhausted`] even if
//!    it produced a value: a run that exceeded its resource bound does not
//!    count, exactly like the paper's "restart if not finished in O(log n)
//!    steps" arguments.
//! 3. **Retry** — up to [`SuperviseConfig::max_attempts`] total attempts.
//!    Reseeding means transient failures (unlucky coin flips, injected RNG
//!    bias, corrupted cells) decorrelate across attempts, so a successful
//!    retry reports [`Outcome::Retried`].
//! 4. **Fallback** — when every attempt failed, the deterministic
//!    non-output-sensitive algorithm (folklore hull, brute-force LP, …)
//!    runs instead and the result reports [`Outcome::FellBack`]. A fault
//!    that is a deterministic function of the plan (a budget bound the
//!    algorithm always exceeds) defeats every retry and lands here.
//!
//! The supervisor's contract — asserted algorithm-by-algorithm in the chaos
//! suite — is that under *any* installed fault plan the caller receives a
//! certificate-verified value or a typed [`RunError`]: never a silently
//! wrong answer, never a panic.
//!
//! All supervision costs (every attempt's metrics, including the failed
//! ones) are absorbed into the supervising machine, and the counters in
//! [`SupervisorStats`] land in [`crate::Metrics::supervisor`].

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::cancel::{CancelCause, CancelUnwind};
use crate::machine::Machine;
use crate::rng::mix64;

/// Typed failure of a supervised run. The supervisor converts the
/// algorithms' former panicking failure paths into these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// Every randomized attempt failed and no fallback was available (or
    /// the fallback itself failed with `last`).
    AttemptsExhausted {
        /// Name of the supervised algorithm.
        algorithm: &'static str,
        /// Total attempts made.
        attempts: u32,
        /// The last attempt's failure.
        last: Box<RunError>,
    },
    /// The result certificate rejected an attempt's output.
    Verify {
        /// Name of the supervised algorithm.
        algorithm: &'static str,
        /// What the certificate rejected.
        detail: String,
    },
    /// An internal invariant of the algorithm failed (e.g. a bridge that
    /// was never found, a sample outside its size bounds).
    Invariant {
        /// Name of the supervised algorithm.
        algorithm: &'static str,
        /// Which invariant failed.
        detail: String,
    },
    /// The attempt's machine tripped a fault-plane step/work budget
    /// ([`crate::faults::Budget`]).
    BudgetExhausted {
        /// Name of the supervised algorithm.
        algorithm: &'static str,
    },
    /// The attempt panicked; the payload message is preserved.
    Panic {
        /// Name of the supervised algorithm.
        algorithm: &'static str,
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// The run was cancelled by its [`crate::CancelToken`] (client
    /// disconnect, shed, admin). Terminal: the supervisor neither retries
    /// nor falls back — the cancellation covers the whole request.
    Cancelled {
        /// Name of the supervised algorithm.
        algorithm: &'static str,
    },
    /// The run's deadline expired mid-flight. Terminal like `Cancelled`.
    DeadlineExceeded {
        /// Name of the supervised algorithm.
        algorithm: &'static str,
    },
    /// The input was rejected before any attempt ran (NaN/infinite
    /// coordinates, duplicate points where the algorithm forbids them, …).
    /// Terminal: retrying cannot repair a malformed input.
    InvalidInput {
        /// Name of the supervised algorithm.
        algorithm: &'static str,
        /// What the validator rejected.
        detail: String,
    },
    /// The algorithm's symbolic step plan failed static verification
    /// ([`crate::verify`]) before any step executed — an out-of-bounds
    /// index map, a provable contract violation, or an undecidable shape
    /// with the dynamic fallback disabled. Terminal like `InvalidInput`:
    /// the plan is a property of the (algorithm, input size), not of the
    /// attempt.
    PlanRejected {
        /// The typed static-verification failure.
        verify: crate::verify::VerifyError,
    },
}

impl RunError {
    /// Name of the algorithm the error originated in.
    pub fn algorithm(&self) -> &'static str {
        match self {
            RunError::AttemptsExhausted { algorithm, .. }
            | RunError::Verify { algorithm, .. }
            | RunError::Invariant { algorithm, .. }
            | RunError::BudgetExhausted { algorithm }
            | RunError::Panic { algorithm, .. }
            | RunError::Cancelled { algorithm }
            | RunError::DeadlineExceeded { algorithm }
            | RunError::InvalidInput { algorithm, .. } => algorithm,
            RunError::PlanRejected { verify } => verify.algorithm(),
        }
    }

    /// Stable machine-readable code for wire serialization and logs.
    /// Contract: codes never change once shipped; new variants add new
    /// codes.
    pub fn code(&self) -> &'static str {
        match self {
            RunError::AttemptsExhausted { .. } => "attempts_exhausted",
            RunError::Verify { .. } => "verify_failed",
            RunError::Invariant { .. } => "invariant_failed",
            RunError::BudgetExhausted { .. } => "budget_exhausted",
            RunError::Panic { .. } => "panic",
            RunError::Cancelled { .. } => "cancelled",
            RunError::DeadlineExceeded { .. } => "deadline_exceeded",
            RunError::InvalidInput { .. } => "invalid_input",
            // the static-verification plane's codes: one per
            // `VerifyError` variant, stable like every other entry
            RunError::PlanRejected { verify } => verify.code(),
        }
    }

    /// Shorthand for a typed input rejection (entry points validate before
    /// touching a machine).
    pub fn invalid_input(algorithm: &'static str, detail: impl std::fmt::Display) -> RunError {
        RunError::InvalidInput {
            algorithm,
            detail: detail.to_string(),
        }
    }

    /// The [`RunError`] matching a cancellation cause.
    pub fn from_cancel(algorithm: &'static str, cause: CancelCause) -> RunError {
        match cause {
            CancelCause::Cancelled => RunError::Cancelled { algorithm },
            CancelCause::DeadlineExceeded => RunError::DeadlineExceeded { algorithm },
        }
    }

    /// True for errors the supervisor treats as terminal: no retry, no
    /// fallback (cancellation covers the whole request; a malformed input
    /// stays malformed).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            RunError::Cancelled { .. }
                | RunError::DeadlineExceeded { .. }
                | RunError::InvalidInput { .. }
                | RunError::PlanRejected { .. }
        )
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::AttemptsExhausted {
                algorithm,
                attempts,
                last,
            } => write!(
                f,
                "{algorithm}: all {attempts} attempts failed; last: {last}"
            ),
            RunError::Verify { algorithm, detail } => {
                write!(f, "{algorithm}: certificate rejected result: {detail}")
            }
            RunError::Invariant { algorithm, detail } => {
                write!(f, "{algorithm}: invariant failed: {detail}")
            }
            RunError::BudgetExhausted { algorithm } => {
                write!(f, "{algorithm}: step/work budget exhausted")
            }
            RunError::Panic { algorithm, detail } => {
                write!(f, "{algorithm}: attempt panicked: {detail}")
            }
            RunError::Cancelled { algorithm } => {
                write!(f, "{algorithm}: run cancelled")
            }
            RunError::DeadlineExceeded { algorithm } => {
                write!(f, "{algorithm}: deadline exceeded")
            }
            RunError::InvalidInput { algorithm, detail } => {
                write!(f, "{algorithm}: invalid input: {detail}")
            }
            RunError::PlanRejected { verify } => {
                write!(f, "static plan check rejected the run: {verify}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// How a supervised run obtained its value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The first randomized attempt succeeded (the w.h.p. case).
    FirstTry,
    /// Success after `k` failed attempts (the value is the retry count).
    Retried(u32),
    /// Every randomized attempt failed; the deterministic fallback produced
    /// the value.
    FellBack,
}

/// Supervision knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuperviseConfig {
    /// Maximum randomized attempts before falling back. The default 3 makes
    /// a per-attempt failure probability `q` an overall `q^3` — for the
    /// paper's `q = O(1/n^c)` bounds, far below any practical horizon.
    pub max_attempts: u32,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        Self { max_attempts: 3 }
    }
}

/// A supervised run's value plus its provenance.
#[derive(Clone, Debug)]
pub struct Supervised<T> {
    /// The verified result.
    pub value: T,
    /// How it was obtained.
    pub outcome: Outcome,
    /// Total attempts made (fallback not counted).
    pub attempts: u32,
    /// The typed failures of every unsuccessful attempt, in order.
    pub errors: Vec<RunError>,
}

/// Supervisor counters, kept in [`crate::Metrics::supervisor`]. Host
/// observability: both [`crate::Metrics::absorb`] and
/// [`crate::Metrics::absorb_parallel`] sum them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Supervised runs started.
    pub runs: u64,
    /// Randomized attempts launched (≥ `runs`).
    pub attempts: u64,
    /// Attempts beyond each run's first.
    pub retries: u64,
    /// Runs that degraded to the deterministic fallback.
    pub fallbacks: u64,
    /// Attempts rejected by a result certificate.
    pub verify_failures: u64,
    /// Attempts that panicked (caught and typed).
    pub panics_caught: u64,
    /// Attempts voided by a tripped fault-plane budget.
    pub budget_aborts: u64,
    /// Runs aborted by a [`crate::CancelToken`] (explicit cancel or
    /// deadline expiry); such runs end immediately — no retry, no fallback.
    pub cancellations: u64,
}

impl SupervisorStats {
    /// Fold another counter set into this one (used by the metrics absorbs).
    pub(crate) fn absorb(&mut self, other: &SupervisorStats) {
        self.runs += other.runs;
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.fallbacks += other.fallbacks;
        self.verify_failures += other.verify_failures;
        self.panics_caught += other.panics_caught;
        self.budget_aborts += other.budget_aborts;
        self.cancellations += other.cancellations;
    }
}

/// Child-machine tag base for supervised attempts (mixed with the attempt
/// number, so every retry reseeds).
const ATTEMPT_TAG: u64 = 0x5AFE_0000_A77E_3071;
/// Child-machine tag for the deterministic fallback run.
const FALLBACK_TAG: u64 = 0x5AFE_0000_FA11_BACC;

/// The exact machine attempt `k` of a supervised run on `m` would execute
/// on. For apples-to-apples measurement (and debugging a specific retry):
/// running an algorithm directly on `attempt_machine(m, 0)` consumes the
/// same random streams as the supervisor's first attempt, so any timing
/// difference against the supervised call is pure supervision overhead
/// (`catch_unwind`, the certificate, metrics absorb).
pub fn attempt_machine(m: &Machine, k: u32) -> Machine {
    m.child(ATTEMPT_TAG ^ mix64(k as u64))
}

/// The deterministic give-up path of a supervised run: run after every
/// randomized attempt failed, on its own child machine, with any budget
/// fault cleared (see [`supervise`]).
pub type Fallback<'a, T> = Option<&'a mut dyn FnMut(&mut Machine) -> Result<T, RunError>>;

/// Run `attempt` under Las Vegas supervision on `m` (see the module docs
/// for the state machine). Each attempt receives a fresh child machine —
/// derived seed, inherited fault plan — and must return the verified value
/// or a typed [`RunError`]; panics are caught and typed. After
/// [`SuperviseConfig::max_attempts`] failures, `fallback` (the
/// deterministic algorithm) runs on its own child machine; without one, the
/// caller gets [`RunError::AttemptsExhausted`].
///
/// All attempts' metrics (successful or not) are absorbed into `m`
/// sequentially — supervision models one processor group retrying, not
/// parallel speculation.
pub fn supervise<T>(
    m: &mut Machine,
    algorithm: &'static str,
    cfg: &SuperviseConfig,
    mut attempt: impl FnMut(&mut Machine) -> Result<T, RunError>,
    mut fallback: Fallback<'_, T>,
) -> Result<Supervised<T>, RunError> {
    m.metrics.supervisor.runs += 1;
    let mut errors: Vec<RunError> = Vec::new();

    for k in 0..cfg.max_attempts {
        // Cancellation before launching (or relaunching): a request whose
        // deadline expired between attempts must not burn another attempt.
        if let Some(cause) = m.cancel_token().and_then(|t| t.check().err()) {
            m.metrics.supervisor.cancellations += 1;
            return Err(RunError::from_cancel(algorithm, cause));
        }
        m.metrics.supervisor.attempts += 1;
        if k > 0 {
            m.metrics.supervisor.retries += 1;
        }
        let mut child = m.child(ATTEMPT_TAG ^ mix64(k as u64));
        let caught = catch_unwind(AssertUnwindSafe(|| attempt(&mut child)));
        // The attempt's work happened whether or not it succeeded; the
        // budget latch must be read before the child's counters merge in.
        let budget_tripped = child.metrics.faults.budget_exhaustions > 0;
        m.metrics.absorb(&child.metrics);
        let result = match caught {
            Ok(r) => r,
            Err(payload) => {
                // A cancellation unwind is control flow, not a failed
                // attempt: the child's partial metrics are already merged
                // (the absorb above), and the run ends now — retrying a
                // cancelled request would defeat the deadline.
                if let Some(cu) = payload.downcast_ref::<CancelUnwind>() {
                    m.metrics.supervisor.cancellations += 1;
                    return Err(RunError::from_cancel(algorithm, cu.cause));
                }
                m.metrics.supervisor.panics_caught += 1;
                Err(RunError::Panic {
                    algorithm,
                    detail: panic_message(&*payload),
                })
            }
        };
        let result = match result {
            Ok(_) if budget_tripped => Err(RunError::BudgetExhausted { algorithm }),
            other => other,
        };
        match result {
            Ok(value) => {
                return Ok(Supervised {
                    value,
                    outcome: if k == 0 {
                        Outcome::FirstTry
                    } else {
                        Outcome::Retried(k)
                    },
                    attempts: k + 1,
                    errors,
                });
            }
            Err(e) => {
                // Terminal errors end the run at once: no further attempt
                // can change a cancelled request or a malformed input.
                if e.is_terminal() {
                    if matches!(
                        e,
                        RunError::Cancelled { .. } | RunError::DeadlineExceeded { .. }
                    ) {
                        m.metrics.supervisor.cancellations += 1;
                    }
                    return Err(e);
                }
                match &e {
                    RunError::Verify { .. } => m.metrics.supervisor.verify_failures += 1,
                    RunError::BudgetExhausted { .. } => m.metrics.supervisor.budget_aborts += 1,
                    _ => {}
                }
                errors.push(e);
            }
        }
    }

    let exhausted = || RunError::AttemptsExhausted {
        algorithm,
        attempts: cfg.max_attempts,
        last: Box::new(errors.last().cloned().unwrap_or(RunError::Invariant {
            algorithm,
            detail: "no attempts were permitted".into(),
        })),
    };

    match fallback.as_mut() {
        None => Err(exhausted()),
        Some(fb) => {
            m.metrics.supervisor.fallbacks += 1;
            let mut child = m.child(FALLBACK_TAG);
            // The budget fault models the Las Vegas time bound ("restart if
            // not done in O(log n) steps"); the deterministic fallback *is*
            // the give-up path, so it runs unbudgeted. Every other injected
            // fault still applies — a corrupted fallback result is caught by
            // the caller's certificate and surfaces as a typed error.
            if let Some(fs) = child.faults.as_mut() {
                fs.plan.budget = None;
            }
            let caught = catch_unwind(AssertUnwindSafe(|| fb(&mut child)));
            m.metrics.absorb(&child.metrics);
            match caught {
                Ok(Ok(value)) => Ok(Supervised {
                    value,
                    outcome: Outcome::FellBack,
                    attempts: cfg.max_attempts,
                    errors,
                }),
                Ok(Err(e)) => Err(e),
                Err(payload) => {
                    if let Some(cu) = payload.downcast_ref::<CancelUnwind>() {
                        m.metrics.supervisor.cancellations += 1;
                        return Err(RunError::from_cancel(algorithm, cu.cause));
                    }
                    m.metrics.supervisor.panics_caught += 1;
                    Err(RunError::Panic {
                        algorithm,
                        detail: panic_message(&*payload),
                    })
                }
            }
        }
    }
}

/// Extract a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{Budget, FaultPlan};
    use crate::memory::Shm;

    fn count_to(m: &mut Machine, steps: usize) -> i64 {
        let mut shm = Shm::new();
        let a = shm.alloc("a", 1, 0);
        for _ in 0..steps {
            m.step(&mut shm, 0..1, |ctx| {
                let v = ctx.read(a, 0);
                ctx.write(a, 0, v + 1);
            });
        }
        shm.get(a, 0)
    }

    #[test]
    fn first_try_success() {
        let mut m = Machine::new(1);
        let out = supervise(
            &mut m,
            "count",
            &SuperviseConfig::default(),
            |child| Ok(count_to(child, 4)),
            None,
        )
        .unwrap();
        assert_eq!(out.value, 4);
        assert_eq!(out.outcome, Outcome::FirstTry);
        assert_eq!(out.attempts, 1);
        assert!(out.errors.is_empty());
        // the attempt's steps were absorbed into the supervising machine
        assert_eq!(m.metrics.steps, 4);
        assert_eq!(m.metrics.supervisor.runs, 1);
        assert_eq!(m.metrics.supervisor.attempts, 1);
        assert_eq!(m.metrics.supervisor.retries, 0);
    }

    #[test]
    fn transient_failures_are_retried() {
        let mut m = Machine::new(2);
        let mut tries = 0;
        let out = supervise(
            &mut m,
            "flaky",
            &SuperviseConfig::default(),
            |child| {
                tries += 1;
                let v = count_to(child, 1);
                if tries < 3 {
                    Err(RunError::Verify {
                        algorithm: "flaky",
                        detail: format!("attempt {tries} rejected"),
                    })
                } else {
                    Ok(v)
                }
            },
            None,
        )
        .unwrap();
        assert_eq!(out.outcome, Outcome::Retried(2));
        assert_eq!(out.attempts, 3);
        assert_eq!(out.errors.len(), 2);
        assert_eq!(m.metrics.steps, 3, "failed attempts' work still counts");
        assert_eq!(m.metrics.supervisor.retries, 2);
        assert_eq!(m.metrics.supervisor.verify_failures, 2);
    }

    #[test]
    fn attempt_seeds_differ_across_retries() {
        let mut m = Machine::new(3);
        let mut seeds = Vec::new();
        let _ = supervise(
            &mut m,
            "seeds",
            &SuperviseConfig::default(),
            |child| -> Result<(), RunError> {
                seeds.push(child.seed());
                Err(RunError::Invariant {
                    algorithm: "seeds",
                    detail: "always fails".into(),
                })
            },
            None,
        );
        assert_eq!(seeds.len(), 3);
        assert_ne!(seeds[0], seeds[1]);
        assert_ne!(seeds[1], seeds[2]);
        assert_ne!(seeds[0], seeds[2]);
    }

    #[test]
    fn exhaustion_falls_back_to_deterministic() {
        let mut m = Machine::new(4);
        let out = supervise(
            &mut m,
            "hopeless",
            &SuperviseConfig::default(),
            |_child| -> Result<i64, RunError> {
                Err(RunError::Verify {
                    algorithm: "hopeless",
                    detail: "never valid".into(),
                })
            },
            Some(&mut |child: &mut Machine| Ok(count_to(child, 2))),
        )
        .unwrap();
        assert_eq!(out.value, 2);
        assert_eq!(out.outcome, Outcome::FellBack);
        assert_eq!(out.errors.len(), 3);
        assert_eq!(m.metrics.supervisor.fallbacks, 1);
    }

    #[test]
    fn exhaustion_without_fallback_is_typed() {
        let mut m = Machine::new(5);
        let err = supervise(
            &mut m,
            "hopeless",
            &SuperviseConfig { max_attempts: 2 },
            |_child| -> Result<i64, RunError> {
                Err(RunError::Invariant {
                    algorithm: "hopeless",
                    detail: "x".into(),
                })
            },
            None,
        )
        .unwrap_err();
        match err {
            RunError::AttemptsExhausted {
                algorithm,
                attempts,
                last,
            } => {
                assert_eq!(algorithm, "hopeless");
                assert_eq!(attempts, 2);
                assert!(matches!(*last, RunError::Invariant { .. }));
            }
            other => panic!("expected AttemptsExhausted, got {other}"),
        }
    }

    #[test]
    fn panics_are_caught_and_typed() {
        let mut m = Machine::new(6);
        let mut tries = 0;
        let out = supervise(
            &mut m,
            "panicky",
            &SuperviseConfig::default(),
            |child| {
                tries += 1;
                if tries == 1 {
                    panic!("injected panic for the supervisor to catch");
                }
                Ok(count_to(child, 1))
            },
            None,
        )
        .unwrap();
        assert_eq!(out.outcome, Outcome::Retried(1));
        assert!(matches!(&out.errors[0], RunError::Panic { detail, .. }
            if detail.contains("injected panic")));
        assert_eq!(m.metrics.supervisor.panics_caught, 1);
    }

    #[test]
    fn budget_exhaustion_voids_the_attempt_and_falls_back() {
        let mut m = Machine::new(7);
        m.install_faults(FaultPlan {
            budget: Some(Budget {
                max_steps: 2,
                max_work: u64::MAX,
            }),
            ..FaultPlan::default()
        });
        // The attempt "succeeds" but needs 5 steps — over budget every time
        // (the budget is a function of the plan, so retries cannot help) —
        // while the 2-step fallback fits.
        let out = supervise(
            &mut m,
            "over-budget",
            &SuperviseConfig::default(),
            |child| Ok(count_to(child, 5)),
            Some(&mut |child: &mut Machine| Ok(count_to(child, 2))),
        )
        .unwrap();
        assert_eq!(out.value, 2);
        assert_eq!(out.outcome, Outcome::FellBack);
        assert!(out
            .errors
            .iter()
            .all(|e| matches!(e, RunError::BudgetExhausted { .. })));
        assert_eq!(m.metrics.supervisor.budget_aborts, 3);
        assert_eq!(m.metrics.faults.budget_exhaustions, 3);
    }

    #[test]
    fn cancellation_mid_attempt_is_typed_terminal_and_keeps_partial_metrics() {
        crate::cancel::silence_cancel_unwinds();
        let token = crate::CancelToken::new();
        let mut m = Machine::new(20);
        m.set_cancel_token(token.clone());
        let out = supervise(
            &mut m,
            "cancel-me",
            &SuperviseConfig::default(),
            |child| {
                // three steps succeed, then the client walks away
                let v = count_to(child, 3);
                token.cancel();
                count_to(child, 5); // unwinds at the next step boundary
                Ok(v)
            },
            Some(&mut |child: &mut Machine| Ok(count_to(child, 1))),
        );
        assert!(matches!(
            out,
            Err(RunError::Cancelled {
                algorithm: "cancel-me"
            })
        ));
        // terminal: one attempt, no retry, no fallback — and the cancelled
        // attempt's partial work is still accounted
        assert_eq!(m.metrics.supervisor.attempts, 1);
        assert_eq!(m.metrics.supervisor.fallbacks, 0);
        assert_eq!(m.metrics.supervisor.cancellations, 1);
        assert_eq!(m.metrics.steps, 3);
    }

    #[test]
    fn expired_deadline_skips_the_attempt_entirely() {
        let mut m = Machine::new(21);
        m.set_cancel_token(crate::CancelToken::with_deadline(std::time::Duration::ZERO));
        let mut launched = false;
        let out = supervise(
            &mut m,
            "late",
            &SuperviseConfig::default(),
            |child| {
                launched = true;
                Ok(count_to(child, 1))
            },
            Some(&mut |child: &mut Machine| Ok(count_to(child, 1))),
        );
        assert!(matches!(out, Err(RunError::DeadlineExceeded { .. })));
        assert!(!launched, "no attempt may launch past the deadline");
        assert_eq!(m.metrics.supervisor.attempts, 0);
        assert_eq!(m.metrics.supervisor.cancellations, 1);
    }

    #[test]
    fn invalid_input_is_terminal_without_retries() {
        let mut m = Machine::new(22);
        let mut tries = 0u32;
        let out = supervise(
            &mut m,
            "picky",
            &SuperviseConfig::default(),
            |_child| -> Result<(), RunError> {
                tries += 1;
                Err(RunError::invalid_input("picky", "NaN at index 3"))
            },
            Some(&mut |_child: &mut Machine| Ok(())),
        );
        assert!(matches!(out, Err(RunError::InvalidInput { .. })));
        assert_eq!(tries, 1, "malformed input must not be retried");
        assert_eq!(m.metrics.supervisor.fallbacks, 0);
    }

    /// Pinned-seed regression (ISSUE 5 satellite): a child cancelled mid-run
    /// must still deliver its `faults` and `supervisor` counters to the
    /// parent through the absorb that precedes the supervisor's unwind
    /// handling.
    #[test]
    fn absorb_preserves_fault_and_supervisor_counters_across_cancellation() {
        crate::cancel::silence_cancel_unwinds();
        let token = crate::CancelToken::new();
        let mut m = Machine::new(0xC0FF_EE00_0005);
        m.install_faults(FaultPlan {
            corrupt_rate: 1.0, // one corrupted cell per executed step
            ..FaultPlan::default()
        });
        m.set_cancel_token(token.clone());
        let out = supervise(
            &mut m,
            "corrupted-and-cancelled",
            &SuperviseConfig::default(),
            |child| {
                // a nested supervised run bumps the child's own supervisor
                // counters, which must also survive the cancellation
                let nested = supervise(
                    child,
                    "nested",
                    &SuperviseConfig::default(),
                    |gc| Ok(count_to(gc, 2)),
                    None,
                )?;
                assert_eq!(nested.outcome, Outcome::FirstTry);
                token.cancel();
                count_to(child, 5); // unwinds
                Ok(())
            },
            None,
        );
        assert!(matches!(out, Err(RunError::Cancelled { .. })));
        // the nested run executed 2 steps with corrupt_rate 1.0 before the
        // cancel; its fault events and supervisor counters reached the root
        assert_eq!(m.metrics.supervisor.runs, 2, "root + nested");
        assert_eq!(m.metrics.supervisor.attempts, 2);
        assert_eq!(m.metrics.supervisor.cancellations, 1);
        assert_eq!(m.metrics.steps, 2);
        assert_eq!(
            m.metrics.faults.corrupted_cells, 2,
            "fault counters of the cancelled subtree must merge"
        );
    }

    #[test]
    fn error_codes_are_stable() {
        let cases: Vec<(RunError, &str)> = vec![
            (
                RunError::AttemptsExhausted {
                    algorithm: "a",
                    attempts: 3,
                    last: Box::new(RunError::BudgetExhausted { algorithm: "a" }),
                },
                "attempts_exhausted",
            ),
            (
                RunError::Verify {
                    algorithm: "a",
                    detail: String::new(),
                },
                "verify_failed",
            ),
            (
                RunError::Invariant {
                    algorithm: "a",
                    detail: String::new(),
                },
                "invariant_failed",
            ),
            (
                RunError::BudgetExhausted { algorithm: "a" },
                "budget_exhausted",
            ),
            (
                RunError::Panic {
                    algorithm: "a",
                    detail: String::new(),
                },
                "panic",
            ),
            (RunError::Cancelled { algorithm: "a" }, "cancelled"),
            (
                RunError::DeadlineExceeded { algorithm: "a" },
                "deadline_exceeded",
            ),
            (
                RunError::InvalidInput {
                    algorithm: "a",
                    detail: String::new(),
                },
                "invalid_input",
            ),
            (
                RunError::PlanRejected {
                    verify: crate::verify::VerifyError::OutOfBoundsPlan {
                        algorithm: "a",
                        step: "s",
                        array: "arr",
                        detail: String::new(),
                    },
                },
                "plan_out_of_bounds",
            ),
            (
                RunError::PlanRejected {
                    verify: crate::verify::VerifyError::ContractViolation {
                        algorithm: "a",
                        step: "s",
                        detail: String::new(),
                    },
                },
                "plan_contract_violation",
            ),
            (
                RunError::PlanRejected {
                    verify: crate::verify::VerifyError::UnknownShape {
                        algorithm: "a",
                        step: "s",
                        detail: String::new(),
                    },
                },
                "plan_unknown_shape",
            ),
        ];
        for (e, code) in &cases {
            assert_eq!(e.code(), *code);
            // every error renders through Display and the std Error trait
            let dyn_err: &dyn std::error::Error = e;
            assert!(!dyn_err.to_string().is_empty());
        }
        let codes: std::collections::HashSet<_> = cases.iter().map(|(e, _)| e.code()).collect();
        assert_eq!(codes.len(), cases.len(), "codes are distinct");
    }

    #[test]
    fn supervised_machine_with_faults_disabled_matches_direct_call() {
        // Overhead check at the semantic level: the child's simulated costs
        // absorb into the parent unchanged.
        let mut direct = Machine::new(8);
        let direct_v = count_to(&mut direct, 6);

        let mut sup = Machine::new(8);
        let out = supervise(
            &mut sup,
            "direct",
            &SuperviseConfig::default(),
            |child| Ok(count_to(child, 6)),
            None,
        )
        .unwrap();
        assert_eq!(out.value, direct_v);
        assert_eq!(sup.metrics.steps, direct.metrics.steps);
        assert_eq!(sup.metrics.work, direct.metrics.work);
    }
}
