//! Batched run support: deterministic seed combination and machine
//! construction for fused multi-request runs.
//!
//! The serving runtime coalesces many small same-algorithm requests into
//! one machine run. That run needs a seed that is (a) a pure function of
//! the member seeds — so a replay of the same coalesced batch simulates
//! identically — and (b) order-sensitive, so distinct batchings of the
//! same requests remain distinguishable in traces. [`combined_seed`] folds
//! the member seeds through the workspace's SplitMix64 finalizer with a
//! position-dependent rotation; [`batch_machine`] is the one-stop
//! constructor the service's fused dispatch uses.
//!
//! Correctness never depends on the combined seed: batched algorithms are
//! certificate-verified per member, and the hull a certificate admits is
//! unique — the seed only steers tie-breaking randomness and trace
//! identity.

use crate::machine::{Machine, Tuning};
use crate::rng::mix64;

/// Fold member seeds into one batch seed: order-sensitive, replayable,
/// and well-mixed even for adversarially similar member seeds.
pub fn combined_seed<I: IntoIterator<Item = u64>>(seeds: I) -> u64 {
    let mut acc = 0xBA7C_4ED0_5EED_0001u64;
    for (i, s) in seeds.into_iter().enumerate() {
        acc = mix64(acc ^ mix64(s.wrapping_add(i as u64).rotate_left((i % 63) as u32)));
    }
    acc
}

/// A machine for one fused batch run: seeded by [`combined_seed`] over the
/// member seeds, carrying the service's tuning. No fault plan and no
/// cancellation token are installed — per-member chaos disqualifies a
/// request from fusion, and per-member deadlines are enforced by the
/// runtime at the batch boundary instead of inside the shared machine (one
/// member's deadline must not abort its siblings' work).
pub fn batch_machine<I: IntoIterator<Item = u64>>(seeds: I, tuning: Tuning) -> Machine {
    let mut m = Machine::new(combined_seed(seeds));
    m.tuning = tuning;
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_seed_is_deterministic_and_order_sensitive() {
        let a = combined_seed([1, 2, 3]);
        let b = combined_seed([1, 2, 3]);
        let c = combined_seed([3, 2, 1]);
        assert_eq!(a, b, "replayable");
        assert_ne!(a, c, "order-sensitive");
        assert_ne!(combined_seed([0, 0]), combined_seed([0, 0, 0]));
        assert_ne!(combined_seed(std::iter::empty()), 0);
    }

    #[test]
    fn batch_machine_carries_tuning() {
        let tuning = Tuning {
            kernel_par_threshold: 7,
            ..Tuning::default()
        };
        let m = batch_machine([5, 6], tuning);
        assert_eq!(m.tuning.kernel_par_threshold, 7);
        assert_eq!(m.metrics.steps, 0);
    }
}
