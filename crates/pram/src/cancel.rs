//! Cooperative cancellation and deadlines for simulated runs.
//!
//! The serving runtime (`ipch-service`) must be able to stop *any* PRAM
//! simulation — a hull, an LP probe, a compaction — the moment a request's
//! deadline expires or its client walks away, without waiting for the
//! algorithm to finish an unbounded number of steps. The PRAM model gives a
//! natural preemption point: the step boundary. A [`CancelToken`] installed
//! on a [`crate::Machine`] ([`crate::Machine::set_cancel_token`]) is polled
//!
//! * at the **entry of every synchronous step** (generic
//!   [`crate::Machine::step`] dispatch and every fused [`crate::kernel`]
//!   entry point), *before* the step is recorded, and
//! * at **every chunk boundary** of the fused kernel loops and the generic
//!   compute phase (a chunk is `machine::CHUNK` = 8192 virtual processors),
//!   on both the sequential loops and the parallel backend's pool waves —
//!   each lane polls the token as it claims a chunk, and once any lane
//!   observes expiry the remaining chunks are skipped, so even a single
//!   enormous kernel-shaped step aborts within roughly one chunk's worth of
//!   host work per lane. The unwind itself is raised only after the wave
//!   joins, so no pool worker ever outlives the state it borrows.
//!
//! When the poll observes expiry, the machine **unwinds** with the typed
//! payload [`CancelUnwind`] (via [`std::panic::panic_any`], so no error
//! message is formatted on the hot path). The unwind is designed to be
//! caught:
//!
//! * [`crate::supervise::supervise`] converts it to
//!   [`crate::RunError::Cancelled`] / [`crate::RunError::DeadlineExceeded`]
//!   and — unlike an ordinary attempt failure — returns immediately, with no
//!   retry and no fallback: the deadline covers the whole supervised run.
//! * The machine itself stays coherent across the unwind: its [`crate::Metrics`]
//!   reflect every step that committed (plus the compute work of a step
//!   aborted mid-compute, whose buffered writes are discarded un-committed),
//!   and they merge into a parent via [`crate::Metrics::absorb`] exactly
//!   like any child's. Shared memory handed to a cancelled run is left
//!   memory-safe and structurally intact (fused kernels re-attach their
//!   detached output buffer before unwinding), but its *contents* are
//!   whatever the last committed step left — a cancelled run's memory must
//!   not be interpreted as a result.
//!
//! A machine with no token installed pays one branch per step — the
//! determinism suites assert the no-token path is byte-identical to the
//! pre-cancellation simulator.
//!
//! Tokens are cheap to clone (an `Arc`), shared between the host that may
//! cancel and every machine (children inherit the parent's token, so a
//! deadline covers the entire machine tree), and monotone: once cancelled
//! or expired, always cancelled.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

/// Why a run was aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called (client disconnect, shed, admin).
    Cancelled,
    /// The token's deadline passed.
    DeadlineExceeded,
}

impl CancelCause {
    /// Stable wire code (matches [`crate::RunError::code`]).
    pub fn code(self) -> &'static str {
        match self {
            CancelCause::Cancelled => "cancelled",
            CancelCause::DeadlineExceeded => "deadline_exceeded",
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    /// Fixed at construction; `None` = no deadline, cancel-only.
    deadline: Option<Instant>,
}

/// A shared cancellation flag plus an optional deadline.
///
/// ```
/// use ipch_pram::{CancelToken, Machine, Shm};
/// use std::time::Duration;
///
/// let token = CancelToken::new();
/// let mut m = Machine::new(1);
/// m.set_cancel_token(token.clone());
/// let mut shm = Shm::new();
/// let a = shm.alloc("a", 8, 0);
/// m.step(&mut shm, 0..8, |ctx| ctx.write(a, ctx.pid, 1)); // runs normally
/// token.cancel();
/// let aborted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
///     m.step(&mut shm, 0..8, |ctx| ctx.write(a, ctx.pid, 2));
/// }));
/// assert!(aborted.is_err());
/// assert_eq!(m.metrics.steps, 1, "the cancelled step was never recorded");
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token with no deadline; aborts only on [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that expires `budget` from now.
    pub fn with_deadline(budget: Duration) -> Self {
        Self::deadline_at(Instant::now() + budget)
    }

    /// A token that expires at `at`.
    pub fn deadline_at(at: Instant) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(at),
            }),
        }
    }

    /// Trip the token. Monotone and idempotent; every machine polling this
    /// token aborts at its next poll point.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called (does not consult
    /// the deadline — use [`CancelToken::check`] for the full poll).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// The deadline, if this token carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time remaining until the deadline (`None` if no deadline; zero once
    /// past it).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Poll: `Err(cause)` once the token is cancelled or past its deadline.
    /// An explicit cancel takes precedence over a passed deadline.
    #[inline]
    pub fn check(&self) -> Result<(), CancelCause> {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return Err(CancelCause::Cancelled);
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => Err(CancelCause::DeadlineExceeded),
            _ => Ok(()),
        }
    }
}

/// The typed unwind payload of a cancelled simulation. Catch with
/// [`std::panic::catch_unwind`] and downcast; [`crate::supervise::supervise`]
/// does this for you and returns the matching [`crate::RunError`].
#[derive(Clone, Copy, Debug)]
pub struct CancelUnwind {
    /// Why the run aborted.
    pub cause: CancelCause,
}

/// Abort the current simulation with a typed [`CancelUnwind`] payload.
#[cold]
pub(crate) fn unwind(cause: CancelCause) -> ! {
    std::panic::panic_any(CancelUnwind { cause })
}

/// Install (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" report for [`CancelUnwind`] payloads — cancellation is
/// control flow, not a bug — while delegating every other panic to the
/// previously installed hook. Idempotent; the serving runtime calls this on
/// construction so a busy service does not spray its stderr with expected
/// unwinds.
pub fn silence_cancel_unwinds() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CancelUnwind>().is_none() {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::memory::Shm;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn caught_cause<T>(r: std::thread::Result<T>) -> CancelCause {
        match r {
            Err(payload) => {
                payload
                    .downcast_ref::<CancelUnwind>()
                    .expect("typed CancelUnwind payload")
                    .cause
            }
            Ok(_) => panic!("expected a cancel unwind"),
        }
    }

    #[test]
    fn fresh_token_passes_checks() {
        let t = CancelToken::new();
        assert!(t.check().is_ok());
        assert!(!t.is_cancelled());
        assert_eq!(t.deadline(), None);
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn cancel_is_monotone_and_shared() {
        let t = CancelToken::new();
        let u = t.clone();
        t.cancel();
        assert_eq!(u.check(), Err(CancelCause::Cancelled));
        assert_eq!(t.check(), Err(CancelCause::Cancelled));
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(t.check(), Err(CancelCause::DeadlineExceeded));
        assert_eq!(t.remaining(), Some(Duration::ZERO));
        // explicit cancel takes precedence in the cause
        t.cancel();
        assert_eq!(t.check(), Err(CancelCause::Cancelled));
    }

    #[test]
    fn far_deadline_passes() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(t.check().is_ok());
        assert!(t.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn step_aborts_at_the_next_step_boundary() {
        silence_cancel_unwinds();
        let token = CancelToken::new();
        let mut m = Machine::new(40);
        m.set_cancel_token(token.clone());
        let mut shm = Shm::new();
        let a = shm.alloc("a", 16, 0);
        for _ in 0..5 {
            m.step(&mut shm, 0..16, |ctx| {
                let v = ctx.read(a, ctx.pid);
                ctx.write(a, ctx.pid, v + 1);
            });
        }
        token.cancel();
        let r = catch_unwind(AssertUnwindSafe(|| {
            m.step(&mut shm, 0..16, |ctx| ctx.write(a, ctx.pid, 99));
        }));
        assert_eq!(caught_cause(r), CancelCause::Cancelled);
        // exactly the five completed steps are recorded; memory untouched by
        // the aborted step
        assert_eq!(m.metrics.steps, 5);
        assert_eq!(m.metrics.work, 80);
        assert!(shm.slice(a).iter().all(|&v| v == 5));
    }

    #[test]
    fn expired_deadline_stops_within_one_step_with_intact_metrics() {
        silence_cancel_unwinds();
        let mut m = Machine::new(41);
        m.set_cancel_token(CancelToken::with_deadline(Duration::ZERO));
        let mut shm = Shm::new();
        let a = shm.alloc("a", 8, 0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            m.step(&mut shm, 0..8, |ctx| ctx.write(a, ctx.pid, 1));
        }));
        assert_eq!(caught_cause(r), CancelCause::DeadlineExceeded);
        assert_eq!(m.metrics.steps, 0, "no step may start past the deadline");
        // the machine is not poisoned: clearing the token resumes service
        m.clear_cancel_token();
        m.step(&mut shm, 0..8, |ctx| ctx.write(a, ctx.pid, 1));
        assert_eq!(m.metrics.steps, 1);
        assert_eq!(shm.slice(a), &[1; 8]);
    }

    #[test]
    fn kernels_poll_the_token_and_leave_shm_reattached() {
        silence_cancel_unwinds();
        let token = CancelToken::new();
        let mut m = Machine::new(42);
        m.set_cancel_token(token.clone());
        let mut shm = Shm::new();
        let xs = shm.alloc("xs", 64, 7);
        let out = shm.alloc("out", 64, 0);
        token.cancel();
        for kernel in 0..3 {
            let r = catch_unwind(AssertUnwindSafe(|| match kernel {
                0 => m.kernel_map(&mut shm, 0..64, out, |t, pid| t.read(xs, pid)),
                1 => m.kernel_scatter(&mut shm, 0..64, |_t, pid| Some((out, pid, 1))),
                _ => m.kernel_reduce(
                    &mut shm,
                    0..64,
                    crate::kernel::ReduceOp::Sum,
                    out,
                    0,
                    |t, pid| Some(t.read(xs, pid)),
                ),
            }));
            assert_eq!(caught_cause(r), CancelCause::Cancelled);
        }
        assert_eq!(m.metrics.steps, 0);
        // shared memory is structurally intact after the unwinds
        assert_eq!(shm.slice(out), &[0; 64]);
        m.clear_cancel_token();
        m.kernel_map(&mut shm, 0..64, out, |t, pid| t.read(xs, pid) * 2);
        assert_eq!(shm.slice(out), &[14; 64]);
    }

    #[test]
    fn children_inherit_the_token() {
        silence_cancel_unwinds();
        let token = CancelToken::new();
        let mut m = Machine::new(43);
        m.set_cancel_token(token.clone());
        let mut child = m.child(1);
        assert!(child.cancel_token().is_some());
        token.cancel();
        let mut shm = Shm::new();
        let a = shm.alloc("a", 4, 0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            child.step(&mut shm, 0..4, |ctx| ctx.write(a, ctx.pid, 1));
        }));
        assert_eq!(caught_cause(r), CancelCause::Cancelled);
    }

    #[test]
    fn mid_kernel_cancellation_from_another_thread_is_typed_and_safe() {
        silence_cancel_unwinds();
        // Timing-dependent by nature: a worker cancels while a large fused
        // kernel runs chunk-by-chunk. Whichever way the race lands, the
        // outcome must be "completed" or "typed cancel with intact Shm" —
        // never a crash or a mangled machine.
        let token = CancelToken::new();
        let mut m = Machine::new(44);
        m.tuning.force_sequential = true; // chunk-granular poll path
        m.set_cancel_token(token.clone());
        let n = 1 << 18;
        let mut shm = Shm::new();
        let out = shm.alloc("out", n, 0);
        let t = token.clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(200));
            t.cancel();
        });
        let r = catch_unwind(AssertUnwindSafe(|| {
            m.kernel_map(&mut shm, 0..n, out, |_t, pid| {
                (0..8).fold(pid as i64, |a, b| a.wrapping_mul(31).wrapping_add(b))
            });
        }));
        canceller.join().unwrap();
        if r.is_err() {
            assert_eq!(caught_cause(r), CancelCause::Cancelled);
        }
        // either way the machine and memory stay serviceable
        m.clear_cancel_token();
        m.kernel_map(&mut shm, 0..n, out, |_t, _pid| 5);
        assert!(shm.slice(out).iter().all(|&v| v == 5));
    }
}
