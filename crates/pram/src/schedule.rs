//! Processor allocation à la Matias–Vishkin (paper §5, Lemma 7).
//!
//! The algorithms assume as many virtual processors as they like; a real
//! machine has `p`. Lemma 7 (Matias & Vishkin 1991): an algorithm with work
//! bound `w` and time bound `t` that requires ≥ n processors can be
//! simulated with `p` processors in time `T = t + w/p + t_c·log t` and work
//! `W = p·t + w + p·t_c·log t`, where `t_c` is the constant-factor overhead
//! of the scheduling ("nearly-constant-time" hashing) machinery.
//!
//! We do not build the hashing scheduler itself — Lemma 7 is invoked by the
//! paper as a black-box *accounting* theorem (it is how Theorem 5's
//! O(n log h) work bound becomes an O(log n)-time, (n log h / log n)-
//! processor algorithm), and the quantity it produces is a formula over the
//! measured `t` and `w`. [`simulate_with_p`] applies that formula to a
//! [`Metrics`]; experiment F5 sweeps `p` and tabulates it.

use crate::metrics::Metrics;

/// Scheduling overhead constant `t_c` of Lemma 7. The paper leaves it
/// unspecified; 1 keeps the log-term visible without dominating.
pub const DEFAULT_TC: f64 = 1.0;

/// Cost of running a measured computation on `p` physical processors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduledCost {
    /// Physical processors assumed.
    pub p: u64,
    /// Simulated parallel time `T = t + w/p + t_c·log₂ t`.
    pub time: f64,
    /// Simulated total work `W = p·t + w + p·t_c·log₂ t`.
    pub work: f64,
    /// The ideal (no-overhead) time `max(t, w/p)` for reference.
    pub ideal_time: f64,
}

/// Apply Lemma 7 to a measured run.
///
/// Uses the metrics' *total* (executed + charged) time and work.
pub fn simulate_with_p(metrics: &Metrics, p: u64, tc: f64) -> ScheduledCost {
    assert!(p > 0, "need at least one physical processor");
    let t = metrics.total_steps() as f64;
    let w = metrics.total_work() as f64;
    let logt = if t > 1.0 { t.log2() } else { 0.0 };
    ScheduledCost {
        p,
        time: t + w / p as f64 + tc * logt,
        work: p as f64 * t + w + p as f64 * tc * logt,
        ideal_time: t.max(w / p as f64),
    }
}

/// Sweep `p` over powers of two from 1 to `max_p`, applying Lemma 7.
pub fn sweep_p(metrics: &Metrics, max_p: u64, tc: f64) -> Vec<ScheduledCost> {
    let mut out = Vec::new();
    let mut p = 1u64;
    while p <= max_p {
        out.push(simulate_with_p(metrics, p, tc));
        p <<= 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(t: u64, w: u64) -> Metrics {
        let mut m = Metrics::new();
        for _ in 0..t {
            m.record_step(w / t);
        }
        m
    }

    #[test]
    fn formula_matches_lemma7() {
        let m = metrics(16, 1600);
        let c = simulate_with_p(&m, 10, 1.0);
        assert_eq!(c.time, 16.0 + 160.0 + 4.0);
        assert_eq!(c.work, 160.0 + 1600.0 + 40.0);
        assert_eq!(c.ideal_time, 160.0);
    }

    #[test]
    fn more_processors_never_slower() {
        let m = metrics(32, 32 * 1000);
        let costs = sweep_p(&m, 1 << 12, DEFAULT_TC);
        for w in costs.windows(2) {
            assert!(w[1].time <= w[0].time);
        }
    }

    #[test]
    fn time_floor_is_t() {
        let m = metrics(32, 32 * 1000);
        let c = simulate_with_p(&m, u64::MAX / 2, 0.0);
        assert!(c.time >= 32.0);
        assert!(c.time < 33.0);
    }

    #[test]
    #[should_panic]
    fn zero_processors_rejected() {
        let m = metrics(1, 1);
        simulate_with_p(&m, 0, 1.0);
    }
}
