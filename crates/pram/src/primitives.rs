//! Constant-time CRCW primitives the paper invokes.
//!
//! Each primitive here is built from genuine synchronous machine steps
//! (executed as fused [`crate::kernel`]s, which charge identical metrics),
//! so its measured cost is its real cost in the model:
//!
//! * [`or_over`] / [`any_nonzero`] — "this amounts to an OR" (paper §2.2):
//!   one concurrent-write step.
//! * [`leftmost_nonzero`] — Observation 2.1 (Eppstein–Galil): the first
//!   non-zero element of an n-array in O(1) time with n processors, via the
//!   √n-block + pairwise-knockout scheme (6 steps, ≤ n processors each).
//! * [`min_index_quadratic`] — the classic O(1)-time minimum with m²
//!   processors by pairwise knockout; the building block of brute-force LP
//!   (Observation 2.2) and brute-force hull (Observation 2.3).
//! * [`broadcast`] — one step, one writer.
//!
//! The knockout scheme deliberately enumerates all pairs as virtual
//! processors — that *is* the algorithm's cost, and the experiments (table
//! F4, T8) rely on the super-linear work being visible in the metrics.
//!
//! All per-invocation workspace (`or.result`, `lmz.*`, `minq.*`, …) lives in
//! a [`Shm::scope`], so primitives called inside loops recycle a constant
//! set of array slots instead of growing shared memory without bound.

use crate::kernel::{KCtx, ReduceOp};
use crate::machine::Machine;
use crate::memory::{ArrayId, Shm};
use crate::{Word, EMPTY};

/// One-step concurrent OR over `flags[lo..hi]` (cells are 0/1).
///
/// Returns true iff some flag in range is non-zero. Costs exactly 1 step and
/// `hi - lo` work. Any CRCW variant suffices (all writers write 1).
pub fn or_over(m: &mut Machine, shm: &mut Shm, flags: ArrayId, lo: usize, hi: usize) -> bool {
    shm.scope(|shm| {
        let res = shm.alloc("or.result", 1, 0);
        m.kernel_reduce(shm, lo..hi, ReduceOp::Or, res, 0, |t, pid| {
            if t.read(flags, pid) != 0 {
                Some(1)
            } else {
                None
            }
        });
        shm.get(res, 0) != 0
    })
}

/// One-step test "does any active processor satisfy `pred`?".
///
/// The predicate runs *inside* the step against the pre-step snapshot (a
/// [`KCtx`]), so the whole test is one genuine PRAM step of `|pids|` work —
/// the concurrent-OR of paper §2.2 with an arbitrary local predicate.
pub fn any_nonzero<F>(m: &mut Machine, shm: &mut Shm, pids: &[usize], pred: F) -> bool
where
    F: Fn(usize, &KCtx) -> bool + Sync,
{
    shm.scope(|shm| {
        let res = shm.alloc("any.result", 1, 0);
        m.kernel_reduce(shm, pids, ReduceOp::Or, res, 0, |t, pid| {
            if pred(pid, t) {
                Some(1)
            } else {
                None
            }
        });
        shm.get(res, 0) != 0
    })
}

/// Eppstein–Galil / Fich-style leftmost non-zero (Observation 2.1).
///
/// Finds the smallest index `i` with `bits[i] != 0`, in O(1) steps (six) and
/// O(n) processors per step, or `None` if the array is all zero.
///
/// Scheme: split into b = ⌈√n⌉ blocks of size ≤ b.
/// 1. `flagged[j]` := OR of block j (1 step, n procs).
/// 2. pairwise knockout over blocks: pair (u < v), both flagged ⇒ v loses
///    (1 step, b² ≤ n + O(√n) procs).
/// 3. the unique flagged non-loser block writes its id (1 step, b procs).
///
/// Steps 4–6 repeat the same three steps inside the winning block.
pub fn leftmost_nonzero(m: &mut Machine, shm: &mut Shm, bits: ArrayId) -> Option<usize> {
    let n = shm.len(bits);
    if n == 0 {
        return None;
    }
    let b = (n as f64).sqrt().ceil() as usize;
    let nblocks = n.div_ceil(b);

    shm.scope(|shm| {
        let flagged = shm.alloc("lmz.flagged", nblocks, 0);
        let loser = shm.alloc("lmz.loser", nblocks, 0);
        let winner = shm.alloc("lmz.winner", 1, EMPTY);

        // Step 1: per-element OR into its block flag.
        m.kernel_scatter(shm, 0..n, |t, pid| {
            if t.read(bits, pid) != 0 {
                Some((flagged, pid / b, 1))
            } else {
                None
            }
        });

        // Step 2: knockout among blocks. Processor p encodes pair (u, v).
        m.kernel_scatter(shm, 0..nblocks * nblocks, |t, pid| {
            let (u, v) = (pid / nblocks, pid % nblocks);
            if u < v && t.read(flagged, u) != 0 && t.read(flagged, v) != 0 {
                Some((loser, v, 1))
            } else {
                None
            }
        });

        // Step 3: the surviving flagged block announces itself.
        m.kernel_scatter(shm, 0..nblocks, |t, pid| {
            if t.read(flagged, pid) != 0 && t.read(loser, pid) == 0 {
                Some((winner, 0, pid as Word))
            } else {
                None
            }
        });

        let wblock = shm.get(winner, 0);
        if wblock == EMPTY {
            return None;
        }
        let wblock = wblock as usize;
        let lo = wblock * b;
        let hi = (lo + b).min(n);
        let blen = hi - lo;

        // Steps 4–6: same knockout inside the winning block.
        let eflag = shm.alloc("lmz.eflag", blen, 0);
        let eloser = shm.alloc("lmz.eloser", blen, 0);
        let ewin = shm.alloc("lmz.ewin", 1, EMPTY);
        m.kernel_scatter(shm, 0..blen, |t, pid| {
            if t.read(bits, lo + pid) != 0 {
                Some((eflag, pid, 1))
            } else {
                None
            }
        });
        m.kernel_scatter(shm, 0..blen * blen, |t, pid| {
            let (u, v) = (pid / blen, pid % blen);
            if u < v && t.read(eflag, u) != 0 && t.read(eflag, v) != 0 {
                Some((eloser, v, 1))
            } else {
                None
            }
        });
        m.kernel_scatter(shm, 0..blen, |t, pid| {
            if t.read(eflag, pid) != 0 && t.read(eloser, pid) == 0 {
                Some((ewin, 0, (lo + pid) as Word))
            } else {
                None
            }
        });

        let w = shm.get(ewin, 0);
        if w == EMPTY {
            None
        } else {
            Some(w as usize)
        }
    })
}

/// O(1)-time minimum by pairwise knockout with m² processors.
///
/// Returns the index (into `keys`) of the minimum key; ties broken toward
/// the smaller index. `keys` are host-computed comparison keys for the
/// active elements (the PRAM processors compare them pairwise). Costs 2
/// steps and `m² + m` work — the super-linear work is the point (this is
/// the engine of the paper's brute-force Observations 2.2/2.3).
pub fn min_index_quadratic(m: &mut Machine, shm: &mut Shm, keys: &[i64]) -> Option<usize> {
    let n = keys.len();
    if n == 0 {
        return None;
    }
    shm.scope(|shm| {
        let loser = shm.alloc("minq.loser", n, 0);
        let win = shm.alloc("minq.win", 1, EMPTY);
        m.kernel_scatter(shm, 0..n * n, |_, pid| {
            let (u, v) = (pid / n, pid % n);
            if u < v {
                // strictly-smaller key wins; equal keys favour the smaller index
                if keys[u] <= keys[v] {
                    Some((loser, v, 1))
                } else {
                    Some((loser, u, 1))
                }
            } else {
                None
            }
        });
        m.kernel_scatter(shm, 0..n, |t, pid| {
            if t.read(loser, pid) == 0 {
                Some((win, 0, pid as Word))
            } else {
                None
            }
        });
        let w = shm.get(win, 0);
        debug_assert_ne!(w, EMPTY);
        Some(w as usize)
    })
}

/// One-step broadcast: processor `src_pid` writes `value` to `cell[idx]`.
pub fn broadcast(
    m: &mut Machine,
    shm: &mut Shm,
    cell: ArrayId,
    idx: usize,
    src_pid: usize,
    value: Word,
) {
    m.kernel_scatter(shm, src_pid..src_pid + 1, |_, _| Some((cell, idx, value)));
}

/// One-step concurrent count using Combining-CRCW (Fetch&Add flavour).
///
/// Counts the pids for which `flag_of` is non-zero in `flags`. This uses the
/// *strong* combining model; the paper's algorithms use prefix sums (see
/// [`crate::prefix`]) where counting is needed on the weaker model, and the
/// experiments label which one a table used.
pub fn count_ones_combining(m: &mut Machine, shm: &mut Shm, flags: ArrayId) -> u64 {
    let n = shm.len(flags);
    shm.scope(|shm| {
        let acc = shm.alloc("count.acc", 1, 0);
        m.kernel_reduce(shm, 0..n, ReduceOp::Sum, acc, 0, |t, pid| {
            if t.read(flags, pid) != 0 {
                Some(1)
            } else {
                None
            }
        });
        shm.get(acc, 0) as u64
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(bits: &[Word]) -> (Machine, Shm, ArrayId) {
        let mut shm = Shm::new();
        let a = shm.alloc("bits", bits.len(), 0);
        for (i, &b) in bits.iter().enumerate() {
            shm.host_set(a, i, b);
        }
        (Machine::new(42), shm, a)
    }

    #[test]
    fn or_true_false() {
        let (mut m, mut shm, a) = setup(&[0, 0, 1, 0]);
        assert!(or_over(&mut m, &mut shm, a, 0, 4));
        assert!(!or_over(&mut m, &mut shm, a, 0, 2));
        assert_eq!(m.metrics.steps, 2);
    }

    #[test]
    fn or_over_recycles_its_workspace() {
        let (mut m, mut shm, a) = setup(&[0, 1, 0, 0]);
        or_over(&mut m, &mut shm, a, 0, 4);
        let count = shm.array_count();
        for _ in 0..100 {
            or_over(&mut m, &mut shm, a, 0, 4);
        }
        assert_eq!(
            shm.array_count(),
            count,
            "iterated or_over must not grow shared memory"
        );
    }

    #[test]
    fn leftmost_basic() {
        let (mut m, mut shm, a) = setup(&[0, 0, 1, 0, 1, 1, 0]);
        assert_eq!(leftmost_nonzero(&mut m, &mut shm, a), Some(2));
        assert_eq!(m.metrics.steps, 6, "Observation 2.1 must be O(1) steps");
    }

    #[test]
    fn leftmost_none_first_last() {
        let (mut m, mut shm, a) = setup(&[0, 0, 0, 0]);
        assert_eq!(leftmost_nonzero(&mut m, &mut shm, a), None);
        let (mut m, mut shm, a) = setup(&[1, 0, 0]);
        assert_eq!(leftmost_nonzero(&mut m, &mut shm, a), Some(0));
        let (mut m, mut shm, a) = setup(&[0, 0, 0, 7]);
        assert_eq!(leftmost_nonzero(&mut m, &mut shm, a), Some(3));
        let (mut m, mut shm, a) = setup(&[5]);
        assert_eq!(leftmost_nonzero(&mut m, &mut shm, a), Some(0));
    }

    #[test]
    fn leftmost_matches_reference_on_many_patterns() {
        let mut rng = crate::rng::SplitMix64::new(9);
        for n in [1usize, 2, 3, 10, 17, 64, 100, 257] {
            for _ in 0..10 {
                let bits: Vec<Word> = (0..n)
                    .map(|_| if rng.bernoulli(0.1) { 1 } else { 0 })
                    .collect();
                let expect = bits.iter().position(|&b| b != 0);
                let (mut m, mut shm, a) = setup(&bits);
                assert_eq!(
                    leftmost_nonzero(&mut m, &mut shm, a),
                    expect,
                    "n={n} bits={bits:?}"
                );
            }
        }
    }

    #[test]
    fn min_index_quadratic_correct_and_superlinear_work() {
        let keys = vec![5i64, 3, 9, 3, 7];
        let mut shm = Shm::new();
        let mut m = Machine::new(1);
        let idx = min_index_quadratic(&mut m, &mut shm, &keys);
        assert_eq!(idx, Some(1), "ties break to the smaller index");
        assert_eq!(m.metrics.steps, 2);
        assert_eq!(m.metrics.work, 25 + 5);
    }

    #[test]
    fn min_index_singleton() {
        let mut shm = Shm::new();
        let mut m = Machine::new(1);
        assert_eq!(min_index_quadratic(&mut m, &mut shm, &[42]), Some(0));
        assert_eq!(min_index_quadratic(&mut m, &mut shm, &[]), None);
    }

    #[test]
    fn broadcast_and_count() {
        let (mut m, mut shm, a) = setup(&[1, 0, 1, 1, 0, 1]);
        assert_eq!(count_ones_combining(&mut m, &mut shm, a), 4);
        let cell = shm.alloc("c", 2, 0);
        broadcast(&mut m, &mut shm, cell, 1, 3, 99);
        assert_eq!(shm.get(cell, 1), 99);
    }

    #[test]
    fn any_nonzero_costs_one_step_each() {
        let (mut m, mut shm, _a) = setup(&[0, 0, 0]);
        let pids = vec![0usize, 1, 2];
        assert!(any_nonzero(&mut m, &mut shm, &pids, |pid, _| pid == 2));
        assert!(!any_nonzero(&mut m, &mut shm, &pids, |_, _| false));
        assert_eq!(
            m.metrics.steps, 2,
            "each any_nonzero test is one genuine PRAM step"
        );
        assert_eq!(m.metrics.work, 6);
    }

    #[test]
    fn any_nonzero_predicate_reads_the_snapshot() {
        let (mut m, mut shm, a) = setup(&[0, 7, 0]);
        let pids = vec![0usize, 1, 2];
        assert!(any_nonzero(&mut m, &mut shm, &pids, |pid, t| t
            .read(a, pid)
            == 7));
        assert!(!any_nonzero(&mut m, &mut shm, &pids, |pid, t| t
            .read(a, pid)
            < 0));
    }
}
