//! PRAM cost accounting: time, work, processors, phases.
//!
//! These counters are the *measurements* of every experiment in this
//! reproduction: the paper's theorems are claims about exactly these
//! quantities. Two buckets are kept:
//!
//! * **executed** — steps the simulator actually ran through
//!   [`crate::Machine::step`]; `work` adds the number of active processors
//!   in each step.
//! * **charged** — costs accounted analytically via
//!   [`crate::Machine::charge`]. A handful of textbook subroutines (e.g. the
//!   Atallah–Goodrich O(1)-time hull-tangent primitives of paper §2.4, which
//!   the paper itself invokes as black boxes with `n^{1/b}` processors) are
//!   executed by efficient host code and charged their published cost. Every
//!   charge site documents the bound it charges; experiment tables report
//!   the two buckets separately so nothing analytic hides inside a measured
//!   number.

/// Cost record for one named phase of an algorithm.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Phase label (e.g. `"bridge-finding"`, `"failure-sweep"`).
    pub name: String,
    /// Executed synchronous steps attributed to the phase.
    pub steps: u64,
    /// Executed work (processor-steps) attributed to the phase.
    pub work: u64,
    /// Analytically charged steps attributed to the phase.
    pub charged_steps: u64,
    /// Analytically charged work attributed to the phase.
    pub charged_work: u64,
    /// Host wall-clock nanoseconds spent simulating the phase's steps.
    pub host_ns: u64,
}

/// Accumulated PRAM costs for one run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Executed synchronous steps (the PRAM "time" T).
    pub steps: u64,
    /// Executed work: Σ over steps of the number of active processors.
    pub work: u64,
    /// Largest number of processors active in any single step.
    pub peak_processors: u64,
    /// Steps charged analytically (see module docs).
    pub charged_steps: u64,
    /// Work charged analytically.
    pub charged_work: u64,
    /// Per-phase breakdown, in the order phases were opened.
    pub phases: Vec<PhaseRecord>,
    /// Steps the host actually executed (differs from `steps` after
    /// [`Metrics::absorb_parallel`], which maxes simulated time across
    /// children but sums what the host really ran).
    pub host_steps: u64,
    /// Host wall-clock nanoseconds spent in compute phases (running the
    /// step closures). Host observability only — never a simulated cost.
    pub host_compute_ns: u64,
    /// Host wall-clock nanoseconds spent in commit phases (write
    /// resolution). Host observability only.
    pub host_commit_ns: u64,
    /// Total writes buffered by step closures.
    pub writes_buffered: u64,
    /// Cells that received a committed value.
    pub writes_committed: u64,
    /// Cells written by two or more processors in one step (resolved by
    /// the step's [`crate::WritePolicy`]).
    pub write_conflicts: u64,
    /// Steps whose commit took the conflict-free fast path (in-order
    /// scatter: no sort, no policy resolution).
    pub fastpath_steps: u64,
    /// Steps executed as fused bulk kernels ([`crate::kernel`]): no per-pid
    /// `Ctx`, and (except for conflicted scatters) no write log at all.
    /// Kernel steps charge the same steps/work/write/conflict metrics as the
    /// generic path; this counter is host observability only.
    pub kernel_steps: u64,
    /// Largest number of host execution lanes (calling thread + pool
    /// workers) any phase of this run used: 1 while everything ran
    /// sequentially, 0 until a step executes. Host observability only —
    /// the simulated result is bit-identical at every lane count — recorded
    /// so bench CSV rows carry the core count they ran on. Absorbs take the
    /// maximum.
    pub threads: u64,
    /// Dynamic-analysis report ([`crate::AnalysisReport`]), populated only
    /// when [`crate::Machine::enable_analysis`] is on. Boxed so the common
    /// disabled case costs one pointer. Child-machine reports fold into the
    /// parent's on [`Metrics::absorb`]/[`Metrics::absorb_parallel`].
    pub analysis: Option<Box<crate::AnalysisReport>>,
    /// Injected-fault event counts ([`crate::faults`]). All zero unless a
    /// [`crate::faults::FaultPlan`] is installed. Host observability: both
    /// absorbs sum these, so a parent sees every fault in its machine tree.
    pub faults: crate::faults::FaultCounters,
    /// Las Vegas supervisor statistics ([`mod@crate::supervise`]). All zero
    /// unless an entry point ran under [`crate::supervise::supervise`].
    /// Host observability: both absorbs sum these.
    pub supervisor: crate::supervise::SupervisorStats,
    /// Serving-runtime statistics (admission, shedding, breaker activity).
    /// All zero unless requests ran through `ipch-service`, which fills
    /// this block in its aggregated metrics and health snapshots. Host
    /// observability: both absorbs sum these.
    pub service: ServiceStats,
    /// Index into `phases` of the currently open phase, if any.
    current_phase: Option<usize>,
}

/// Counters of the deadline-aware serving runtime (`ipch-service`): one
/// block per service (aggregated across requests), carried on [`Metrics`]
/// so health snapshots, absorbs and reports flow through the same plumbing
/// as every other observability counter.
///
/// Invariant maintained by the runtime: every submitted request resolves
/// exactly once, so `submitted == completed + rejected_queue_full +
/// rejected_tenant_limit + shed_expired + static_rejects + cancelled +
/// deadline_exceeded + invalid_inputs + run_errors + panics_isolated` once
/// the service drains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests presented to the admission controller.
    pub submitted: u64,
    /// Requests that passed admission and were enqueued.
    pub admitted: u64,
    /// Requests that finished with a correct (certified) result.
    pub completed: u64,
    /// Requests shed at admission because the bounded queue was full.
    pub rejected_queue_full: u64,
    /// Requests shed at admission by the per-tenant concurrency limit.
    pub rejected_tenant_limit: u64,
    /// Requests shed *after* admission because their deadline expired
    /// while still queued (never dispatched).
    pub shed_expired: u64,
    /// Requests aborted by an explicit client cancel.
    pub cancelled: u64,
    /// Requests aborted by deadline expiry mid-run.
    pub deadline_exceeded: u64,
    /// Requests rejected by input validation (typed `InputError`).
    pub invalid_inputs: u64,
    /// Requests rejected at admission by the static plan verifier
    /// ([`crate::verify`]): the workload's symbolic step plan failed its
    /// bounds or contract check at the request's input size, so the
    /// request consumed no queue slot and no supervisor attempt.
    pub static_rejects: u64,
    /// Requests that ended in a typed algorithm error
    /// ([`crate::RunError`], e.g. attempts exhausted under faults).
    pub run_errors: u64,
    /// Requests whose handler panicked; the panic was isolated to the
    /// request and surfaced as a typed error.
    pub panics_isolated: u64,
    /// Circuit-breaker transitions into a *more* degraded tier.
    pub breaker_trips: u64,
    /// Half-open probe requests dispatched at a less-degraded tier.
    pub breaker_probes: u64,
    /// Breaker transitions back to the full tier after a clean probe.
    pub breaker_recoveries: u64,
    /// Requests served at the reduced-retry degradation tier.
    pub degraded_tier1_runs: u64,
    /// Requests served at the sequential-exact degradation tier.
    pub degraded_tier2_runs: u64,
    /// Coalesced batches dispatched (two or more members fused into one
    /// machine run). Observability only: every member still resolves
    /// individually, so batch counters stay outside the resolution sum.
    pub batches_formed: u64,
    /// Members across all coalesced batches (mean batch size =
    /// `batch_members / batches_formed`).
    pub batch_members: u64,
    /// Large requests split across shard workers (partial hulls merged via
    /// the hull-of-hulls path).
    pub shard_splits: u64,
    /// Shard merges whose stitched hull failed the whole-hull certificate
    /// (or the bridge invariant) and fell back to an unsharded run.
    pub shard_merge_failures: u64,
}

impl ServiceStats {
    /// Sum another block into this one (service-level roll-up).
    pub fn absorb(&mut self, other: &ServiceStats) {
        self.submitted += other.submitted;
        self.admitted += other.admitted;
        self.completed += other.completed;
        self.rejected_queue_full += other.rejected_queue_full;
        self.rejected_tenant_limit += other.rejected_tenant_limit;
        self.shed_expired += other.shed_expired;
        self.cancelled += other.cancelled;
        self.deadline_exceeded += other.deadline_exceeded;
        self.invalid_inputs += other.invalid_inputs;
        self.static_rejects += other.static_rejects;
        self.run_errors += other.run_errors;
        self.panics_isolated += other.panics_isolated;
        self.breaker_trips += other.breaker_trips;
        self.breaker_probes += other.breaker_probes;
        self.breaker_recoveries += other.breaker_recoveries;
        self.degraded_tier1_runs += other.degraded_tier1_runs;
        self.degraded_tier2_runs += other.degraded_tier2_runs;
        self.batches_formed += other.batches_formed;
        self.batch_members += other.batch_members;
        self.shard_splits += other.shard_splits;
        self.shard_merge_failures += other.shard_merge_failures;
    }

    /// Requests shed at or after admission (never dispatched).
    pub fn total_shed(&self) -> u64 {
        self.rejected_queue_full + self.rejected_tenant_limit + self.shed_expired
    }

    /// Requests that resolved, by any outcome (the "no lost request" sum).
    pub fn total_resolved(&self) -> u64 {
        self.completed
            + self.total_shed()
            + self.cancelled
            + self.deadline_exceeded
            + self.invalid_inputs
            + self.static_rejects
            + self.run_errors
            + self.panics_isolated
    }
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total time including charged steps.
    pub fn total_steps(&self) -> u64 {
        self.steps + self.charged_steps
    }

    /// Total work including charged work.
    pub fn total_work(&self) -> u64 {
        self.work + self.charged_work
    }

    /// Record one executed step with `procs` active processors.
    pub(crate) fn record_step(&mut self, procs: u64) {
        self.steps += 1;
        self.work += procs;
        self.peak_processors = self.peak_processors.max(procs);
        if let Some(i) = self.current_phase {
            self.phases[i].steps += 1;
            self.phases[i].work += procs;
        }
    }

    /// Record the host wall time of one executed step (compute + commit).
    pub(crate) fn record_host_ns(&mut self, compute_ns: u64, commit_ns: u64) {
        self.host_steps += 1;
        self.host_compute_ns += compute_ns;
        self.host_commit_ns += commit_ns;
        if let Some(i) = self.current_phase {
            self.phases[i].host_ns += compute_ns + commit_ns;
        }
    }

    /// Record the host lane count of one executed phase (max-accumulating).
    pub(crate) fn record_threads(&mut self, lanes: usize) {
        self.threads = self.threads.max(lanes as u64);
    }

    /// Total host wall time spent simulating, in nanoseconds.
    pub fn host_total_ns(&self) -> u64 {
        self.host_compute_ns + self.host_commit_ns
    }

    /// Fraction of host-executed steps whose commit took the conflict-free
    /// fast path (`None` before any step executes).
    pub fn fastpath_hit_rate(&self) -> Option<f64> {
        if self.host_steps == 0 {
            return None;
        }
        Some(self.fastpath_steps as f64 / self.host_steps as f64)
    }

    /// Record an analytic charge.
    pub(crate) fn record_charge(&mut self, steps: u64, work: u64) {
        self.charged_steps += steps;
        self.charged_work += work;
        if let Some(i) = self.current_phase {
            self.phases[i].charged_steps += steps;
            self.phases[i].charged_work += work;
        }
    }

    /// Open a named phase; subsequent costs are attributed to it until the
    /// next `begin_phase` or [`Metrics::end_phase`]. Reopening an existing
    /// name resumes that phase's counters.
    pub fn begin_phase(&mut self, name: &str) {
        if let Some(i) = self.phases.iter().position(|p| p.name == name) {
            self.current_phase = Some(i);
            return;
        }
        self.phases.push(PhaseRecord {
            name: name.to_string(),
            ..PhaseRecord::default()
        });
        self.current_phase = Some(self.phases.len() - 1);
    }

    /// Close the current phase (costs fall back to the totals only).
    pub fn end_phase(&mut self) {
        self.current_phase = None;
    }

    /// Look up a phase record by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseRecord> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Merge metrics of subcomputations that ran *in parallel* (each on its
    /// own processor group): time advances by the **maximum** child time,
    /// work by the **sum** of child works. This is how the paper's
    /// simultaneous subproblems (one bridge-finding instance per tree node,
    /// one solver per subproblem, …) are accounted.
    pub fn absorb_parallel(&mut self, children: &[Metrics]) {
        if children.is_empty() {
            return;
        }
        self.steps += children.iter().map(|c| c.steps).max().unwrap_or(0);
        self.charged_steps += children.iter().map(|c| c.charged_steps).max().unwrap_or(0);
        self.work += children.iter().map(|c| c.work).sum::<u64>();
        self.charged_work += children.iter().map(|c| c.charged_work).sum::<u64>();
        let concurrent_peak: u64 = children.iter().map(|c| c.peak_processors).sum();
        self.peak_processors = self.peak_processors.max(concurrent_peak);
        // Host-side observability counters reflect what the host actually
        // did, so they always add up (even though *simulated* time is max'd).
        for c in children {
            self.host_steps += c.host_steps;
            self.host_compute_ns += c.host_compute_ns;
            self.host_commit_ns += c.host_commit_ns;
            self.writes_buffered += c.writes_buffered;
            self.writes_committed += c.writes_committed;
            self.write_conflicts += c.write_conflicts;
            self.fastpath_steps += c.fastpath_steps;
            self.kernel_steps += c.kernel_steps;
            self.threads = self.threads.max(c.threads);
            self.faults.absorb(&c.faults);
            self.supervisor.absorb(&c.supervisor);
            self.service.absorb(&c.service);
            self.absorb_analysis(c);
        }
        if let Some(i) = self.current_phase {
            let p = &mut self.phases[i];
            p.steps += children.iter().map(|c| c.steps).max().unwrap_or(0);
            p.charged_steps += children.iter().map(|c| c.charged_steps).max().unwrap_or(0);
            p.work += children.iter().map(|c| c.work).sum::<u64>();
            p.charged_work += children.iter().map(|c| c.charged_work).sum::<u64>();
        }
    }

    /// Merge another metrics object into this one (phases appended by name).
    ///
    /// Used when an algorithm runs a sub-algorithm on a child machine, e.g.
    /// the 3-D algorithm's recursive 2-D calls (paper §4.3 step 3).
    pub fn absorb(&mut self, other: &Metrics) {
        self.steps += other.steps;
        self.work += other.work;
        self.peak_processors = self.peak_processors.max(other.peak_processors);
        self.charged_steps += other.charged_steps;
        self.charged_work += other.charged_work;
        self.host_steps += other.host_steps;
        self.host_compute_ns += other.host_compute_ns;
        self.host_commit_ns += other.host_commit_ns;
        self.writes_buffered += other.writes_buffered;
        self.writes_committed += other.writes_committed;
        self.write_conflicts += other.write_conflicts;
        self.fastpath_steps += other.fastpath_steps;
        self.kernel_steps += other.kernel_steps;
        self.threads = self.threads.max(other.threads);
        self.faults.absorb(&other.faults);
        self.supervisor.absorb(&other.supervisor);
        self.service.absorb(&other.service);
        self.absorb_analysis(other);
        for p in &other.phases {
            if let Some(mine) = self.phases.iter_mut().find(|q| q.name == p.name) {
                mine.steps += p.steps;
                mine.work += p.work;
                mine.charged_steps += p.charged_steps;
                mine.charged_work += p.charged_work;
                mine.host_ns += p.host_ns;
            } else {
                self.phases.push(p.clone());
            }
        }
    }

    /// Fold a child's analysis report (if any) into this one's.
    fn absorb_analysis(&mut self, other: &Metrics) {
        if let Some(theirs) = &other.analysis {
            match &mut self.analysis {
                Some(mine) => mine.merge(theirs, crate::analyze::MERGE_VIOLATION_CAP),
                None => self.analysis = Some(theirs.clone()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_accounting() {
        let mut m = Metrics::new();
        m.record_step(10);
        m.record_step(4);
        assert_eq!(m.steps, 2);
        assert_eq!(m.work, 14);
        assert_eq!(m.peak_processors, 10);
        assert_eq!(m.total_steps(), 2);
    }

    #[test]
    fn charge_is_separate_bucket() {
        let mut m = Metrics::new();
        m.record_step(5);
        m.record_charge(3, 100);
        assert_eq!(m.steps, 1);
        assert_eq!(m.charged_steps, 3);
        assert_eq!(m.total_steps(), 4);
        assert_eq!(m.total_work(), 105);
    }

    #[test]
    fn phases_attribute_and_resume() {
        let mut m = Metrics::new();
        m.begin_phase("a");
        m.record_step(2);
        m.begin_phase("b");
        m.record_step(3);
        m.begin_phase("a"); // resume
        m.record_step(4);
        m.end_phase();
        m.record_step(1); // unattributed
        let a = m.phase("a").unwrap();
        let b = m.phase("b").unwrap();
        assert_eq!(a.steps, 2);
        assert_eq!(a.work, 6);
        assert_eq!(b.steps, 1);
        assert_eq!(m.steps, 4);
    }

    #[test]
    fn absorb_merges_by_phase_name() {
        let mut m = Metrics::new();
        m.begin_phase("x");
        m.record_step(2);
        m.end_phase();

        let mut o = Metrics::new();
        o.begin_phase("x");
        o.record_step(3);
        o.begin_phase("y");
        o.record_charge(1, 7);
        o.end_phase();

        m.absorb(&o);
        assert_eq!(m.steps, 2);
        assert_eq!(m.phase("x").unwrap().steps, 2);
        assert_eq!(m.phase("y").unwrap().charged_work, 7);
        assert_eq!(m.charged_work, 7);
    }
}
