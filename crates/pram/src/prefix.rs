//! Parallel prefix sums (Ladner–Fischer / Hillis–Steele).
//!
//! The unsorted-input algorithms use "parallel prefix sum to compact the
//! remaining points and find the number of subproblems remaining" (paper
//! §4.1 step 3, §4.3 step 4). On the weak CRCW variants counting genuinely
//! costs Θ(log n) time with n processors; we implement the Hillis–Steele
//! scan — ⌈log₂ n⌉ steps, n processors per step — which is exactly the cost
//! the paper charges ("If i ≥ (log n)/32, then the algorithm has already
//! taken O(log n) time, so use parallel prefix sum…").

use crate::machine::Machine;
use crate::memory::{ArrayId, Shm};
use crate::Word;

/// In-place inclusive prefix sum over `arr`: `arr[i] := Σ_{j ≤ i} arr[j]`.
///
/// Costs ⌈log₂ n⌉ steps of n processors each.
pub fn inclusive_prefix_sum(m: &mut Machine, shm: &mut Shm, arr: ArrayId) {
    let n = shm.len(arr);
    if n <= 1 {
        return;
    }
    shm.scope(|shm| {
        let scratch = shm.alloc("prefix.scratch", n, 0);
        let mut src = arr;
        let mut dst = scratch;
        let mut d = 1usize;
        while d < n {
            let s = src;
            m.kernel_map(shm, 0..n, dst, move |t, i| {
                let v = t.read(s, i);
                if i >= d {
                    v.wrapping_add(t.read(s, i - d))
                } else {
                    v
                }
            });
            std::mem::swap(&mut src, &mut dst);
            d <<= 1;
        }
        if src != arr {
            // even number of rounds landed the result in scratch: copy back (1 step)
            m.kernel_map(shm, 0..n, arr, |t, i| t.read(scratch, i));
        }
    });
}

/// Exclusive prefix sum: returns a fresh array `out` with
/// `out[i] = Σ_{j < i} arr[j]`, leaving `arr` untouched, plus the total.
///
/// Built from one copy step + [`inclusive_prefix_sum`] + one shift step.
pub fn exclusive_prefix_sum(m: &mut Machine, shm: &mut Shm, arr: ArrayId) -> (ArrayId, Word) {
    let n = shm.len(arr);
    let out = shm.alloc("prefix.excl", n, 0);
    if n == 0 {
        return (out, 0);
    }
    let total = shm.scope(|shm| {
        let incl = shm.alloc("prefix.incl", n, 0);
        m.kernel_map(shm, 0..n, incl, |t, i| t.read(arr, i));
        inclusive_prefix_sum(m, shm, incl);
        m.kernel_map(
            shm,
            0..n,
            out,
            move |t, i| {
                if i == 0 {
                    0
                } else {
                    t.read(incl, i - 1)
                }
            },
        );
        shm.get(incl, n - 1)
    });
    (out, total)
}

/// Stable parallel compaction: writes the indices `i` with `flags[i] != 0`
/// densely (in increasing order of `i`) into a fresh array, returning
/// `(dest, count)`. This is the "compact the remaining points" operation of
/// §4.1 step 3. Cost: one prefix sum + 2 steps.
pub fn compact_indices(m: &mut Machine, shm: &mut Shm, flags: ArrayId) -> (ArrayId, usize) {
    let n = shm.len(flags);
    shm.scope(|shm| {
        let ranks = shm.alloc("compact.ranks", n, 0);
        m.kernel_map(
            shm,
            0..n,
            ranks,
            |t, i| {
                if t.read(flags, i) != 0 {
                    1
                } else {
                    0
                }
            },
        );
        let (excl, total) = exclusive_prefix_sum(m, shm, ranks);
        let dest = shm.alloc("compact.dest", total as usize, crate::EMPTY);
        m.kernel_scatter(shm, 0..n, |t, i| {
            if t.read(flags, i) != 0 {
                Some((dest, t.read(excl, i) as usize, i as Word))
            } else {
                None
            }
        });
        // the result outlives the workspace scope
        shm.promote(dest);
        (dest, total as usize)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn arr_from(shm: &mut Shm, vals: &[Word]) -> ArrayId {
        let a = shm.alloc("a", vals.len(), 0);
        for (i, &v) in vals.iter().enumerate() {
            shm.host_set(a, i, v);
        }
        a
    }

    #[test]
    fn inclusive_small() {
        let mut m = Machine::new(1);
        let mut shm = Shm::new();
        let a = arr_from(&mut shm, &[3, 1, 4, 1, 5]);
        inclusive_prefix_sum(&mut m, &mut shm, a);
        assert_eq!(shm.slice(a), &[3, 4, 8, 9, 14]);
    }

    #[test]
    fn inclusive_log_steps() {
        for n in [2usize, 3, 4, 7, 8, 9, 64, 100] {
            let mut m = Machine::new(1);
            let mut shm = Shm::new();
            let a = arr_from(&mut shm, &vec![1; n]);
            inclusive_prefix_sum(&mut m, &mut shm, a);
            let expect: Vec<Word> = (1..=n as Word).collect();
            assert_eq!(shm.slice(a), expect.as_slice(), "n={n}");
            let logn = (n as f64).log2().ceil() as u64;
            assert!(
                m.metrics.steps <= logn + 1,
                "n={n}: {} steps > log n + copy = {}",
                m.metrics.steps,
                logn + 1
            );
        }
    }

    #[test]
    fn inclusive_trivial_sizes() {
        let mut m = Machine::new(1);
        let mut shm = Shm::new();
        let a = arr_from(&mut shm, &[]);
        inclusive_prefix_sum(&mut m, &mut shm, a);
        let b = arr_from(&mut shm, &[9]);
        inclusive_prefix_sum(&mut m, &mut shm, b);
        assert_eq!(shm.slice(b), &[9]);
        assert_eq!(m.metrics.steps, 0);
    }

    #[test]
    fn exclusive_matches_reference() {
        let mut rng = SplitMix64::new(77);
        for n in [1usize, 2, 5, 33, 128] {
            let vals: Vec<Word> = (0..n).map(|_| rng.next_below(100) as Word).collect();
            let mut m = Machine::new(2);
            let mut shm = Shm::new();
            let a = arr_from(&mut shm, &vals);
            let (out, total) = exclusive_prefix_sum(&mut m, &mut shm, a);
            let mut acc = 0;
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(shm.get(out, i), acc);
                acc += v;
            }
            assert_eq!(total, acc);
            assert_eq!(shm.slice(a), vals.as_slice(), "input must be untouched");
        }
    }

    #[test]
    fn compact_is_stable_and_dense() {
        let mut m = Machine::new(3);
        let mut shm = Shm::new();
        let f = arr_from(&mut shm, &[0, 1, 1, 0, 0, 1, 0, 1]);
        let (dest, count) = compact_indices(&mut m, &mut shm, f);
        assert_eq!(count, 4);
        assert_eq!(shm.slice(dest), &[1, 2, 5, 7]);
    }

    #[test]
    fn compact_empty_and_full() {
        let mut m = Machine::new(4);
        let mut shm = Shm::new();
        let f = arr_from(&mut shm, &[0, 0, 0]);
        let (_, count) = compact_indices(&mut m, &mut shm, f);
        assert_eq!(count, 0);
        let g = arr_from(&mut shm, &[1, 1]);
        let (d, count) = compact_indices(&mut m, &mut shm, g);
        assert_eq!(count, 2);
        assert_eq!(shm.slice(d), &[0, 1]);
    }
}
