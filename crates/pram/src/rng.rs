//! Deterministic, splittable pseudo-randomness for virtual processors.
//!
//! The paper's algorithms are *randomized* CRCW PRAM algorithms: in a single
//! synchronous step every processor may flip private coins (e.g. "attempt a
//! write with probability 2k/m", §3.1). For replayable experiments each
//! (machine seed, step, pid) triple must map to an independent-looking
//! stream. SplitMix64 is the standard small generator for this: one 64-bit
//! state, invertible mixing, passes BigCrush when streamed, and trivially
//! "forked" by hashing the lineage into a fresh state.

/// A SplitMix64 generator.
///
/// Not cryptographic; used only for simulation coin flips.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
    /// Fault-plane override: when set, [`SplitMix64::bernoulli`] returns this
    /// value unconditionally (the biased-coin injection of
    /// [`crate::faults`]). `None` for every normally constructed generator.
    bias: Option<bool>,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The 64-bit finalizer from SplitMix64 (Stafford's Mix13 variant).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SplitMix64 {
    /// Create a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed,
            bias: None,
        }
    }

    /// Derive a generator for a (step, pid) pair from a machine seed.
    ///
    /// Used by the simulator so that every virtual processor in every step
    /// gets its own stream, independent of evaluation order.
    #[inline]
    pub fn for_step_pid(seed: u64, step: u64, pid: u64) -> Self {
        let s = mix64(seed ^ mix64(step.wrapping_mul(0xA24B_AED4_963E_E407) ^ mix64(pid)));
        Self {
            state: s,
            bias: None,
        }
    }

    /// Force every subsequent [`SplitMix64::bernoulli`] call to return
    /// `force` (crate-internal: the fault plane biases selected per-(step,
    /// pid) streams; see [`crate::faults::RngBias`]). The uniform draws
    /// (`next_u64`/`next_below`/`next_f64`) are unaffected.
    #[inline]
    pub(crate) fn set_bias(&mut self, force: bool) {
        self.bias = Some(force);
    }

    /// Next raw 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift with rejection, so the result is exactly
    /// uniform — important for the sample-uniformity experiment (T7).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if let Some(force) = self.bias {
            // Fault-plane biased coin: the stream still advances so the
            // *sequence* of uniform draws is unperturbed, only the coin's
            // outcome is forced.
            let _ = self.next_f64();
            return force;
        }
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }

    /// Fork a statistically independent child stream tagged by `tag`.
    /// The fault-plane bias (if any) is not inherited.
    #[inline]
    pub fn fork(&mut self, tag: u64) -> Self {
        Self {
            state: mix64(self.next_u64() ^ mix64(tag)),
            bias: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn step_pid_streams_differ() {
        let mut a = SplitMix64::for_step_pid(1, 0, 0);
        let mut b = SplitMix64::for_step_pid(1, 0, 1);
        let mut c = SplitMix64::for_step_pid(1, 1, 0);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_ne!(x, y);
        assert_ne!(x, z);
        assert_ne!(y, z);
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_below_uniformity_rough() {
        // Chi-squared against uniform over 16 buckets; 99.9% critical value
        // for 15 dof is ~37.7. Use a generous bound to keep the test stable.
        let mut r = SplitMix64::new(99);
        let n = 160_000u64;
        let mut counts = [0u64; 16];
        for _ in 0..n {
            counts[r.next_below(16) as usize] += 1;
        }
        let expect = n as f64 / 16.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        assert!(chi2 < 60.0, "chi2 = {chi2}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = SplitMix64::new(3);
        assert!(r.bernoulli(1.0));
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(2.0));
        assert!(!r.bernoulli(-1.0));
    }

    #[test]
    fn bernoulli_rate() {
        let mut r = SplitMix64::new(5);
        let hits = (0..100_000).filter(|_| r.bernoulli(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn biased_coin_forces_outcome_but_advances_the_stream() {
        let mut forced = SplitMix64::new(21);
        forced.set_bias(false);
        assert!((0..50).all(|_| !forced.bernoulli(1.0)));
        let mut forced = SplitMix64::new(21);
        forced.set_bias(true);
        assert!((0..50).all(|_| forced.bernoulli(0.0)));
        // the uniform stream is unperturbed: after k coin flips both the
        // biased and unbiased generator sit at the same state
        let mut plain = SplitMix64::new(21);
        for _ in 0..50 {
            let _ = plain.bernoulli(0.5);
        }
        assert_eq!(forced.next_u64(), plain.next_u64());
    }

    #[test]
    fn fork_streams_independent_prefixes() {
        let mut base = SplitMix64::new(11);
        let mut f1 = base.fork(1);
        let mut f2 = base.fork(1); // same tag, but base advanced => different
        assert_ne!(f1.next_u64(), f2.next_u64());
    }
}
