//! Static (pre-execution) verification of step plans: symbolic bounds
//! proofs and PRAM-class derivation over affine index expressions.
//!
//! The dynamic analyzer ([`crate::analyze`]) proves EREW/CREW/CRCW
//! contracts by shadow-tracing every read and write at 1.4–2x runtime
//! cost. But the paper's in-place algorithms have *statically knowable*
//! access structure for most of their steps: each synchronous step maps
//! processor `pid` to a fixed set of cells through expressions that are
//! affine in `pid` and the active-set size `n` (`a·pid + b·n + c`,
//! optionally floor-divided by a constant). This module checks those
//! shapes symbolically, before a single step executes:
//!
//! * **Bounds** — every [`IndexSet::Exact`] access is affine and therefore
//!   monotone in `pid`, so in-bounds over the whole active range follows
//!   from the two endpoint evaluations; [`IndexSet::Within`] accesses
//!   carry explicit data-independent bounds. A provably out-of-range plan
//!   is rejected with [`VerifyError::OutOfBoundsPlan`] — the same class of
//!   index-map bug Ó Dúnlaing's CUDA port of Wagener's hull hit only at
//!   kernel-launch time.
//! * **Model class** — each step's access sets are classified into the
//!   weakest PRAM variant that could execute them, tracking separately
//!   what is *proven* (a collision must occur) and what is merely
//!   *possible* (a data-dependent scatter that cannot be proven
//!   exclusive). The proven class exceeding the declared
//!   [`ModelContract`] is a hard [`VerifyError::ContractViolation`]; a
//!   merely-possible exceedance falls back to the dynamic analyzer
//!   ([`Verdict::NeedsDynamic`]) unless the caller disables the escape
//!   hatch, in which case it surfaces as [`VerifyError::UnknownShape`].
//! * **Race severity** — proven write collisions must be admitted by the
//!   contract's [`RaceExpectation`]; uniform-value elections ("everyone
//!   writes 1") are recognised as benign, anything else is bounded by the
//!   step's [`WritePolicy`].
//!
//! Plans are hand-authored summaries of each paper entry point's step
//! structure (see the `verify_plan()` constructors next to every
//! `*_CONTRACT`), verified at a concrete input size `n` in microseconds —
//! zero steady-state overhead, which is why the serving runtime runs this
//! at admission time for every request (`ServiceStats::static_rejects`).
//!
//! Shapes the symbolic model cannot express — pointer-jump chains, index
//! arrays computed by earlier steps — are declared [`IndexSet::Opaque`]
//! and explicitly routed to the dynamic analyzer rather than silently
//! assumed safe.

use crate::analyze::{ModelClass, ModelContract, RaceExpectation};
use crate::policy::WritePolicy;

/// A symbolic index expression
/// `(pid·pid_coef + n·n_coef + n²·n2_coef + n³·n3_coef + k) / div`
/// (floor division, `div ≥ 1`) over the processor id and the active-set
/// size. Linear (affine) in `pid` — which makes it monotone in `pid`, the
/// property endpoint bounds checking rests on — with low-degree
/// polynomial terms in `n` for the paper's super-linear processor oracles
/// (Observation 2.3 runs on n³ processors over an n² pair space).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Affine {
    /// Coefficient of `pid`.
    pub pid_coef: i64,
    /// Coefficient of the active-set size `n`.
    pub n_coef: i64,
    /// Coefficient of `n²`.
    pub n2_coef: i64,
    /// Coefficient of `n³`.
    pub n3_coef: i64,
    /// Constant term.
    pub k: i64,
    /// Constant floor divisor (`≥ 1`).
    pub div: i64,
}

impl Affine {
    const ZERO: Affine = Affine {
        pid_coef: 0,
        n_coef: 0,
        n2_coef: 0,
        n3_coef: 0,
        k: 0,
        div: 1,
    };

    /// The identity expression `pid`.
    pub const fn pid() -> Self {
        Affine {
            pid_coef: 1,
            ..Self::ZERO
        }
    }

    /// The active-set size `n`.
    pub const fn n() -> Self {
        Affine {
            n_coef: 1,
            ..Self::ZERO
        }
    }

    /// The pair space `n²`.
    pub const fn n2() -> Self {
        Affine {
            n2_coef: 1,
            ..Self::ZERO
        }
    }

    /// The triple space `n³`.
    pub const fn n3() -> Self {
        Affine {
            n3_coef: 1,
            ..Self::ZERO
        }
    }

    /// A constant.
    pub const fn k(c: i64) -> Self {
        Affine { k: c, ..Self::ZERO }
    }

    /// General form `a·pid + b·n + c`.
    pub const fn of(a: i64, b: i64, c: i64) -> Self {
        Affine {
            pid_coef: a,
            n_coef: b,
            k: c,
            ..Self::ZERO
        }
    }

    /// Add a constant (applied before the divisor).
    pub const fn plus(self, c: i64) -> Self {
        Affine {
            k: self.k + c,
            ..self
        }
    }

    /// Subtract a constant (applied before the divisor).
    pub const fn minus(self, c: i64) -> Self {
        self.plus(-c)
    }

    /// Add another expression (only valid while both divisors are 1).
    pub const fn add(self, other: Affine) -> Self {
        assert!(self.div == 1 && other.div == 1, "add before dividing");
        Affine {
            pid_coef: self.pid_coef + other.pid_coef,
            n_coef: self.n_coef + other.n_coef,
            n2_coef: self.n2_coef + other.n2_coef,
            n3_coef: self.n3_coef + other.n3_coef,
            k: self.k + other.k,
            div: 1,
        }
    }

    /// Scale every coefficient (only valid before a divisor is applied).
    pub const fn times(self, f: i64) -> Self {
        assert!(self.div == 1, "scale before dividing");
        Affine {
            pid_coef: self.pid_coef * f,
            n_coef: self.n_coef * f,
            n2_coef: self.n2_coef * f,
            n3_coef: self.n3_coef * f,
            k: self.k * f,
            div: 1,
        }
    }

    /// Floor-divide by a positive constant.
    pub const fn over(self, d: i64) -> Self {
        assert!(d >= 1, "divisor must be positive");
        Affine {
            div: self.div * d,
            ..self
        }
    }

    /// Evaluate at a concrete `(pid, n)`; i128 keeps any authored plan far
    /// from overflow.
    pub fn eval(&self, pid: i64, n: i64) -> i128 {
        let n = n as i128;
        let raw = pid as i128 * self.pid_coef as i128
            + n * self.n_coef as i128
            + n * n * self.n2_coef as i128
            + n * n * n * self.n3_coef as i128
            + self.k as i128;
        raw.div_euclid(self.div as i128)
    }

    /// True when the expression does not mention `pid` (array lengths and
    /// processor counts must be pid-free).
    pub fn is_pid_free(&self) -> bool {
        self.pid_coef == 0
    }

    /// `(min, max)` over `pid ∈ [0, procs)` at size `n` (monotone in
    /// `pid`, so the endpoints suffice). `procs ≥ 1`.
    fn range(&self, procs: i64, n: i64) -> (i128, i128) {
        let a = self.eval(0, n);
        let b = self.eval(procs - 1, n);
        (a.min(b), a.max(b))
    }

    /// Distinct active pids always map to distinct indices: a non-zero
    /// `pid` coefficient whose magnitude clears the floor divisor.
    fn injective(&self) -> bool {
        self.pid_coef != 0 && self.pid_coef.abs() >= self.div
    }

    fn render(&self) -> String {
        let mut core = format!("{}*pid + {}*n", self.pid_coef, self.n_coef);
        if self.n2_coef != 0 {
            core.push_str(&format!(" + {}*n^2", self.n2_coef));
        }
        if self.n3_coef != 0 {
            core.push_str(&format!(" + {}*n^3", self.n3_coef));
        }
        core.push_str(&format!(" + {}", self.k));
        if self.div == 1 {
            core
        } else {
            format!("({core})/{}", self.div)
        }
    }
}

/// The set of indices one access touches as `pid` ranges over the active
/// set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexSet {
    /// Every active `pid` touches exactly `expr(pid, n)`.
    Exact(Affine),
    /// Data-dependent per pid, but provably inside `[lo(n), hi(n)]`
    /// (inclusive, pid-free bounds). Bounds are checkable; exclusivity is
    /// not, so contested classes fall back to the dynamic analyzer.
    Within {
        /// Inclusive lower bound (pid-free).
        lo: Affine,
        /// Inclusive upper bound (pid-free).
        hi: Affine,
    },
    /// Whole-array bulk read ([`crate::Ctx::slice`]). Reads only.
    All,
    /// Statically unknowable (pointer-jump chains, indirection through
    /// cells written by earlier steps). Routes the step to the dynamic
    /// analyzer.
    Opaque,
}

/// What a write access stores, as far as the plan can promise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteValue {
    /// Any two writers of this access that hit the same cell in one step
    /// write identical values (the concurrent-OR "everyone writes 1"
    /// shape, or "everyone marking group g writes g") — collisions inside
    /// the access are benign same-value races.
    Uniform,
    /// Values may differ between writers.
    Varies,
}

/// One read access of a step plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadAccess {
    /// Handle returned by [`AlgorithmPlan::array`].
    pub array: usize,
    /// Indices read.
    pub index: IndexSet,
}

/// One write access of a step plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteAccess {
    /// Handle returned by [`AlgorithmPlan::array`].
    pub array: usize,
    /// Indices written.
    pub index: IndexSet,
    /// Value promise (drives race-severity derivation).
    pub value: WriteValue,
}

/// One synchronous step (or a round-template executed any number of
/// times — repeated rounds share a shape, and shapes verified at the
/// maximal active-set size cover every smaller round).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepPlan {
    /// Label for error reports (`"claim"`, `"scatter"`, …).
    pub label: &'static str,
    /// Active-set size as a pid-free expression of `n`; `pid` ranges over
    /// `0..procs(n)` (negative evaluations clamp to zero).
    pub procs: Affine,
    /// Conflict-resolution rule of the step.
    pub policy: WritePolicy,
    /// Read accesses.
    pub reads: Vec<ReadAccess>,
    /// Write accesses.
    pub writes: Vec<WriteAccess>,
}

impl StepPlan {
    /// A step with no accesses yet.
    pub fn new(label: &'static str, procs: Affine, policy: WritePolicy) -> Self {
        Self {
            label,
            procs,
            policy,
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// Add a read access (builder style).
    pub fn read(mut self, array: usize, index: IndexSet) -> Self {
        self.reads.push(ReadAccess { array, index });
        self
    }

    /// Add a write access whose values may differ between writers.
    pub fn write(mut self, array: usize, index: IndexSet) -> Self {
        self.writes.push(WriteAccess {
            array,
            index,
            value: WriteValue::Varies,
        });
        self
    }

    /// Add a write access whose writers all store one identical value.
    pub fn write_uniform(mut self, array: usize, index: IndexSet) -> Self {
        self.writes.push(WriteAccess {
            array,
            index,
            value: WriteValue::Uniform,
        });
        self
    }
}

/// A shared-memory array the plan steps against, with a pid-free symbolic
/// length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Debug name (matches the `Shm::alloc` name of the real run).
    pub name: &'static str,
    /// Length as an expression of `n` (negative evaluations clamp to 0).
    pub len: Affine,
}

/// The symbolic step structure of one algorithm entry point: its declared
/// contract, the arrays it allocates, and the shapes of its steps.
/// Constructed by the `verify_plan()` functions that live next to each
/// entry point's `*_CONTRACT`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlgorithmPlan {
    /// The declared model envelope being statically checked.
    pub contract: ModelContract,
    /// Arrays, indexed by the handles [`AlgorithmPlan::array`] returns.
    pub arrays: Vec<ArrayDecl>,
    /// Step templates in program order.
    pub steps: Vec<StepPlan>,
}

impl AlgorithmPlan {
    /// An empty plan for `contract`.
    pub fn new(contract: ModelContract) -> Self {
        Self {
            contract,
            arrays: Vec::new(),
            steps: Vec::new(),
        }
    }

    /// Declare an array; the returned handle names it in accesses.
    pub fn array(&mut self, name: &'static str, len: Affine) -> usize {
        self.arrays.push(ArrayDecl { name, len });
        self.arrays.len() - 1
    }

    /// Append a step template.
    pub fn step(&mut self, step: StepPlan) {
        self.steps.push(step);
    }
}

/// Typed failure of a static plan check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// An access is provably out of its array's bounds at this `n`.
    OutOfBoundsPlan {
        /// Algorithm the plan belongs to.
        algorithm: &'static str,
        /// Step label.
        step: &'static str,
        /// Array name.
        array: &'static str,
        /// Index range vs length.
        detail: String,
    },
    /// The plan provably needs a stronger model (or stronger races) than
    /// its contract declares.
    ContractViolation {
        /// Algorithm the plan belongs to.
        algorithm: &'static str,
        /// Step label.
        step: &'static str,
        /// Derived-vs-declared specifics.
        detail: String,
    },
    /// The plan has shapes the symbolic model cannot decide and the
    /// caller disabled the fall-back-to-dynamic escape hatch.
    UnknownShape {
        /// Algorithm the plan belongs to.
        algorithm: &'static str,
        /// Step label.
        step: &'static str,
        /// What was undecidable.
        detail: String,
    },
}

impl VerifyError {
    /// Algorithm the rejected plan belongs to.
    pub fn algorithm(&self) -> &'static str {
        match self {
            VerifyError::OutOfBoundsPlan { algorithm, .. }
            | VerifyError::ContractViolation { algorithm, .. }
            | VerifyError::UnknownShape { algorithm, .. } => algorithm,
        }
    }

    /// Stable machine-readable code (joins the [`crate::RunError::code`]
    /// string table through [`crate::RunError::PlanRejected`]).
    pub fn code(&self) -> &'static str {
        match self {
            VerifyError::OutOfBoundsPlan { .. } => "plan_out_of_bounds",
            VerifyError::ContractViolation { .. } => "plan_contract_violation",
            VerifyError::UnknownShape { .. } => "plan_unknown_shape",
        }
    }
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::OutOfBoundsPlan {
                algorithm,
                step,
                array,
                detail,
            } => write!(
                f,
                "{algorithm}: step `{step}` indexes `{array}` out of bounds: {detail}"
            ),
            VerifyError::ContractViolation {
                algorithm,
                step,
                detail,
            } => write!(
                f,
                "{algorithm}: step `{step}` violates the declared contract: {detail}"
            ),
            VerifyError::UnknownShape {
                algorithm,
                step,
                detail,
            } => write!(
                f,
                "{algorithm}: step `{step}` is not statically decidable: {detail}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checker knobs.
#[derive(Clone, Copy, Debug)]
pub struct VerifyConfig {
    /// When a plan contains shapes the symbolic model cannot decide
    /// (opaque indices, unprovable exclusivity), report
    /// [`Verdict::NeedsDynamic`] instead of failing with
    /// [`VerifyError::UnknownShape`]. On by default: the dynamic analyzer
    /// is the designed escape hatch.
    pub allow_dynamic_fallback: bool,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        Self {
            allow_dynamic_fallback: true,
        }
    }
}

/// The checker's overall judgement of a plan at one input size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every step's bounds and model class were proven consistent with
    /// the contract symbolically; no dynamic tracing is needed.
    VerifiedStatic,
    /// Bounds hold and nothing provably violates the contract, but some
    /// shapes (listed in [`StaticReport::dynamic_reasons`]) can only be
    /// confirmed by the dynamic analyzer.
    NeedsDynamic,
}

/// Result of a successful static check (errors are [`VerifyError`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticReport {
    /// Algorithm checked.
    pub algorithm: &'static str,
    /// Input size the symbolic expressions were evaluated at.
    pub n: usize,
    /// Step templates checked.
    pub steps_checked: usize,
    /// Individual accesses bounds-checked.
    pub accesses_checked: usize,
    /// Weakest PRAM class that provably occurs (lower bound).
    pub proven: ModelClass,
    /// Weakest PRAM class that could occur (upper bound; what the
    /// contract is compared against).
    pub derived: ModelClass,
    /// Strongest race severity that could occur.
    pub derived_races: RaceExpectation,
    /// Overall judgement.
    pub verdict: Verdict,
    /// Why the plan needs the dynamic analyzer (empty when
    /// [`Verdict::VerifiedStatic`]).
    pub dynamic_reasons: Vec<String>,
}

/// Severity lattice shared with the dynamic analyzer's census.
fn race_of(policy: WritePolicy, uniform: bool) -> RaceExpectation {
    if uniform {
        RaceExpectation::SameValue
    } else if policy == WritePolicy::Arbitrary {
        RaceExpectation::SeedDependent
    } else {
        RaceExpectation::Deterministic
    }
}

/// Per-step scratch: what concurrency was proven / possible.
#[derive(Default)]
struct StepClassing {
    read_proven: bool,
    read_possible: bool,
    write_proven: bool,
    write_possible: bool,
    /// Strongest severity over possible collisions.
    races_possible: Option<RaceExpectation>,
    /// Bounds could not be proven (opaque shapes) — always needs the
    /// dynamic analyzer.
    dynamic_reasons: Vec<String>,
    /// Bounds hold but exclusivity is unproven — only needs the dynamic
    /// analyzer if the resulting upper bound exceeds the contract
    /// (a contested write under a contract that already admits CRCW at
    /// that race severity has nothing left to confirm).
    contention_reasons: Vec<String>,
}

impl StepClassing {
    fn bump_races(&mut self, r: RaceExpectation) {
        self.races_possible = Some(match self.races_possible {
            Some(cur) => cur.max(r),
            None => r,
        });
    }
}

/// Statically verify `plan` at input size `n`.
///
/// `Ok` carries a [`StaticReport`] whose [`Verdict`] says whether the
/// check was complete or needs the dynamic analyzer; `Err` is a typed
/// rejection the caller can surface before running any step.
pub fn verify(
    plan: &AlgorithmPlan,
    n: usize,
    cfg: &VerifyConfig,
) -> Result<StaticReport, VerifyError> {
    let alg = plan.contract.algorithm;
    let nn: i64 = i64::try_from(n).map_err(|_| VerifyError::UnknownShape {
        algorithm: alg,
        step: "<plan>",
        detail: format!("input size {n} exceeds the symbolic domain"),
    })?;

    // Plan well-formedness: lengths and processor counts must be pid-free,
    // accesses must name declared arrays. These are authoring bugs, typed
    // rather than panicking so a service precheck can never take the
    // process down.
    for a in &plan.arrays {
        if !a.len.is_pid_free() {
            return Err(VerifyError::UnknownShape {
                algorithm: alg,
                step: "<arrays>",
                detail: format!("array `{}` length mentions pid", a.name),
            });
        }
    }

    let mut proven = ModelClass::Erew;
    let mut possible = ModelClass::Erew;
    let mut races = RaceExpectation::Forbidden;
    let mut accesses_checked = 0usize;
    let mut dynamic_reasons: Vec<String> = Vec::new();
    let mut contention_reasons: Vec<String> = Vec::new();

    for step in &plan.steps {
        if !step.procs.is_pid_free() {
            return Err(VerifyError::UnknownShape {
                algorithm: alg,
                step: step.label,
                detail: "active-set size mentions pid".into(),
            });
        }
        let procs = step.procs.eval(0, nn).max(0);
        if procs == 0 {
            continue; // no active processors, no accesses
        }
        let procs = i64::try_from(procs).unwrap_or(i64::MAX);

        let mut cls = StepClassing::default();

        // --- bounds + within-access classification ---------------------
        for (is_write, array, index, value) in step
            .reads
            .iter()
            .map(|r| (false, r.array, r.index, WriteValue::Varies))
            .chain(
                step.writes
                    .iter()
                    .map(|w| (true, w.array, w.index, w.value)),
            )
        {
            let decl = plan.arrays.get(array).ok_or(VerifyError::UnknownShape {
                algorithm: alg,
                step: step.label,
                detail: "access names an undeclared array".into(),
            })?;
            let len = decl.len.eval(0, nn).max(0);
            accesses_checked += 1;
            let uniform = value == WriteValue::Uniform;
            match index {
                IndexSet::Exact(e) => {
                    let (lo, hi) = e.range(procs, nn);
                    if lo < 0 || hi >= len {
                        return Err(VerifyError::OutOfBoundsPlan {
                            algorithm: alg,
                            step: step.label,
                            array: decl.name,
                            detail: format!(
                                "{} spans [{lo}, {hi}] over pid in 0..{procs} at n={n}, \
                                 but len({}) = {len}",
                                e.render(),
                                decl.name
                            ),
                        });
                    }
                    if e.pid_coef == 0 && procs >= 2 {
                        // all active pids hit one cell
                        if is_write {
                            cls.write_proven = true;
                            cls.bump_races(race_of(step.policy, uniform));
                        } else {
                            cls.read_proven = true;
                        }
                    } else if !e.injective() && procs >= 2 {
                        // floor divisor folds neighbouring pids together;
                        // collisions are likely but depend on the constant
                        // term, so keep this merely possible.
                        if is_write {
                            cls.write_possible = true;
                            cls.bump_races(race_of(step.policy, uniform));
                            cls.contention_reasons.push(format!(
                                "step `{}`: write {} folds pids by /{} — exclusivity \
                                 unproven",
                                step.label,
                                e.render(),
                                e.div
                            ));
                        } else {
                            cls.read_possible = true;
                        }
                    }
                }
                IndexSet::Within { lo, hi } => {
                    if !lo.is_pid_free() || !hi.is_pid_free() {
                        return Err(VerifyError::UnknownShape {
                            algorithm: alg,
                            step: step.label,
                            detail: "Within bounds mention pid".into(),
                        });
                    }
                    let l = lo.eval(0, nn);
                    let h = hi.eval(0, nn);
                    if h < l {
                        continue; // empty index set
                    }
                    if l < 0 || h >= len {
                        return Err(VerifyError::OutOfBoundsPlan {
                            algorithm: alg,
                            step: step.label,
                            array: decl.name,
                            detail: format!(
                                "declared range [{l}, {h}] at n={n}, but len({}) = {len}",
                                decl.name
                            ),
                        });
                    }
                    if procs >= 2 {
                        // bounds hold; which pid hits which cell is data-
                        // dependent, so exclusivity falls to the analyzer.
                        if is_write {
                            cls.write_possible = true;
                            cls.bump_races(race_of(step.policy, uniform));
                            cls.contention_reasons.push(format!(
                                "step `{}`: data-dependent scatter into `{}` — \
                                 exclusivity unproven",
                                step.label, decl.name
                            ));
                        } else {
                            cls.read_possible = true;
                        }
                    }
                }
                IndexSet::All => {
                    if is_write {
                        return Err(VerifyError::UnknownShape {
                            algorithm: alg,
                            step: step.label,
                            detail: "whole-array writes are not a plannable shape".into(),
                        });
                    }
                    if procs >= 2 && len >= 1 {
                        cls.read_proven = true;
                    }
                }
                IndexSet::Opaque => {
                    if is_write {
                        cls.write_possible = true;
                        cls.bump_races(race_of(step.policy, uniform));
                    } else {
                        cls.read_possible = true;
                    }
                    cls.dynamic_reasons.push(format!(
                        "step `{}`: opaque {} of `{}` — bounds and exclusivity \
                         fall to the dynamic analyzer",
                        step.label,
                        if is_write { "write" } else { "read" },
                        decl.name
                    ));
                }
            }
        }

        // --- cross-access overlap (same array, same direction) ---------
        classify_cross(&mut cls, step, procs, nn, false);
        classify_cross(&mut cls, step, procs, nn, true);

        // --- fold into run-level lattices ------------------------------
        let step_proven = if cls.write_proven {
            ModelClass::Crcw
        } else if cls.read_proven {
            ModelClass::Crew
        } else {
            ModelClass::Erew
        };
        let step_possible = if cls.write_proven || cls.write_possible {
            ModelClass::Crcw
        } else if cls.read_proven || cls.read_possible {
            ModelClass::Crew
        } else {
            ModelClass::Erew
        };
        proven = proven.max(step_proven);
        possible = possible.max(step_possible);

        // A proven collision proves *a race happens* (≥ SameValue); its
        // exact severity still depends on runtime values, so the hard
        // contract check uses SameValue and the severity upper bound goes
        // through the possible lattice.
        if cls.write_proven && plan.contract.races < RaceExpectation::SameValue {
            return Err(VerifyError::ContractViolation {
                algorithm: alg,
                step: step.label,
                detail: format!(
                    "a write collision provably occurs, but the contract forbids \
                     concurrent writes (races {:?})",
                    plan.contract.races
                ),
            });
        }
        if step_proven > plan.contract.class {
            return Err(VerifyError::ContractViolation {
                algorithm: alg,
                step: step.label,
                detail: format!(
                    "step provably needs {step_proven}, contract declares {}",
                    plan.contract.class
                ),
            });
        }
        if let Some(r) = cls.races_possible {
            races = races.max(r);
        }
        dynamic_reasons.append(&mut cls.dynamic_reasons);
        contention_reasons.append(&mut cls.contention_reasons);
    }

    // Possible-but-unproven exceedances are exactly what the dynamic
    // analyzer exists for. Contention whose worst case the contract
    // already admits is *not* an exceedance — the check is "could this
    // plan need more than declared", not "do we know exactly what
    // happens".
    let class_exceeds = possible > plan.contract.class;
    let races_exceed = races > plan.contract.races;
    if class_exceeds || races_exceed {
        dynamic_reasons.append(&mut contention_reasons);
    }
    if class_exceeds {
        dynamic_reasons.push(format!(
            "derived class upper bound {possible} exceeds declared {} — needs \
             dynamic confirmation",
            plan.contract.class
        ));
    }
    if races_exceed {
        dynamic_reasons.push(format!(
            "derived race upper bound {races:?} exceeds declared {:?} — needs \
             dynamic confirmation",
            plan.contract.races
        ));
    }

    let verdict = if dynamic_reasons.is_empty() {
        Verdict::VerifiedStatic
    } else if cfg.allow_dynamic_fallback {
        Verdict::NeedsDynamic
    } else {
        return Err(VerifyError::UnknownShape {
            algorithm: alg,
            step: "<plan>",
            detail: dynamic_reasons.join("; "),
        });
    };

    Ok(StaticReport {
        algorithm: alg,
        n,
        steps_checked: plan.steps.len(),
        accesses_checked,
        proven,
        derived: possible,
        derived_races: races,
        verdict,
        dynamic_reasons,
    })
}

/// Cross-access overlap census: two accesses of the same direction on the
/// same array whose index sets can land two *distinct* pids on one cell.
fn classify_cross(cls: &mut StepClassing, step: &StepPlan, procs: i64, nn: i64, writes: bool) {
    let idx_of = |i: usize| -> (usize, IndexSet, WriteValue) {
        if writes {
            let w = &step.writes[i];
            (w.array, w.index, w.value)
        } else {
            let r = &step.reads[i];
            (r.array, r.index, WriteValue::Varies)
        }
    };
    let count = if writes {
        step.writes.len()
    } else {
        step.reads.len()
    };
    for i in 0..count {
        for j in (i + 1)..count {
            let (ai, ei, _) = idx_of(i);
            let (aj, ej, _) = idx_of(j);
            if ai != aj {
                continue;
            }
            let overlap = match (ei, ej) {
                (IndexSet::Exact(a), IndexSet::Exact(b)) => exact_overlap(a, b, procs, nn),
                // All-reads overlap every other read of the array; with a
                // second reader that is proven concurrency (handled within
                // the All access when procs >= 2), and with one processor
                // there is no concurrency at all.
                (IndexSet::All, _) | (_, IndexSet::All) => {
                    if procs >= 2 {
                        Overlap::Proven
                    } else {
                        Overlap::None
                    }
                }
                (IndexSet::Opaque, _)
                | (_, IndexSet::Opaque)
                | (IndexSet::Within { .. }, _)
                | (_, IndexSet::Within { .. }) => Overlap::Possible,
            };
            match overlap {
                Overlap::None => {}
                Overlap::Proven => {
                    if writes {
                        cls.write_proven = true;
                        // cross-access values are independent expressions,
                        // so uniformity cannot be assumed
                        cls.bump_races(race_of(step.policy, false));
                    } else {
                        cls.read_proven = true;
                    }
                }
                Overlap::Possible => {
                    if writes {
                        cls.write_possible = true;
                        cls.bump_races(race_of(step.policy, false));
                        cls.contention_reasons.push(format!(
                            "step `{}`: write accesses {i} and {j} may overlap",
                            step.label
                        ));
                    } else {
                        cls.read_possible = true;
                    }
                }
            }
        }
    }
}

enum Overlap {
    None,
    Possible,
    Proven,
}

/// Can `a(pid_i) == b(pid_j)` for distinct active `pid_i != pid_j`?
fn exact_overlap(a: Affine, b: Affine, procs: i64, nn: i64) -> Overlap {
    if procs < 2 {
        return Overlap::None;
    }
    // Disjoint images can never collide.
    let (alo, ahi) = a.range(procs, nn);
    let (blo, bhi) = b.range(procs, nn);
    if ahi < blo || bhi < alo {
        return Overlap::None;
    }
    if a.div == 1 && b.div == 1 && a.pid_coef == b.pid_coef {
        let p = a.pid_coef;
        let delta = (b.n_coef - a.n_coef) as i128 * nn as i128 + (b.k - a.k) as i128;
        if p == 0 {
            // two shared cells: both are hit by *every* pid, so they
            // collide across pids exactly when they are the same cell
            return if delta == 0 {
                Overlap::Proven
            } else {
                Overlap::None
            };
        }
        // a(i) == b(j) ⟺ p·(i − j) == delta: a collision needs the shift
        // d = delta / p to be integral, non-zero, and inside the active
        // range.
        if delta % p as i128 != 0 {
            return Overlap::None;
        }
        let d = delta / p as i128;
        return if d != 0 && d.unsigned_abs() < procs as u128 {
            Overlap::Proven
        } else {
            Overlap::None
        };
    }
    // Images intersect but the stride structure differs: collisions are
    // data-position-dependent. Conservatively possible.
    Overlap::Possible
}

/// Verify many plans at one size (the registry sweep the verify suite and
/// the bench use). Stops at the first error.
pub fn verify_all(
    plans: &[AlgorithmPlan],
    n: usize,
    cfg: &VerifyConfig,
) -> Result<Vec<StaticReport>, VerifyError> {
    plans.iter().map(|p| verify(p, n, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{ModelClass, ModelContract, RaceExpectation};

    const CRCW_DET: ModelContract = ModelContract {
        algorithm: "test/crcw",
        class: ModelClass::Crcw,
        races: RaceExpectation::Deterministic,
    };
    const EREW: ModelContract = ModelContract {
        algorithm: "test/erew",
        class: ModelClass::Erew,
        races: RaceExpectation::Forbidden,
    };
    const CREW: ModelContract = ModelContract {
        algorithm: "test/crew",
        class: ModelClass::Crew,
        races: RaceExpectation::Forbidden,
    };

    fn check(plan: &AlgorithmPlan, n: usize) -> Result<StaticReport, VerifyError> {
        verify(plan, n, &VerifyConfig::default())
    }

    #[test]
    fn disjoint_scatter_is_verified_erew() {
        let mut p = AlgorithmPlan::new(EREW);
        let a = p.array("a", Affine::n());
        p.step(
            StepPlan::new("scatter", Affine::n(), WritePolicy::Arbitrary)
                .write(a, IndexSet::Exact(Affine::pid())),
        );
        let r = check(&p, 1024).unwrap();
        assert_eq!(r.verdict, Verdict::VerifiedStatic);
        assert_eq!(r.proven, ModelClass::Erew);
        assert_eq!(r.derived, ModelClass::Erew);
    }

    #[test]
    fn neighbour_read_rotation_is_erew() {
        // pid reads a[pid+1], writes a[pid]: reads and writes each stay
        // exclusive (the read access and write access overlap, but reads
        // see the pre-step snapshot — read-write overlap is not
        // concurrency in the step-synchronous model).
        let mut p = AlgorithmPlan::new(EREW);
        let a = p.array("a", Affine::n().plus(1));
        p.step(
            StepPlan::new("rotate", Affine::n(), WritePolicy::Arbitrary)
                .read(a, IndexSet::Exact(Affine::pid().plus(1)))
                .write(a, IndexSet::Exact(Affine::pid())),
        );
        let r = check(&p, 64).unwrap();
        assert_eq!(r.verdict, Verdict::VerifiedStatic);
        assert_eq!(r.derived, ModelClass::Erew);
    }

    #[test]
    fn shifted_double_read_is_proven_crew() {
        // pid reads a[pid] and a[pid+1]: cell c is read by pid c and c-1.
        let mut p = AlgorithmPlan::new(CREW);
        let a = p.array("a", Affine::n().plus(1));
        let out = p.array("out", Affine::n());
        p.step(
            StepPlan::new("pairs", Affine::n(), WritePolicy::Arbitrary)
                .read(a, IndexSet::Exact(Affine::pid()))
                .read(a, IndexSet::Exact(Affine::pid().plus(1)))
                .write(out, IndexSet::Exact(Affine::pid())),
        );
        let r = check(&p, 64).unwrap();
        assert_eq!(r.proven, ModelClass::Crew);
        assert_eq!(r.verdict, Verdict::VerifiedStatic);
    }

    #[test]
    fn broadcast_read_is_proven_crew() {
        let mut p = AlgorithmPlan::new(CREW);
        let cell = p.array("cell", Affine::k(1));
        let out = p.array("out", Affine::n());
        p.step(
            StepPlan::new("bcast", Affine::n(), WritePolicy::Arbitrary)
                .read(cell, IndexSet::Exact(Affine::k(0)))
                .write(out, IndexSet::Exact(Affine::pid())),
        );
        let r = check(&p, 16).unwrap();
        assert_eq!(r.proven, ModelClass::Crew);
        assert_eq!(r.verdict, Verdict::VerifiedStatic);
    }

    #[test]
    fn election_write_is_proven_crcw() {
        let mut p = AlgorithmPlan::new(CRCW_DET);
        let win = p.array("win", Affine::k(1));
        p.step(
            StepPlan::new("elect", Affine::n(), WritePolicy::PriorityMin)
                .write(win, IndexSet::Exact(Affine::k(0))),
        );
        let r = check(&p, 64).unwrap();
        assert_eq!(r.proven, ModelClass::Crcw);
        assert_eq!(r.derived_races, RaceExpectation::Deterministic);
        assert_eq!(r.verdict, Verdict::VerifiedStatic);
    }

    #[test]
    fn off_by_one_scatter_bound_is_rejected() {
        // the negative control of the issue: scatter writes a[pid] for pid
        // in 0..n against an array of length n-1
        let mut p = AlgorithmPlan::new(CRCW_DET);
        let a = p.array("a", Affine::n().minus(1));
        p.step(
            StepPlan::new("scatter", Affine::n(), WritePolicy::Arbitrary)
                .write(a, IndexSet::Exact(Affine::pid())),
        );
        match check(&p, 1024) {
            Err(VerifyError::OutOfBoundsPlan { array, .. }) => assert_eq!(array, "a"),
            other => panic!("expected OutOfBoundsPlan, got {other:?}"),
        }
    }

    #[test]
    fn within_bound_overflow_is_rejected() {
        let mut p = AlgorithmPlan::new(CRCW_DET);
        let a = p.array("a", Affine::n());
        p.step(
            StepPlan::new("scatter", Affine::n(), WritePolicy::Arbitrary).write(
                a,
                IndexSet::Within {
                    lo: Affine::k(0),
                    hi: Affine::n(), // off by one: valid cells end at n-1
                },
            ),
        );
        assert!(matches!(
            check(&p, 256),
            Err(VerifyError::OutOfBoundsPlan { .. })
        ));
    }

    #[test]
    fn crew_claim_on_crcw_election_is_rejected() {
        // the second negative control: a single-cell election declared CREW
        let mut p = AlgorithmPlan::new(CREW);
        let win = p.array("win", Affine::k(1));
        p.step(
            StepPlan::new("elect", Affine::n(), WritePolicy::PriorityMin)
                .write(win, IndexSet::Exact(Affine::k(0))),
        );
        assert!(matches!(
            check(&p, 64),
            Err(VerifyError::ContractViolation { .. })
        ));
    }

    #[test]
    fn forbidden_races_with_proven_collision_is_rejected() {
        let mut p = AlgorithmPlan::new(ModelContract {
            algorithm: "test/crcw-forbidden",
            class: ModelClass::Crcw,
            races: RaceExpectation::Forbidden,
        });
        let win = p.array("win", Affine::k(1));
        p.step(
            StepPlan::new("elect", Affine::n(), WritePolicy::CombineMax)
                .write(win, IndexSet::Exact(Affine::k(0))),
        );
        assert!(matches!(
            check(&p, 8),
            Err(VerifyError::ContractViolation { .. })
        ));
    }

    #[test]
    fn contended_scatter_within_contract_is_verified() {
        // Observation 2.3's shape: n³ processors each CombineOr a constant
        // 1 somewhere in an n²-cell pair table. Exclusivity is unprovable,
        // but the contract already admits CRCW at SameValue severity — the
        // dynamic analyzer has nothing left to confirm.
        let mut p = AlgorithmPlan::new(ModelContract {
            algorithm: "test/brute-shape",
            class: ModelClass::Crcw,
            races: RaceExpectation::SameValue,
        });
        let bad = p.array("bad", Affine::n2());
        p.step(
            StepPlan::new("mark", Affine::n3(), WritePolicy::CombineOr).write_uniform(
                bad,
                IndexSet::Within {
                    lo: Affine::k(0),
                    hi: Affine::n2().minus(1),
                },
            ),
        );
        let r = check(&p, 64).unwrap();
        assert_eq!(r.verdict, Verdict::VerifiedStatic);
        assert_eq!(r.derived, ModelClass::Crcw);
        assert_eq!(r.derived_races, RaceExpectation::SameValue);
    }

    #[test]
    fn polynomial_sizes_bound_check() {
        // an n³-processor step provably overrunning its n² array
        let mut p = AlgorithmPlan::new(CRCW_DET);
        let bad = p.array("bad", Affine::n2());
        p.step(
            StepPlan::new("mark", Affine::n3(), WritePolicy::CombineOr).write_uniform(
                bad,
                IndexSet::Within {
                    lo: Affine::k(0),
                    hi: Affine::n2(), // off by one past the pair table
                },
            ),
        );
        assert!(matches!(
            check(&p, 16),
            Err(VerifyError::OutOfBoundsPlan { .. })
        ));
    }

    #[test]
    fn data_dependent_scatter_falls_back_to_dynamic() {
        let mut p = AlgorithmPlan::new(EREW);
        let a = p.array("a", Affine::n());
        p.step(
            StepPlan::new("scatter", Affine::n(), WritePolicy::Arbitrary).write(
                a,
                IndexSet::Within {
                    lo: Affine::k(0),
                    hi: Affine::n().minus(1),
                },
            ),
        );
        let r = check(&p, 256).unwrap();
        assert_eq!(r.verdict, Verdict::NeedsDynamic);
        assert!(!r.dynamic_reasons.is_empty());
        assert_eq!(r.proven, ModelClass::Erew, "nothing is proven concurrent");
        assert_eq!(r.derived, ModelClass::Crcw, "collision cannot be ruled out");
    }

    #[test]
    fn opaque_without_fallback_is_unknown_shape() {
        let mut p = AlgorithmPlan::new(CRCW_DET);
        let a = p.array("a", Affine::n());
        p.step(
            StepPlan::new("jump", Affine::n(), WritePolicy::Arbitrary)
                .read(a, IndexSet::Opaque)
                .write(a, IndexSet::Exact(Affine::pid())),
        );
        let strict = VerifyConfig {
            allow_dynamic_fallback: false,
        };
        assert!(matches!(
            verify(&p, 64, &strict),
            Err(VerifyError::UnknownShape { .. })
        ));
        // and with the default escape hatch it degrades gracefully
        assert_eq!(check(&p, 64).unwrap().verdict, Verdict::NeedsDynamic);
    }

    #[test]
    fn uniform_value_election_is_benign() {
        // concurrent-OR: everyone writes 1 into one flag cell
        let mut p = AlgorithmPlan::new(ModelContract {
            algorithm: "test/or",
            class: ModelClass::Crcw,
            races: RaceExpectation::SameValue,
        });
        let flag = p.array("flag", Affine::k(1));
        p.step(
            StepPlan::new("or", Affine::n(), WritePolicy::Arbitrary)
                .write_uniform(flag, IndexSet::Exact(Affine::k(0))),
        );
        let r = check(&p, 128).unwrap();
        assert_eq!(r.verdict, Verdict::VerifiedStatic);
        assert_eq!(r.derived_races, RaceExpectation::SameValue);
    }

    #[test]
    fn zero_and_tiny_sizes_are_safe() {
        // admission prechecks run at whatever n clients submit
        let mut p = AlgorithmPlan::new(CRCW_DET);
        let a = p.array("a", Affine::n());
        let cell = p.array("cell", Affine::k(1));
        p.step(
            StepPlan::new("scatter", Affine::n(), WritePolicy::Arbitrary)
                .write(a, IndexSet::Exact(Affine::pid())),
        );
        p.step(
            StepPlan::new("elect", Affine::n(), WritePolicy::PriorityMin)
                .write(cell, IndexSet::Exact(Affine::k(0))),
        );
        for n in 0..4 {
            let r = check(&p, n).unwrap();
            assert_eq!(r.verdict, Verdict::VerifiedStatic, "n={n}");
        }
    }

    #[test]
    fn pid_free_violations_are_typed_not_panics() {
        let mut p = AlgorithmPlan::new(CRCW_DET);
        let a = p.array("a", Affine::pid()); // malformed: length mentions pid
        p.step(
            StepPlan::new("noop", Affine::n(), WritePolicy::Arbitrary)
                .write(a, IndexSet::Exact(Affine::pid())),
        );
        assert!(matches!(
            check(&p, 8),
            Err(VerifyError::UnknownShape { .. })
        ));
    }

    #[test]
    fn strided_halving_reduce_shape() {
        // the binary-tree reduce template: pid reads a[2·pid], a[2·pid+1],
        // writes a[pid] over n/2 processors — CREW-free, EREW in fact? No:
        // reads are exclusive (2pid and 2pid+1 partition), writes
        // exclusive. The checker must prove this.
        let mut p = AlgorithmPlan::new(EREW);
        let a = p.array("a", Affine::n());
        p.step(
            StepPlan::new("halve", Affine::n().over(2), WritePolicy::Arbitrary)
                .read(a, IndexSet::Exact(Affine::pid().times(2)))
                .read(a, IndexSet::Exact(Affine::pid().times(2).plus(1)))
                .write(a, IndexSet::Exact(Affine::pid())),
        );
        let r = check(&p, 1 << 10).unwrap();
        assert_eq!(r.derived, ModelClass::Erew);
        assert_eq!(r.verdict, Verdict::VerifiedStatic);
    }

    #[test]
    fn verify_all_sweeps() {
        let mut ok = AlgorithmPlan::new(EREW);
        let a = ok.array("a", Affine::n());
        ok.step(
            StepPlan::new("id", Affine::n(), WritePolicy::Arbitrary)
                .write(a, IndexSet::Exact(Affine::pid())),
        );
        let reports = verify_all(&[ok.clone(), ok], 512, &VerifyConfig::default()).unwrap();
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn error_codes_are_stable() {
        let oob = VerifyError::OutOfBoundsPlan {
            algorithm: "x",
            step: "s",
            array: "a",
            detail: String::new(),
        };
        let cv = VerifyError::ContractViolation {
            algorithm: "x",
            step: "s",
            detail: String::new(),
        };
        let us = VerifyError::UnknownShape {
            algorithm: "x",
            step: "s",
            detail: String::new(),
        };
        assert_eq!(oob.code(), "plan_out_of_bounds");
        assert_eq!(cv.code(), "plan_contract_violation");
        assert_eq!(us.code(), "plan_unknown_shape");
        for e in [oob, cv, us] {
            assert_eq!(e.algorithm(), "x");
            assert!(!e.to_string().is_empty());
        }
    }
}
