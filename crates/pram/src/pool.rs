//! A minimal persistent worker pool for the simulator's hot paths.
//!
//! The simulator previously fanned the compute phase out over rayon. This
//! pool replaces it with a std-only, dependency-free equivalent that is
//! tailored to the step pipeline's needs:
//!
//! * **Persistent workers** — threads are spawned once (lazily, on first
//!   parallel step) and reused for every subsequent step, so steady-state
//!   steps pay no spawn cost.
//! * **Chunk-indexed dispatch** — a job is a closure over a chunk index
//!   `0..nchunks`; workers pull indices from a shared atomic counter, which
//!   load-balances uneven chunks for free.
//! * **Caller participation** — the dispatching thread works through chunks
//!   too, so a pool on an `N`-core host uses all `N` cores, and on a 1-core
//!   host (`available_parallelism() == 1`) the pool spawns **zero** threads
//!   and [`ThreadPool::run`] degenerates to an inline sequential loop with no
//!   synchronisation at all.
//!
//! Determinism note: which thread executes a chunk is scheduling-dependent,
//! but chunks are data-independent (each owns its slice of processors and
//! its own write buffer), so the simulator's observable state never depends
//! on the assignment.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;

/// A chunk-indexed job: called with each index in `0..nchunks` exactly once.
type Job<'a> = &'a (dyn Fn(usize) + Sync);

struct Slot {
    /// Monotone dispatch epoch; bumped once per [`ThreadPool::run`].
    epoch: u64,
    /// The current job, lifetime-erased. Present only while an epoch is
    /// being executed; cleared before `run` returns, so workers can never
    /// observe a dangling job.
    job: Option<&'static (dyn Fn(usize) + Sync)>,
    /// Number of chunks in the current job.
    nchunks: usize,
    /// Workers currently executing the job.
    active: usize,
    /// Workers admitted to the current epoch so far (monotone within an
    /// epoch; never decremented, unlike `active`).
    joined: usize,
    /// Worker admission cap for the current epoch
    /// ([`ThreadPool::run_bounded`]'s `max_lanes - 1`: the caller is the
    /// extra lane).
    max_workers: usize,
    /// Pool shutdown flag (used by tests; the global pool lives forever).
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    /// Next chunk index to claim for the current epoch.
    cursor: AtomicUsize,
    /// Set if any chunk panicked during the current epoch.
    poisoned: AtomicBool,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// A persistent chunk-dispatch pool.
pub struct ThreadPool {
    shared: &'static Shared,
    workers: usize,
}

impl ThreadPool {
    fn with_workers(workers: usize) -> Self {
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
                nchunks: 0,
                active: 0,
                joined: 0,
                max_workers: 0,
                shutdown: false,
            }),
            cursor: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }));
        for _ in 0..workers {
            thread::Builder::new()
                .name("pram-pool".into())
                // xlint: allow(unwrap): fail-fast at pool construction —
                // a host that cannot spawn threads cannot run at all.
                .spawn(move || worker_loop(shared))
                .expect("spawn pool worker");
        }
        Self { shared, workers }
    }

    /// Worker threads (excluding the caller). 0 on single-core hosts.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute `job(c)` for every `c in 0..nchunks`, returning when all
    /// chunks are done. The caller participates; with zero workers this is
    /// an inline loop.
    pub fn run(&self, nchunks: usize, job: Job<'_>) {
        self.run_bounded(usize::MAX, nchunks, job);
    }

    /// [`ThreadPool::run`] with at most `max_lanes` execution lanes (the
    /// caller plus up to `max_lanes - 1` pool workers). `max_lanes <= 1`
    /// degenerates to an inline sequential loop. Which lane executes a chunk
    /// is scheduling-dependent either way; callers must keep chunks
    /// data-independent, which is also what makes the observable result
    /// independent of `max_lanes`.
    pub fn run_bounded(&self, max_lanes: usize, nchunks: usize, job: Job<'_>) {
        if nchunks == 0 {
            return;
        }
        if self.workers == 0 || nchunks == 1 || max_lanes <= 1 {
            for c in 0..nchunks {
                job(c);
            }
            return;
        }

        let shared = self.shared;
        shared.poisoned.store(false, Ordering::Relaxed);
        {
            // Lock poisoning carries no invariant here (critical sections
            // only assign plain fields), so recover the guard and continue;
            // job panics are reported via the separate `poisoned` flag.
            let mut slot = lock_slot(shared);
            // SAFETY: lifetime erasure only — `job` outlives this call, and
            // this call does not return until `slot.job` is cleared and no
            // worker is active, so workers never use the reference after it
            // dies.
            let eternal: &'static (dyn Fn(usize) + Sync) =
                unsafe { std::mem::transmute::<Job<'_>, Job<'static>>(job) };
            shared.cursor.store(0, Ordering::Relaxed);
            slot.job = Some(eternal);
            slot.nchunks = nchunks;
            slot.joined = 0;
            slot.max_workers = max_lanes.saturating_sub(1);
            slot.epoch += 1;
        }
        shared.work_cv.notify_all();

        // Participate.
        execute_chunks(shared, nchunks, job);

        // Wait for stragglers, then retire the job before returning.
        let mut slot = lock_slot(shared);
        while slot.active > 0 {
            slot = shared
                .done_cv
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        slot.job = None;
        drop(slot);

        if shared.poisoned.load(Ordering::Relaxed) {
            resume_unwind(Box::new("a simulator step chunk panicked in the pool"));
        }
    }
}

fn execute_chunks(shared: &Shared, nchunks: usize, job: Job<'_>) {
    loop {
        let c = shared.cursor.fetch_add(1, Ordering::Relaxed);
        if c >= nchunks {
            return;
        }
        if catch_unwind(AssertUnwindSafe(|| job(c))).is_err() {
            shared.poisoned.store(true, Ordering::Relaxed);
        }
    }
}

/// Lock the job slot, recovering from poison: the slot's critical
/// sections only assign plain fields, so a panicking lane cannot leave a
/// broken invariant behind (job panics surface via `Shared::poisoned`).
fn lock_slot(shared: &Shared) -> std::sync::MutexGuard<'_, Slot> {
    shared
        .slot
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(shared: &'static Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let (job, nchunks) = {
            let mut slot = lock_slot(shared);
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen_epoch {
                    seen_epoch = slot.epoch;
                    if slot.joined < slot.max_workers {
                        if let Some(job) = slot.job {
                            slot.joined += 1;
                            slot.active += 1;
                            break (job, slot.nchunks);
                        }
                        // job already retired: keep waiting on the next epoch
                    }
                    // epoch full (bounded run): sit this one out
                }
                slot = shared
                    .work_cv
                    .wait(slot)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };

        execute_chunks(shared, nchunks, job);

        let mut slot = lock_slot(shared);
        slot.active -= 1;
        if slot.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// The process-wide pool, sized to the host (`available_parallelism - 1`
/// workers, since the caller participates) unless the `IPCH_THREADS`
/// environment variable overrides the lane count (`IPCH_THREADS=1` forces a
/// workerless, purely sequential pool; values above the core count
/// oversubscribe, which the determinism suites use to vary the worker count
/// on small hosts). Spawned lazily on first use; the size is fixed for the
/// life of the process.
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let lanes = configured_lanes();
        ThreadPool::with_workers(lanes.saturating_sub(1))
    })
}

/// The lane count the global pool is (or will be) built with: the
/// `IPCH_THREADS` override when set to a positive integer, otherwise the
/// host's `available_parallelism`. Does not spawn the pool.
pub fn configured_lanes() -> usize {
    if let Ok(v) = std::env::var("IPCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Total execution lanes (workers + the calling thread).
pub fn num_threads() -> usize {
    global().workers() + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_chunk_exactly_once() {
        let pool = global();
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        pool.run(100, &|c| {
            hits[c].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_chunks_is_a_noop() {
        global().run(0, &|_| panic!("must not be called"));
    }

    #[test]
    fn bounded_runs_every_chunk_exactly_once_at_every_lane_cap() {
        let pool = global();
        for lanes in [1usize, 2, 3, usize::MAX] {
            let hits: Vec<AtomicU64> = (0..67).map(|_| AtomicU64::new(0)).collect();
            pool.run_bounded(lanes, 67, &|c| {
                hits[c].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "lanes={lanes}: every chunk must run exactly once"
            );
        }
    }

    #[test]
    fn bounded_then_unbounded_dispatches_share_the_pool() {
        let pool = global();
        let total = AtomicUsize::new(0);
        for round in 1..=20 {
            pool.run_bounded(1 + round % 3, round, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
            pool.run(round, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 2 * (1..=20).sum::<usize>());
    }

    #[test]
    fn reusable_across_many_dispatches() {
        let pool = global();
        let total = AtomicUsize::new(0);
        for round in 1..=50 {
            pool.run(round, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), (1..=50).sum::<usize>());
    }

    #[test]
    fn chunks_can_mutate_disjoint_state() {
        // the machine's usage pattern: each chunk owns cell c
        struct Cell(std::cell::UnsafeCell<u64>);
        // SAFETY: the test touches cell c from exactly one chunk at a time.
        unsafe impl Sync for Cell {}
        let cells: Vec<Cell> = (0..64)
            .map(|_| Cell(std::cell::UnsafeCell::new(0)))
            .collect();
        // SAFETY: chunk c is the only writer of cells[c].
        global().run(64, &|c| unsafe {
            *cells[c].0.get() = c as u64 * 3;
        });
        for (i, c) in cells.iter().enumerate() {
            // SAFETY: the pool has quiesced; reads race with nothing.
            assert_eq!(unsafe { *c.0.get() }, i as u64 * 3);
        }
    }
}
