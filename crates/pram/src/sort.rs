//! Parallel sorting on the simulator: Batcher's bitonic network.
//!
//! The paper charges sorting to cited substrates (Cole's O(log n)-time
//! mergesort). For runs where every step should be *executed*, this module
//! provides the classic bitonic sorting network: O(log² n) steps of n/2
//! compare-exchange processors each — asymptotically a log-factor worse
//! than Cole in time, but fully concrete: every compare-exchange is a
//! simulator step and shows up in the metrics. Callers choose per run
//! (e.g. `upper_hull_dac`'s `ParallelSort` option).
//!
//! Keys are `i64` words (order-isomorphic f64 keys work via
//! `ipch_lp::constraint::f64_key`-style mappings at the call site); an
//! optional payload array is permuted alongside.

use crate::machine::Machine;
use crate::memory::{ArrayId, Shm};
use crate::Word;

/// Sort `keys` ascending in place, permuting `payload` (if given) the same
/// way. Pads virtually to the next power of two with +∞ keys. Costs
/// O(log² n) executed steps with ⌈n/2⌉ processors each.
pub fn bitonic_sort(m: &mut Machine, shm: &mut Shm, keys: ArrayId, payload: Option<ArrayId>) {
    let n = shm.len(keys);
    if n <= 1 {
        return;
    }
    if let Some(p) = payload {
        assert_eq!(shm.len(p), n, "payload length mismatch");
    }
    let np = n.next_power_of_two();

    // network workspace is scoped: iterated sorts recycle the same two slots
    shm.scope(|shm| {
        // physically pad to a power of two with +∞ keys (one copy step in,
        // one out; padding wires must participate in descending regions, so
        // virtual padding would be incorrect)
        let wk = shm.alloc("bitonic.keys", np, Word::MAX);
        let wp = shm.alloc("bitonic.payload", np, 0);
        // pad-in writes two arrays per processor — not a kernel shape, so it
        // stays a generic step (as do the comparator layers below)
        m.step(shm, 0..n, |ctx| {
            let i = ctx.pid;
            ctx.write(wk, i, ctx.read(keys, i));
            if let Some(p) = payload {
                ctx.write(wp, i, ctx.read(p, i));
            }
        });

        let mut k = 2usize;
        while k <= np {
            let mut j = k / 2;
            while j >= 1 {
                // one network layer = one synchronous step of np/2 comparators
                m.step(shm, 0..np / 2, |ctx| {
                    // comparator c handles wires (i, i ^ j): insert a 0 at bit
                    // position log2(j) of c to enumerate the i with bit j clear
                    let c = ctx.pid;
                    let low = c & (j - 1);
                    let high = (c & !(j - 1)) << 1;
                    let i = high | low;
                    let l = i | j;
                    debug_assert!(i < l && l < np);
                    let ascending = (i & k) == 0;
                    let (a, b) = (ctx.read(wk, i), ctx.read(wk, l));
                    let out_of_order = if ascending { a > b } else { a < b };
                    if out_of_order {
                        ctx.write(wk, i, b);
                        ctx.write(wk, l, a);
                        let (pa, pb) = (ctx.read(wp, i), ctx.read(wp, l));
                        ctx.write(wp, i, pb);
                        ctx.write(wp, l, pa);
                    }
                });
                j /= 2;
            }
            k *= 2;
        }

        m.step(shm, 0..n, |ctx| {
            let i = ctx.pid;
            ctx.write(keys, i, ctx.read(wk, i));
            if let Some(p) = payload {
                ctx.write(p, i, ctx.read(wp, i));
            }
        });
    });
}

/// Host-checkable helper: is the array sorted ascending?
pub fn is_sorted(shm: &Shm, keys: ArrayId) -> bool {
    let s = shm.slice(keys);
    s.windows(2).all(|w| w[0] <= w[1])
}

/// Sort a host vector of `(key, payload)` pairs on the machine and return
/// the sorted payloads — the convenience entry point algorithms use.
pub fn sort_pairs(m: &mut Machine, shm: &mut Shm, pairs: &[(Word, Word)]) -> Vec<Word> {
    let n = pairs.len();
    shm.scope(|shm| {
        let keys = shm.alloc("sort.keys", n, 0);
        let vals = shm.alloc("sort.vals", n, 0);
        for (i, &(k, v)) in pairs.iter().enumerate() {
            shm.host_set(keys, i, k);
            shm.host_set(vals, i, v);
        }
        bitonic_sort(m, shm, keys, Some(vals));
        shm.slice(vals).to_vec()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn sort_host(vals: &[Word], seed: u64) -> (Vec<Word>, u64) {
        let mut m = Machine::new(seed);
        let mut shm = Shm::new();
        let a = shm.alloc("k", vals.len(), 0);
        for (i, &v) in vals.iter().enumerate() {
            shm.host_set(a, i, v);
        }
        bitonic_sort(&mut m, &mut shm, a, None);
        (shm.slice(a).to_vec(), m.metrics.steps)
    }

    #[test]
    fn sorts_small_arrays() {
        for vals in [
            vec![],
            vec![5],
            vec![2, 1],
            vec![3, 1, 2],
            vec![4, 3, 2, 1],
            vec![1, 1, 1],
            vec![7, -3, 0, 7, 2, -9, 4],
        ] {
            let (got, _) = sort_host(&vals, 1);
            let mut expect = vals.clone();
            expect.sort_unstable();
            assert_eq!(got, expect, "input {vals:?}");
        }
    }

    #[test]
    fn sorts_random_arrays_of_awkward_sizes() {
        let mut rng = SplitMix64::new(9);
        for n in [10usize, 33, 100, 255, 256, 257, 1000] {
            let vals: Vec<Word> = (0..n).map(|_| rng.next_u64() as i64 % 1000).collect();
            let (got, _) = sort_host(&vals, 2);
            let mut expect = vals.clone();
            expect.sort_unstable();
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn step_count_is_log_squared() {
        for n in [64usize, 256, 1024] {
            let vals: Vec<Word> = (0..n as i64).rev().collect();
            let (got, steps) = sort_host(&vals, 3);
            assert!(got.windows(2).all(|w| w[0] <= w[1]));
            let lg = (n as f64).log2() as u64;
            // network layers + the pad-in/pad-out copy steps
            assert_eq!(steps, lg * (lg + 1) / 2 + 2, "n={n}");
        }
    }

    #[test]
    fn payload_follows_keys() {
        let pairs: Vec<(Word, Word)> = vec![(3, 30), (1, 10), (2, 20), (1, 11)];
        let mut m = Machine::new(4);
        let mut shm = Shm::new();
        let vals = sort_pairs(&mut m, &mut shm, &pairs);
        // keys 1,1,2,3 — payloads {10,11} first in some order, then 20, 30
        assert_eq!(vals[2], 20);
        assert_eq!(vals[3], 30);
        let mut first: Vec<Word> = vals[..2].to_vec();
        first.sort_unstable();
        assert_eq!(first, vec![10, 11]);
    }

    #[test]
    fn already_sorted_and_reverse() {
        let asc: Vec<Word> = (0..500).collect();
        let (got, _) = sort_host(&asc, 5);
        assert_eq!(got, asc);
        let desc: Vec<Word> = (0..500).rev().collect();
        let (got, _) = sort_host(&desc, 6);
        assert_eq!(got, asc);
    }
}
