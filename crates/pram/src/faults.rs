//! Deterministic, seed-driven fault injection for the simulated PRAM.
//!
//! Every output-sensitive algorithm in the paper succeeds only *with high
//! probability*; its prescription when a randomized attempt fails is to
//! detect the failure, retry, or fall back to the worst-case algorithm
//! (§2.3's failure sweeping is exactly this at the subproblem level). The
//! reproduction's success paths are exercised constantly — the failure
//! paths almost never fire on honest random seeds. This module makes the
//! failure paths *reachable on demand*: a [`FaultPlan`] installed on a
//! [`crate::Machine`] perturbs the simulation in five seed-deterministic
//! ways, each counted in [`crate::Metrics::faults`]:
//!
//! * **Adversarial write resolution** ([`FaultPlan::adversarial_writes`]) —
//!   conflicted cells under [`crate::WritePolicy::Arbitrary`] commit a
//!   worst-case extremal contender (max or min value, chosen by a per-cell
//!   fault coin) instead of the seeded-pseudorandom winner. Algorithms whose
//!   correctness argument must hold for *any* winner get exactly the
//!   adversary the Arbitrary-CRCW model allows.
//! * **Biased RNG** ([`FaultPlan::rng_bias`]) — a configurable fraction of
//!   per-(step, pid) RNG streams have their [`crate::rng::SplitMix64::bernoulli`]
//!   coin forced to a fixed outcome, starving (or flooding) the paper's
//!   "attempt with probability p" dart throws so sampling failures occur at
//!   will.
//! * **Transient cell corruption** ([`FaultPlan::corrupt_rate`]) — after a
//!   step commits, a hash-chosen live shared-memory cell may have its low
//!   bit flipped (the noisy-memory model of the Goodrich–Sridhar follow-up
//!   work, one flip at a time).
//! * **Processor drop** ([`FaultPlan::drop_window`]) — within a step window,
//!   a configurable fraction of (step, pid) pairs are *dropped*: the
//!   processor computes (private results still exist) but none of its
//!   buffered writes commit, modelling a stalled processor whose updates
//!   never reach shared memory.
//! * **Budget exhaustion** ([`FaultPlan::budget`]) — a step/work meter that
//!   trips once the machine's executed metrics cross the plan's bounds.
//!   Execution itself is never cut short (the simulator always runs the
//!   program to completion, so no algorithm can deadlock mid-step); the
//!   [`mod@crate::supervise`] layer treats a tripped budget as attempt failure.
//!
//! # Determinism
//!
//! Every fault event is a pure function of `(fault seed, step, pid-or-cell)`
//! where the fault seed mixes the machine seed with [`FaultPlan::salt`] —
//! never of execution order, chunking, or thread count. The same plan on the
//! same seed replays the identical fault schedule under every
//! [`crate::Tuning`] mode, which is what lets the chaos suite pin seeds.
//! Reseeding the machine (as the supervisor does between attempts) reseeds
//! the fault schedule with it, so probabilistic faults decorrelate across
//! retries while a budget fault (a function of the plan alone) recurs —
//! exactly the split that makes `Retried(k)` and `FellBack` separately
//! reachable.
//!
//! With no plan installed the machine carries a `None` and every hook is a
//! single branch on it: the disabled path is byte-identical to the pre-fault
//! simulator (the determinism and analyzer-pin suites assert this).

use crate::rng::mix64;

/// Per-fault-kind domain-separation constants (mixed into the event hash so
/// the five fault families draw from independent streams).
const KIND_BIAS: u64 = 0x1111_B1A5_ED00_0001;
const KIND_DROP: u64 = 0x2222_D809_9000_0002;
const KIND_CORRUPT: u64 = 0x3333_C088_0900_0003;
const KIND_ADVERSARY: u64 = 0x4444_AD5E_0000_0004;

/// Biased-coin injection: a `rate` fraction of per-(step, pid) RNG streams
/// have their `bernoulli` outcome forced to `force`.
///
/// `force = false` starves randomized attempts (empty samples, failed dart
/// throws); `force = true` floods them (mass collisions). Both are failure
/// modes the paper's procedures must detect.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RngBias {
    /// Probability that a given (step, pid) stream is biased.
    pub rate: f64,
    /// The outcome every `bernoulli` call on a biased stream returns.
    pub force: bool,
}

/// Processor-drop window: within steps `[from_step, until_step)` of the
/// machine's step counter, each (step, pid) pair is dropped with
/// probability `rate` (its buffered writes are discarded at commit).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DropWindow {
    /// First step (inclusive, machine step-counter value) of the window.
    pub from_step: u64,
    /// End of the window (exclusive). `u64::MAX` for "forever".
    pub until_step: u64,
    /// Per-(step, pid) drop probability inside the window.
    pub rate: f64,
}

/// Step/work budget: the meter trips when executed `steps` or `work` exceed
/// these bounds. `u64::MAX` disables a bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Maximum executed steps before the meter trips.
    pub max_steps: u64,
    /// Maximum executed work before the meter trips.
    pub max_work: u64,
}

impl Default for Budget {
    fn default() -> Self {
        Self {
            max_steps: u64::MAX,
            max_work: u64::MAX,
        }
    }
}

/// A complete fault-injection plan. Install with
/// [`crate::Machine::install_faults`]; child machines inherit the plan (with
/// their own derived fault seed), so injection reaches subcomputations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Extra entropy mixed into the fault seed, so distinct plans on one
    /// machine seed draw distinct fault schedules.
    pub salt: u64,
    /// Resolve `Arbitrary` write conflicts adversarially (extremal value).
    pub adversarial_writes: bool,
    /// Bias a fraction of per-processor coin flips.
    pub rng_bias: Option<RngBias>,
    /// Per-step probability of one post-commit cell corruption.
    pub corrupt_rate: f64,
    /// Drop processors' writes inside a step window.
    pub drop_window: Option<DropWindow>,
    /// Trip a meter when executed steps/work exceed a bound.
    pub budget: Option<Budget>,
}

impl FaultPlan {
    /// True when the plan injects nothing (the default).
    pub fn is_empty(&self) -> bool {
        !self.adversarial_writes
            && self.rng_bias.is_none()
            && self.corrupt_rate <= 0.0
            && self.drop_window.is_none()
            && self.budget.is_none()
    }
}

/// Counters for every injected fault, kept in [`crate::Metrics::faults`].
/// Host observability: both [`crate::Metrics::absorb`] and
/// [`crate::Metrics::absorb_parallel`] sum them, so a parent machine sees
/// every fault injected anywhere in its tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// `Arbitrary` conflict runs resolved by the adversary instead of the
    /// seeded tiebreak.
    pub adversarial_resolutions: u64,
    /// (step, pid) RNG streams whose coin was biased.
    pub biased_streams: u64,
    /// Cells bit-flipped after a commit.
    pub corrupted_cells: u64,
    /// (step, pid) pairs whose writes were dropped.
    pub dropped_processors: u64,
    /// Times a budget meter tripped (at most once per machine).
    pub budget_exhaustions: u64,
}

impl FaultCounters {
    /// Total injected fault events of any kind.
    pub fn total(&self) -> u64 {
        self.adversarial_resolutions
            + self.biased_streams
            + self.corrupted_cells
            + self.dropped_processors
            + self.budget_exhaustions
    }

    /// Fold another counter set into this one (used by the metrics absorbs).
    pub(crate) fn absorb(&mut self, other: &FaultCounters) {
        self.adversarial_resolutions += other.adversarial_resolutions;
        self.biased_streams += other.biased_streams;
        self.corrupted_cells += other.corrupted_cells;
        self.dropped_processors += other.dropped_processors;
        self.budget_exhaustions += other.budget_exhaustions;
    }
}

/// Live fault state of one machine: the plan plus the derived fault seed
/// and the budget latch. Boxed on [`crate::Machine`] so the disabled case
/// costs one pointer.
#[derive(Clone, Debug)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    /// `mix64(machine_seed ^ mix64(salt))` — all event hashes derive from
    /// this, so reseeding the machine reseeds the fault schedule.
    pub(crate) fault_seed: u64,
    /// Budget meters trip once per machine.
    pub(crate) budget_tripped: bool,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, machine_seed: u64) -> Self {
        let fault_seed = mix64(machine_seed ^ mix64(plan.salt));
        Self {
            plan,
            fault_seed,
            budget_tripped: false,
        }
    }

    /// The state a child machine inherits: same plan, fault seed derived
    /// from the child's seed, fresh budget latch.
    pub(crate) fn child(&self, child_seed: u64) -> Self {
        Self::new(self.plan.clone(), child_seed)
    }
}

/// The fault-event hash: a pure function of (fault seed, kind, step,
/// pid-or-cell), independent of execution order.
#[inline]
fn event(fault_seed: u64, kind: u64, step: u64, x: u64) -> u64 {
    mix64(fault_seed ^ kind ^ mix64(step.wrapping_mul(0xA24B_AED4_963E_E407) ^ mix64(x)))
}

/// Deterministic coin: top 53 bits of the hash against `rate` (the same
/// mapping as [`crate::rng::SplitMix64::next_f64`]).
#[inline]
fn coin(h: u64, rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rate
}

/// Per-step fault decisions handed to the compute phase (precomputed once
/// per step so per-pid checks are two hashes at most).
#[derive(Clone, Copy, Debug)]
pub(crate) struct StepFaults {
    fault_seed: u64,
    bias: Option<RngBias>,
    /// Drop rate if this step is inside the drop window.
    drop_rate: Option<f64>,
}

impl StepFaults {
    pub(crate) fn for_step(state: &FaultState, step_no: u64) -> Self {
        let drop_rate = state
            .plan
            .drop_window
            .and_then(|w| (w.from_step <= step_no && step_no < w.until_step).then_some(w.rate));
        Self {
            fault_seed: state.fault_seed,
            bias: state.plan.rng_bias,
            drop_rate,
        }
    }

    /// The forced coin outcome of (step, pid)'s RNG stream, if biased.
    #[inline]
    pub(crate) fn bias_for(&self, step_no: u64, pid: u64) -> Option<bool> {
        let b = self.bias?;
        coin(event(self.fault_seed, KIND_BIAS, step_no, pid), b.rate).then_some(b.force)
    }

    /// Whether (step, pid)'s writes are dropped.
    #[inline]
    pub(crate) fn dropped(&self, step_no: u64, pid: u64) -> bool {
        match self.drop_rate {
            Some(rate) => coin(event(self.fault_seed, KIND_DROP, step_no, pid), rate),
            None => false,
        }
    }

    /// True when any per-pid decision is live this step (lets the machine
    /// skip per-pid hashing entirely for steps outside every window).
    #[inline]
    pub(crate) fn any_per_pid(&self) -> bool {
        self.bias.is_some() || self.drop_rate.is_some()
    }
}

/// Post-commit corruption draw for one step: `Some(cell_picker_hash)` when
/// the step corrupts a cell.
#[inline]
pub(crate) fn corruption_draw(state: &FaultState, step_no: u64) -> Option<u64> {
    let h = event(state.fault_seed, KIND_CORRUPT, step_no, 0);
    coin(h, state.plan.corrupt_rate).then(|| mix64(h))
}

/// Adversarial `Arbitrary` resolution: the extremal contender of a
/// conflicted run, max or min by a per-cell fault coin. Deterministic in
/// (fault seed, step, cell) and independent of the standard tiebreak.
#[inline]
pub(crate) fn adversarial_pick(
    fault_seed: u64,
    step_no: u64,
    key: u64,
    run_vals: impl Iterator<Item = crate::Word> + Clone,
) -> crate::Word {
    let take_max = event(fault_seed, KIND_ADVERSARY, step_no, key) & 1 == 0;
    if take_max {
        // xlint: allow(unwrap): commit runs are non-empty by construction
        run_vals.max().expect("non-empty run")
    } else {
        // xlint: allow(unwrap): commit runs are non-empty by construction
        run_vals.min().expect("non-empty run")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        assert!(!FaultPlan {
            adversarial_writes: true,
            ..FaultPlan::default()
        }
        .is_empty());
    }

    #[test]
    fn event_hash_is_deterministic_and_kind_separated() {
        let a = event(1, KIND_BIAS, 5, 7);
        assert_eq!(a, event(1, KIND_BIAS, 5, 7));
        assert_ne!(a, event(1, KIND_DROP, 5, 7));
        assert_ne!(a, event(2, KIND_BIAS, 5, 7));
        assert_ne!(a, event(1, KIND_BIAS, 6, 7));
        assert_ne!(a, event(1, KIND_BIAS, 5, 8));
    }

    #[test]
    fn coin_rate_extremes_and_rough_frequency() {
        assert!(coin(0, 1.0));
        assert!(!coin(u64::MAX, 0.0));
        let hits = (0..10_000u64)
            .filter(|&i| coin(event(9, KIND_DROP, 0, i), 0.25))
            .count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.03, "rate = {rate}");
    }

    #[test]
    fn drop_window_bounds_are_respected() {
        let state = FaultState::new(
            FaultPlan {
                drop_window: Some(DropWindow {
                    from_step: 2,
                    until_step: 4,
                    rate: 1.0,
                }),
                ..FaultPlan::default()
            },
            42,
        );
        assert!(!StepFaults::for_step(&state, 1).dropped(1, 0));
        assert!(StepFaults::for_step(&state, 2).dropped(2, 0));
        assert!(StepFaults::for_step(&state, 3).dropped(3, 0));
        assert!(!StepFaults::for_step(&state, 4).dropped(4, 0));
    }

    #[test]
    fn reseeding_changes_the_schedule() {
        let plan = FaultPlan {
            rng_bias: Some(RngBias {
                rate: 0.5,
                force: false,
            }),
            ..FaultPlan::default()
        };
        let a = FaultState::new(plan.clone(), 1);
        let b = FaultState::new(plan, 2);
        let pattern = |s: &FaultState| -> Vec<bool> {
            let sf = StepFaults::for_step(s, 0);
            (0..64).map(|p| sf.bias_for(0, p).is_some()).collect()
        };
        assert_ne!(pattern(&a), pattern(&b), "fault schedule must reseed");
    }

    #[test]
    fn adversarial_pick_is_extremal_and_deterministic() {
        let vals = [3i64, -9, 7, 0];
        let v = adversarial_pick(11, 2, 99, vals.iter().copied());
        assert!(v == 7 || v == -9, "must be an extremal contender, got {v}");
        assert_eq!(v, adversarial_pick(11, 2, 99, vals.iter().copied()));
        // across cells both extremes occur
        let picks: std::collections::HashSet<i64> = (0..64)
            .map(|k| adversarial_pick(11, 2, k, vals.iter().copied()))
            .collect();
        assert_eq!(picks.len(), 2, "both max and min should appear");
    }
}
