//! Opt-in PRAM concurrency analyzer: shadow access tracing, EREW/CREW/CRCW
//! model classification, and race census.
//!
//! The reproduction's step/work measurements are claims *about a model*: the
//! paper's theorems hold on a CRCW PRAM with specific concurrent-write
//! assumptions, and a program that silently needs a stronger model than it
//! declares — or whose `Arbitrary`-policy races change the committed memory
//! when the tiebreak seed changes — would invalidate the measurements
//! without failing any output test. This module checks the *model
//! semantics* of a run:
//!
//! * **Per-step classification** — every traced step is classified as the
//!   weakest PRAM variant that could execute it: `EREW` if no cell is read
//!   or written by more than one processor, `CREW` if some cell is read
//!   concurrently but every cell is written at most once, `CRCW` if any
//!   cell receives two or more write events in one step. The run's class is
//!   the maximum over its steps and is diffed against the algorithm's
//!   declared [`ModelContract`].
//! * **Race census** — every concurrently-written cell is classified:
//!   *benign* (all writers agree on the value), *deterministic* (distinct
//!   values resolved by a combining/priority rule, seed-independent), or
//!   *seed-dependent* (distinct values under [`WritePolicy::Arbitrary`],
//!   where a different tiebreak seed commits a different value — confirmed
//!   by replaying the resolution under salted tiebreaks). Which of these an
//!   algorithm may produce is part of its contract
//!   ([`ModelContract::races`]).
//! * **Uninitialized reads** — with [`crate::Shm::enable_shadow`] attached
//!   in strict mode, point reads of cells that no host write or committed
//!   step write ever touched are reported. (In the default lenient mode the
//!   alloc-time fill counts as initialising — the reproduced algorithms
//!   deliberately read fill sentinels such as [`crate::EMPTY`].) Whole-array
//!   [`crate::Ctx::slice`] reads are exempt: they are bulk snapshot views
//!   and routinely cover cells the reader then ignores.
//!
//! Out-of-bounds indices, use of an [`crate::ArrayId`] after its scope
//! exits, and reads of a kernel's own output array are *enforced*, not
//! reported: they fail immediately with the uniform typed
//! [`crate::memory::ShmError`] (or the kernel's own-output panic) whether or
//! not the analyzer is attached, because execution cannot meaningfully
//! continue past them.
//!
//! # Usage
//!
//! ```
//! use ipch_pram::analyze::{AnalyzeConfig, ModelClass};
//! use ipch_pram::{Machine, Shm, WritePolicy};
//!
//! let mut m = Machine::new(1);
//! m.enable_analysis(AnalyzeConfig::default());
//! let mut shm = Shm::new();
//! let a = shm.alloc("a", 8, 0);
//! m.step(&mut shm, 0..8, |ctx| ctx.write(a, ctx.pid, 1)); // disjoint cells
//! let cell = shm.alloc("cell", 1, 0);
//! m.step_with_policy(&mut shm, 0..8, WritePolicy::CombineSum, |ctx| {
//!     ctx.write(cell, 0, 1) // 8-way concurrent write
//! });
//! let report = m.analysis_report().unwrap();
//! assert_eq!(report.class, ModelClass::Crcw);
//! assert_eq!(report.erew_steps, 1);
//! assert_eq!(report.crcw_steps, 1);
//! assert_eq!(report.benign_races, 1); // all writers wrote 1
//! assert!(report.violations.is_empty()); // no contract declared
//! ```
//!
//! The analyzer is threaded through both the generic [`Machine::step`]
//! pipeline and the fused [`crate::kernel`] paths, and its report is part
//! of [`crate::Metrics`] (merged by `absorb`/`absorb_parallel`), so child
//! machines' traces roll up to the parent. Reports are deterministic: the
//! gathered access trace is canonicalised by sorting (cell, pid[, seq]), so
//! the same program produces an identical report regardless of chunking,
//! thread count, or whether fused kernels are enabled —
//! the determinism suite asserts exactly this.

use crate::machine::{cell_tiebreak, ChunkCell, Machine, WriteEntry};
use crate::memory::Shm;
use crate::policy::WritePolicy;
use crate::rng::mix64;
use crate::Word;

/// Whole-array read sentinel in a [`ReadEntry`] key (valid cell indices are
/// `< u32::MAX` because [`crate::Shm::alloc`] caps array length at
/// `u32::MAX`).
pub(crate) const READ_ALL: u32 = u32::MAX;

/// Violation-retention cap applied when child reports merge into a parent
/// (the per-machine cap is [`AnalyzeConfig::max_violations`]; merges use
/// this fixed bound because [`crate::Metrics`] carries no config).
pub(crate) const MERGE_VIOLATION_CAP: usize = 256;

/// One traced read: packed cell address (`slot << 32 | idx`, with
/// [`READ_ALL`] as the index for whole-array slice reads) and the reader.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ReadEntry {
    pub(crate) key: u64,
    pub(crate) pid: u32,
}

/// A chunk's read-trace buffer. `RefCell` because reads are recorded through
/// shared [`crate::Ctx`] / [`crate::KCtx`] borrows; each buffer is only ever
/// touched by the chunk that owns it (the write-arena discipline).
pub(crate) type ReadTrace = std::cell::RefCell<Vec<ReadEntry>>;

/// PRAM variant hierarchy: `Erew < Crew < Crcw`. The analyzer reports the
/// *weakest* class that could execute each step / run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ModelClass {
    /// Exclusive read, exclusive write.
    #[default]
    Erew,
    /// Concurrent read, exclusive write.
    Crew,
    /// Concurrent read, concurrent write.
    Crcw,
}

impl std::fmt::Display for ModelClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ModelClass::Erew => "EREW",
            ModelClass::Crew => "CREW",
            ModelClass::Crcw => "CRCW",
        })
    }
}

/// How much write contention an algorithm's contract admits. Each level
/// includes the ones before it (`Forbidden < SameValue < Deterministic <
/// SeedDependent`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RaceExpectation {
    /// No cell is ever written concurrently (the contract class should then
    /// be at most [`ModelClass::Crew`]).
    Forbidden,
    /// Concurrent writes occur but all writers always agree on the value
    /// (the paper's concurrent-OR-style "everyone writes 1").
    SameValue,
    /// Writers may disagree, but every contended cell is resolved by a
    /// seed-independent rule (priority / combining policies).
    Deterministic,
    /// Contended cells may be resolved by [`WritePolicy::Arbitrary`] with
    /// genuinely different possible winners — the algorithm's correctness
    /// argument must hold for *any* winner (e.g. the random-sample claim
    /// step of paper §3.1, where any claimant is as good as another).
    SeedDependent,
}

/// Declared model envelope of one algorithm entry point.
///
/// Entry points call [`Machine::declare_contract`] on entry (a no-op unless
/// analysis is enabled); the analyzer then records a [`Violation`] for any
/// step whose observed class exceeds `class`, or any race stronger than
/// `races` admits. The analyze suite additionally asserts that the observed
/// run class *equals* the contract class at sizes where the algorithm's
/// structural concurrency is exercised.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelContract {
    /// Name of the algorithm (for reports).
    pub algorithm: &'static str,
    /// Strongest PRAM class any step may need.
    pub class: ModelClass,
    /// Strongest write contention any step may produce.
    pub races: RaceExpectation,
}

/// Analyzer knobs.
#[derive(Clone, Copy, Debug)]
pub struct AnalyzeConfig {
    /// Number of salted tiebreak replays used to confirm that a
    /// distinct-value `Arbitrary` race is seed-dependent. Replays are
    /// resolution-only (no step re-execution).
    pub salt_checks: u32,
    /// Cap on retained [`Violation`] records (census counters keep exact
    /// totals past the cap).
    pub max_violations: usize,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        Self {
            salt_checks: 4,
            max_violations: 64,
        }
    }
}

/// Kinds of contract/model violation the analyzer reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A step needed a stronger PRAM class than the contract declares.
    ModelExceeded,
    /// A concurrent write stronger than [`ModelContract::races`] admits.
    RaceDisallowed,
    /// A point read of a cell never initialised by any write (strict shadow
    /// mode only; see [`crate::Shm::enable_shadow`]).
    UninitRead,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ViolationKind::ModelExceeded => "model-exceeded",
            ViolationKind::RaceDisallowed => "race-disallowed",
            ViolationKind::UninitRead => "uninit-read",
        })
    }
}

/// One recorded violation, pinned to the step and cell that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Machine step counter value of the offending step.
    pub step_no: u64,
    /// What went wrong.
    pub kind: ViolationKind,
    /// `array[index]` the violation concerns (array debug name).
    pub cell: String,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {:>5}  {:<16} {:<24} {}",
            self.step_no, self.kind, self.cell, self.detail
        )
    }
}

/// Structured result of an analyzed run. `PartialEq` so the determinism
/// suite can assert report equality across execution modes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Contract the run declared (outermost [`Machine::declare_contract`]
    /// wins; `None` for bare primitive runs).
    pub contract: Option<ModelContract>,
    /// Weakest PRAM class that could execute the whole run.
    pub class: ModelClass,
    /// Steps traced (work-free zero-processor steps are not traced).
    pub steps_analyzed: u64,
    /// Steps classified EREW / CREW / CRCW.
    pub erew_steps: u64,
    /// See [`AnalysisReport::erew_steps`].
    pub crew_steps: u64,
    /// See [`AnalysisReport::erew_steps`].
    pub crcw_steps: u64,
    /// Point reads traced (whole-array slice reads count once each).
    pub reads_traced: u64,
    /// Write events traced.
    pub writes_traced: u64,
    /// Concurrently-written cells whose writers all agreed on the value.
    pub benign_races: u64,
    /// Concurrently-written cells with distinct values resolved by a
    /// seed-independent policy.
    pub deterministic_races: u64,
    /// Concurrently-written cells with distinct values under `Arbitrary`
    /// whose salted replays all happened to commit the same value (counted
    /// as seed-dependent for contract purposes — distinct values under
    /// `Arbitrary` are seed-sensitive by construction).
    pub unconfirmed_arbitrary_races: u64,
    /// Concurrently-written cells where a salted tiebreak replay committed
    /// a different value than the real run: the memory contents depend on
    /// the machine seed.
    pub seed_dependent_races: u64,
    /// Point reads of never-initialised cells (strict shadow mode).
    pub uninit_reads: u64,
    /// Recorded violations, capped at [`AnalyzeConfig::max_violations`].
    pub violations: Vec<Violation>,
    /// Violations dropped by the cap.
    pub violations_dropped: u64,
}

impl AnalysisReport {
    /// True when the run produced no violations (census counters may still
    /// be non-zero: races the contract admits are not violations).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.violations_dropped == 0
    }

    /// Total concurrently-written cells of any kind.
    pub fn total_races(&self) -> u64 {
        self.benign_races
            + self.deterministic_races
            + self.unconfirmed_arbitrary_races
            + self.seed_dependent_races
    }

    /// Merge a child run's report (sequential or parallel composition — the
    /// model class of a composition is the max over components and the
    /// censuses add).
    pub(crate) fn merge(&mut self, other: &AnalysisReport, max_violations: usize) {
        if self.contract.is_none() {
            self.contract = other.contract;
        }
        self.class = self.class.max(other.class);
        self.steps_analyzed += other.steps_analyzed;
        self.erew_steps += other.erew_steps;
        self.crew_steps += other.crew_steps;
        self.crcw_steps += other.crcw_steps;
        self.reads_traced += other.reads_traced;
        self.writes_traced += other.writes_traced;
        self.benign_races += other.benign_races;
        self.deterministic_races += other.deterministic_races;
        self.unconfirmed_arbitrary_races += other.unconfirmed_arbitrary_races;
        self.seed_dependent_races += other.seed_dependent_races;
        self.uninit_reads += other.uninit_reads;
        self.violations_dropped += other.violations_dropped;
        for v in &other.violations {
            if self.violations.len() < max_violations {
                self.violations.push(v.clone());
            } else {
                self.violations_dropped += 1;
            }
        }
    }

    /// Render the report as an aligned text table (the style of the bench
    /// crate's result tables).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let title = match &self.contract {
            Some(c) => format!(
                "analysis: {} (contract {} / races {:?})",
                c.algorithm, c.class, c.races
            ),
            None => "analysis: <no contract>".to_string(),
        };
        let rows: Vec<(String, String)> = vec![
            ("observed class".into(), self.class.to_string()),
            ("steps analyzed".into(), self.steps_analyzed.to_string()),
            (
                "  EREW / CREW / CRCW".into(),
                format!(
                    "{} / {} / {}",
                    self.erew_steps, self.crew_steps, self.crcw_steps
                ),
            ),
            (
                "reads / writes traced".into(),
                format!("{} / {}", self.reads_traced, self.writes_traced),
            ),
            (
                "races: benign same-value".into(),
                self.benign_races.to_string(),
            ),
            (
                "races: deterministic".into(),
                self.deterministic_races.to_string(),
            ),
            (
                "races: seed-dependent".into(),
                format!(
                    "{} (+{} unconfirmed)",
                    self.seed_dependent_races, self.unconfirmed_arbitrary_races
                ),
            ),
            ("uninitialized reads".into(), self.uninit_reads.to_string()),
            (
                "violations".into(),
                format!(
                    "{}{}",
                    self.violations.len(),
                    if self.violations_dropped > 0 {
                        format!(" (+{} dropped)", self.violations_dropped)
                    } else {
                        String::new()
                    }
                ),
            ),
        ];
        let wl = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let wr = rows
            .iter()
            .map(|(_, r)| r.len())
            .max()
            .unwrap_or(0)
            .max(title.len().saturating_sub(wl + 3));
        let rule = "-".repeat(wl + wr + 5);
        out.push_str(&rule);
        out.push('\n');
        out.push_str(&format!("| {title:<w$} |\n", w = wl + wr + 1));
        out.push_str(&rule);
        out.push('\n');
        for (l, r) in &rows {
            out.push_str(&format!("| {l:<wl$} | {r:<wr$} |\n"));
        }
        out.push_str(&rule);
        out.push('\n');
        for v in &self.violations {
            out.push_str(&format!("! {v}\n"));
        }
        out
    }
}

/// Per-machine analyzer state: config, trace buffers, and the effective
/// contract. The report itself lives in [`crate::Metrics::analysis`] so it follows
/// the existing child-machine absorb flow.
pub(crate) struct Analysis {
    pub(crate) cfg: AnalyzeConfig,
    /// Per-chunk read-trace buffers (same chunk discipline as the write
    /// arena: chunk `c` appends to buffer `c` only).
    pub(crate) read_bufs: Vec<ChunkCell<ReadTrace>>,
    /// Gather/sort scratch, reused across steps.
    reads: Vec<ReadEntry>,
    writes: Vec<WriteEntry>,
    /// Outermost declared contract (inherited by children).
    pub(crate) contract: Option<ModelContract>,
}

impl std::fmt::Debug for Analysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Analysis")
            .field("cfg", &self.cfg)
            .field("contract", &self.contract)
            .finish()
    }
}

impl Analysis {
    pub(crate) fn new(cfg: AnalyzeConfig) -> Self {
        Self {
            cfg,
            read_bufs: Vec::new(),
            reads: Vec::new(),
            writes: Vec::new(),
            contract: None,
        }
    }

    /// Make at least `n` cleared read-trace buffers available.
    pub(crate) fn prepare(&mut self, n: usize) {
        for buf in self.read_bufs.iter_mut().take(n) {
            buf.0.get_mut().get_mut().clear();
        }
        while self.read_bufs.len() < n {
            self.read_bufs.push(ChunkCell::new(ReadTrace::default()));
        }
    }

    /// A fresh analyzer for a child machine: same config and contract,
    /// empty buffers (the child's report merges into the parent's through
    /// [`crate::Metrics::absorb`] / [`crate::Metrics::absorb_parallel`]).
    pub(crate) fn child(&self) -> Self {
        Self {
            cfg: self.cfg,
            read_bufs: Vec::new(),
            reads: Vec::new(),
            writes: Vec::new(),
            contract: self.contract,
        }
    }
}

/// Classify one traced step and fold it into the report. `write_bufs` holds
/// the step's write log in chunk order (the generic arena, or the fused
/// kernels' recorded equivalents); read traces were gathered into
/// `analysis.read_bufs` by the compute phase. Called after commit, so shadow
/// init marking of this step's writes lands after this step's read checks
/// (reads see the pre-step snapshot).
#[allow(clippy::too_many_arguments)] // internal hook; args mirror the commit pipeline's locals
pub(crate) fn finish_step(
    analysis: &mut Analysis,
    report: &mut AnalysisReport,
    shm: &mut Shm,
    seed: u64,
    step_no: u64,
    policy: WritePolicy,
    nchunks: usize,
    write_bufs: &mut [ChunkCell<Vec<WriteEntry>>],
    // Fault seed of `FaultPlan::adversarial_writes` when that fault is
    // active: the winner replay below then mirrors the adversarial extremal
    // pick the commit pipeline performed, so the analyzer still reports
    // exactly what was committed.
    adversary: Option<u64>,
) {
    // Gather the chunk traces and canonicalise. Sorting by (cell, pid[,seq])
    // makes the analysis independent of chunking and thread count, and for
    // writes this is exactly the commit pipeline's resolution order, so the
    // Arbitrary-winner replay below reproduces committed values precisely.
    analysis.reads.clear();
    for buf in analysis.read_bufs.iter_mut().take(nchunks) {
        analysis.reads.append(buf.0.get_mut().get_mut());
    }
    analysis.writes.clear();
    for buf in write_bufs.iter_mut().take(nchunks) {
        analysis.writes.extend_from_slice(buf.0.get_mut());
    }
    analysis
        .reads
        .sort_unstable_by_key(|r| ((r.key as u128) << 32) | r.pid as u128);
    analysis.writes.sort_unstable_by_key(|e| e.sort_key());

    report.steps_analyzed += 1;
    report.reads_traced += analysis.reads.len() as u64;
    report.writes_traced += analysis.writes.len() as u64;

    let contract = analysis.contract;
    let cfg = analysis.cfg;
    let mut violations: Vec<Violation> = Vec::new();
    let mut push_violation = |report: &mut AnalysisReport, v: Violation| {
        if report.violations.len() + violations.len() < cfg.max_violations {
            violations.push(v);
        } else {
            report.violations_dropped += 1;
        }
    };

    let mut class = ModelClass::Erew;

    // --- Read census ------------------------------------------------------
    // Walk runs of identical cell key. A run with two distinct reader pids
    // is a concurrent read. Whole-array reads (idx == READ_ALL) sort after
    // every point read of the same slot, so when a slot has any READ_ALL
    // entry by pid P, every point read of that slot by a pid != P is also
    // concurrent; two distinct READ_ALL pids likewise.
    {
        let reads = &analysis.reads;
        let n = reads.len();
        // Pass 1: per-slot whole-array reader (pid of one READ_ALL reader,
        // and whether two distinct pids READ_ALL the slot).
        let mut i = 0;
        while i < n {
            let key = reads[i].key;
            let mut j = i + 1;
            let first_pid = reads[i].pid;
            let mut multi_pid = false;
            while j < n && reads[j].key == key {
                multi_pid |= reads[j].pid != first_pid;
                j += 1;
            }
            let idx = key as u32;
            if multi_pid {
                class = class.max(ModelClass::Crew);
            }
            if idx != READ_ALL {
                // uninit check: reads observe the pre-step snapshot, and
                // this step's writes have not been marked yet.
                if shm.is_init((key >> 32) as u32, idx as usize) == Some(false) {
                    report.uninit_reads += 1;
                    push_violation(
                        report,
                        Violation {
                            step_no,
                            kind: ViolationKind::UninitRead,
                            cell: cell_label(shm, key),
                            detail: format!(
                                "pid {} read a cell never written by any host or step write",
                                first_pid
                            ),
                        },
                    );
                }
            }
            i = j;
        }
        // Pass 2: point read vs whole-array read of the same slot by a
        // different pid. READ_ALL runs sort last within a slot, so scan the
        // slot groups.
        let mut i = 0;
        while i < n {
            let slot = (reads[i].key >> 32) as u32;
            let mut j = i;
            while j < n && (reads[j].key >> 32) as u32 == slot {
                j += 1;
            }
            let group = &reads[i..j];
            // the READ_ALL suffix of the group, if any
            let all_lo = group.partition_point(|r| (r.key as u32) != READ_ALL);
            if all_lo < group.len() && all_lo > 0 && class < ModelClass::Crew {
                let all_pid = group[all_lo].pid;
                let alls_multi = group[all_lo..].iter().any(|r| r.pid != all_pid);
                if alls_multi || group[..all_lo].iter().any(|r| r.pid != all_pid) {
                    class = class.max(ModelClass::Crew);
                }
            }
            i = j;
        }
    }

    // --- Write census -----------------------------------------------------
    {
        let writes = &analysis.writes;
        let n = writes.len();
        let mut i = 0;
        while i < n {
            let key = writes[i].key;
            let mut j = i + 1;
            while j < n && writes[j].key == key {
                j += 1;
            }
            let run = &writes[i..j];
            if run.len() >= 2 {
                // Two or more write events to one cell in one synchronous
                // step: only a CRCW machine can resolve this.
                class = ModelClass::Crcw;
                let first_val = run[0].val;
                let same_value = run.iter().all(|e| e.val == first_val);
                let (race, detail): (RaceSeverity, Option<String>) = if same_value {
                    (RaceSeverity::Benign, None)
                } else if policy != WritePolicy::Arbitrary {
                    (RaceSeverity::Deterministic, None)
                } else {
                    // Distinct values under Arbitrary: replay the resolution
                    // under salted tiebreaks; any disagreement proves the
                    // committed memory depends on the machine seed. When the
                    // fault plane's adversary resolved this step, replay its
                    // extremal pick instead (salting the fault seed), so
                    // `actual` is always the value really committed.
                    let resolve_with = |salt: Option<u64>| -> Word {
                        match adversary {
                            Some(fseed) => {
                                let fs = match salt {
                                    Some(s) => mix64(fseed ^ s),
                                    None => fseed,
                                };
                                crate::faults::adversarial_pick(
                                    fs,
                                    step_no,
                                    key,
                                    run.iter().map(|e| e.val),
                                )
                            }
                            None => {
                                let tseed = match salt {
                                    Some(s) => mix64(seed ^ s),
                                    None => seed,
                                };
                                run[(cell_tiebreak(tseed, step_no, key) % run.len() as u64)
                                    as usize]
                                    .val
                            }
                        }
                    };
                    let actual = resolve_with(None);
                    let mut flipped: Option<Word> = None;
                    for s in 0..cfg.salt_checks {
                        let alt = resolve_with(Some(0xA5A5_5A5A_0F0F_F0F0 ^ s as u64));
                        if alt != actual {
                            flipped = Some(alt);
                            break;
                        }
                    }
                    match flipped {
                        Some(alt) => (
                            RaceSeverity::SeedDependent { confirmed: true },
                            Some(format!(
                                "{} writers, committed {} but a salted tiebreak commits {}",
                                distinct_pids(run),
                                actual,
                                alt
                            )),
                        ),
                        None => (
                            RaceSeverity::SeedDependent { confirmed: false },
                            Some(format!(
                                "{} writers with distinct values under Arbitrary \
                                 (salted replays agreed by chance)",
                                distinct_pids(run)
                            )),
                        ),
                    }
                };
                match race {
                    RaceSeverity::Benign => report.benign_races += 1,
                    RaceSeverity::Deterministic => report.deterministic_races += 1,
                    RaceSeverity::SeedDependent { confirmed: true } => {
                        report.seed_dependent_races += 1
                    }
                    RaceSeverity::SeedDependent { confirmed: false } => {
                        report.unconfirmed_arbitrary_races += 1
                    }
                }
                if let Some(c) = &contract {
                    let allowed = match race {
                        RaceSeverity::Benign => c.races >= RaceExpectation::SameValue,
                        RaceSeverity::Deterministic => c.races >= RaceExpectation::Deterministic,
                        RaceSeverity::SeedDependent { .. } => {
                            c.races >= RaceExpectation::SeedDependent
                        }
                    };
                    if !allowed {
                        push_violation(
                            report,
                            Violation {
                                step_no,
                                kind: ViolationKind::RaceDisallowed,
                                cell: cell_label(shm, key),
                                detail: detail.unwrap_or_else(|| {
                                    format!(
                                        "{} write events ({:?} race, contract admits {:?})",
                                        run.len(),
                                        race,
                                        c.races
                                    )
                                }),
                            },
                        );
                    }
                }
            }
            // Post-commit: mark written cells initialised in the shadow.
            shm.mark_init((key >> 32) as u32, key as u32 as usize);
            i = j;
        }
    }

    match class {
        ModelClass::Erew => report.erew_steps += 1,
        ModelClass::Crew => report.crew_steps += 1,
        ModelClass::Crcw => report.crcw_steps += 1,
    }
    report.class = report.class.max(class);
    if let Some(c) = &contract {
        if class > c.class {
            push_violation(
                report,
                Violation {
                    step_no,
                    kind: ViolationKind::ModelExceeded,
                    cell: format!("<step {step_no}>"),
                    detail: format!("step needs {class}, contract declares {}", c.class),
                },
            );
        }
    }
    report.violations.append(&mut violations);
}

/// Distinct writer pids in a (key-sorted) run.
fn distinct_pids(run: &[WriteEntry]) -> usize {
    let mut pids: Vec<u32> = run.iter().map(|e| (e.pidseq >> 32) as u32).collect();
    pids.sort_unstable();
    pids.dedup();
    pids.len()
}

/// `name[idx]` label for a packed cell key.
fn cell_label(shm: &Shm, key: u64) -> String {
    format!("{}[{}]", shm.slot_name((key >> 32) as u32), key as u32)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RaceSeverity {
    Benign,
    Deterministic,
    SeedDependent { confirmed: bool },
}

impl Machine {
    /// Attach the concurrency analyzer to this machine: subsequent steps
    /// (generic and fused-kernel alike) trace their reads and writes, and
    /// [`Machine::analysis_report`] / [`crate::Metrics::analysis`] accumulate the
    /// classification. Child machines created by [`Machine::child`] inherit
    /// the analyzer (their reports merge into the parent's on
    /// [`crate::Metrics::absorb`] / [`crate::Metrics::absorb_parallel`]).
    ///
    /// For uninitialized-read detection also attach
    /// [`Shm::enable_shadow`] to the memory the machine steps against.
    pub fn enable_analysis(&mut self, cfg: AnalyzeConfig) {
        self.analysis = Some(Box::new(Analysis::new(cfg)));
        self.metrics.analysis = Some(Box::new(AnalysisReport::default()));
    }

    /// True when the analyzer is attached.
    pub fn analysis_enabled(&self) -> bool {
        self.analysis.is_some()
    }

    /// Declare the model contract of the algorithm about to run. No-op when
    /// analysis is disabled. The outermost declaration wins (an algorithm's
    /// subroutines run under the caller's contract), so entry points can
    /// declare unconditionally.
    pub fn declare_contract(&mut self, contract: &ModelContract) {
        if let Some(an) = &mut self.analysis {
            if an.contract.is_none() {
                an.contract = Some(*contract);
                if let Some(report) = &mut self.metrics.analysis {
                    if report.contract.is_none() {
                        report.contract = Some(*contract);
                    }
                }
            }
        }
    }

    /// The accumulated analysis report, if analysis is enabled.
    pub fn analysis_report(&self) -> Option<&AnalysisReport> {
        self.metrics.analysis.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, Shm, WritePolicy, EMPTY};

    fn analyzed(seed: u64) -> Machine {
        let mut m = Machine::new(seed);
        m.enable_analysis(AnalyzeConfig::default());
        m
    }

    #[test]
    fn disjoint_scatter_is_erew() {
        let mut m = analyzed(1);
        let mut shm = Shm::new();
        let a = shm.alloc("a", 16, 0);
        m.step(&mut shm, 0..16, |ctx| ctx.write(a, ctx.pid, 1));
        let r = m.analysis_report().unwrap();
        assert_eq!(r.class, ModelClass::Erew);
        assert_eq!(r.erew_steps, 1);
        assert_eq!(r.writes_traced, 16);
        assert!(r.is_clean());
    }

    #[test]
    fn neighbour_rotation_is_erew() {
        // pid reads cell pid+1, writes cell pid: every cell read once,
        // written once — the textbook EREW example.
        let mut m = analyzed(2);
        let mut shm = Shm::new();
        let a = shm.alloc("a", 8, 3);
        m.step(&mut shm, 0..8, |ctx| {
            let v = ctx.read(a, (ctx.pid + 1) % 8);
            ctx.write(a, ctx.pid, v);
        });
        let r = m.analysis_report().unwrap();
        assert_eq!(r.class, ModelClass::Erew);
        assert_eq!(r.reads_traced, 8);
    }

    #[test]
    fn shared_cell_read_is_crew() {
        let mut m = analyzed(3);
        let mut shm = Shm::new();
        let a = shm.alloc("a", 8, 5);
        let out = shm.alloc("out", 8, 0);
        m.step(&mut shm, 0..8, |ctx| {
            let v = ctx.read(a, 0); // everyone reads cell 0
            ctx.write(out, ctx.pid, v);
        });
        let r = m.analysis_report().unwrap();
        assert_eq!(r.class, ModelClass::Crew);
        assert_eq!(r.crew_steps, 1);
        assert_eq!(r.crcw_steps, 0);
    }

    #[test]
    fn slice_by_many_pids_is_crew() {
        let mut m = analyzed(4);
        let mut shm = Shm::new();
        let a = shm.alloc("a", 8, 5);
        let out = shm.alloc("out", 8, 0);
        m.step(&mut shm, 0..8, |ctx| {
            let row = ctx.slice(a);
            ctx.write(out, ctx.pid, row[ctx.pid]);
        });
        let r = m.analysis_report().unwrap();
        assert_eq!(r.class, ModelClass::Crew);
    }

    #[test]
    fn point_read_plus_other_pids_slice_is_crew() {
        let mut m = analyzed(5);
        let mut shm = Shm::new();
        let a = shm.alloc("a", 8, 5);
        let out = shm.alloc("out", 8, 0);
        m.step(&mut shm, 0..2, |ctx| {
            let v = if ctx.pid == 0 {
                ctx.read(a, 3)
            } else {
                ctx.slice(a)[3]
            };
            ctx.write(out, ctx.pid, v);
        });
        let r = m.analysis_report().unwrap();
        assert_eq!(r.class, ModelClass::Crew);
    }

    #[test]
    fn same_value_contention_is_benign_crcw() {
        let mut m = analyzed(6);
        let mut shm = Shm::new();
        let flag = shm.alloc("flag", 1, 0);
        m.step(&mut shm, 0..32, |ctx| ctx.write(flag, 0, 1));
        let r = m.analysis_report().unwrap();
        assert_eq!(r.class, ModelClass::Crcw);
        assert_eq!(r.benign_races, 1);
        assert_eq!(r.seed_dependent_races, 0);
        assert!(r.is_clean());
    }

    #[test]
    fn combining_contention_is_deterministic_race() {
        let mut m = analyzed(7);
        let mut shm = Shm::new();
        let acc = shm.alloc("acc", 1, 0);
        m.step_with_policy(&mut shm, 0..32, WritePolicy::CombineSum, |ctx| {
            ctx.write(acc, 0, ctx.pid as i64)
        });
        let r = m.analysis_report().unwrap();
        assert_eq!(r.deterministic_races, 1);
        assert_eq!(r.seed_dependent_races, 0);
    }

    #[test]
    fn arbitrary_distinct_values_is_seed_dependent() {
        let mut m = analyzed(8);
        let mut shm = Shm::new();
        let cell = shm.alloc("cell", 1, EMPTY);
        m.step(&mut shm, 0..32, |ctx| ctx.write(cell, 0, ctx.pid as i64));
        let r = m.analysis_report().unwrap();
        assert_eq!(r.seed_dependent_races + r.unconfirmed_arbitrary_races, 1);
        // no contract declared ⇒ census only, no violations
        assert!(r.is_clean());
    }

    #[test]
    fn contract_flags_model_exceedance_and_disallowed_race() {
        const C: ModelContract = ModelContract {
            algorithm: "toy",
            class: ModelClass::Crew,
            races: RaceExpectation::Forbidden,
        };
        let mut m = analyzed(9);
        m.declare_contract(&C);
        let mut shm = Shm::new();
        let cell = shm.alloc("cell", 1, 0);
        m.step(&mut shm, 0..4, |ctx| ctx.write(cell, 0, ctx.pid as i64));
        let r = m.analysis_report().unwrap();
        assert!(!r.is_clean());
        assert!(r
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::ModelExceeded));
        assert!(r
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::RaceDisallowed));
        assert_eq!(r.contract, Some(C));
    }

    #[test]
    fn contract_admitting_races_stays_clean() {
        const C: ModelContract = ModelContract {
            algorithm: "toy",
            class: ModelClass::Crcw,
            races: RaceExpectation::SeedDependent,
        };
        let mut m = analyzed(10);
        m.declare_contract(&C);
        let mut shm = Shm::new();
        let cell = shm.alloc("cell", 1, 0);
        m.step(&mut shm, 0..4, |ctx| ctx.write(cell, 0, ctx.pid as i64));
        assert!(m.analysis_report().unwrap().is_clean());
    }

    #[test]
    fn outermost_contract_wins() {
        const OUTER: ModelContract = ModelContract {
            algorithm: "outer",
            class: ModelClass::Crcw,
            races: RaceExpectation::SeedDependent,
        };
        const INNER: ModelContract = ModelContract {
            algorithm: "inner",
            class: ModelClass::Erew,
            races: RaceExpectation::Forbidden,
        };
        let mut m = analyzed(11);
        m.declare_contract(&OUTER);
        m.declare_contract(&INNER);
        let mut shm = Shm::new();
        let cell = shm.alloc("cell", 1, 0);
        m.step(&mut shm, 0..4, |ctx| ctx.write(cell, 0, ctx.pid as i64));
        assert!(m.analysis_report().unwrap().is_clean());
    }

    #[test]
    fn uninit_read_detected_in_strict_shadow_mode() {
        let mut m = analyzed(12);
        let mut shm = Shm::new();
        shm.enable_shadow(false); // strict: alloc fill does not initialise
        let a = shm.alloc("a", 4, 0);
        let out = shm.alloc("out", 4, 0);
        m.step(&mut shm, 0..1, |ctx| {
            let v = ctx.read(a, 2);
            ctx.write(out, 0, v);
        });
        let r = m.analysis_report().unwrap();
        assert_eq!(r.uninit_reads, 1);
        assert!(r
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::UninitRead && v.cell == "a[2]"));
    }

    #[test]
    fn step_write_initialises_for_later_steps() {
        let mut m = analyzed(13);
        let mut shm = Shm::new();
        shm.enable_shadow(false);
        let a = shm.alloc("a", 4, 0);
        m.step(&mut shm, 0..4, |ctx| ctx.write(a, ctx.pid, 1));
        let out = shm.alloc("out", 4, 0);
        m.step(&mut shm, 0..4, |ctx| {
            let v = ctx.read(a, ctx.pid);
            ctx.write(out, ctx.pid, v);
        });
        let r = m.analysis_report().unwrap();
        assert_eq!(r.uninit_reads, 0, "committed writes must mark cells init");
    }

    #[test]
    fn lenient_shadow_mode_is_quiet() {
        let mut m = analyzed(14);
        let mut shm = Shm::new();
        shm.enable_shadow(true); // lenient: the fill sentinel is legal to read
        let a = shm.alloc("a", 4, EMPTY);
        let out = shm.alloc("out", 4, 0);
        m.step(&mut shm, 0..4, |ctx| {
            let v = ctx.read(a, ctx.pid);
            ctx.write(out, ctx.pid, v);
        });
        assert_eq!(m.analysis_report().unwrap().uninit_reads, 0);
    }

    #[test]
    fn child_reports_merge_into_parent() {
        const C: ModelContract = ModelContract {
            algorithm: "parent",
            class: ModelClass::Crcw,
            races: RaceExpectation::SeedDependent,
        };
        let mut m = analyzed(15);
        m.declare_contract(&C);
        let mut shm = Shm::new();
        let a = shm.alloc("a", 8, 0);
        m.step(&mut shm, 0..8, |ctx| ctx.write(a, ctx.pid, 1)); // EREW
        let mut child = m.child(1);
        assert!(child.analysis_enabled(), "children inherit the analyzer");
        let cell = shm.alloc("cell", 1, 0);
        child.step(&mut shm, 0..8, |ctx| ctx.write(cell, 0, 1)); // CRCW benign
        m.metrics.absorb(&child.metrics);
        let r = m.analysis_report().unwrap();
        assert_eq!(r.class, ModelClass::Crcw);
        assert_eq!(r.steps_analyzed, 2);
        assert_eq!(r.erew_steps, 1);
        assert_eq!(r.crcw_steps, 1);
        assert_eq!(r.benign_races, 1);
        assert_eq!(r.contract, Some(C), "contract survives the merge");
    }

    #[test]
    fn report_is_deterministic_across_execution_modes() {
        let run = |tuning: crate::Tuning| {
            let mut m = analyzed(16);
            m.tuning = tuning;
            let mut shm = Shm::new();
            let a = shm.alloc("a", 4096, 0);
            let cell = shm.alloc("cell", 1, 0);
            m.step(&mut shm, 0..4096, |ctx| {
                let v = ctx.read(a, ctx.pid / 2);
                ctx.write(a, ctx.pid, v + 1);
            });
            m.step(&mut shm, 0..4096, |ctx| ctx.write(cell, 0, ctx.pid as i64));
            m.metrics.analysis.as_ref().unwrap().as_ref().clone()
        };
        let seq = run(crate::Tuning {
            force_sequential: true,
            ..crate::Tuning::default()
        });
        let par = run(crate::Tuning {
            force_parallel: true,
            ..crate::Tuning::default()
        });
        assert_eq!(seq, par);
        assert_eq!(seq.crcw_steps, 1);
    }

    #[test]
    fn render_mentions_the_key_fields() {
        const C: ModelContract = ModelContract {
            algorithm: "render-demo",
            class: ModelClass::Crcw,
            races: RaceExpectation::SameValue,
        };
        let mut m = analyzed(17);
        m.declare_contract(&C);
        let mut shm = Shm::new();
        let cell = shm.alloc("cell", 1, 0);
        m.step(&mut shm, 0..4, |ctx| ctx.write(cell, 0, 1));
        let text = m.analysis_report().unwrap().render();
        assert!(text.contains("render-demo"));
        assert!(text.contains("CRCW"));
        assert!(text.contains("benign"));
    }

    #[test]
    fn violation_cap_is_respected() {
        let mut m = Machine::new(18);
        m.enable_analysis(AnalyzeConfig {
            max_violations: 3,
            ..AnalyzeConfig::default()
        });
        const C: ModelContract = ModelContract {
            algorithm: "capped",
            class: ModelClass::Erew,
            races: RaceExpectation::Forbidden,
        };
        m.declare_contract(&C);
        let mut shm = Shm::new();
        let cell = shm.alloc("cell", 1, 0);
        for _ in 0..10 {
            m.step(&mut shm, 0..4, |ctx| ctx.write(cell, 0, 1));
        }
        let r = m.analysis_report().unwrap();
        assert_eq!(r.violations.len(), 3);
        assert!(r.violations_dropped > 0);
        assert!(!r.is_clean());
    }
}
