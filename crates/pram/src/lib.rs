//! # ipch-pram — a step-synchronous randomized CRCW PRAM simulator
//!
//! This crate is the execution substrate for the reproduction of
//! Ghouse & Goodrich, *"In-Place Techniques for Parallel Convex Hull
//! Algorithms"* (SPAA 1991). The paper's results are stated on a randomized
//! CRCW PRAM: `p` synchronous processors sharing a memory in which
//! concurrent reads always succeed and concurrent writes to the same cell
//! are resolved by a model-defined rule.
//!
//! A physical CRCW PRAM does not exist; what the paper's theorems actually
//! talk about is *parallel time* (number of synchronous steps), *work*
//! (processor-steps), *processor count*, and *failure probability*. This
//! simulator measures exactly those quantities:
//!
//! * [`Machine::step`] executes one synchronous step: every active virtual
//!   processor computes against a snapshot of shared memory (all reads see
//!   the pre-step state), writes are collected, conflicts are resolved under
//!   the machine's [`WritePolicy`], and the step is committed atomically.
//! * [`kernel`] executes the four step shapes that dominate the algorithms
//!   (map, permute, scatter, reduce) as fused bulk host loops that charge
//!   metrics identical to the generic step path — see that module's
//!   metrics-identity invariant.
//! * [`Metrics`] accumulates time, work and peak processor count, with a
//!   named per-phase breakdown, plus a separate "charged" bucket for costs
//!   accounted analytically (documented wherever used).
//! * [`primitives`] implements the O(1)-time CRCW folklore the paper leans
//!   on — concurrent OR, leftmost non-zero (Eppstein–Galil, Observation
//!   2.1), pairwise-knockout minimum — and the O(log n) prefix sum used in
//!   Section 4.1 step 3, all as genuine sequences of [`Machine::step`]s so
//!   the accounting is honest.
//! * [`schedule`] implements the Matias–Vishkin processor-allocation
//!   accounting of the paper's Lemma 7.
//!
//! Randomness is deterministic and replayable: every processor derives a
//! per-(step, pid) RNG stream from the machine seed ([`rng::SplitMix64`]).
//!
//! ## Model fidelity notes
//!
//! * All reads within a step observe pre-step memory — the textbook
//!   synchronous PRAM semantics. This matters for, e.g., the collision
//!   detection rounds of the random-sample procedure (paper §3.1).
//! * The default conflict rule is `Arbitrary` (a seeded but unpredictable
//!   winner), the weakest common CRCW variant and the one the paper's
//!   sampling analysis needs. `PriorityMin` and the `Combine*` rules are
//!   available for primitives that are usually stated on stronger variants;
//!   every use site documents which rule it assumes.

pub mod analyze;
pub mod batch;
pub mod cancel;
pub mod faults;
pub mod kernel;
pub mod machine;
pub mod memory;
pub mod metrics;
pub mod policy;
pub mod pool;
pub mod prefix;
pub mod primitives;
pub mod rng;
pub mod schedule;
pub mod sort;
pub mod supervise;
pub mod verify;

pub use analyze::{
    AnalysisReport, AnalyzeConfig, ModelClass, ModelContract, RaceExpectation, Violation,
    ViolationKind,
};
pub use cancel::{silence_cancel_unwinds, CancelCause, CancelToken, CancelUnwind};
pub use faults::{Budget, DropWindow, FaultCounters, FaultPlan, RngBias};
pub use kernel::{KCtx, ReduceOp};
pub use machine::{Ctx, KernelBackend, Machine, Tuning};
pub use memory::{ArrayId, Shm, ShmError};
pub use metrics::{Metrics, PhaseRecord, ServiceStats};
pub use policy::WritePolicy;
pub use supervise::{
    attempt_machine, supervise, Fallback, Outcome, RunError, SuperviseConfig, Supervised,
    SupervisorStats,
};
pub use verify::{AlgorithmPlan, StaticReport, StepPlan, Verdict, VerifyConfig, VerifyError};

/// The word type of simulated shared memory.
///
/// Everything the reproduced algorithms store in shared memory — point ids,
/// problem numbers, hull-edge ids, flags, workspace slots — fits an `i64`;
/// point *coordinates* live in read-only host arrays and are referenced by
/// id, exactly as the paper's in-place methods require ("without re-ordering
/// the input").
pub type Word = i64;

/// Sentinel for an empty shared-memory cell (the paper's "zero"/unoccupied).
pub const EMPTY: Word = -1;
