//! Simulated shared memory: a set of named `i64` arrays, with scoped
//! workspace recycling.
//!
//! The reproduced algorithms follow the paper's in-place discipline: the
//! input points live in a read-only host array and shared memory holds only
//! ids, flags, problem numbers and o(n) workspace. Arrays are allocated up
//! front (allocation is host bookkeeping, not a PRAM operation) and then
//! only mutated through [`crate::Machine::step`] commits — except for
//! explicitly host-side initialisation via [`Shm::host_set`], which models
//! "the input arrives in memory" and costs nothing.
//!
//! # Scoped workspace arenas
//!
//! The paper's primitives (concurrent OR, knockout minimum, prefix sums, …)
//! each need a few cells of workspace, and the algorithms invoke them inside
//! loops. Originally every invocation allocated fresh arrays that lived for
//! the whole run, so long recursions leaked memory *and* slowed every
//! subsequent commit (the machine's committer indexes all arrays ever
//! allocated). [`Shm::scope`] fixes both: arrays allocated inside a scope
//! are returned to a size-bucketed free list when the scope exits, and the
//! next allocation of a similar size reuses the slot — same `ArrayId`, same
//! heap buffer, zero steady-state growth:
//!
//! ```
//! # use ipch_pram::Shm;
//! let mut shm = Shm::new();
//! let before = shm.array_count();
//! for _ in 0..1000 {
//!     shm.scope(|shm| {
//!         let ws = shm.alloc("loop.workspace", 64, 0);
//!         shm.host_set(ws, 0, 1); // … run steps against ws …
//!     });
//! }
//! assert_eq!(shm.array_count(), before + 1, "workspace slot is recycled");
//! ```
//!
//! Discipline: an `ArrayId` allocated inside a scope is *dead* once the
//! scope exits — the slot may be handed to a later allocation of any size.
//! Results that must outlive the scope are either read out host-side before
//! the scope closes or kept alive with [`Shm::promote`]. Exited slots are
//! truncated to zero length, so a stale read or write trips a bounds check
//! instead of silently aliasing recycled workspace.

use std::borrow::Cow;

use crate::Word;

/// Handle to one shared array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArrayId(pub(crate) u32);

/// Cached `(base pointer, len)` of every array slot, rebuilt only when an
/// allocation changes the layout (see [`Shm::raw_parts`]).
#[derive(Default)]
struct RawCache(Vec<(*mut Word, usize)>);

// SAFETY: the cached pointers are only ever dereferenced by the machine's
// commit phase, which obtains them through `Shm::raw_parts(&mut self)` —
// an exclusive borrow of the memory — and upholds cell-disjointness across
// its own threads. The cache itself is plain data.
unsafe impl Send for RawCache {}
unsafe impl Sync for RawCache {}

/// The shared memory of one simulated PRAM.
#[derive(Default)]
pub struct Shm {
    arrays: Vec<Vec<Word>>,
    names: Vec<Cow<'static, str>>,
    /// One entry per open scope: the slots allocated while it was the
    /// innermost scope (recycled when it exits).
    scopes: Vec<Vec<u32>>,
    /// Free slots bucketed by power-of-two capacity class
    /// (`free[c]` holds slots whose buffer capacity is in `(2^(c-1), 2^c]`).
    free: Vec<Vec<u32>>,
    raw: RawCache,
    raw_dirty: bool,
}

impl Clone for Shm {
    fn clone(&self) -> Self {
        Self {
            arrays: self.arrays.clone(),
            names: self.names.clone(),
            scopes: self.scopes.clone(),
            free: self.free.clone(),
            // pointers refer to the source's buffers — rebuild lazily
            raw: RawCache::default(),
            raw_dirty: true,
        }
    }
}

impl std::fmt::Debug for Shm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shm")
            .field("arrays", &self.arrays)
            .field("names", &self.names)
            .field("open_scopes", &self.scopes.len())
            .finish()
    }
}

/// Power-of-two size class of a buffer capacity (0 for empty buffers).
#[inline]
fn size_class(cap: usize) -> usize {
    (usize::BITS - cap.next_power_of_two().leading_zeros()) as usize
}

impl Shm {
    /// Empty shared memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a named array of `len` cells, all set to `fill`.
    ///
    /// Inside a [`Shm::scope`] the allocation is satisfied from the scope
    /// free list when a recycled slot of a matching size class exists, so
    /// steady-state workspace allocation touches no allocator at all (the
    /// name, too, is a `Cow` — string literals are stored without copying).
    ///
    /// # Panics
    /// If `len` exceeds `u32::MAX` cells: the machine packs cell indices
    /// into 32 bits in its write log, so a larger array would silently
    /// truncate addresses. (2³² × 8-byte words is already a 32 GiB array —
    /// far beyond anything the experiments allocate.)
    pub fn alloc(&mut self, name: impl Into<Cow<'static, str>>, len: usize, fill: Word) -> ArrayId {
        let name = name.into();
        assert!(
            len <= u32::MAX as usize,
            "Shm::alloc(\"{name}\"): {len} cells exceeds the u32::MAX addressable \
             cells per array (write-log indices are packed into 32 bits)"
        );
        let slot = match self.take_free(len) {
            Some(slot) => {
                let buf = &mut self.arrays[slot as usize];
                buf.clear();
                buf.resize(len, fill);
                self.names[slot as usize] = name;
                slot
            }
            None => {
                self.arrays.push(vec![fill; len]);
                self.names.push(name);
                (self.arrays.len() - 1) as u32
            }
        };
        if let Some(top) = self.scopes.last_mut() {
            top.push(slot);
        }
        self.raw_dirty = true;
        ArrayId(slot)
    }

    /// Pop a recycled slot whose buffer capacity class matches `len` (exact
    /// class, then one class up — bounding reuse waste to ~4×).
    fn take_free(&mut self, len: usize) -> Option<u32> {
        let c = size_class(len);
        for class in c..(c + 2).min(self.free.len()) {
            if let Some(slot) = self.free[class].pop() {
                return Some(slot);
            }
        }
        None
    }

    /// Open a workspace scope: arrays allocated until the matching
    /// [`Shm::pop_scope`] are recycled when it closes. Prefer the closure
    /// form [`Shm::scope`].
    pub fn push_scope(&mut self) {
        self.scopes.push(Vec::new());
    }

    /// Close the innermost scope, recycling every array allocated in it
    /// (except those [`Shm::promote`]d out). Their `ArrayId`s are dead:
    /// the slots are truncated to zero length and parked on the free list.
    ///
    /// # Panics
    /// If no scope is open.
    pub fn pop_scope(&mut self) {
        let slots = self
            .scopes
            .pop()
            .expect("Shm::pop_scope without push_scope");
        for slot in slots {
            let buf = &mut self.arrays[slot as usize];
            buf.clear();
            let class = size_class(buf.capacity());
            if self.free.len() <= class {
                self.free.resize_with(class + 1, Vec::new);
            }
            self.free[class].push(slot);
            self.names[slot as usize] = Cow::Borrowed("<recycled>");
        }
        self.raw_dirty = true;
    }

    /// Run `f` inside a fresh workspace scope (see the module docs):
    /// everything it allocates is recycled on exit unless promoted.
    pub fn scope<R>(&mut self, f: impl FnOnce(&mut Shm) -> R) -> R {
        self.push_scope();
        let r = f(self);
        self.pop_scope();
        r
    }

    /// Move array `a` out of the innermost scope into the enclosing scope
    /// (or make it permanent if there is none), so it survives the innermost
    /// scope's exit. No-op if `a` does not belong to the innermost scope.
    pub fn promote(&mut self, a: ArrayId) {
        let depth = self.scopes.len();
        if depth == 0 {
            return;
        }
        let top = &mut self.scopes[depth - 1];
        if let Some(pos) = top.iter().position(|&s| s == a.0) {
            top.swap_remove(pos);
            if depth >= 2 {
                self.scopes[depth - 2].push(a.0);
            }
        }
    }

    /// Number of live array slots (live arrays + parked free slots). The
    /// leak benchmarks watch this: with scoped workspace it stays O(1) in
    /// the number of primitive invocations.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// Number of cells in array `a`.
    pub fn len(&self, a: ArrayId) -> usize {
        self.arrays[a.0 as usize].len()
    }

    /// True if array `a` has no cells.
    pub fn is_empty(&self, a: ArrayId) -> bool {
        self.len(a) == 0
    }

    /// Read one cell (concurrent reads are always legal on a CRCW PRAM).
    #[inline]
    pub fn get(&self, a: ArrayId, i: usize) -> Word {
        self.arrays[a.0 as usize][i]
    }

    /// Read-only view of a whole array (host-side inspection / verification).
    pub fn slice(&self, a: ArrayId) -> &[Word] {
        &self.arrays[a.0 as usize]
    }

    /// Host-side write, used for input setup and between-step host logic.
    /// Not a PRAM operation; never counted.
    pub fn host_set(&mut self, a: ArrayId, i: usize, v: Word) {
        self.arrays[a.0 as usize][i] = v;
    }

    /// Host-side fill of a whole array (workspace reset between phases).
    pub fn host_fill(&mut self, a: ArrayId, v: Word) {
        self.arrays[a.0 as usize].fill(v);
    }

    /// Debug name of array `a`.
    pub fn name(&self, a: ArrayId) -> &str {
        &self.names[a.0 as usize]
    }

    /// Base pointer and length of every array slot, for the machine's commit
    /// phase (machine-internal). Taking `&mut self` guarantees the caller
    /// holds exclusive access to the memory for the pointers' lifetime.
    ///
    /// The cache is maintained incrementally: it is rebuilt only after an
    /// allocation (the only operation that can move a buffer or change a
    /// length), so in the steady state — scoped workspace recycling, no
    /// fresh allocations between steps — a commit pays nothing here, and
    /// commit cost no longer scales with the lifetime allocation count.
    pub(crate) fn raw_parts(&mut self) -> &[(*mut Word, usize)] {
        if self.raw_dirty {
            self.raw.0.clear();
            self.raw
                .0
                .extend(self.arrays.iter_mut().map(|a| (a.as_mut_ptr(), a.len())));
            self.raw_dirty = false;
        }
        &self.raw.0
    }

    /// Detach array `a`'s buffer for a kernel's exclusive writes (the slot
    /// reads as empty until [`Shm::put_back`] restores it, so a kernel
    /// closure that illegally reads its own output trips a bounds check).
    pub(crate) fn take_array(&mut self, a: ArrayId) -> Vec<Word> {
        std::mem::take(&mut self.arrays[a.0 as usize])
    }

    /// Restore a buffer detached by [`Shm::take_array`]. The heap buffer is
    /// unchanged, so the raw-parts cache stays valid.
    pub(crate) fn put_back(&mut self, a: ArrayId, buf: Vec<Word>) {
        self.arrays[a.0 as usize] = buf;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_access() {
        let mut shm = Shm::new();
        let a = shm.alloc("flags", 8, 0);
        let b = shm.alloc("ids", 4, -1);
        assert_eq!(shm.len(a), 8);
        assert_eq!(shm.len(b), 4);
        assert_eq!(shm.get(b, 3), -1);
        assert_eq!(shm.name(a), "flags");
        shm.host_set(a, 2, 9);
        assert_eq!(shm.get(a, 2), 9);
        assert_eq!(shm.slice(a), &[0, 0, 9, 0, 0, 0, 0, 0]);
        shm.host_fill(a, 1);
        assert!(shm.slice(a).iter().all(|&x| x == 1));
    }

    #[test]
    fn handles_are_stable_across_allocs() {
        let mut shm = Shm::new();
        let a = shm.alloc("a", 2, 7);
        let _ = shm.alloc("b", 2, 8);
        assert_eq!(shm.get(a, 0), 7);
    }

    #[test]
    fn owned_names_are_accepted() {
        let mut shm = Shm::new();
        let a = shm.alloc(format!("dyn{}", 3), 1, 0);
        assert_eq!(shm.name(a), "dyn3");
    }

    #[test]
    fn scope_recycles_slots_and_buffers() {
        let mut shm = Shm::new();
        let keep = shm.alloc("keep", 4, 1);
        let mut first_id = None;
        for round in 0..100 {
            shm.scope(|shm| {
                let ws = shm.alloc("ws", 32, 0);
                match first_id {
                    None => first_id = Some(ws),
                    Some(id) => assert_eq!(ws, id, "round {round}: slot must be reused"),
                }
                assert_eq!(shm.slice(ws), &[0; 32], "recycled slot must be re-filled");
                shm.host_set(ws, 0, round);
            });
        }
        assert_eq!(shm.array_count(), 2);
        assert_eq!(shm.slice(keep), &[1, 1, 1, 1], "outer arrays untouched");
    }

    #[test]
    fn recycled_slot_reads_as_empty_until_reused() {
        let mut shm = Shm::new();
        let id = shm.scope(|shm| shm.alloc("tmp", 8, 0));
        assert_eq!(shm.len(id), 0, "dead id must not expose stale cells");
    }

    #[test]
    fn nested_scopes_recycle_independently() {
        let mut shm = Shm::new();
        shm.scope(|shm| {
            let outer = shm.alloc("outer", 16, 7);
            shm.scope(|shm| {
                let inner = shm.alloc("inner", 16, 9);
                assert_eq!(shm.get(inner, 0), 9);
                assert_eq!(shm.get(outer, 0), 7);
            });
            // outer survives the inner scope's exit
            assert_eq!(shm.get(outer, 15), 7);
        });
        assert_eq!(shm.array_count(), 2);
    }

    #[test]
    fn promote_survives_scope_exit() {
        let mut shm = Shm::new();
        let kept = shm.scope(|shm| {
            let tmp = shm.alloc("tmp", 4, 1);
            let kept = shm.alloc("kept", 4, 2);
            shm.promote(kept);
            let _ = tmp;
            kept
        });
        assert_eq!(shm.slice(kept), &[2, 2, 2, 2]);
        // the unpromoted sibling was recycled
        assert_eq!(shm.array_count(), 2);
        let reused = shm.alloc("reuse", 4, 3);
        assert_ne!(reused, kept);
    }

    #[test]
    fn free_list_does_not_serve_wildly_larger_buffers() {
        let mut shm = Shm::new();
        shm.scope(|shm| {
            shm.alloc("big", 1 << 16, 0);
        });
        // a tiny allocation must not pin the 64Ki buffer
        let small = shm.alloc("small", 2, 0);
        assert!(shm.slice(small).len() == 2);
        assert_eq!(shm.array_count(), 2);
    }

    #[test]
    fn clone_is_deep() {
        let mut shm = Shm::new();
        let a = shm.alloc("a", 4, 5);
        let mut copy = shm.clone();
        copy.host_set(a, 0, -9);
        assert_eq!(shm.get(a, 0), 5);
        assert_eq!(copy.get(a, 0), -9);
    }
}
