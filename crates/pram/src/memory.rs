//! Simulated shared memory: a set of named `i64` arrays.
//!
//! The reproduced algorithms follow the paper's in-place discipline: the
//! input points live in a read-only host array and shared memory holds only
//! ids, flags, problem numbers and o(n) workspace. Arrays are allocated up
//! front (allocation is host bookkeeping, not a PRAM operation) and then
//! only mutated through [`crate::Machine::step`] commits — except for
//! explicitly host-side initialisation via [`Shm::host_set`], which models
//! "the input arrives in memory" and costs nothing.

use crate::Word;

/// Handle to one shared array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArrayId(pub(crate) u32);

/// The shared memory of one simulated PRAM.
#[derive(Clone, Debug, Default)]
pub struct Shm {
    arrays: Vec<Vec<Word>>,
    names: Vec<String>,
}

impl Shm {
    /// Empty shared memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a named array of `len` cells, all set to `fill`.
    ///
    /// # Panics
    /// If `len` exceeds `u32::MAX` cells: the machine packs cell indices
    /// into 32 bits in its write log, so a larger array would silently
    /// truncate addresses. (2³² × 8-byte words is already a 32 GiB array —
    /// far beyond anything the experiments allocate.)
    pub fn alloc(&mut self, name: &str, len: usize, fill: Word) -> ArrayId {
        assert!(
            len <= u32::MAX as usize,
            "Shm::alloc(\"{name}\"): {len} cells exceeds the u32::MAX addressable \
             cells per array (write-log indices are packed into 32 bits)"
        );
        self.arrays.push(vec![fill; len]);
        self.names.push(name.to_string());
        ArrayId(self.arrays.len() as u32 - 1)
    }

    /// Number of cells in array `a`.
    pub fn len(&self, a: ArrayId) -> usize {
        self.arrays[a.0 as usize].len()
    }

    /// True if array `a` has no cells.
    pub fn is_empty(&self, a: ArrayId) -> bool {
        self.len(a) == 0
    }

    /// Read one cell (concurrent reads are always legal on a CRCW PRAM).
    #[inline]
    pub fn get(&self, a: ArrayId, i: usize) -> Word {
        self.arrays[a.0 as usize][i]
    }

    /// Read-only view of a whole array (host-side inspection / verification).
    pub fn slice(&self, a: ArrayId) -> &[Word] {
        &self.arrays[a.0 as usize]
    }

    /// Host-side write, used for input setup and between-step host logic.
    /// Not a PRAM operation; never counted.
    pub fn host_set(&mut self, a: ArrayId, i: usize, v: Word) {
        self.arrays[a.0 as usize][i] = v;
    }

    /// Host-side fill of a whole array (workspace reset between phases).
    pub fn host_fill(&mut self, a: ArrayId, v: Word) {
        self.arrays[a.0 as usize].fill(v);
    }

    /// Debug name of array `a`.
    pub fn name(&self, a: ArrayId) -> &str {
        &self.names[a.0 as usize]
    }

    /// Base pointer and length of every array, for the machine's commit
    /// phase (machine-internal). Taking `&mut self` guarantees the caller
    /// holds exclusive access to the memory for the pointers' lifetime.
    pub(crate) fn raw_parts(&mut self) -> Vec<(*mut Word, usize)> {
        self.arrays
            .iter_mut()
            .map(|a| (a.as_mut_ptr(), a.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_access() {
        let mut shm = Shm::new();
        let a = shm.alloc("flags", 8, 0);
        let b = shm.alloc("ids", 4, -1);
        assert_eq!(shm.len(a), 8);
        assert_eq!(shm.len(b), 4);
        assert_eq!(shm.get(b, 3), -1);
        assert_eq!(shm.name(a), "flags");
        shm.host_set(a, 2, 9);
        assert_eq!(shm.get(a, 2), 9);
        assert_eq!(shm.slice(a), &[0, 0, 9, 0, 0, 0, 0, 0]);
        shm.host_fill(a, 1);
        assert!(shm.slice(a).iter().all(|&x| x == 1));
    }

    #[test]
    fn handles_are_stable_across_allocs() {
        let mut shm = Shm::new();
        let a = shm.alloc("a", 2, 7);
        let _ = shm.alloc("b", 2, 8);
        assert_eq!(shm.get(a, 0), 7);
    }
}
