//! Simulated shared memory: a set of named `i64` arrays, with scoped
//! workspace recycling and generation-checked handles.
//!
//! The reproduced algorithms follow the paper's in-place discipline: the
//! input points live in a read-only host array and shared memory holds only
//! ids, flags, problem numbers and o(n) workspace. Arrays are allocated up
//! front (allocation is host bookkeeping, not a PRAM operation) and then
//! only mutated through [`crate::Machine::step`] commits — except for
//! explicitly host-side initialisation via [`Shm::host_set`], which models
//! "the input arrives in memory" and costs nothing.
//!
//! # Scoped workspace arenas
//!
//! The paper's primitives (concurrent OR, knockout minimum, prefix sums, …)
//! each need a few cells of workspace, and the algorithms invoke them inside
//! loops. Originally every invocation allocated fresh arrays that lived for
//! the whole run, so long recursions leaked memory *and* slowed every
//! subsequent commit (the machine's committer indexes all arrays ever
//! allocated). [`Shm::scope`] fixes both: arrays allocated inside a scope
//! are returned to a size-bucketed free list when the scope exits, and the
//! next allocation of a similar size reuses the slot — same slot index, same
//! heap buffer, zero steady-state growth:
//!
//! ```
//! # use ipch_pram::Shm;
//! let mut shm = Shm::new();
//! let before = shm.array_count();
//! for _ in 0..1000 {
//!     shm.scope(|shm| {
//!         let ws = shm.alloc("loop.workspace", 64, 0);
//!         shm.host_set(ws, 0, 1); // … run steps against ws …
//!     });
//! }
//! assert_eq!(shm.array_count(), before + 1, "workspace slot is recycled");
//! ```
//!
//! # Scope safety: generation-checked handles
//!
//! An [`ArrayId`] allocated inside a scope is *dead* once the scope exits —
//! the slot may be handed to a later allocation of any size. Results that
//! must outlive the scope are either read out host-side before the scope
//! closes or kept alive with [`Shm::promote`]. Every `ArrayId` carries the
//! **generation** of its slot, and every access checks it: using a dead id —
//! even after its slot has been recycled to a new array of the same size —
//! fails with the uniform typed error [`ShmError::StaleArrayId`] instead of
//! silently aliasing recycled workspace. Out-of-range indices likewise fail
//! with [`ShmError::OutOfBounds`]. The panicking accessors ([`Shm::get`],
//! [`Shm::slice`], [`Shm::host_set`], …) all panic with the corresponding
//! `ShmError` message; `try_` variants ([`Shm::try_get`], …) return the
//! error for callers (and tests) that want to handle it.
//!
//! # Shadow initialisation tracking
//!
//! For the [`crate::analyze`] layer, [`Shm::enable_shadow`] attaches a
//! per-cell initialisation bitmap: cells become initialised by the alloc
//! fill (configurable), by host writes, or by committed step writes. The
//! analyzer reports reads of never-initialised cells. Disabled by default
//! and entirely absent from the hot path when off.

use std::borrow::Cow;

use crate::Word;

/// Handle to one shared array: a slot index plus the slot's generation at
/// allocation time. Accessing the slot after the owning scope has exited
/// (which bumps the generation) is a [`ShmError::StaleArrayId`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArrayId {
    pub(crate) slot: u32,
    pub(crate) gen: u32,
}

impl ArrayId {
    /// The raw slot index (machine-internal: write-log keys and kernel
    /// forbidden-array checks are keyed by slot).
    #[inline]
    pub(crate) fn slot(self) -> u32 {
        self.slot
    }
}

/// Uniform typed error for every illegal shared-memory access.
///
/// All panicking `Shm` accessors panic with the `Display` rendering of one
/// of these variants, so "index out of bounds" and "use after scope exit"
/// are diagnosable uniformly wherever they surface (host code, step
/// closures, kernel closures, or the commit pipeline's write validation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShmError {
    /// Index past the end of a live array.
    OutOfBounds {
        /// Debug name of the array.
        name: String,
        /// The offending index.
        index: usize,
        /// The array's length.
        len: usize,
    },
    /// Access through an `ArrayId` whose scope has exited: the slot was
    /// recycled (or parked on the free list) after the id was issued.
    StaleArrayId {
        /// Debug name the slot currently carries (`"<recycled>"` while
        /// parked, or the name of the array that reused the slot).
        name: String,
        /// The slot index of the dead handle.
        slot: u32,
    },
}

impl std::fmt::Display for ShmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShmError::OutOfBounds { name, index, len } => write!(
                f,
                "shm access out of bounds: index {index} >= len {len} of array \"{name}\""
            ),
            ShmError::StaleArrayId { name, slot } => write!(
                f,
                "shm use after scope exit: stale ArrayId for slot {slot} \
                 (slot now holds \"{name}\"); promote the array or read it \
                 out before its scope closes"
            ),
        }
    }
}

impl std::error::Error for ShmError {}

/// Cached `(base pointer, len)` of every array slot, rebuilt only when an
/// allocation changes the layout (see [`Shm::raw_parts`]).
#[derive(Default)]
struct RawCache(Vec<(*mut Word, usize)>);

// SAFETY: the cached pointers are only ever dereferenced by the machine's
// commit phase, which obtains them through `Shm::raw_parts(&mut self)` —
// an exclusive borrow of the memory — and upholds cell-disjointness across
// its own threads. The cache itself is plain data.
unsafe impl Send for RawCache {}
unsafe impl Sync for RawCache {}

/// Optional per-cell initialisation shadow (see module docs).
#[derive(Clone, Default)]
struct ShadowInit {
    /// `init[slot][i]` — cell `i` of slot has been initialised.
    init: Vec<Vec<bool>>,
    /// Whether the alloc-time fill counts as initialising.
    fill_initializes: bool,
}

/// The shared memory of one simulated PRAM.
#[derive(Default)]
pub struct Shm {
    arrays: Vec<Vec<Word>>,
    names: Vec<Cow<'static, str>>,
    /// Per-slot generation, bumped whenever the slot is parked on the free
    /// list; an `ArrayId` is live iff its generation matches.
    gens: Vec<u32>,
    /// One entry per open scope: the slots allocated while it was the
    /// innermost scope (recycled when it exits).
    scopes: Vec<Vec<u32>>,
    /// Free slots bucketed by power-of-two capacity class
    /// (`free[c]` holds slots whose buffer capacity is in `(2^(c-1), 2^c]`).
    free: Vec<Vec<u32>>,
    shadow: Option<Box<ShadowInit>>,
    raw: RawCache,
    raw_dirty: bool,
}

impl Clone for Shm {
    fn clone(&self) -> Self {
        Self {
            arrays: self.arrays.clone(),
            names: self.names.clone(),
            gens: self.gens.clone(),
            scopes: self.scopes.clone(),
            free: self.free.clone(),
            shadow: self.shadow.clone(),
            // pointers refer to the source's buffers — rebuild lazily
            raw: RawCache::default(),
            raw_dirty: true,
        }
    }
}

impl std::fmt::Debug for Shm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shm")
            .field("arrays", &self.arrays)
            .field("names", &self.names)
            .field("open_scopes", &self.scopes.len())
            .finish()
    }
}

/// Power-of-two size class of a buffer capacity (0 for empty buffers).
#[inline]
fn size_class(cap: usize) -> usize {
    (usize::BITS - cap.next_power_of_two().leading_zeros()) as usize
}

impl Shm {
    /// Empty shared memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a named array of `len` cells, all set to `fill`.
    ///
    /// Inside a [`Shm::scope`] the allocation is satisfied from the scope
    /// free list when a recycled slot of a matching size class exists, so
    /// steady-state workspace allocation touches no allocator at all (the
    /// name, too, is a `Cow` — string literals are stored without copying).
    ///
    /// # Panics
    /// If `len` exceeds `u32::MAX` cells: the machine packs cell indices
    /// into 32 bits in its write log, so a larger array would silently
    /// truncate addresses. (2³² × 8-byte words is already a 32 GiB array —
    /// far beyond anything the experiments allocate.)
    pub fn alloc(&mut self, name: impl Into<Cow<'static, str>>, len: usize, fill: Word) -> ArrayId {
        let name = name.into();
        assert!(
            len <= u32::MAX as usize,
            "Shm::alloc(\"{name}\"): {len} cells exceeds the u32::MAX addressable \
             cells per array (write-log indices are packed into 32 bits)"
        );
        let slot = match self.take_free(len) {
            Some(slot) => {
                let buf = &mut self.arrays[slot as usize];
                buf.clear();
                buf.resize(len, fill);
                self.names[slot as usize] = name;
                slot
            }
            None => {
                self.arrays.push(vec![fill; len]);
                self.names.push(name);
                self.gens.push(0);
                (self.arrays.len() - 1) as u32
            }
        };
        if let Some(top) = self.scopes.last_mut() {
            top.push(slot);
        }
        if let Some(shadow) = &mut self.shadow {
            let init = shadow.fill_initializes;
            let bits = &mut shadow.init;
            if bits.len() <= slot as usize {
                bits.resize_with(slot as usize + 1, Vec::new);
            }
            bits[slot as usize].clear();
            bits[slot as usize].resize(len, init);
        }
        self.raw_dirty = true;
        ArrayId {
            slot,
            gen: self.gens[slot as usize],
        }
    }

    /// Pop a recycled slot whose buffer capacity class matches `len` (exact
    /// class, then one class up — bounding reuse waste to ~4×).
    fn take_free(&mut self, len: usize) -> Option<u32> {
        let c = size_class(len);
        for class in c..(c + 2).min(self.free.len()) {
            if let Some(slot) = self.free[class].pop() {
                return Some(slot);
            }
        }
        None
    }

    /// Open a workspace scope: arrays allocated until the matching
    /// [`Shm::pop_scope`] are recycled when it closes. Prefer the closure
    /// form [`Shm::scope`].
    pub fn push_scope(&mut self) {
        self.scopes.push(Vec::new());
    }

    /// Close the innermost scope, recycling every array allocated in it
    /// (except those [`Shm::promote`]d out). Their `ArrayId`s are dead: the
    /// slot generations advance, so any later access through a dead id is a
    /// [`ShmError::StaleArrayId`] — even after the slot is reused.
    ///
    /// # Panics
    /// If no scope is open.
    pub fn pop_scope(&mut self) {
        let slots = self
            .scopes
            .pop()
            // xlint: allow(unwrap): documented panic — popping without a
            // matching push is a caller bug, not a recoverable state.
            .expect("Shm::pop_scope without push_scope");
        for slot in slots {
            let buf = &mut self.arrays[slot as usize];
            buf.clear();
            let class = size_class(buf.capacity());
            if self.free.len() <= class {
                self.free.resize_with(class + 1, Vec::new);
            }
            self.free[class].push(slot);
            self.names[slot as usize] = Cow::Borrowed("<recycled>");
            self.gens[slot as usize] = self.gens[slot as usize].wrapping_add(1);
        }
        self.raw_dirty = true;
    }

    /// Run `f` inside a fresh workspace scope (see the module docs):
    /// everything it allocates is recycled on exit unless promoted.
    pub fn scope<R>(&mut self, f: impl FnOnce(&mut Shm) -> R) -> R {
        self.push_scope();
        let r = f(self);
        self.pop_scope();
        r
    }

    /// Move array `a` out of the innermost scope into the enclosing scope
    /// (or make it permanent if there is none), so it survives the innermost
    /// scope's exit. No-op if `a` does not belong to the innermost scope.
    pub fn promote(&mut self, a: ArrayId) {
        let depth = self.scopes.len();
        if depth == 0 {
            return;
        }
        let top = &mut self.scopes[depth - 1];
        if let Some(pos) = top.iter().position(|&s| s == a.slot) {
            top.swap_remove(pos);
            if depth >= 2 {
                self.scopes[depth - 2].push(a.slot);
            }
        }
    }

    /// Number of live array slots (live arrays + parked free slots). The
    /// leak benchmarks watch this: with scoped workspace it stays O(1) in
    /// the number of primitive invocations.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// Check that `a` is live (its slot generation matches).
    #[inline]
    fn check_live(&self, a: ArrayId) -> Result<(), ShmError> {
        if self.gens[a.slot as usize] != a.gen {
            return Err(ShmError::StaleArrayId {
                name: self.names[a.slot as usize].to_string(),
                slot: a.slot,
            });
        }
        Ok(())
    }

    /// Check that `a` is live and `i` is in range.
    #[inline]
    pub(crate) fn check_access(&self, a: ArrayId, i: usize) -> Result<(), ShmError> {
        self.check_live(a)?;
        let len = self.arrays[a.slot as usize].len();
        if i >= len {
            return Err(ShmError::OutOfBounds {
                name: self.names[a.slot as usize].to_string(),
                index: i,
                len,
            });
        }
        Ok(())
    }

    /// Number of cells in array `a`.
    ///
    /// # Panics
    /// With a [`ShmError::StaleArrayId`] message if `a`'s scope has exited.
    #[inline]
    pub fn len(&self, a: ArrayId) -> usize {
        match self.try_len(a) {
            Ok(l) => l,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Shm::len`], returning the typed error instead of panicking.
    #[inline]
    pub fn try_len(&self, a: ArrayId) -> Result<usize, ShmError> {
        self.check_live(a)?;
        Ok(self.arrays[a.slot as usize].len())
    }

    /// True if array `a` has no cells.
    pub fn is_empty(&self, a: ArrayId) -> bool {
        self.len(a) == 0
    }

    /// Read one cell (concurrent reads are always legal on a CRCW PRAM).
    ///
    /// # Panics
    /// With a [`ShmError`] message on a stale id or an out-of-range index.
    #[inline]
    pub fn get(&self, a: ArrayId, i: usize) -> Word {
        if self.gens[a.slot as usize] == a.gen {
            if let Some(&v) = self.arrays[a.slot as usize].get(i) {
                return v;
            }
        }
        match self.try_get(a, i) {
            Err(e) => panic!("{e}"),
            Ok(_) => unreachable!(),
        }
    }

    /// [`Shm::get`], returning the typed error instead of panicking.
    #[inline]
    pub fn try_get(&self, a: ArrayId, i: usize) -> Result<Word, ShmError> {
        self.check_access(a, i)?;
        Ok(self.arrays[a.slot as usize][i])
    }

    /// Read-only view of a whole array (host-side inspection / verification).
    ///
    /// # Panics
    /// With a [`ShmError::StaleArrayId`] message if `a`'s scope has exited.
    #[inline]
    pub fn slice(&self, a: ArrayId) -> &[Word] {
        match self.try_slice(a) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Shm::slice`], returning the typed error instead of panicking.
    #[inline]
    pub fn try_slice(&self, a: ArrayId) -> Result<&[Word], ShmError> {
        self.check_live(a)?;
        Ok(&self.arrays[a.slot as usize])
    }

    /// Host-side write, used for input setup and between-step host logic.
    /// Not a PRAM operation; never counted.
    ///
    /// # Panics
    /// With a [`ShmError`] message on a stale id or an out-of-range index.
    pub fn host_set(&mut self, a: ArrayId, i: usize, v: Word) {
        if let Err(e) = self.try_host_set(a, i, v) {
            panic!("{e}");
        }
    }

    /// [`Shm::host_set`], returning the typed error instead of panicking.
    pub fn try_host_set(&mut self, a: ArrayId, i: usize, v: Word) -> Result<(), ShmError> {
        self.check_access(a, i)?;
        self.arrays[a.slot as usize][i] = v;
        self.mark_init(a.slot, i);
        Ok(())
    }

    /// Host-side fill of a whole array (workspace reset between phases).
    ///
    /// # Panics
    /// With a [`ShmError::StaleArrayId`] message if `a`'s scope has exited.
    pub fn host_fill(&mut self, a: ArrayId, v: Word) {
        if let Err(e) = self.check_live(a) {
            panic!("{e}");
        }
        self.arrays[a.slot as usize].fill(v);
        if let Some(shadow) = &mut self.shadow {
            if let Some(bits) = shadow.init.get_mut(a.slot as usize) {
                bits.fill(true);
            }
        }
    }

    /// Debug name of array `a`.
    ///
    /// # Panics
    /// With a [`ShmError::StaleArrayId`] message if `a`'s scope has exited.
    pub fn name(&self, a: ArrayId) -> &str {
        if let Err(e) = self.check_live(a) {
            panic!("{e}");
        }
        &self.names[a.slot as usize]
    }

    /// Debug name of a raw slot (analyzer diagnostics).
    pub(crate) fn slot_name(&self, slot: u32) -> &str {
        self.names
            .get(slot as usize)
            .map(|n| n.as_ref())
            .unwrap_or("<unknown>")
    }

    /// Attach (or reset) the per-cell initialisation shadow. With
    /// `fill_initializes` the alloc-time fill counts as initialising —
    /// the lenient default of [`crate::analyze`]; without it, only host
    /// writes and committed step writes do, which is the strict sanitizer
    /// mode for flushing out reads of never-written workspace.
    ///
    /// Arrays already allocated are treated as fully initialised.
    pub fn enable_shadow(&mut self, fill_initializes: bool) {
        let init = self.arrays.iter().map(|a| vec![true; a.len()]).collect();
        self.shadow = Some(Box::new(ShadowInit {
            init,
            fill_initializes,
        }));
    }

    /// True if the initialisation shadow is attached.
    pub fn shadow_enabled(&self) -> bool {
        self.shadow.is_some()
    }

    /// Mark one cell initialised (no-op without a shadow).
    #[inline]
    pub(crate) fn mark_init(&mut self, slot: u32, i: usize) {
        if let Some(shadow) = &mut self.shadow {
            if let Some(bits) = shadow.init.get_mut(slot as usize) {
                if let Some(b) = bits.get_mut(i) {
                    *b = true;
                }
            }
        }
    }

    /// Whether a cell is initialised (`None` without a shadow).
    #[inline]
    pub(crate) fn is_init(&self, slot: u32, i: usize) -> Option<bool> {
        let shadow = self.shadow.as_ref()?;
        Some(
            shadow
                .init
                .get(slot as usize)
                .and_then(|bits| bits.get(i))
                .copied()
                .unwrap_or(true),
        )
    }

    /// Base pointer and length of every array slot, for the machine's commit
    /// phase (machine-internal). Taking `&mut self` guarantees the caller
    /// holds exclusive access to the memory for the pointers' lifetime.
    ///
    /// The cache is maintained incrementally: it is rebuilt only after an
    /// allocation (the only operation that can move a buffer or change a
    /// length), so in the steady state — scoped workspace recycling, no
    /// fresh allocations between steps — a commit pays nothing here, and
    /// commit cost no longer scales with the lifetime allocation count.
    pub(crate) fn raw_parts(&mut self) -> &[(*mut Word, usize)] {
        if self.raw_dirty {
            self.raw.0.clear();
            self.raw
                .0
                .extend(self.arrays.iter_mut().map(|a| (a.as_mut_ptr(), a.len())));
            self.raw_dirty = false;
        }
        &self.raw.0
    }

    /// Fault-plane hook ([`crate::faults`]): flip the low bit of one
    /// hash-chosen cell of a live, non-empty array. Returns the
    /// `(slot, index)` corrupted, or `None` when no array has cells (parked
    /// free-list slots are empty, so they are never chosen). The buffer
    /// itself is untouched (same pointer, same length), so the raw-parts
    /// cache stays valid. The initialisation shadow is deliberately not
    /// updated: corruption models decay of whatever was (or wasn't) there.
    pub(crate) fn corrupt_cell(&mut self, h: u64) -> Option<(u32, usize)> {
        let nslots = self.arrays.len();
        if nslots == 0 {
            return None;
        }
        // Probe forward from a hashed start slot to the first non-empty array.
        let start = (h % nslots as u64) as usize;
        let slot = (0..nslots)
            .map(|d| (start + d) % nslots)
            .find(|&s| !self.arrays[s].is_empty())?;
        let buf = &mut self.arrays[slot];
        let idx = (crate::rng::mix64(h) % buf.len() as u64) as usize;
        buf[idx] ^= 1;
        Some((slot as u32, idx))
    }

    /// Detach array `a`'s buffer for a kernel's exclusive writes (the slot
    /// reads as empty until [`Shm::put_back`] restores it, so a kernel
    /// closure that illegally reads its own output trips a bounds check).
    ///
    /// # Panics
    /// With a [`ShmError::StaleArrayId`] message if `a`'s scope has exited.
    pub(crate) fn take_array(&mut self, a: ArrayId) -> Vec<Word> {
        if let Err(e) = self.check_live(a) {
            panic!("{e}");
        }
        std::mem::take(&mut self.arrays[a.slot as usize])
    }

    /// Restore a buffer detached by [`Shm::take_array`]. The heap buffer is
    /// unchanged, so the raw-parts cache stays valid.
    pub(crate) fn put_back(&mut self, a: ArrayId, buf: Vec<Word>) {
        self.arrays[a.slot as usize] = buf;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_access() {
        let mut shm = Shm::new();
        let a = shm.alloc("flags", 8, 0);
        let b = shm.alloc("ids", 4, -1);
        assert_eq!(shm.len(a), 8);
        assert_eq!(shm.len(b), 4);
        assert_eq!(shm.get(b, 3), -1);
        assert_eq!(shm.name(a), "flags");
        shm.host_set(a, 2, 9);
        assert_eq!(shm.get(a, 2), 9);
        assert_eq!(shm.slice(a), &[0, 0, 9, 0, 0, 0, 0, 0]);
        shm.host_fill(a, 1);
        assert!(shm.slice(a).iter().all(|&x| x == 1));
    }

    #[test]
    fn handles_are_stable_across_allocs() {
        let mut shm = Shm::new();
        let a = shm.alloc("a", 2, 7);
        let _ = shm.alloc("b", 2, 8);
        assert_eq!(shm.get(a, 0), 7);
    }

    #[test]
    fn owned_names_are_accepted() {
        let mut shm = Shm::new();
        let a = shm.alloc(format!("dyn{}", 3), 1, 0);
        assert_eq!(shm.name(a), "dyn3");
    }

    #[test]
    fn scope_recycles_slots_and_buffers() {
        let mut shm = Shm::new();
        let keep = shm.alloc("keep", 4, 1);
        let mut first_slot = None;
        for round in 0..100 {
            shm.scope(|shm| {
                let ws = shm.alloc("ws", 32, 0);
                match first_slot {
                    None => first_slot = Some(ws.slot),
                    Some(slot) => assert_eq!(ws.slot, slot, "round {round}: slot must be reused"),
                }
                assert_eq!(shm.slice(ws), &[0; 32], "recycled slot must be re-filled");
                shm.host_set(ws, 0, round);
            });
        }
        assert_eq!(shm.array_count(), 2);
        assert_eq!(shm.slice(keep), &[1, 1, 1, 1], "outer arrays untouched");
    }

    #[test]
    fn dead_id_is_a_stale_typed_error() {
        let mut shm = Shm::new();
        let id = shm.scope(|shm| shm.alloc("tmp", 8, 0));
        match shm.try_len(id) {
            Err(ShmError::StaleArrayId { slot, .. }) => assert_eq!(slot, id.slot),
            other => panic!("expected StaleArrayId, got {other:?}"),
        }
        assert!(shm.try_get(id, 0).is_err());
        assert!(shm.try_slice(id).is_err());
        assert!(shm.try_host_set(id, 0, 1).is_err());
    }

    #[test]
    fn dead_id_stays_stale_after_slot_reuse() {
        // The aliasing case the generations exist for: the slot is recycled
        // to a NEW array of the same size class, and the old id must still
        // be rejected rather than silently reading the new array's cells.
        let mut shm = Shm::new();
        let dead = shm.scope(|shm| shm.alloc("old", 16, 7));
        let fresh = shm.alloc("new", 16, 42);
        assert_eq!(fresh.slot, dead.slot, "slot must be recycled for the test");
        assert_eq!(shm.get(fresh, 0), 42);
        match shm.try_get(dead, 0) {
            Err(ShmError::StaleArrayId { name, .. }) => assert_eq!(name, "new"),
            other => panic!("expected StaleArrayId, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "use after scope exit")]
    fn dead_id_panics_uniformly() {
        let mut shm = Shm::new();
        let id = shm.scope(|shm| shm.alloc("tmp", 8, 0));
        let _ = shm.get(id, 0);
    }

    #[test]
    fn out_of_bounds_is_a_typed_error() {
        let mut shm = Shm::new();
        let a = shm.alloc("a", 4, 0);
        match shm.try_get(a, 4) {
            Err(ShmError::OutOfBounds { index, len, name }) => {
                assert_eq!((index, len), (4, 4));
                assert_eq!(name, "a");
            }
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
        assert!(shm.try_host_set(a, 99, 1).is_err());
        assert_eq!(shm.try_get(a, 3), Ok(0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics_uniformly() {
        let mut shm = Shm::new();
        let a = shm.alloc("a", 4, 0);
        let _ = shm.get(a, 4);
    }

    #[test]
    fn nested_scopes_recycle_independently() {
        let mut shm = Shm::new();
        shm.scope(|shm| {
            let outer = shm.alloc("outer", 16, 7);
            shm.scope(|shm| {
                let inner = shm.alloc("inner", 16, 9);
                assert_eq!(shm.get(inner, 0), 9);
                assert_eq!(shm.get(outer, 0), 7);
            });
            // outer survives the inner scope's exit
            assert_eq!(shm.get(outer, 15), 7);
        });
        assert_eq!(shm.array_count(), 2);
    }

    #[test]
    fn promote_survives_scope_exit() {
        let mut shm = Shm::new();
        let kept = shm.scope(|shm| {
            let tmp = shm.alloc("tmp", 4, 1);
            let kept = shm.alloc("kept", 4, 2);
            shm.promote(kept);
            let _ = tmp;
            kept
        });
        assert_eq!(shm.slice(kept), &[2, 2, 2, 2]);
        // the unpromoted sibling was recycled
        assert_eq!(shm.array_count(), 2);
        let reused = shm.alloc("reuse", 4, 3);
        assert_ne!(reused, kept);
    }

    #[test]
    fn free_list_does_not_serve_wildly_larger_buffers() {
        let mut shm = Shm::new();
        shm.scope(|shm| {
            shm.alloc("big", 1 << 16, 0);
        });
        // a tiny allocation must not pin the 64Ki buffer
        let small = shm.alloc("small", 2, 0);
        assert!(shm.slice(small).len() == 2);
        assert_eq!(shm.array_count(), 2);
    }

    #[test]
    fn clone_is_deep() {
        let mut shm = Shm::new();
        let a = shm.alloc("a", 4, 5);
        let mut copy = shm.clone();
        copy.host_set(a, 0, -9);
        assert_eq!(shm.get(a, 0), 5);
        assert_eq!(copy.get(a, 0), -9);
    }

    #[test]
    fn shadow_tracks_initialisation() {
        let mut shm = Shm::new();
        shm.enable_shadow(false);
        let a = shm.alloc("a", 4, 0);
        assert_eq!(shm.is_init(a.slot, 0), Some(false));
        shm.host_set(a, 0, 5);
        assert_eq!(shm.is_init(a.slot, 0), Some(true));
        assert_eq!(shm.is_init(a.slot, 1), Some(false));
        shm.host_fill(a, 1);
        assert_eq!(shm.is_init(a.slot, 3), Some(true));

        // lenient mode: the alloc fill initialises
        let mut shm = Shm::new();
        shm.enable_shadow(true);
        let b = shm.alloc("b", 4, -1);
        assert_eq!(shm.is_init(b.slot, 2), Some(true));
    }

    #[test]
    fn corrupt_cell_flips_one_live_bit_and_skips_empty_slots() {
        let mut shm = Shm::new();
        assert_eq!(shm.corrupt_cell(7), None, "no arrays: nothing to corrupt");
        // park an empty slot on the free list (too big for the next alloc
        // to recycle), then allocate a live array in a fresh slot
        shm.scope(|shm| {
            shm.alloc("tmp", 1 << 10, 0);
        });
        let a = shm.alloc("live", 4, 2);
        assert_eq!(shm.array_count(), 2, "parked slot must not be recycled");
        for h in 0..32u64 {
            let before = shm.slice(a).to_vec();
            let (slot, idx) = shm.corrupt_cell(h).expect("a non-empty array exists");
            assert_eq!(slot, a.slot, "parked empty slots must be skipped");
            assert_eq!(shm.get(a, idx), before[idx] ^ 1);
            // undo so each probe starts from a clean state
            shm.host_set(a, idx, before[idx]);
        }
    }

    #[test]
    fn shadow_resets_on_slot_reuse() {
        let mut shm = Shm::new();
        shm.enable_shadow(false);
        let slot = shm.scope(|shm| {
            let ws = shm.alloc("ws", 8, 0);
            shm.host_set(ws, 3, 1);
            assert_eq!(shm.is_init(ws.slot, 3), Some(true));
            ws.slot
        });
        let fresh = shm.alloc("fresh", 8, 0);
        assert_eq!(fresh.slot, slot);
        assert_eq!(
            shm.is_init(fresh.slot, 3),
            Some(false),
            "reused slot must not inherit the old array's init bits"
        );
    }
}
