//! The step-synchronous CRCW machine.
//!
//! One call to [`Machine::step`] is one synchronous PRAM step:
//!
//! 1. **Compute phase** — every active processor runs the step closure
//!    against an immutable snapshot of shared memory, buffering its writes
//!    and (optionally) producing a private result. Processors are evaluated
//!    via rayon when the active set is large; since each processor only
//!    reads the pre-step snapshot, evaluation order is unobservable.
//! 2. **Commit phase** — buffered writes are grouped by cell, each group is
//!    resolved under the machine's [`WritePolicy`], and the winners are
//!    committed. Metrics record one step and `|active|` work.
//!
//! This gives exactly the textbook semantics: concurrent reads are free,
//! concurrent writes are resolved by the model rule, and *nothing a
//! processor writes is visible to any processor until the next step*.

use rayon::prelude::*;

use crate::memory::{ArrayId, Shm};
use crate::metrics::Metrics;
use crate::policy::WritePolicy;
use crate::rng::{mix64, SplitMix64};
use crate::Word;

/// Active-processor set for one step.
#[derive(Clone, Debug)]
pub enum Pids<'a> {
    /// Processors `lo..hi`.
    Range(usize, usize),
    /// An explicit pid list (need not be sorted or contiguous — this is what
    /// the paper's *in-place* methods exploit: the processors of one
    /// subproblem are scattered through the input).
    List(&'a [usize]),
}

impl Pids<'_> {
    /// Number of active processors.
    pub fn count(&self) -> usize {
        match self {
            Pids::Range(lo, hi) => hi.saturating_sub(*lo),
            Pids::List(l) => l.len(),
        }
    }

    fn get(&self, i: usize) -> usize {
        match self {
            Pids::Range(lo, _) => lo + i,
            Pids::List(l) => l[i],
        }
    }
}

impl From<std::ops::Range<usize>> for Pids<'static> {
    fn from(r: std::ops::Range<usize>) -> Self {
        Pids::Range(r.start, r.end)
    }
}

impl<'a> From<&'a [usize]> for Pids<'a> {
    fn from(l: &'a [usize]) -> Self {
        Pids::List(l)
    }
}

impl<'a> From<&'a Vec<usize>> for Pids<'a> {
    fn from(l: &'a Vec<usize>) -> Self {
        Pids::List(l.as_slice())
    }
}

#[derive(Clone, Copy, Debug)]
struct WriteEntry {
    array: u32,
    idx: u32,
    pid: usize,
    val: Word,
}

/// Per-processor view during the compute phase of a step.
pub struct Ctx<'a, 'b> {
    /// This processor's id.
    pub pid: usize,
    shm: &'a Shm,
    rng: SplitMix64,
    writes: &'b mut Vec<WriteEntry>,
}

impl Ctx<'_, '_> {
    /// Read a cell of the pre-step memory snapshot.
    #[inline]
    pub fn read(&self, a: ArrayId, i: usize) -> Word {
        self.shm.get(a, i)
    }

    /// Length of a shared array.
    #[inline]
    pub fn len(&self, a: ArrayId) -> usize {
        self.shm.len(a)
    }

    /// Buffer a write to be committed at the end of the step.
    #[inline]
    pub fn write(&mut self, a: ArrayId, i: usize, v: Word) {
        debug_assert!(i < self.shm.len(a), "write out of bounds: {} >= {}", i, self.shm.len(a));
        self.writes.push(WriteEntry {
            array: a.0,
            idx: i as u32,
            pid: self.pid,
            val: v,
        });
    }

    /// This processor's private RNG for this step.
    #[inline]
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.rng
    }
}

/// Threshold above which the compute phase fans out over rayon.
const PAR_THRESHOLD: usize = 1 << 15;

/// A randomized CRCW PRAM.
///
/// # Examples
///
/// Eight processors concurrently increment their own cells in one
/// synchronous step; a ninth step has them all contend for one cell under
/// the Combining-Sum rule:
///
/// ```
/// use ipch_pram::{Machine, Shm, WritePolicy};
///
/// let mut m = Machine::new(42);
/// let mut shm = Shm::new();
/// let cells = shm.alloc("cells", 8, 0);
/// m.step(&mut shm, 0..8, |ctx| {
///     let pid = ctx.pid;
///     ctx.write(cells, pid, pid as i64);
/// });
/// assert_eq!(shm.get(cells, 7), 7);
///
/// let acc = shm.alloc("acc", 1, 0);
/// m.step_with_policy(&mut shm, 0..8, WritePolicy::CombineSum, |ctx| {
///     ctx.write(acc, 0, 1);
/// });
/// assert_eq!(shm.get(acc, 0), 8);
/// assert_eq!(m.metrics.steps, 2);
/// assert_eq!(m.metrics.work, 16);
/// ```
#[derive(Debug)]
pub struct Machine {
    /// Accumulated costs; read freely, reset via [`Machine::reset_metrics`].
    pub metrics: Metrics,
    /// Default concurrent-write rule for [`Machine::step`].
    pub policy: WritePolicy,
    seed: u64,
    step_counter: u64,
}

impl Machine {
    /// A machine with the given seed and the `Arbitrary` write rule.
    pub fn new(seed: u64) -> Self {
        Self {
            metrics: Metrics::new(),
            policy: WritePolicy::Arbitrary,
            seed,
            step_counter: 0,
        }
    }

    /// A machine with an explicit write rule.
    pub fn with_policy(seed: u64, policy: WritePolicy) -> Self {
        Self {
            policy,
            ..Self::new(seed)
        }
    }

    /// The machine seed (used to derive child machines deterministically).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of steps executed so far (monotone; survives metric resets).
    pub fn step_counter(&self) -> u64 {
        self.step_counter
    }

    /// Zero the metrics (the step counter keeps advancing so RNG streams
    /// never repeat within a run).
    pub fn reset_metrics(&mut self) {
        self.metrics = Metrics::new();
    }

    /// Deterministic host-side RNG stream tagged by `tag` (for host logic
    /// like choosing experiment seeds; not a PRAM operation).
    pub fn host_rng(&self, tag: u64) -> SplitMix64 {
        SplitMix64::new(mix64(self.seed ^ mix64(tag ^ 0xD1B5_4A32_D192_ED03)))
    }

    /// Spawn a child machine for a subcomputation that conceptually runs
    /// *in parallel* with siblings (its own processor group). The child
    /// gets a derived seed and fresh metrics; after all siblings finish,
    /// fold their costs into the parent with
    /// [`Metrics::absorb_parallel`] (time = max, work = sum) or
    /// [`Metrics::absorb`] (sequential composition).
    pub fn child(&self, tag: u64) -> Machine {
        Machine {
            metrics: Metrics::new(),
            policy: self.policy,
            seed: mix64(self.seed ^ mix64(tag.wrapping_mul(0xDEAD_BEEF_1234_5677))),
            step_counter: 0,
        }
    }

    /// Record an analytic cost (see [`Metrics`] docs for the contract).
    pub fn charge(&mut self, steps: u64, work: u64) {
        self.metrics.record_charge(steps, work);
    }

    /// Execute one synchronous step over `pids` with the machine policy.
    pub fn step<'a, P, F>(&mut self, shm: &mut Shm, pids: P, f: F)
    where
        P: Into<Pids<'a>>,
        F: Fn(&mut Ctx) + Sync,
    {
        let policy = self.policy;
        self.step_with_policy(shm, pids, policy, f);
    }

    /// Execute one synchronous step with an explicit write rule.
    pub fn step_with_policy<'a, P, F>(&mut self, shm: &mut Shm, pids: P, policy: WritePolicy, f: F)
    where
        P: Into<Pids<'a>>,
        F: Fn(&mut Ctx) + Sync,
    {
        let _ignored: Vec<()> = self.step_map_with_policy(shm, pids, policy, |ctx| f(ctx));
    }

    /// Execute one step, returning each processor's private result in the
    /// order of the pid set. (Private results model processor-local
    /// registers; they are invisible to other processors until a later
    /// step's shared write, so this does not weaken the model.)
    pub fn step_map<'a, P, R, F>(&mut self, shm: &mut Shm, pids: P, f: F) -> Vec<R>
    where
        P: Into<Pids<'a>>,
        R: Send,
        F: Fn(&mut Ctx) -> R + Sync,
    {
        let policy = self.policy;
        self.step_map_with_policy(shm, pids, policy, f)
    }

    /// [`Machine::step_map`] with an explicit write rule.
    pub fn step_map_with_policy<'a, P, R, F>(
        &mut self,
        shm: &mut Shm,
        pids: P,
        policy: WritePolicy,
        f: F,
    ) -> Vec<R>
    where
        P: Into<Pids<'a>>,
        R: Send,
        F: Fn(&mut Ctx) -> R + Sync,
    {
        let pids = pids.into();
        let count = pids.count();
        let step_no = self.step_counter;
        self.step_counter += 1;
        self.metrics.record_step(count as u64);
        if count == 0 {
            return Vec::new();
        }

        let seed = self.seed;
        let shm_ref: &Shm = shm;
        // Processors are evaluated in chunks sharing one write buffer per
        // chunk, so a huge mostly-silent step (e.g. the n³ brute-force
        // marking steps) costs no per-processor allocation.
        const CHUNK: usize = 8192;
        let run_chunk = |lo: usize, hi: usize| -> (Vec<WriteEntry>, Vec<R>) {
            let mut writes: Vec<WriteEntry> = Vec::new();
            let mut results: Vec<R> = Vec::with_capacity(hi - lo);
            for i in lo..hi {
                let pid = pids.get(i);
                let mut ctx = Ctx {
                    pid,
                    shm: shm_ref,
                    rng: SplitMix64::for_step_pid(seed, step_no, pid as u64),
                    writes: &mut writes,
                };
                results.push(f(&mut ctx));
            }
            (writes, results)
        };

        let nchunks = count.div_ceil(CHUNK);
        let per_chunk: Vec<(Vec<WriteEntry>, Vec<R>)> = if count >= PAR_THRESHOLD {
            (0..nchunks)
                .into_par_iter()
                .map(|c| run_chunk(c * CHUNK, ((c + 1) * CHUNK).min(count)))
                .collect()
        } else {
            (0..nchunks)
                .map(|c| run_chunk(c * CHUNK, ((c + 1) * CHUNK).min(count)))
                .collect()
        };

        let total_writes: usize = per_chunk.iter().map(|(w, _)| w.len()).sum();
        let mut all_writes: Vec<WriteEntry> = Vec::with_capacity(total_writes);
        let mut results: Vec<R> = Vec::with_capacity(count);
        for (w, r) in per_chunk {
            all_writes.extend_from_slice(&w);
            results.extend(r);
        }

        self.commit(shm, policy, step_no, all_writes);
        results
    }

    fn commit(&mut self, shm: &mut Shm, policy: WritePolicy, step_no: u64, mut writes: Vec<WriteEntry>) {
        if writes.is_empty() {
            return;
        }
        writes.sort_unstable_by(|a, b| {
            (a.array, a.idx, a.pid).cmp(&(b.array, b.idx, b.pid))
        });
        let mut i = 0;
        let mut group: Vec<(usize, Word)> = Vec::new();
        while i < writes.len() {
            let (a, idx) = (writes[i].array, writes[i].idx);
            group.clear();
            while i < writes.len() && writes[i].array == a && writes[i].idx == idx {
                group.push((writes[i].pid, writes[i].val));
                i += 1;
            }
            let tiebreak = mix64(
                self.seed ^ mix64(step_no ^ ((a as u64) << 32 | idx as u64).wrapping_mul(0x9E3779B97F4A7C15)),
            );
            let v = policy.resolve(&group, tiebreak);
            shm.commit(a, idx, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EMPTY;

    #[test]
    fn single_step_writes_commit() {
        let mut m = Machine::new(1);
        let mut shm = Shm::new();
        let a = shm.alloc("a", 8, 0);
        m.step(&mut shm, 0..8, |ctx| {
            let pid = ctx.pid;
            ctx.write(a, pid, pid as i64 * 2);
        });
        assert_eq!(shm.slice(a), &[0, 2, 4, 6, 8, 10, 12, 14]);
        assert_eq!(m.metrics.steps, 1);
        assert_eq!(m.metrics.work, 8);
        assert_eq!(m.metrics.peak_processors, 8);
    }

    #[test]
    fn reads_see_pre_step_snapshot() {
        // Every processor swaps with its neighbour simultaneously: if reads
        // saw in-step writes this would not be a clean rotation.
        let mut m = Machine::new(2);
        let mut shm = Shm::new();
        let a = shm.alloc("a", 4, 0);
        for i in 0..4 {
            shm.host_set(a, i, i as i64);
        }
        m.step(&mut shm, 0..4, |ctx| {
            let n = ctx.len(a);
            let next = ctx.read(a, (ctx.pid + 1) % n);
            ctx.write(a, ctx.pid, next);
        });
        assert_eq!(shm.slice(a), &[1, 2, 3, 0]);
    }

    #[test]
    fn concurrent_write_priority_min() {
        let mut m = Machine::with_policy(3, WritePolicy::PriorityMin);
        let mut shm = Shm::new();
        let a = shm.alloc("cell", 1, EMPTY);
        m.step(&mut shm, 0..16, |ctx| {
            let pid = ctx.pid;
            ctx.write(a, 0, pid as i64);
        });
        assert_eq!(shm.get(a, 0), 0);
    }

    #[test]
    fn concurrent_write_arbitrary_is_some_contender_and_replayable() {
        let run = |seed| {
            let mut m = Machine::new(seed);
            let mut shm = Shm::new();
            let a = shm.alloc("cell", 1, EMPTY);
            m.step(&mut shm, 0..16, |ctx| {
                let pid = ctx.pid;
                ctx.write(a, 0, pid as i64);
            });
            shm.get(a, 0)
        };
        let v = run(7);
        assert!((0..16).contains(&v));
        assert_eq!(v, run(7), "same seed must replay identically");
    }

    #[test]
    fn combine_sum_counts_writers() {
        let mut m = Machine::with_policy(4, WritePolicy::CombineSum);
        let mut shm = Shm::new();
        let a = shm.alloc("acc", 1, 0);
        m.step(&mut shm, 0..100, |ctx| ctx.write(a, 0, 1));
        assert_eq!(shm.get(a, 0), 100);
    }

    #[test]
    fn scattered_pid_lists() {
        let mut m = Machine::new(5);
        let mut shm = Shm::new();
        let a = shm.alloc("a", 10, 0);
        let pids = vec![1usize, 4, 9];
        m.step(&mut shm, &pids, |ctx| {
            let pid = ctx.pid;
            ctx.write(a, pid, 1);
        });
        assert_eq!(shm.slice(a), &[0, 1, 0, 0, 1, 0, 0, 0, 0, 1]);
        assert_eq!(m.metrics.work, 3);
    }

    #[test]
    fn step_map_returns_results_in_pid_order() {
        let mut m = Machine::new(6);
        let mut shm = Shm::new();
        let _a = shm.alloc("a", 1, 0);
        let out = m.step_map(&mut shm, 3..7, |ctx| ctx.pid * 10);
        assert_eq!(out, vec![30, 40, 50, 60]);
    }

    #[test]
    fn per_pid_rng_differs_across_steps() {
        let mut m = Machine::new(8);
        let mut shm = Shm::new();
        let _a = shm.alloc("a", 1, 0);
        let r1 = m.step_map(&mut shm, 0..4, |ctx| ctx.rng().next_u64());
        let r2 = m.step_map(&mut shm, 0..4, |ctx| ctx.rng().next_u64());
        assert_ne!(r1, r2);
        // distinct pids in the same step also differ
        assert!(r1.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn zero_processor_step_costs_a_step_but_no_work() {
        let mut m = Machine::new(9);
        let mut shm = Shm::new();
        let _a = shm.alloc("a", 1, 0);
        m.step(&mut shm, 0..0, |_| {});
        assert_eq!(m.metrics.steps, 1);
        assert_eq!(m.metrics.work, 0);
    }

    #[test]
    fn large_step_parallel_path_matches_semantics() {
        let n = (1 << 15) + 3; // force the rayon path
        let mut m = Machine::new(10);
        let mut shm = Shm::new();
        let a = shm.alloc("a", n, 0);
        m.step(&mut shm, 0..n, |ctx| {
            let pid = ctx.pid;
            ctx.write(a, pid, pid as i64);
        });
        assert!(shm.slice(a).iter().enumerate().all(|(i, &v)| v == i as i64));
    }
}
