//! The step-synchronous CRCW machine.
//!
//! One call to [`Machine::step`] is one synchronous PRAM step:
//!
//! 1. **Compute phase** — every active processor runs the step closure
//!    against an immutable snapshot of shared memory, buffering its writes
//!    and (optionally) producing a private result. Processors are evaluated
//!    in chunks over the persistent [`crate::pool`] when the active set is
//!    large; since each processor only reads the pre-step snapshot,
//!    evaluation order is unobservable.
//! 2. **Commit phase** — buffered writes are resolved per cell under the
//!    machine's [`WritePolicy`] and the winners are committed. Metrics
//!    record one step and `|active|` work.
//!
//! This gives exactly the textbook semantics: concurrent reads are free,
//! concurrent writes are resolved by the model rule, and *nothing a
//! processor writes is visible to any processor until the next step*.
//!
//! # The commit pipeline
//!
//! The commit phase is the simulator's hot path and is engineered to cost
//! nothing it doesn't have to:
//!
//! * **Write-buffer arena** — every chunk of processors appends to a pooled
//!   per-chunk buffer owned by the machine. Buffers (and the flat gather /
//!   sort-scratch buffers behind them) survive across steps, so steady-state
//!   steps perform **zero heap allocation**.
//! * **Conflict-free fast path** — scatter-style steps (each cell written at
//!   most once, in increasing cell order: the overwhelmingly common shape of
//!   the hull algorithms' marking steps) are detected by a single strictly-
//!   monotone scan over the buffered log and committed **directly**: no
//!   gather, no sort, no policy resolution, no per-cell tiebreak hash.
//! * **Sorted slow path** — otherwise the log is gathered flat, sorted by a
//!   packed 64-bit `(array, idx)` key (in parallel above a threshold), and
//!   resolved run-by-run *in place*: singleton runs commit directly, and
//!   only genuinely conflicted cells pay the policy dispatch and the seeded
//!   tiebreak hash.
//! * **Deterministic resolution order** — each buffered write carries its
//!   processor id and a per-processor sequence number, making the sort key
//!   total. The committed state is a pure function of (seed, program),
//!   independent of chunking, thread count, or which commit path ran.

use std::cell::UnsafeCell;
use std::time::Instant;

use crate::analyze::{Analysis, ReadEntry, ReadTrace, READ_ALL};
use crate::cancel::{CancelCause, CancelToken};
use crate::faults::{FaultPlan, FaultState, StepFaults};
use crate::memory::{ArrayId, Shm};
use crate::metrics::Metrics;
use crate::policy::WritePolicy;
use crate::pool;
use crate::rng::{mix64, SplitMix64};
use crate::Word;

/// Active-processor set for one step.
#[derive(Clone, Debug)]
pub enum Pids<'a> {
    /// Processors `lo..hi`.
    Range(usize, usize),
    /// An explicit pid list (need not be sorted or contiguous — this is what
    /// the paper's *in-place* methods exploit: the processors of one
    /// subproblem are scattered through the input).
    List(&'a [usize]),
}

impl Pids<'_> {
    /// Number of active processors.
    pub fn count(&self) -> usize {
        match self {
            Pids::Range(lo, hi) => hi.saturating_sub(*lo),
            Pids::List(l) => l.len(),
        }
    }

    #[inline]
    pub(crate) fn get(&self, i: usize) -> usize {
        match self {
            Pids::Range(lo, _) => lo + i,
            Pids::List(l) => l[i],
        }
    }
}

impl From<std::ops::Range<usize>> for Pids<'static> {
    fn from(r: std::ops::Range<usize>) -> Self {
        Pids::Range(r.start, r.end)
    }
}

impl<'a> From<&'a [usize]> for Pids<'a> {
    fn from(l: &'a [usize]) -> Self {
        Pids::List(l)
    }
}

impl<'a> From<&'a Vec<usize>> for Pids<'a> {
    fn from(l: &'a Vec<usize>) -> Self {
        Pids::List(l.as_slice())
    }
}

/// One buffered write, packed for sort speed: 24 bytes, and the cell
/// address is a single `u64` so the sort comparator is one wide compare.
#[derive(Clone, Copy, Debug)]
pub(crate) struct WriteEntry {
    /// `array << 32 | idx` — the cell address.
    pub(crate) key: u64,
    /// `pid << 32 | seq` — writer id and its per-step write sequence number;
    /// makes the total sort key unique, so resolution is deterministic even
    /// under an unstable sort.
    pub(crate) pidseq: u64,
    /// The written value.
    pub(crate) val: Word,
}

impl WriteEntry {
    #[inline]
    fn array(&self) -> u32 {
        (self.key >> 32) as u32
    }

    #[inline]
    fn idx(&self) -> u32 {
        self.key as u32
    }

    /// Full unique sort key.
    #[inline]
    pub(crate) fn sort_key(&self) -> u128 {
        ((self.key as u128) << 64) | self.pidseq as u128
    }
}

/// Interior-mutable cell handed to pool chunks; each chunk index touches
/// exactly one cell, which is what makes the unsafe access sound.
pub(crate) struct ChunkCell<T>(pub(crate) UnsafeCell<T>);

// SAFETY: access discipline is "chunk c touches cell c only", enforced by
// the pool delivering each chunk index exactly once.
unsafe impl<T: Send> Sync for ChunkCell<T> {}

impl<T> ChunkCell<T> {
    pub(crate) fn new(v: T) -> Self {
        Self(UnsafeCell::new(v))
    }

    /// Exclusive access from the chunk that owns this cell.
    ///
    /// # Safety
    /// Caller must be the unique accessor of this cell for the duration of
    /// the returned borrow (the pool's exactly-once chunk dispatch).
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get_mut_unchecked(&self) -> &mut T {
        // SAFETY: uniqueness is forwarded from this function's contract.
        unsafe { &mut *self.0.get() }
    }

    pub(crate) fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

/// Pooled buffers reused by every step: per-chunk write logs, the flat
/// gathered log, and merge scratch. Capacities are retained across steps so
/// the steady state allocates nothing.
#[derive(Default)]
pub(crate) struct WriteArena {
    pub(crate) chunk_bufs: Vec<ChunkCell<Vec<WriteEntry>>>,
    flat: Vec<WriteEntry>,
    scratch: Vec<WriteEntry>,
}

impl std::fmt::Debug for WriteArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteArena")
            .field("chunks", &self.chunk_bufs.len())
            .field("flat_cap", &self.flat.capacity())
            .finish()
    }
}

impl WriteArena {
    /// Make at least `n` cleared chunk buffers available.
    pub(crate) fn prepare(&mut self, n: usize) {
        for buf in self.chunk_bufs.iter_mut().take(n) {
            buf.0.get_mut().clear();
        }
        while self.chunk_bufs.len() < n {
            self.chunk_bufs.push(ChunkCell::new(Vec::new()));
        }
    }
}

/// Per-processor view during the compute phase of a step.
pub struct Ctx<'a, 'b> {
    /// This processor's id.
    pub pid: usize,
    shm: &'a Shm,
    seed: u64,
    step_no: u64,
    rng: Option<SplitMix64>,
    writes: &'b mut Vec<WriteEntry>,
    wseq: u32,
    /// Read-trace buffer of this processor's chunk, when the concurrency
    /// analyzer ([`crate::analyze`]) is attached.
    trace: Option<&'b ReadTrace>,
    /// Fault plane ([`crate::faults`]): forced coin outcome of this
    /// processor's RNG stream, when the stream is biased this step.
    bias: Option<bool>,
    /// Fault plane: this processor is dropped this step — it computes, but
    /// none of its writes reach shared memory (a stalled processor).
    dropped: bool,
}

impl<'a, 'b> Ctx<'a, 'b> {
    /// Read a cell of the pre-step memory snapshot.
    #[inline]
    pub fn read(&self, a: ArrayId, i: usize) -> Word {
        if let Some(t) = self.trace {
            t.borrow_mut().push(ReadEntry {
                key: ((a.slot() as u64) << 32) | i as u64,
                pid: self.pid as u32,
            });
        }
        self.shm.get(a, i)
    }

    /// Borrow a whole array of the pre-step snapshot.
    ///
    /// The slice lives as long as the snapshot (not just the `Ctx` borrow),
    /// so inner loops can hoist it once and index directly — one bounds
    /// check per access instead of [`Shm::get`]'s double indirection:
    ///
    /// ```
    /// # use ipch_pram::{Machine, Shm};
    /// # let mut m = Machine::new(1);
    /// # let mut shm = Shm::new();
    /// # let a = shm.alloc("a", 64, 1);
    /// # let out = shm.alloc("out", 64, 0);
    /// m.step(&mut shm, 0..64, |ctx| {
    ///     let row = ctx.slice(a);            // hoisted once
    ///     let s: i64 = row.iter().sum();     // tight loop, no Shm lookups
    ///     ctx.write(out, ctx.pid, s);
    /// });
    /// ```
    #[inline]
    pub fn slice(&self, a: ArrayId) -> &'a [Word] {
        if let Some(t) = self.trace {
            t.borrow_mut().push(ReadEntry {
                key: ((a.slot() as u64) << 32) | READ_ALL as u64,
                pid: self.pid as u32,
            });
        }
        self.shm.slice(a)
    }

    /// Length of a shared array (metadata, not a traced cell read).
    #[inline]
    pub fn len(&self, a: ArrayId) -> usize {
        self.shm.len(a)
    }

    /// The pre-step memory snapshot (crate-internal: the kernel layer's
    /// generic fallback builds its read-only view from it).
    #[inline]
    pub(crate) fn snapshot(&self) -> &'a Shm {
        self.shm
    }

    /// This chunk's read-trace buffer, if the analyzer is attached
    /// (crate-internal: the kernel fallback paths thread it into [`crate::KCtx`]).
    #[inline]
    pub(crate) fn read_trace(&self) -> Option<&'b ReadTrace> {
        self.trace
    }

    /// Buffer a write to be committed at the end of the step.
    ///
    /// # Panics
    /// With a typed [`crate::memory::ShmError`] message on an out-of-range
    /// index or a stale (scope-exited) array id — in every build profile:
    /// the commit phase writes through raw pointers, so an unchecked bad
    /// index would be undefined behaviour, not a recoverable error.
    #[inline]
    pub fn write(&mut self, a: ArrayId, i: usize, v: Word) {
        if let Err(e) = self.shm.check_access(a, i) {
            panic!("{e}");
        }
        assert!(
            self.pid <= u32::MAX as usize,
            "pid {} exceeds u32 range",
            self.pid
        );
        if self.dropped {
            // Fault plane: a dropped processor's writes silently vanish
            // (bounds are still validated above so a buggy index panics
            // identically with and without the fault).
            return;
        }
        self.writes.push(WriteEntry {
            key: ((a.slot() as u64) << 32) | i as u64,
            pidseq: ((self.pid as u64) << 32) | self.wseq as u64,
            val: v,
        });
        self.wseq += 1;
    }

    /// This processor's private RNG for this step (constructed lazily, so
    /// steps that never flip coins skip the stream derivation entirely).
    #[inline]
    pub fn rng(&mut self) -> &mut SplitMix64 {
        let (seed, step_no, pid, bias) = (self.seed, self.step_no, self.pid, self.bias);
        self.rng.get_or_insert_with(|| {
            let mut r = SplitMix64::for_step_pid(seed, step_no, pid as u64);
            if let Some(force) = bias {
                r.set_bias(force);
            }
            r
        })
    }
}

/// Execution backend of the fused [`crate::kernel`] layer.
///
/// Both backends run the same fused loops with the same fixed chunk
/// boundaries (`CHUNK` = 8192 processors per chunk) and the same fixed-shape
/// per-chunk combining, so memory, [`Metrics`] accounting, and
/// [`crate::AnalysisReport`]s are bit-identical regardless of backend or
/// worker count — the determinism suites assert exactly that.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelBackend {
    /// Tight sequential host loops on the calling thread (the PR 2
    /// behaviour): lowest latency for small kernels, no fan-out ever.
    Fused,
    /// Chunked data-parallel execution over the [`crate::pool`] once a
    /// kernel's processor count reaches [`Tuning::kernel_par_threshold`];
    /// smaller kernels stay on the sequential fused loops.
    Parallel,
}

/// Performance knobs. Defaults are right for production use; tests force
/// specific paths to prove they are all equivalent.
#[derive(Clone, Copy, Debug)]
pub struct Tuning {
    /// Active-set size at which the compute phase fans out over the pool.
    pub par_compute_threshold: usize,
    /// Write-log length at which the commit sort/resolve parallelizes.
    pub par_commit_threshold: usize,
    /// Run everything on the calling thread regardless of thresholds.
    pub force_sequential: bool,
    /// Take the parallel code paths regardless of thresholds (they still
    /// run inline when the host has one core).
    pub force_parallel: bool,
    /// Disable the conflict-free fast path (always gather + sort).
    pub disable_fast_path: bool,
    /// Route every [`crate::kernel`] entry point through the generic
    /// [`Machine::step`] path instead of the fused bulk loops. The two paths
    /// are required to be observably identical (memory contents and
    /// steps/work/conflict metrics); this switch exists so the equivalence
    /// tests can prove it.
    pub disable_kernels: bool,
    /// How fused kernels execute ([`KernelBackend`]). Overridable
    /// process-wide via `IPCH_KERNEL_BACKEND=fused|parallel` (read once, at
    /// the first [`Tuning::default`]), which is how the CI `kernels-par`
    /// job forces the whole test suite onto each backend.
    pub kernel_backend: KernelBackend,
    /// Processor count at which [`KernelBackend::Parallel`] kernels fan out
    /// over the pool; below it they run the sequential fused loops (the
    /// small-n fast path). Overridable via `IPCH_KERNEL_PAR_THRESHOLD=<n>`.
    pub kernel_par_threshold: usize,
    /// Cap on execution lanes (calling thread + pool workers) any parallel
    /// phase of this machine may use. `None` = all pool lanes. The result
    /// is bit-identical at every cap — this knob exists for capacity
    /// control and for the worker-count-independence suites.
    pub num_threads: Option<usize>,
}

impl Default for Tuning {
    fn default() -> Self {
        let (backend, kernel_threshold) = env_kernel_overrides();
        Self {
            par_compute_threshold: 1 << 15,
            par_commit_threshold: 1 << 16,
            force_sequential: false,
            force_parallel: false,
            disable_fast_path: false,
            disable_kernels: false,
            kernel_backend: backend.unwrap_or(KernelBackend::Parallel),
            kernel_par_threshold: kernel_threshold.unwrap_or(1 << 15),
            num_threads: None,
        }
    }
}

/// Process-wide kernel-backend overrides from the environment, parsed once:
/// `IPCH_KERNEL_BACKEND=fused|parallel` and `IPCH_KERNEL_PAR_THRESHOLD=<n>`.
/// Unset or unparseable values leave the compiled defaults.
fn env_kernel_overrides() -> (Option<KernelBackend>, Option<usize>) {
    static OVERRIDES: std::sync::OnceLock<(Option<KernelBackend>, Option<usize>)> =
        std::sync::OnceLock::new();
    *OVERRIDES.get_or_init(|| {
        let backend = std::env::var("IPCH_KERNEL_BACKEND").ok().and_then(|v| {
            match v.trim().to_ascii_lowercase().as_str() {
                "fused" => Some(KernelBackend::Fused),
                "parallel" => Some(KernelBackend::Parallel),
                _ => None,
            }
        });
        let threshold = std::env::var("IPCH_KERNEL_PAR_THRESHOLD")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1);
        (backend, threshold)
    })
}

/// Processors per compute chunk (one pooled write buffer each).
///
/// Chunk boundaries are a pure function of the active-set size — never of
/// the worker count — which is one of the three legs the parallel backend's
/// bit-identical guarantee stands on (the others: per-chunk state is folded
/// in fixed chunk order, and per-(step, pid) RNG streams are derived, not
/// shared).
pub(crate) const CHUNK: usize = 8192;

/// Dispatch `job` over `0..nchunks` on the global pool with at most
/// `max_lanes` execution lanes, polling `cancel` at every chunk entry.
/// Once a poll observes expiry the remaining chunks are skipped (chunks
/// already claimed run to completion, so the wave drains within one chunk
/// per lane) and the first observed cause is returned *after* the join —
/// the caller unwinds only once no pool worker still references its state.
/// With no token this is a plain bounded dispatch with zero overhead.
pub(crate) fn run_chunks_cancellable(
    max_lanes: usize,
    nchunks: usize,
    cancel: Option<&CancelToken>,
    job: &(dyn Fn(usize) + Sync),
) -> Option<CancelCause> {
    use std::sync::atomic::{AtomicU8, Ordering};
    let Some(tok) = cancel else {
        pool::global().run_bounded(max_lanes, nchunks, job);
        return None;
    };
    // 0 = live, 1 = cancelled, 2 = deadline. The flag short-circuits the
    // per-chunk token poll once expiry has been observed by any lane.
    let flag = AtomicU8::new(0);
    pool::global().run_bounded(max_lanes, nchunks, &|c| {
        if flag.load(Ordering::Relaxed) != 0 {
            return;
        }
        if let Err(cause) = tok.check() {
            let code = match cause {
                CancelCause::Cancelled => 1,
                CancelCause::DeadlineExceeded => 2,
            };
            flag.store(code, Ordering::Relaxed);
            return;
        }
        job(c);
    });
    match flag.load(Ordering::Relaxed) {
        1 => Some(CancelCause::Cancelled),
        2 => Some(CancelCause::DeadlineExceeded),
        _ => None,
    }
}

/// A randomized CRCW PRAM.
///
/// # Examples
///
/// Eight processors concurrently increment their own cells in one
/// synchronous step; a ninth step has them all contend for one cell under
/// the Combining-Sum rule:
///
/// ```
/// use ipch_pram::{Machine, Shm, WritePolicy};
///
/// let mut m = Machine::new(42);
/// let mut shm = Shm::new();
/// let cells = shm.alloc("cells", 8, 0);
/// m.step(&mut shm, 0..8, |ctx| {
///     let pid = ctx.pid;
///     ctx.write(cells, pid, pid as i64);
/// });
/// assert_eq!(shm.get(cells, 7), 7);
///
/// let acc = shm.alloc("acc", 1, 0);
/// m.step_with_policy(&mut shm, 0..8, WritePolicy::CombineSum, |ctx| {
///     ctx.write(acc, 0, 1);
/// });
/// assert_eq!(shm.get(acc, 0), 8);
/// assert_eq!(m.metrics.steps, 2);
/// assert_eq!(m.metrics.work, 16);
/// ```
#[derive(Debug)]
pub struct Machine {
    /// Accumulated costs; read freely, reset via [`Machine::reset_metrics`].
    pub metrics: Metrics,
    /// Default concurrent-write rule for [`Machine::step`].
    pub policy: WritePolicy,
    /// Host-performance knobs (never affect simulated semantics).
    pub tuning: Tuning,
    seed: u64,
    pub(crate) step_counter: u64,
    pub(crate) arena: WriteArena,
    /// Concurrency-analyzer state, when attached
    /// ([`Machine::enable_analysis`]); the report lives in
    /// [`Metrics::analysis`] so it follows the child-absorb flow.
    pub(crate) analysis: Option<Box<Analysis>>,
    /// Fault-injection state, when a [`FaultPlan`] is installed
    /// ([`Machine::install_faults`]). Boxed so the (default) disabled case
    /// costs one pointer and one branch per hook.
    pub(crate) faults: Option<Box<FaultState>>,
    /// Cooperative cancellation token, when installed
    /// ([`Machine::set_cancel_token`]): polled at every step entry and at
    /// every chunk boundary of compute loops; see [`crate::cancel`].
    pub(crate) cancel: Option<CancelToken>,
}

impl Machine {
    /// A machine with the given seed and the `Arbitrary` write rule.
    pub fn new(seed: u64) -> Self {
        Self {
            metrics: Metrics::new(),
            policy: WritePolicy::Arbitrary,
            tuning: Tuning::default(),
            seed,
            step_counter: 0,
            arena: WriteArena::default(),
            analysis: None,
            faults: None,
            cancel: None,
        }
    }

    /// A machine with an explicit write rule.
    pub fn with_policy(seed: u64, policy: WritePolicy) -> Self {
        Self {
            policy,
            ..Self::new(seed)
        }
    }

    /// The machine seed (used to derive child machines deterministically).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of steps executed so far (monotone; survives metric resets).
    pub fn step_counter(&self) -> u64 {
        self.step_counter
    }

    /// Zero the metrics (the step counter keeps advancing so RNG streams
    /// never repeat within a run).
    pub fn reset_metrics(&mut self) {
        self.metrics = Metrics::new();
    }

    /// Deterministic host-side RNG stream tagged by `tag` (for host logic
    /// like choosing experiment seeds; not a PRAM operation).
    pub fn host_rng(&self, tag: u64) -> SplitMix64 {
        SplitMix64::new(mix64(self.seed ^ mix64(tag ^ 0xD1B5_4A32_D192_ED03)))
    }

    /// Spawn a child machine for a subcomputation that conceptually runs
    /// *in parallel* with siblings (its own processor group). The child
    /// gets a derived seed and fresh metrics; after all siblings finish,
    /// fold their costs into the parent with
    /// [`Metrics::absorb_parallel`] (time = max, work = sum) or
    /// [`Metrics::absorb`] (sequential composition).
    pub fn child(&self, tag: u64) -> Machine {
        let mut metrics = Metrics::new();
        if self.analysis.is_some() {
            metrics.analysis = Some(Box::default());
        }
        let seed = mix64(self.seed ^ mix64(tag.wrapping_mul(0xDEAD_BEEF_1234_5677)));
        Machine {
            metrics,
            policy: self.policy,
            tuning: self.tuning,
            seed,
            step_counter: 0,
            arena: WriteArena::default(),
            analysis: self.analysis.as_ref().map(|a| Box::new(a.child())),
            // Children inherit the fault plan (so injection reaches
            // subcomputations) with a schedule derived from their own seed
            // and a fresh budget latch.
            faults: self.faults.as_ref().map(|f| Box::new(f.child(seed))),
            // Children share the parent's cancel token, so a deadline
            // covers the whole machine tree.
            cancel: self.cancel.clone(),
        }
    }

    /// Install a [`CancelToken`]: every subsequent step polls it on entry
    /// (and chunk loops — sequential or pool-parallel — poll it at every
    /// chunk boundary), aborting
    /// with a typed [`crate::cancel::CancelUnwind`] once the token is
    /// cancelled or past its deadline. Children created after this call
    /// share the token. Replaces any previously installed token.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Remove any installed cancel token; subsequent behaviour is identical
    /// to a machine that never had one.
    pub fn clear_cancel_token(&mut self) {
        self.cancel = None;
    }

    /// The installed cancel token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Poll the installed cancel token (no-op without one), unwinding with
    /// a typed [`crate::cancel::CancelUnwind`] on expiry. Crate-internal:
    /// called at step entry and between sequential kernel chunks.
    #[inline]
    pub(crate) fn poll_cancel(&self) {
        if let Some(tok) = &self.cancel {
            if let Err(cause) = tok.check() {
                crate::cancel::unwind(cause);
            }
        }
    }

    /// Install a fault-injection plan ([`crate::faults`]): subsequent steps
    /// are perturbed per the plan, deterministically in (machine seed,
    /// [`FaultPlan::salt`]). Replaces any previously installed plan. Child
    /// machines created after this call inherit the plan.
    ///
    /// While any plan is installed, [`crate::kernel`] entry points route
    /// through the generic step path (fault hooks live there), so the
    /// kernel/generic metrics-identity invariant is only claimed with faults
    /// disabled.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(Box::new(FaultState::new(plan, self.seed)));
    }

    /// Remove any installed fault plan; subsequent behaviour is
    /// byte-identical to a machine that never had one.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// True when a fault plan is installed.
    pub fn faults_installed(&self) -> bool {
        self.faults.is_some()
    }

    /// The adversarial-write fault seed, when that fault is active
    /// (crate-internal: threaded into commit resolution and the analyzer's
    /// winner replay).
    #[inline]
    pub(crate) fn adversary_seed(&self) -> Option<u64> {
        self.faults
            .as_deref()
            .and_then(|f| f.plan.adversarial_writes.then_some(f.fault_seed))
    }

    /// Record an analytic cost (see [`Metrics`] docs for the contract).
    pub fn charge(&mut self, steps: u64, work: u64) {
        self.metrics.record_charge(steps, work);
    }

    /// The lane cap of this machine's parallel phases
    /// ([`Tuning::num_threads`]; `usize::MAX` when uncapped).
    #[inline]
    pub(crate) fn max_lanes(&self) -> usize {
        self.tuning.num_threads.unwrap_or(usize::MAX).max(1)
    }

    /// Lanes a parallel phase of this machine actually uses: the tuning cap
    /// clamped to the configured pool width. Does not spawn the pool.
    #[inline]
    pub(crate) fn effective_lanes(&self) -> usize {
        self.max_lanes().min(pool::configured_lanes()).max(1)
    }

    /// Execute one synchronous step over `pids` with the machine policy.
    pub fn step<'a, P, F>(&mut self, shm: &mut Shm, pids: P, f: F)
    where
        P: Into<Pids<'a>>,
        F: Fn(&mut Ctx) + Sync,
    {
        let policy = self.policy;
        self.step_with_policy(shm, pids, policy, f);
    }

    /// Execute one synchronous step with an explicit write rule.
    pub fn step_with_policy<'a, P, F>(&mut self, shm: &mut Shm, pids: P, policy: WritePolicy, f: F)
    where
        P: Into<Pids<'a>>,
        F: Fn(&mut Ctx) + Sync,
    {
        let _ignored: Vec<()> = self.step_map_with_policy(shm, pids, policy, |ctx| f(ctx));
    }

    /// Execute one step, returning each processor's private result in the
    /// order of the pid set. (Private results model processor-local
    /// registers; they are invisible to other processors until a later
    /// step's shared write, so this does not weaken the model.)
    pub fn step_map<'a, P, R, F>(&mut self, shm: &mut Shm, pids: P, f: F) -> Vec<R>
    where
        P: Into<Pids<'a>>,
        R: Send,
        F: Fn(&mut Ctx) -> R + Sync,
    {
        let policy = self.policy;
        self.step_map_with_policy(shm, pids, policy, f)
    }

    /// [`Machine::step_map`] with an explicit write rule.
    pub fn step_map_with_policy<'a, P, R, F>(
        &mut self,
        shm: &mut Shm,
        pids: P,
        policy: WritePolicy,
        f: F,
    ) -> Vec<R>
    where
        P: Into<Pids<'a>>,
        R: Send,
        F: Fn(&mut Ctx) -> R + Sync,
    {
        // Cancellation poll at the step boundary, *before* the step is
        // recorded: a machine past its deadline executes zero further
        // steps, so `metrics.steps` counts completed steps exactly.
        self.poll_cancel();
        let pids = pids.into();
        let count = pids.count();
        let step_no = self.step_counter;
        self.step_counter += 1;
        self.metrics.record_step(count as u64);
        // Fault plane: budget meters tick on every executed step (including
        // empty ones) and trip at most once per machine. Execution is never
        // cut short — the supervisor interprets the tripped latch.
        if let Some(fs) = self.faults.as_deref_mut() {
            if !fs.budget_tripped {
                if let Some(b) = fs.plan.budget {
                    if self.metrics.steps > b.max_steps || self.metrics.work > b.max_work {
                        fs.budget_tripped = true;
                        self.metrics.faults.budget_exhaustions += 1;
                    }
                }
            }
        }
        if count == 0 {
            return Vec::new();
        }
        // Per-pid fault decisions for this step, if any are live (pure
        // hashes of (fault seed, step, pid): identical across chunking and
        // thread count).
        let step_faults: Option<StepFaults> = self.faults.as_deref().and_then(|fs| {
            let sf = StepFaults::for_step(fs, step_no);
            sf.any_per_pid().then_some(sf)
        });

        let t_start = Instant::now();
        let mut arena = std::mem::take(&mut self.arena);
        let mut analysis = self.analysis.take();
        let nchunks = count.div_ceil(CHUNK);
        arena.prepare(nchunks);
        if let Some(an) = &mut analysis {
            an.prepare(nchunks);
        }

        let seed = self.seed;
        let shm_ref: &Shm = shm;
        let pids_ref = &pids;
        let bufs = &arena.chunk_bufs[..nchunks];
        let trace_bufs = analysis.as_deref().map(|a| &a.read_bufs[..nchunks]);
        let outs: Vec<ChunkCell<Vec<R>>> =
            (0..nchunks).map(|_| ChunkCell::new(Vec::new())).collect();

        // One compute chunk: run processors `c*CHUNK ..` against the
        // snapshot, appending writes to the chunk's pooled buffer.
        let run_chunk = |c: usize| {
            let lo = c * CHUNK;
            let hi = ((c + 1) * CHUNK).min(count);
            // SAFETY: chunk c is executed exactly once; cells c are ours.
            let writes = unsafe { bufs[c].get_mut_unchecked() };
            let results = unsafe { outs[c].get_mut_unchecked() };
            // SAFETY: same chunk-exclusive discipline for the read trace.
            let trace = trace_bufs.map(|t| unsafe { &*t[c].0.get() });
            results.reserve(hi - lo);
            for i in lo..hi {
                let pid = pids_ref.get(i);
                let (bias, dropped) = match &step_faults {
                    Some(sf) => (
                        sf.bias_for(step_no, pid as u64),
                        sf.dropped(step_no, pid as u64),
                    ),
                    None => (None, false),
                };
                let mut ctx = Ctx {
                    pid,
                    shm: shm_ref,
                    seed,
                    step_no,
                    rng: None,
                    writes,
                    wseq: 0,
                    trace,
                    bias,
                    dropped,
                };
                results.push(f(&mut ctx));
            }
        };

        let parallel = !self.tuning.force_sequential
            && (self.tuning.force_parallel || count >= self.tuning.par_compute_threshold);
        self.metrics
            .record_threads(if parallel { self.effective_lanes() } else { 1 });
        let mut mid_abort: Option<CancelCause> = None;
        if parallel {
            // Parallel waves poll the token at every chunk entry, same
            // granularity as the sequential loop below (see `crate::cancel`).
            mid_abort =
                run_chunks_cancellable(self.max_lanes(), nchunks, self.cancel.as_ref(), &run_chunk);
        } else {
            for c in 0..nchunks {
                if c > 0 {
                    if let Some(cause) = self.cancel.as_ref().and_then(|t| t.check().err()) {
                        mid_abort = Some(cause);
                        break;
                    }
                }
                run_chunk(c);
            }
        }
        if let Some(cause) = mid_abort {
            // Mid-compute abort: discard the buffered writes (nothing is
            // committed), put the pooled arena and analyzer state back so
            // the machine stays reusable (both are cleared by `prepare` at
            // the next step), then unwind with the typed payload. The step
            // was already recorded; its memory effects are dropped whole —
            // never a partially committed step.
            drop(outs);
            self.arena = arena;
            self.analysis = analysis;
            crate::cancel::unwind(cause);
        }

        let mut results: Vec<R> = Vec::with_capacity(count);
        for out in outs {
            results.extend(out.into_inner());
        }

        // Count this step's per-pid fault events (host-side recount of the
        // same pure hashes the chunks used, so no shared mutation races).
        if let Some(sf) = &step_faults {
            let (mut biased, mut dropped) = (0u64, 0u64);
            for i in 0..count {
                let pid = pids.get(i) as u64;
                biased += sf.bias_for(step_no, pid).is_some() as u64;
                dropped += sf.dropped(step_no, pid) as u64;
            }
            self.metrics.faults.biased_streams += biased;
            self.metrics.faults.dropped_processors += dropped;
        }

        let t_computed = Instant::now();
        self.commit(shm, policy, step_no, &mut arena, nchunks);
        let t_committed = Instant::now();

        self.arena = arena;
        self.metrics.record_host_ns(
            t_computed.duration_since(t_start).as_nanos() as u64,
            t_committed.duration_since(t_computed).as_nanos() as u64,
        );
        if let Some(an) = &mut analysis {
            let adversary = self.adversary_seed();
            let report = self.metrics.analysis.get_or_insert_with(Box::default);
            crate::analyze::finish_step(
                an,
                report,
                shm,
                seed,
                step_no,
                policy,
                nchunks,
                &mut self.arena.chunk_bufs[..nchunks],
                adversary,
            );
        }
        self.analysis = analysis;

        // Fault plane: transient cell corruption, applied *after* the
        // analyzer observed the honestly committed step so the corruption
        // reads as what it models — memory decay between steps, not a
        // different write resolution.
        if let Some(fs) = self.faults.as_deref() {
            if let Some(h) = crate::faults::corruption_draw(fs, step_no) {
                if shm.corrupt_cell(h).is_some() {
                    self.metrics.faults.corrupted_cells += 1;
                }
            }
        }
        results
    }

    /// Resolve and commit the buffered writes of one step.
    pub(crate) fn commit(
        &mut self,
        shm: &mut Shm,
        policy: WritePolicy,
        step_no: u64,
        arena: &mut WriteArena,
        nchunks: usize,
    ) {
        let bufs = &mut arena.chunk_bufs[..nchunks];
        let total: usize = bufs.iter_mut().map(|b| b.0.get_mut().len()).sum();
        if total == 0 {
            return;
        }
        self.metrics.writes_buffered += total as u64;

        let max_lanes = self.max_lanes();
        let parallel_commit = !self.tuning.force_sequential
            && (self.tuning.force_parallel || total >= self.tuning.par_commit_threshold)
            && max_lanes > 1
            && pool::num_threads() > 1;
        // Lanes used for commit partitioning (run boundaries, sort segments):
        // partition-independent results, so any cap yields identical memory.
        let lanes = max_lanes.min(pool::num_threads()).max(1);
        if parallel_commit {
            self.metrics.record_threads(lanes);
        }

        // Fast path: if the concatenated log is strictly increasing by cell
        // key, every cell receives exactly one write — commit it verbatim.
        // (Strict monotonicity is a pure function of the log, so the
        // fast/slow decision is identical across execution modes.)
        if !self.tuning.disable_fast_path && log_is_strictly_monotone(bufs) {
            let writer = ShmWriter::new(shm);
            if parallel_commit {
                let bufs_ref = &bufs[..];
                pool::global().run_bounded(max_lanes, nchunks, &|c| {
                    // SAFETY: strict monotonicity ⇒ all cells distinct, so
                    // chunks write disjoint cells; chunk c reads buffer c only.
                    let buf = unsafe { &*bufs_ref[c].0.get() };
                    for e in buf {
                        unsafe { writer.commit(e.array(), e.idx(), e.val) };
                    }
                });
            } else {
                for buf in bufs.iter_mut() {
                    for e in buf.0.get_mut().iter() {
                        // SAFETY: single-threaded here; cells are distinct.
                        unsafe { writer.commit(e.array(), e.idx(), e.val) };
                    }
                }
            }
            self.metrics.writes_committed += total as u64;
            self.metrics.fastpath_steps += 1;
            return;
        }

        // Slow path: gather flat, sort by packed cell key, resolve runs.
        arena.flat.clear();
        arena.flat.reserve(total);
        for buf in bufs.iter_mut() {
            arena.flat.extend_from_slice(buf.0.get_mut());
        }

        if parallel_commit {
            par_sort(&mut arena.flat, &mut arena.scratch, lanes);
        } else {
            arena.flat.sort_unstable_by_key(|e| e.sort_key());
        }

        let seed = self.seed;
        let adversary = self.adversary_seed();
        let (committed, conflicts, adversarial) = if parallel_commit {
            resolve_runs_parallel(shm, &arena.flat, policy, seed, step_no, adversary, lanes)
        } else {
            let writer = ShmWriter::new(shm);
            // SAFETY: single-threaded resolution; runs target distinct cells.
            unsafe { resolve_runs(&writer, &arena.flat, policy, seed, step_no, adversary) }
        };
        self.metrics.writes_committed += committed;
        self.metrics.write_conflicts += conflicts;
        self.metrics.faults.adversarial_resolutions += adversarial;
    }
}

/// True if every buffer is strictly increasing by cell key and buffer
/// boundaries preserve the order — i.e. the whole log is a strictly
/// increasing sequence of distinct cells.
fn log_is_strictly_monotone(bufs: &mut [ChunkCell<Vec<WriteEntry>>]) -> bool {
    let mut prev: Option<u64> = None;
    for buf in bufs.iter_mut() {
        for e in buf.0.get_mut().iter() {
            if let Some(p) = prev {
                if e.key <= p {
                    return false;
                }
            }
            prev = Some(e.key);
        }
    }
    true
}

/// Raw shared-memory committer used where disjointness of the written cells
/// is guaranteed by construction (fast path, boundary-aligned run ranges).
/// Borrows [`Shm::raw_parts`]'s incrementally-maintained cache, so
/// constructing one is O(1) in the steady state instead of O(#arrays ever
/// allocated).
struct ShmWriter<'a> {
    arrays: &'a [(*mut Word, usize)],
}

// SAFETY: every use site guarantees the set of (array, idx) cells written
// through a given `&ShmWriter` from different threads is disjoint.
unsafe impl Sync for ShmWriter<'_> {}

impl<'a> ShmWriter<'a> {
    fn new(shm: &'a mut Shm) -> Self {
        Self {
            arrays: shm.raw_parts(),
        }
    }

    /// Commit one resolved value.
    ///
    /// # Safety
    /// `(a, idx)` must be in bounds and not concurrently written by any
    /// other thread.
    #[inline]
    unsafe fn commit(&self, a: u32, idx: u32, v: Word) {
        let (base, len) = self.arrays[a as usize];
        debug_assert!((idx as usize) < len, "commit out of bounds");
        let _ = len;
        // SAFETY: bounds and exclusivity forwarded from this function's
        // contract; `base` points at a live array of `len` cells.
        unsafe { *base.add(idx as usize) = v };
    }
}

/// The per-cell tiebreak hash (identical to the original implementation, so
/// `Arbitrary` winners replay exactly across simulator versions). Crate
/// visibility: the analyzer replays it with salted seeds to detect
/// seed-dependent races.
#[inline]
pub(crate) fn cell_tiebreak(seed: u64, step_no: u64, key: u64) -> u64 {
    mix64(seed ^ mix64(step_no ^ key.wrapping_mul(0x9E3779B97F4A7C15)))
}

/// Resolve the sorted log's runs and commit winners through `writer`.
/// Returns `(cells_committed, conflicted_cells, adversarial_cells)`.
///
/// `adversary` is the fault seed of [`crate::faults::FaultPlan::adversarial_writes`]
/// when that fault is active: conflicted `Arbitrary` cells then commit the
/// worst-case extremal contender instead of the seeded tiebreak winner.
///
/// # Safety
/// The caller must guarantee no other thread writes the cells covered by
/// `flat` through the same `ShmWriter` concurrently.
unsafe fn resolve_runs(
    writer: &ShmWriter,
    flat: &[WriteEntry],
    policy: WritePolicy,
    seed: u64,
    step_no: u64,
    adversary: Option<u64>,
) -> (u64, u64, u64) {
    let mut committed = 0u64;
    let mut conflicts = 0u64;
    let mut adversarial = 0u64;
    let mut i = 0;
    let n = flat.len();
    while i < n {
        let e = flat[i];
        // singleton run: direct commit, no policy, no tiebreak hash
        if i + 1 == n || flat[i + 1].key != e.key {
            // SAFETY: exclusivity forwarded from this function's contract;
            // entries come from the machine's own in-bounds write log.
            unsafe { writer.commit(e.array(), e.idx(), e.val) };
            committed += 1;
            i += 1;
            continue;
        }
        let start = i;
        i += 2;
        while i < n && flat[i].key == e.key {
            i += 1;
        }
        let run = &flat[start..i];
        let v = match (adversary, policy) {
            (Some(fseed), WritePolicy::Arbitrary) => {
                adversarial += 1;
                crate::faults::adversarial_pick(fseed, step_no, e.key, run.iter().map(|w| w.val))
            }
            _ => policy.resolve_run(run, cell_tiebreak(seed, step_no, e.key)),
        };
        // SAFETY: as above — one committer per run, in-bounds entries.
        unsafe { writer.commit(e.array(), e.idx(), v) };
        committed += 1;
        conflicts += 1;
    }
    (committed, conflicts, adversarial)
}

/// Parallel run resolution: partition the sorted log at run boundaries and
/// resolve each range on the pool (ranges cover disjoint cells, so commits
/// through the shared `ShmWriter` never race).
#[allow(clippy::too_many_arguments)]
fn resolve_runs_parallel(
    shm: &mut Shm,
    flat: &[WriteEntry],
    policy: WritePolicy,
    seed: u64,
    step_no: u64,
    adversary: Option<u64>,
    lanes: usize,
) -> (u64, u64, u64) {
    let n = flat.len();
    let mut bounds: Vec<usize> = Vec::with_capacity(lanes + 1);
    bounds.push(0);
    for l in 1..lanes {
        let mut b = l * n / lanes;
        // advance to the next run boundary so no run straddles two ranges
        while b < n && b > 0 && flat[b].key == flat[b - 1].key {
            b += 1;
        }
        if bounds.last().is_some_and(|&last| b > last) && b < n {
            bounds.push(b);
        }
    }
    bounds.push(n);

    let nranges = bounds.len() - 1;
    let writer = ShmWriter::new(shm);
    let tallies: Vec<ChunkCell<(u64, u64, u64)>> =
        (0..nranges).map(|_| ChunkCell::new((0, 0, 0))).collect();
    let bounds_ref = &bounds;
    let tallies_ref = &tallies;
    pool::global().run_bounded(lanes, nranges, &|r| {
        let range = &flat[bounds_ref[r]..bounds_ref[r + 1]];
        // SAFETY: ranges are run-aligned ⇒ cell-disjoint; tally r is ours.
        let out = unsafe { resolve_runs(&writer, range, policy, seed, step_no, adversary) };
        unsafe { *tallies_ref[r].get_mut_unchecked() = out };
    });
    let mut committed = 0;
    let mut conflicts = 0;
    let mut adversarial = 0;
    for t in tallies {
        let (c, k, a) = t.into_inner();
        committed += c;
        conflicts += k;
        adversarial += a;
    }
    (committed, conflicts, adversarial)
}

/// Parallel merge sort by the unique packed key: segments are sorted on the
/// pool, then merged pairwise in parallel rounds, ping-ponging between the
/// log and the pooled scratch buffer.
fn par_sort(flat: &mut Vec<WriteEntry>, scratch: &mut Vec<WriteEntry>, lanes: usize) {
    let n = flat.len();
    if lanes == 1 || n < 2 * CHUNK {
        flat.sort_unstable_by_key(|e| e.sort_key());
        return;
    }
    let nseg = lanes.next_power_of_two();
    let seg = n.div_ceil(nseg);

    {
        let flat_ptr = SendMutPtr(flat.as_mut_ptr());
        pool::global().run_bounded(lanes, nseg, &|s| {
            let lo = (s * seg).min(n);
            let hi = ((s + 1) * seg).min(n);
            // SAFETY: segments are disjoint subslices of `flat`.
            let part = unsafe { std::slice::from_raw_parts_mut(flat_ptr.get().add(lo), hi - lo) };
            part.sort_unstable_by_key(|e| e.sort_key());
        });
    }

    scratch.clear();
    scratch.resize(
        n,
        WriteEntry {
            key: 0,
            pidseq: 0,
            val: 0,
        },
    );

    let mut in_flat = true;
    let mut width = seg;
    while width < n {
        let (src, dst): (&[WriteEntry], &mut [WriteEntry]) = if in_flat {
            (&flat[..], &mut scratch[..])
        } else {
            (&scratch[..], &mut flat[..])
        };
        let npairs = n.div_ceil(2 * width);
        let dst_ptr = SendMutPtr(dst.as_mut_ptr());
        pool::global().run_bounded(lanes, npairs, &|p| {
            let lo = p * 2 * width;
            let mid = (lo + width).min(n);
            let hi = (lo + 2 * width).min(n);
            // SAFETY: pair p owns dst[lo..hi]; pairs are disjoint.
            let out = unsafe { std::slice::from_raw_parts_mut(dst_ptr.get().add(lo), hi - lo) };
            merge_into(&src[lo..mid], &src[mid..hi], out);
        });
        in_flat = !in_flat;
        width *= 2;
    }
    if !in_flat {
        flat.copy_from_slice(scratch);
    }
}

struct SendMutPtr(*mut WriteEntry);

// SAFETY: used only under the disjoint-range discipline documented at each
// use site.
unsafe impl Sync for SendMutPtr {}

impl SendMutPtr {
    /// Accessor (rather than direct field use) so closures capture the
    /// `Sync` wrapper, not the bare pointer.
    fn get(&self) -> *mut WriteEntry {
        self.0
    }
}

/// Two-way merge of sorted `a` and `b` into `out` (`out.len() == a.len() + b.len()`).
fn merge_into(a: &[WriteEntry], b: &[WriteEntry], out: &mut [WriteEntry]) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_a = j >= b.len() || (i < a.len() && a[i].sort_key() <= b[j].sort_key());
        if take_a {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EMPTY;

    #[test]
    fn single_step_writes_commit() {
        let mut m = Machine::new(1);
        let mut shm = Shm::new();
        let a = shm.alloc("a", 8, 0);
        m.step(&mut shm, 0..8, |ctx| {
            let pid = ctx.pid;
            ctx.write(a, pid, pid as i64 * 2);
        });
        assert_eq!(shm.slice(a), &[0, 2, 4, 6, 8, 10, 12, 14]);
        assert_eq!(m.metrics.steps, 1);
        assert_eq!(m.metrics.work, 8);
        assert_eq!(m.metrics.peak_processors, 8);
        assert_eq!(m.metrics.writes_buffered, 8);
        assert_eq!(m.metrics.writes_committed, 8);
        assert_eq!(m.metrics.write_conflicts, 0);
        assert_eq!(
            m.metrics.fastpath_steps, 1,
            "in-order scatter must take the fast path"
        );
    }

    #[test]
    fn reads_see_pre_step_snapshot() {
        // Every processor swaps with its neighbour simultaneously: if reads
        // saw in-step writes this would not be a clean rotation.
        let mut m = Machine::new(2);
        let mut shm = Shm::new();
        let a = shm.alloc("a", 4, 0);
        for i in 0..4 {
            shm.host_set(a, i, i as i64);
        }
        m.step(&mut shm, 0..4, |ctx| {
            let n = ctx.len(a);
            let next = ctx.read(a, (ctx.pid + 1) % n);
            ctx.write(a, ctx.pid, next);
        });
        assert_eq!(shm.slice(a), &[1, 2, 3, 0]);
    }

    #[test]
    fn concurrent_write_priority_min() {
        let mut m = Machine::with_policy(3, WritePolicy::PriorityMin);
        let mut shm = Shm::new();
        let a = shm.alloc("cell", 1, EMPTY);
        m.step(&mut shm, 0..16, |ctx| {
            let pid = ctx.pid;
            ctx.write(a, 0, pid as i64);
        });
        assert_eq!(shm.get(a, 0), 0);
        assert_eq!(m.metrics.write_conflicts, 1);
        assert_eq!(m.metrics.writes_committed, 1);
        assert_eq!(m.metrics.writes_buffered, 16);
        assert_eq!(m.metrics.fastpath_steps, 0);
    }

    #[test]
    fn concurrent_write_arbitrary_is_some_contender_and_replayable() {
        let run = |seed| {
            let mut m = Machine::new(seed);
            let mut shm = Shm::new();
            let a = shm.alloc("cell", 1, EMPTY);
            m.step(&mut shm, 0..16, |ctx| {
                let pid = ctx.pid;
                ctx.write(a, 0, pid as i64);
            });
            shm.get(a, 0)
        };
        let v = run(7);
        assert!((0..16).contains(&v));
        assert_eq!(v, run(7), "same seed must replay identically");
    }

    #[test]
    fn combine_sum_counts_writers() {
        let mut m = Machine::with_policy(4, WritePolicy::CombineSum);
        let mut shm = Shm::new();
        let a = shm.alloc("acc", 1, 0);
        m.step(&mut shm, 0..100, |ctx| ctx.write(a, 0, 1));
        assert_eq!(shm.get(a, 0), 100);
    }

    #[test]
    fn scattered_pid_lists() {
        let mut m = Machine::new(5);
        let mut shm = Shm::new();
        let a = shm.alloc("a", 10, 0);
        let pids = vec![1usize, 4, 9];
        m.step(&mut shm, &pids, |ctx| {
            let pid = ctx.pid;
            ctx.write(a, pid, 1);
        });
        assert_eq!(shm.slice(a), &[0, 1, 0, 0, 1, 0, 0, 0, 0, 1]);
        assert_eq!(m.metrics.work, 3);
    }

    #[test]
    fn step_map_returns_results_in_pid_order() {
        let mut m = Machine::new(6);
        let mut shm = Shm::new();
        let _a = shm.alloc("a", 1, 0);
        let out = m.step_map(&mut shm, 3..7, |ctx| ctx.pid * 10);
        assert_eq!(out, vec![30, 40, 50, 60]);
    }

    #[test]
    fn per_pid_rng_differs_across_steps() {
        let mut m = Machine::new(8);
        let mut shm = Shm::new();
        let _a = shm.alloc("a", 1, 0);
        let r1 = m.step_map(&mut shm, 0..4, |ctx| ctx.rng().next_u64());
        let r2 = m.step_map(&mut shm, 0..4, |ctx| ctx.rng().next_u64());
        assert_ne!(r1, r2);
        // distinct pids in the same step also differ
        assert!(r1.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn zero_processor_step_costs_a_step_but_no_work() {
        let mut m = Machine::new(9);
        let mut shm = Shm::new();
        let _a = shm.alloc("a", 1, 0);
        m.step(&mut shm, 0..0, |_| {});
        assert_eq!(m.metrics.steps, 1);
        assert_eq!(m.metrics.work, 0);
    }

    #[test]
    fn large_step_parallel_path_matches_semantics() {
        let n = (1 << 15) + 3; // over the compute fan-out threshold
        let mut m = Machine::new(10);
        let mut shm = Shm::new();
        let a = shm.alloc("a", n, 0);
        m.step(&mut shm, 0..n, |ctx| {
            let pid = ctx.pid;
            ctx.write(a, pid, pid as i64);
        });
        assert!(shm.slice(a).iter().enumerate().all(|(i, &v)| v == i as i64));
    }

    #[test]
    fn slice_reads_match_get() {
        let mut m = Machine::new(11);
        let mut shm = Shm::new();
        let a = shm.alloc("a", 32, 0);
        for i in 0..32 {
            shm.host_set(a, i, (i * i) as i64);
        }
        let b = shm.alloc("b", 32, 0);
        m.step(&mut shm, 0..32, |ctx| {
            let row = ctx.slice(a);
            ctx.write(b, ctx.pid, row[ctx.pid] + row[0]);
        });
        assert!(shm
            .slice(b)
            .iter()
            .enumerate()
            .all(|(i, &v)| v == (i * i) as i64));
    }

    #[test]
    fn reversed_scatter_takes_slow_path_but_commits_correctly() {
        let mut m = Machine::new(12);
        let mut shm = Shm::new();
        let a = shm.alloc("a", 64, 0);
        m.step(&mut shm, 0..64, |ctx| {
            let pid = ctx.pid;
            ctx.write(a, 63 - pid, pid as i64);
        });
        assert!(shm
            .slice(a)
            .iter()
            .enumerate()
            .all(|(i, &v)| v == (63 - i) as i64));
        assert_eq!(m.metrics.fastpath_steps, 0);
        assert_eq!(m.metrics.write_conflicts, 0);
        assert_eq!(m.metrics.writes_committed, 64);
    }

    #[test]
    fn all_execution_modes_agree() {
        // same program under every tuning mode: identical memory + accounting
        let run = |tuning: Tuning| {
            let mut m = Machine::new(77);
            m.tuning = tuning;
            let mut shm = Shm::new();
            let a = shm.alloc("a", 1000, 0);
            let b = shm.alloc("b", 16, 0);
            for round in 0..4u64 {
                m.step_with_policy(&mut shm, 0..1000, WritePolicy::CombineSum, move |ctx| {
                    let pid = ctx.pid;
                    ctx.write(a, pid, (pid as i64) ^ round as i64);
                    ctx.write(b, pid % 16, 1);
                });
                m.step(&mut shm, 0..1000, |ctx| {
                    let v = ctx.read(a, ctx.pid);
                    ctx.write(a, ctx.pid, v + 1);
                });
            }
            (
                shm.slice(a).to_vec(),
                shm.slice(b).to_vec(),
                m.metrics.writes_buffered,
                m.metrics.writes_committed,
                m.metrics.write_conflicts,
            )
        };
        let base = run(Tuning {
            force_sequential: true,
            ..Tuning::default()
        });
        let par = run(Tuning {
            force_parallel: true,
            ..Tuning::default()
        });
        let noslow = run(Tuning {
            disable_fast_path: true,
            ..Tuning::default()
        });
        let par_noslow = run(Tuning {
            force_parallel: true,
            disable_fast_path: true,
            ..Tuning::default()
        });
        assert_eq!(base, par);
        assert_eq!(base, noslow);
        assert_eq!(base, par_noslow);
    }

    #[test]
    fn duplicate_writes_from_one_pid_resolve_deterministically() {
        for policy in [
            WritePolicy::Arbitrary,
            WritePolicy::PriorityMin,
            WritePolicy::CombineMin,
            WritePolicy::CombineMax,
            WritePolicy::CombineSum,
            WritePolicy::CombineOr,
        ] {
            let run = || {
                let mut m = Machine::with_policy(13, policy);
                let mut shm = Shm::new();
                let a = shm.alloc("a", 4, 0);
                m.step(&mut shm, 0..4, |ctx| {
                    ctx.write(a, 0, 5);
                    ctx.write(a, 0, ctx.pid as i64);
                });
                shm.slice(a).to_vec()
            };
            assert_eq!(run(), run(), "policy {policy:?} must replay");
        }
    }

    #[test]
    fn adversarial_writes_commit_extremal_contender_deterministically() {
        use crate::faults::FaultPlan;
        let run = |adversarial: bool| {
            let mut m = Machine::new(31);
            if adversarial {
                m.install_faults(FaultPlan {
                    adversarial_writes: true,
                    ..FaultPlan::default()
                });
            }
            let mut shm = Shm::new();
            let a = shm.alloc("cell", 1, EMPTY);
            m.step(&mut shm, 0..16, |ctx| {
                let pid = ctx.pid;
                ctx.write(a, 0, pid as i64);
            });
            (shm.get(a, 0), m.metrics.faults.adversarial_resolutions)
        };
        let (v, n) = run(true);
        assert!(
            v == 0 || v == 15,
            "adversary must pick an extremal, got {v}"
        );
        assert_eq!(n, 1);
        assert_eq!(run(true), (v, n), "adversary must replay identically");
        let (honest, hn) = run(false);
        assert!((0..16).contains(&honest));
        assert_eq!(hn, 0);
    }

    #[test]
    fn biased_rng_forces_coin_outcomes_per_stream() {
        use crate::faults::{FaultPlan, RngBias};
        let mut m = Machine::new(32);
        m.install_faults(FaultPlan {
            rng_bias: Some(RngBias {
                rate: 1.0,
                force: false,
            }),
            ..FaultPlan::default()
        });
        let mut shm = Shm::new();
        let _a = shm.alloc("a", 1, 0);
        let flips = m.step_map(&mut shm, 0..64, |ctx| ctx.rng().bernoulli(0.999));
        assert!(flips.iter().all(|&b| !b), "every coin must be forced false");
        assert_eq!(m.metrics.faults.biased_streams, 64);
        m.clear_faults();
        let flips = m.step_map(&mut shm, 0..64, |ctx| ctx.rng().bernoulli(0.999));
        assert!(flips.iter().filter(|&&b| b).count() > 56);
    }

    #[test]
    fn dropped_processors_writes_never_commit() {
        use crate::faults::{DropWindow, FaultPlan};
        let mut m = Machine::new(33);
        m.install_faults(FaultPlan {
            drop_window: Some(DropWindow {
                from_step: 0,
                until_step: 1,
                rate: 1.0,
            }),
            ..FaultPlan::default()
        });
        let mut shm = Shm::new();
        let a = shm.alloc("a", 8, EMPTY);
        // step 0: inside the window — all writes dropped
        m.step(&mut shm, 0..8, |ctx| ctx.write(a, ctx.pid, 1));
        assert_eq!(shm.slice(a), &[EMPTY; 8]);
        assert_eq!(m.metrics.faults.dropped_processors, 8);
        assert_eq!(m.metrics.writes_buffered, 0);
        // step 1: past the window — writes land
        m.step(&mut shm, 0..8, |ctx| ctx.write(a, ctx.pid, 1));
        assert_eq!(shm.slice(a), &[1; 8]);
        assert_eq!(m.metrics.faults.dropped_processors, 8);
    }

    #[test]
    fn corruption_flips_bits_between_steps_and_is_counted() {
        use crate::faults::FaultPlan;
        let mut m = Machine::new(34);
        m.install_faults(FaultPlan {
            corrupt_rate: 1.0,
            ..FaultPlan::default()
        });
        let mut shm = Shm::new();
        let a = shm.alloc("a", 16, 0);
        for _ in 0..5 {
            m.step(&mut shm, 0..1, |_| {});
        }
        assert_eq!(m.metrics.faults.corrupted_cells, 5);
        let ones: i64 = shm.slice(a).iter().map(|v| v.count_ones() as i64).sum();
        assert!(ones > 0, "at least one surviving flipped bit expected");
    }

    #[test]
    fn empty_plan_and_cleared_faults_are_byte_identical_to_no_faults() {
        use crate::faults::FaultPlan;
        let run = |mode: u8| {
            let mut m = Machine::new(35);
            match mode {
                1 => m.install_faults(FaultPlan::default()),
                2 => {
                    m.install_faults(FaultPlan {
                        corrupt_rate: 1.0,
                        ..FaultPlan::default()
                    });
                    m.clear_faults();
                }
                _ => {}
            }
            let mut shm = Shm::new();
            let a = shm.alloc("a", 64, 0);
            let coins = m.step_map(&mut shm, 0..64, |ctx| {
                let pid = ctx.pid;
                ctx.write(a, pid % 7, pid as i64);
                ctx.rng().bernoulli(0.5)
            });
            (shm.slice(a).to_vec(), coins, m.metrics.faults)
        };
        assert_eq!(run(0), run(1));
        assert_eq!(run(0), run(2));
        assert_eq!(run(0).2.total(), 0);
    }

    #[test]
    fn children_inherit_the_fault_plan_with_fresh_schedules() {
        use crate::faults::{FaultPlan, RngBias};
        let mut m = Machine::new(36);
        let plan = FaultPlan {
            rng_bias: Some(RngBias {
                rate: 1.0,
                force: true,
            }),
            ..FaultPlan::default()
        };
        m.install_faults(plan.clone());
        let mut child = m.child(9);
        assert!(child.faults_installed());
        let mut shm = Shm::new();
        let _a = shm.alloc("a", 1, 0);
        let flips = child.step_map(&mut shm, 0..8, |ctx| ctx.rng().bernoulli(0.0));
        assert!(flips.iter().all(|&b| b), "inherited bias must apply");
        m.metrics.absorb(&child.metrics);
        assert_eq!(m.metrics.faults.biased_streams, 8);
    }

    #[test]
    fn steady_state_steps_do_not_allocate_new_buffer_capacity() {
        let mut m = Machine::new(14);
        let mut shm = Shm::new();
        let a = shm.alloc("a", 4096, 0);
        let warm = |m: &mut Machine, shm: &mut Shm| {
            m.step(shm, 0..4096, |ctx| ctx.write(a, ctx.pid, 1));
        };
        warm(&mut m, &mut shm);
        let cap_before: usize = m
            .arena
            .chunk_bufs
            .iter_mut()
            .map(|b| b.0.get_mut().capacity())
            .sum();
        for _ in 0..10 {
            warm(&mut m, &mut shm);
        }
        let cap_after: usize = m
            .arena
            .chunk_bufs
            .iter_mut()
            .map(|b| b.0.get_mut().capacity())
            .sum();
        assert_eq!(
            cap_before, cap_after,
            "steady-state steps must reuse arena capacity"
        );
    }
}
