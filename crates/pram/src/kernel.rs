//! Fused bulk-kernel execution for the step shapes that dominate the
//! reproduced algorithms.
//!
//! The generic [`Machine::step`] pays a per-processor toll: a [`crate::Ctx`]
//! is constructed for every virtual processor, its closure is dispatched,
//! and every write becomes a 24-byte log entry that the commit phase must
//! re-examine. That is the honest way to execute an *arbitrary* step — but
//! almost every step the hull algorithms actually issue has one of four
//! fixed shapes, and for those the simulator can run one tight host loop
//! per chunk instead (the same observation behind GPU ports of PRAM hull
//! algorithms: a PRAM step maps to a bulk kernel, not per-processor
//! interpretation):
//!
//! * [`Machine::kernel_map`] — processor `pid` writes `f(pid)` to
//!   `out[pid]`. Conflict-free by construction.
//! * [`Machine::kernel_permute`] — processor `pid` writes one value to a
//!   computed cell of `out`, all destinations distinct. Conflict-free by
//!   contract (violations are caught in debug builds and are a value race,
//!   never undefined behaviour, in release).
//! * [`Machine::kernel_scatter`] — processor `pid` makes at most one
//!   *conditional* write anywhere; conflicts allowed. The fused loop skips
//!   `Ctx` construction but still feeds the machine's commit pipeline, so
//!   conflict resolution and its accounting are *the generic code*, not a
//!   re-implementation.
//! * [`Machine::kernel_reduce`] — every processor contributes at most one
//!   value, combined into a single target cell under a [`ReduceOp`]
//!   (concurrent-OR, combining sum/min/max, priority-first). Partial
//!   accumulators per chunk, folded on the host.
//!
//! # The metrics-identity invariant
//!
//! Kernels are a *host-performance* device, never a model shortcut. Every
//! kernel charges exactly the metrics the generic path would charge for the
//! same step: one step, `|pids|` work, the same `writes_buffered`,
//! `writes_committed` and `write_conflicts`. The only observable differences
//! are host-side (`host_*_ns`, `fastpath_steps`, and the [`crate::Metrics::kernel_steps`]
//! counter). [`crate::Tuning::disable_kernels`] routes every kernel through
//! the generic step path — the equivalence suite runs both and asserts
//! memory and metrics are bit-identical, under every write policy and both
//! sequential and parallel execution.
//!
//! # The data-parallel ("metal") backend
//!
//! Under [`crate::KernelBackend::Parallel`] (the default), a kernel whose
//! processor count reaches [`crate::Tuning::kernel_par_threshold`] executes
//! its chunk loop across the [`crate::pool`] instead of on the calling
//! thread; smaller kernels stay on the sequential fused loops, so the
//! small-n latency profile is that of [`crate::KernelBackend::Fused`].
//! The fan-out is *proven* bit-identical — memory, [`crate::Metrics`]
//! accounting and [`crate::AnalysisReport`]s — at every worker count,
//! because nothing observable depends on lane assignment:
//!
//! * **Fixed chunk boundaries** — chunks are `CHUNK = 8192` consecutive
//!   processors, a pure function of the active-set size.
//! * **Fixed-shape combining** — reduce folds per-chunk `Partial`s on the
//!   host in chunk order; map/permute/scatter chunks write disjoint state.
//! * **Derived randomness** — per-(step, pid) RNG streams are derived, never
//!   shared, so scheduling cannot perturb a coin flip.
//!
//! Parallel chunk loops poll the machine's [`crate::CancelToken`] at every
//! chunk entry (the same granularity as the sequential loops), so the
//! abort-within-one-step guarantee of [`crate::cancel`] holds on both
//! backends.
//!
//! Kernel closures read the pre-step snapshot through a [`KCtx`], which
//! refuses reads of the kernel's own output array (for `map`/`permute` the
//! output buffer is detached during the loop, so the read the generic path
//! would have served from the snapshot must be rejected identically on the
//! fused path — the refusal keeps the two paths observably the same).
//!
//! ```
//! use ipch_pram::{Machine, ReduceOp, Shm};
//!
//! let mut m = Machine::new(1);
//! let mut shm = Shm::new();
//! let xs = shm.alloc("xs", 8, 3);
//! let out = shm.alloc("out", 8, 0);
//! let acc = shm.alloc("acc", 1, 0);
//!
//! // out[pid] = xs[pid] * 2, one synchronous step, no per-pid Ctx.
//! m.kernel_map(&mut shm, 0..8, out, |t, pid| t.read(xs, pid) * 2);
//! // acc[0] = sum over pids, one combining-CRCW step.
//! m.kernel_reduce(&mut shm, 0..8, ReduceOp::Sum, acc, 0, |t, pid| {
//!     Some(t.read(out, pid))
//! });
//! assert_eq!(shm.get(acc, 0), 48);
//! assert_eq!(m.metrics.steps, 2);
//! assert_eq!(m.metrics.work, 16);
//! assert_eq!(m.metrics.kernel_steps, 2);
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Instant;

use crate::analyze::{ReadEntry, ReadTrace, READ_ALL};
use crate::machine::{
    run_chunks_cancellable, ChunkCell, Ctx, KernelBackend, Machine, Pids, WriteEntry, CHUNK,
};
use crate::memory::{ArrayId, Shm, ShmError};
use crate::policy::WritePolicy;
use crate::Word;

/// Sentinel for "no array is off-limits" in a [`KCtx`].
const NO_FORBIDDEN: u32 = u32::MAX;

/// Read-trace hookup of one [`KCtx`]: the owning chunk's buffer plus the
/// pid of the processor currently being simulated (kernels reuse one `KCtx`
/// for a whole chunk, so the pid is set per iteration).
struct KTrace<'a> {
    buf: &'a ReadTrace,
    pid: Cell<u32>,
}

/// Read-only view of the pre-step memory snapshot handed to kernel
/// closures.
///
/// Unlike [`crate::Ctx`] it carries no write buffer and no RNG — a kernel's
/// write is the closure's *return value*, which is what lets the fused loop
/// skip the write log on conflict-free shapes.
pub struct KCtx<'a> {
    shm: &'a Shm,
    /// Array the closure may not read (`NO_FORBIDDEN` if none): the output
    /// array of `map`/`permute`, whose buffer is detached during the fused
    /// loop. Enforced identically on the generic fallback path so the two
    /// paths reject the same programs.
    forbidden: u32,
    /// Analyzer read trace, when attached (fused paths build one per chunk;
    /// generic fallbacks inherit the enclosing [`crate::Ctx`]'s buffer).
    trace: Option<KTrace<'a>>,
}

impl<'a> KCtx<'a> {
    /// A `KCtx` for one fused-loop chunk: traces into `trace` if the
    /// analyzer is attached ([`KCtx::set_pid`] attributes each iteration).
    fn for_chunk(shm: &'a Shm, forbidden: u32, trace: Option<&'a ReadTrace>) -> Self {
        Self {
            shm,
            forbidden,
            trace: trace.map(|buf| KTrace {
                buf,
                pid: Cell::new(0),
            }),
        }
    }

    /// A `KCtx` for a generic-fallback step closure, inheriting the
    /// enclosing [`crate::Ctx`]'s read-trace buffer and pid.
    fn for_ctx(ctx: &'a Ctx<'_, '_>, forbidden: u32) -> KCtx<'a> {
        KCtx {
            shm: ctx.snapshot(),
            forbidden,
            trace: ctx.read_trace().map(|buf| KTrace {
                buf,
                pid: Cell::new(ctx.pid as u32),
            }),
        }
    }

    /// Attribute subsequent traced reads to `pid` (fused loops only).
    #[inline]
    fn set_pid(&self, pid: usize) {
        if let Some(t) = &self.trace {
            t.pid.set(pid as u32);
        }
    }

    #[inline]
    fn check(&self, a: ArrayId) {
        assert!(
            a.slot() != self.forbidden,
            "kernel closure may not read the kernel's own output array \
             (reads see the pre-step snapshot; buffer the value in a prior step)"
        );
    }

    #[inline]
    fn record(&self, key: u64) {
        if let Some(t) = &self.trace {
            t.buf.borrow_mut().push(ReadEntry {
                key,
                pid: t.pid.get(),
            });
        }
    }

    /// Read a cell of the pre-step memory snapshot.
    #[inline]
    pub fn read(&self, a: ArrayId, i: usize) -> Word {
        self.check(a);
        self.record(((a.slot() as u64) << 32) | i as u64);
        self.shm.get(a, i)
    }

    /// Borrow a whole array of the pre-step snapshot (see [`crate::Ctx::slice`]).
    #[inline]
    pub fn slice(&self, a: ArrayId) -> &'a [Word] {
        self.check(a);
        self.record(((a.slot() as u64) << 32) | READ_ALL as u64);
        self.shm.slice(a)
    }

    /// Length of a shared array (metadata, not a traced cell read).
    #[inline]
    pub fn len(&self, a: ArrayId) -> usize {
        self.check(a);
        self.shm.len(a)
    }
}

/// Combining rule of a [`Machine::kernel_reduce`] step.
///
/// Each variant corresponds exactly to one CRCW [`WritePolicy`]; the kernel
/// is required to produce the value that policy would commit if every
/// contributing processor wrote the target cell in one generic step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Bitwise OR of all contributions ([`WritePolicy::CombineOr`]) — the
    /// paper's §2.2 concurrent-OR.
    Or,
    /// Wrapping sum ([`WritePolicy::CombineSum`]).
    Sum,
    /// Minimum ([`WritePolicy::CombineMin`]).
    Min,
    /// Maximum ([`WritePolicy::CombineMax`]).
    Max,
    /// Contribution of the lowest-numbered contributing processor
    /// ([`WritePolicy::PriorityMin`]).
    First,
}

impl ReduceOp {
    /// The write policy this op is defined to replicate.
    pub fn policy(self) -> WritePolicy {
        match self {
            ReduceOp::Or => WritePolicy::CombineOr,
            ReduceOp::Sum => WritePolicy::CombineSum,
            ReduceOp::Min => WritePolicy::CombineMin,
            ReduceOp::Max => WritePolicy::CombineMax,
            ReduceOp::First => WritePolicy::PriorityMin,
        }
    }

    /// Fold identity (matches the empty prefix of the policy's own fold).
    #[inline]
    fn identity(self) -> Word {
        match self {
            ReduceOp::Or | ReduceOp::Sum => 0,
            ReduceOp::Min => Word::MAX,
            ReduceOp::Max => Word::MIN,
            ReduceOp::First => 0, // unused: First resolves by minimum pid
        }
    }

    /// Two-element combine. All variants are commutative and associative
    /// (Sum by two's-complement wrapping), so per-chunk partial folds are
    /// bit-identical to the generic path's sorted-run fold.
    #[inline]
    fn combine(self, a: Word, b: Word) -> Word {
        match self {
            ReduceOp::Or => a | b,
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::First => a, // unused: First resolves by minimum pid
        }
    }
}

/// `Sync` wrapper for the dense map path's detached-buffer base pointer;
/// chunks write disjoint `clo..chi` subranges, which is what makes sharing
/// it across pool lanes sound.
struct SendWordPtr(*mut Word);

// SAFETY: used only under the disjoint-subrange discipline above.
unsafe impl Sync for SendWordPtr {}

impl SendWordPtr {
    /// Accessor (rather than direct field use) so closures capture the
    /// `Sync` wrapper, not the bare pointer.
    fn get(&self) -> *mut Word {
        self.0
    }
}

/// Per-chunk accumulator of a fused reduce.
struct Partial {
    /// Number of contributing processors in the chunk.
    k: u64,
    /// Folded contribution under the op's combine.
    acc: Word,
    /// Lowest contributing pid (`u64::MAX` if none) and its value, for
    /// [`ReduceOp::First`].
    min_pid: u64,
    min_pid_val: Word,
}

impl Partial {
    fn empty(op: ReduceOp) -> Self {
        Self {
            k: 0,
            acc: op.identity(),
            min_pid: u64::MAX,
            min_pid_val: 0,
        }
    }
}

impl Machine {
    /// True when a fused kernel over `count` processors should fan out over
    /// the pool: only under [`KernelBackend::Parallel`], and only once the
    /// kernel is large enough ([`crate::Tuning::kernel_par_threshold`]) that
    /// the fan-out pays for its synchronisation — smaller kernels stay on
    /// the sequential fused loops ([`KernelBackend::Fused`] behaviour).
    #[inline]
    pub(crate) fn parallel_kernel(&self, count: usize) -> bool {
        self.tuning.kernel_backend == KernelBackend::Parallel
            && !self.tuning.force_sequential
            && (self.tuning.force_parallel || count >= self.tuning.kernel_par_threshold)
    }

    /// Execute a fused kernel's chunk loop: fanned out over the pool (lane
    /// cap [`crate::Tuning::num_threads`], cancellation polled at every
    /// chunk entry) when [`Machine::parallel_kernel`] says so, otherwise
    /// sequentially with the same poll granularity. Returns the cause if a
    /// poll observed expiry mid-kernel; the chunks that ran are the caller's
    /// to discard.
    fn run_kernel_chunks(
        &self,
        count: usize,
        nchunks: usize,
        run_chunk: &(dyn Fn(usize) + Sync),
    ) -> Option<crate::cancel::CancelCause> {
        if self.parallel_kernel(count) {
            run_chunks_cancellable(self.max_lanes(), nchunks, self.cancel.as_ref(), run_chunk)
        } else {
            for c in 0..nchunks {
                if c > 0 {
                    if let Some(cause) = self.cancel.as_ref().and_then(|t| t.check().err()) {
                        return Some(cause);
                    }
                }
                run_chunk(c);
            }
            None
        }
    }

    /// Record the lane count a fused kernel over `count` processors runs at.
    fn record_kernel_threads(&mut self, count: usize) {
        let lanes = if self.parallel_kernel(count) {
            self.effective_lanes()
        } else {
            1
        };
        self.metrics.record_threads(lanes);
    }

    /// One synchronous step in which processor `pid` writes `f(pid)` to
    /// `out[pid]`.
    ///
    /// Fused path: the output buffer is detached, each chunk of processors
    /// runs a tight loop storing results directly, and the write log is
    /// skipped entirely. Charges one step, `|pids|` work, `|pids|` writes
    /// buffered and committed, zero conflicts — identical to the generic
    /// path on this shape. Contiguous pid ranges additionally take the
    /// dense path (`Machine::fused_map_dense`): each chunk owns the
    /// matching subslice of the output, so the inner loop is plain indexed
    /// stores over `&mut [Word]` — the shape LLVM autovectorizes.
    ///
    /// Contract: pids are distinct (they address distinct cells) and `f`
    /// does not read `out` (enforced by [`KCtx`]).
    pub fn kernel_map<'a, P, F>(&mut self, shm: &mut Shm, pids: P, out: ArrayId, f: F)
    where
        P: Into<Pids<'a>>,
        F: Fn(&KCtx, usize) -> Word + Sync,
    {
        let pids = pids.into();
        if self.tuning.disable_kernels || self.faults.is_some() {
            let forbidden = out.slot();
            self.step(shm, pids, |ctx| {
                let t = KCtx::for_ctx(ctx, forbidden);
                let v = f(&t, ctx.pid);
                ctx.write(out, ctx.pid, v);
            });
            return;
        }
        if let Pids::Range(lo, hi) = pids {
            self.fused_map_dense(shm, lo, hi, out, f);
            return;
        }
        self.fused_write(shm, pids, out, |t, pid| (pid, f(t, pid)));
    }

    /// Dense [`Machine::kernel_map`] fast path for contiguous pid ranges:
    /// destination cells `lo..hi` partition into per-chunk subslices of the
    /// detached output buffer, so the inner loop needs no per-element atomic
    /// stores, no per-element bounds checks and no destination bookkeeping —
    /// one hoisted range check, then straight-line stores a vectorizer can
    /// work with. Metrics, analyzer trace and cancellation behaviour are
    /// those of [`Machine::fused_write`] on the same program.
    fn fused_map_dense<F>(&mut self, shm: &mut Shm, lo: usize, hi: usize, out: ArrayId, f: F)
    where
        F: Fn(&KCtx, usize) -> Word + Sync,
    {
        self.poll_cancel();
        let count = hi.saturating_sub(lo);
        let step_no = self.step_counter;
        self.step_counter += 1;
        self.metrics.record_step(count as u64);
        if count == 0 {
            return;
        }
        let t_start = Instant::now();

        let nchunks = count.div_ceil(CHUNK);
        let mut analysis = self.analysis.take();
        // Analyzer attached ⇒ also record the write log the generic path
        // would produce (same entries, same chunk buffers).
        let mut arena = analysis.as_ref().map(|_| std::mem::take(&mut self.arena));
        if let Some(an) = &mut analysis {
            an.prepare(nchunks);
        }
        if let Some(ar) = &mut arena {
            ar.prepare(nchunks);
        }

        self.record_kernel_threads(count);
        let mut buf = shm.take_array(out);
        if hi > buf.len() {
            // The error the generic path raises at its first offending pid.
            let e = ShmError::OutOfBounds {
                name: shm.slot_name(out.slot()).to_string(),
                index: lo.max(buf.len()),
                len: buf.len(),
            };
            shm.put_back(out, buf);
            panic!("{e}");
        }
        let mid_abort;
        {
            let base = SendWordPtr(buf.as_mut_ptr());
            let shm_ref: &Shm = shm;
            let forbidden = out.slot();
            let trace_bufs = analysis.as_deref().map(|a| &a.read_bufs[..nchunks]);
            let write_bufs = arena.as_ref().map(|ar| &ar.chunk_bufs[..nchunks]);
            let run_chunk = |c: usize| {
                let clo = lo + c * CHUNK;
                let chi = (clo + CHUNK).min(hi);
                // SAFETY: chunks own disjoint subranges `clo..chi` of the
                // detached buffer, all inside `0..buf.len()` (checked above).
                let slots =
                    unsafe { std::slice::from_raw_parts_mut(base.get().add(clo), chi - clo) };
                let trace = trace_bufs.map(|t| unsafe { &*t[c].0.get() });
                let t = KCtx::for_chunk(shm_ref, forbidden, trace);
                // SAFETY: chunk `c` exclusively owns `chunk_bufs[c]`; no
                // other lane touches it while this chunk runs.
                match write_bufs.map(|b| unsafe { b[c].get_mut_unchecked() }) {
                    Some(w) => {
                        for (off, slot) in slots.iter_mut().enumerate() {
                            let pid = clo + off;
                            t.set_pid(pid);
                            let v = f(&t, pid);
                            *slot = v;
                            w.push(WriteEntry {
                                key: ((out.slot() as u64) << 32) | pid as u64,
                                pidseq: (pid as u64) << 32,
                                val: v,
                            });
                        }
                    }
                    // The hot case: no analyzer, no side bookkeeping — a
                    // contiguous read-compute-store loop.
                    None => {
                        for (off, slot) in slots.iter_mut().enumerate() {
                            *slot = f(&t, clo + off);
                        }
                    }
                }
            };
            mid_abort = self.run_kernel_chunks(count, nchunks, &run_chunk);
        }
        shm.put_back(out, buf);
        if let Some(cause) = mid_abort {
            // Same contract as `fused_write`: the buffer is re-attached, a
            // prefix of this step's stores may be present, and a cancelled
            // run's memory is never a result.
            self.analysis = analysis;
            if let Some(ar) = arena {
                self.arena = ar;
            }
            crate::cancel::unwind(cause);
        }

        self.metrics.writes_buffered += count as u64;
        self.metrics.writes_committed += count as u64;
        self.metrics.kernel_steps += 1;
        self.metrics
            .record_host_ns(t_start.elapsed().as_nanos() as u64, 0);
        if let (Some(an), Some(ar)) = (&mut analysis, &mut arena) {
            let seed = self.seed();
            let report = self.metrics.analysis.get_or_insert_with(Box::default);
            crate::analyze::finish_step(
                an,
                report,
                shm,
                seed,
                step_no,
                self.policy,
                nchunks,
                &mut ar.chunk_bufs[..nchunks],
                None, // faults installed ⇒ kernels already routed generic
            );
        }
        if let Some(ar) = arena {
            self.arena = ar;
        }
        self.analysis = analysis;
    }

    /// One synchronous step in which processor `pid` writes one value to a
    /// computed cell of `out`; `f` returns `(destination, value)`.
    ///
    /// Contract: destinations are distinct across processors (a permutation
    /// into `out`); `f` does not read `out`. Duplicate destinations panic in
    /// debug builds; in release the racing relaxed stores commit *some*
    /// contender (never undefined behaviour) — but such a program is outside
    /// the kernel contract and must use [`Machine::kernel_scatter`].
    pub fn kernel_permute<'a, P, F>(&mut self, shm: &mut Shm, pids: P, out: ArrayId, f: F)
    where
        P: Into<Pids<'a>>,
        F: Fn(&KCtx, usize) -> (usize, Word) + Sync,
    {
        let pids = pids.into();
        if self.tuning.disable_kernels || self.faults.is_some() {
            let forbidden = out.slot();
            self.step(shm, pids, |ctx| {
                let t = KCtx::for_ctx(ctx, forbidden);
                let (d, v) = f(&t, ctx.pid);
                ctx.write(out, d, v);
            });
            return;
        }
        self.fused_write(shm, pids, out, f);
    }

    /// Shared fused loop of `kernel_map`/`kernel_permute`: detach the output
    /// buffer, store each processor's `(destination, value)` directly,
    /// charge conflict-free metrics.
    fn fused_write<F>(&mut self, shm: &mut Shm, pids: Pids<'_>, out: ArrayId, f: F)
    where
        F: Fn(&KCtx, usize) -> (usize, Word) + Sync,
    {
        // Cancellation poll at the step boundary (same contract as the
        // generic path: an expired machine records no further steps).
        self.poll_cancel();
        let count = pids.count();
        let step_no = self.step_counter;
        self.step_counter += 1;
        self.metrics.record_step(count as u64);
        if count == 0 {
            return;
        }
        let t_start = Instant::now();

        let nchunks = count.div_ceil(CHUNK);
        let mut analysis = self.analysis.take();
        // With the analyzer attached, the fused loop also records its writes
        // (into the pooled arena buffers, exactly the generic log format) so
        // classification sees the same trace either way.
        let mut arena = analysis.as_ref().map(|_| std::mem::take(&mut self.arena));
        if let Some(an) = &mut analysis {
            an.prepare(nchunks);
        }
        if let Some(ar) = &mut arena {
            ar.prepare(nchunks);
        }

        self.record_kernel_threads(count);
        let mid_abort;
        let mut buf = shm.take_array(out);
        {
            // SAFETY: AtomicI64 has the same size and bit validity as i64,
            // so the cast view is valid. Distinct destinations mean distinct
            // cells; the atomic relaxed store keeps a contract violation a
            // value race, never UB.
            let cells: &[AtomicI64] = unsafe {
                std::slice::from_raw_parts(buf.as_mut_ptr().cast::<AtomicI64>(), buf.len())
            };
            #[cfg(debug_assertions)]
            let seen: Vec<std::sync::atomic::AtomicBool> =
                (0..cells.len()).map(|_| Default::default()).collect();
            let shm_ref: &Shm = shm;
            let forbidden = out.slot();
            let pids_ref = &pids;
            let trace_bufs = analysis.as_deref().map(|a| &a.read_bufs[..nchunks]);
            let write_bufs = arena.as_ref().map(|ar| &ar.chunk_bufs[..nchunks]);
            let run_chunk = |c: usize| {
                let lo = c * CHUNK;
                let hi = ((c + 1) * CHUNK).min(count);
                // SAFETY: chunk-exclusive buffers (chunk c touches cell c only).
                let trace = trace_bufs.map(|t| unsafe { &*t[c].0.get() });
                let mut writes = write_bufs.map(|b| unsafe { b[c].get_mut_unchecked() });
                let t = KCtx::for_chunk(shm_ref, forbidden, trace);
                for i in lo..hi {
                    let pid = pids_ref.get(i);
                    t.set_pid(pid);
                    let (d, v) = f(&t, pid);
                    if d >= cells.len() {
                        panic!(
                            "{}",
                            ShmError::OutOfBounds {
                                name: shm_ref.slot_name(out.slot()).to_string(),
                                index: d,
                                len: cells.len(),
                            }
                        );
                    }
                    #[cfg(debug_assertions)]
                    assert!(
                        !seen[d].swap(true, Ordering::Relaxed),
                        "kernel wrote out[{d}] twice: map/permute destinations must be \
                         distinct (conflicting writes need kernel_scatter)"
                    );
                    cells[d].store(v, Ordering::Relaxed);
                    if let Some(w) = writes.as_mut() {
                        w.push(WriteEntry {
                            key: ((out.slot() as u64) << 32) | d as u64,
                            pidseq: (pid as u64) << 32,
                            val: v,
                        });
                    }
                }
            };
            mid_abort = self.run_kernel_chunks(count, nchunks, &run_chunk);
        }
        shm.put_back(out, buf);
        if let Some(cause) = mid_abort {
            // Mid-kernel abort: the output buffer is re-attached (Shm stays
            // structurally intact and the machine reusable), but — unlike
            // the generic path, which discards its buffered log whole — the
            // fused loop stores directly, so a prefix of this step's writes
            // may already be in `out`. A cancelled run's memory is never a
            // result, so that is within the cancellation contract.
            self.analysis = analysis;
            if let Some(ar) = arena {
                self.arena = ar;
            }
            crate::cancel::unwind(cause);
        }

        // Metrics-identity with the generic path on this conflict-free
        // shape: every processor buffers one write, every write commits.
        self.metrics.writes_buffered += count as u64;
        self.metrics.writes_committed += count as u64;
        self.metrics.kernel_steps += 1;
        self.metrics
            .record_host_ns(t_start.elapsed().as_nanos() as u64, 0);
        if let (Some(an), Some(ar)) = (&mut analysis, &mut arena) {
            let seed = self.seed();
            let report = self.metrics.analysis.get_or_insert_with(Box::default);
            crate::analyze::finish_step(
                an,
                report,
                shm,
                seed,
                step_no,
                self.policy,
                nchunks,
                &mut ar.chunk_bufs[..nchunks],
                None, // faults installed ⇒ kernels already routed generic
            );
        }
        if let Some(ar) = arena {
            self.arena = ar;
        }
        self.analysis = analysis;
    }

    /// One synchronous step in which each processor makes at most one
    /// conditional write anywhere (`f` returns `Some((array, index, value))`
    /// to write), resolved under the machine's default policy.
    pub fn kernel_scatter<'a, P, F>(&mut self, shm: &mut Shm, pids: P, f: F)
    where
        P: Into<Pids<'a>>,
        F: Fn(&KCtx, usize) -> Option<(ArrayId, usize, Word)> + Sync,
    {
        let policy = self.policy;
        self.kernel_scatter_with_policy(shm, pids, policy, f);
    }

    /// [`Machine::kernel_scatter`] with an explicit write rule.
    ///
    /// Conflicts are allowed: the fused loop only skips per-pid `Ctx`
    /// construction — buffered entries go through the machine's ordinary
    /// commit pipeline, so resolution, determinism and accounting are
    /// shared with the generic path by construction.
    pub fn kernel_scatter_with_policy<'a, P, F>(
        &mut self,
        shm: &mut Shm,
        pids: P,
        policy: WritePolicy,
        f: F,
    ) where
        P: Into<Pids<'a>>,
        F: Fn(&KCtx, usize) -> Option<(ArrayId, usize, Word)> + Sync,
    {
        let pids = pids.into();
        if self.tuning.disable_kernels || self.faults.is_some() {
            self.step_with_policy(shm, pids, policy, |ctx| {
                let t = KCtx::for_ctx(ctx, NO_FORBIDDEN);
                if let Some((a, i, v)) = f(&t, ctx.pid) {
                    ctx.write(a, i, v);
                }
            });
            return;
        }

        self.poll_cancel();
        let count = pids.count();
        let step_no = self.step_counter;
        self.step_counter += 1;
        self.metrics.record_step(count as u64);
        if count == 0 {
            return;
        }
        let t_start = Instant::now();

        self.record_kernel_threads(count);
        let mid_abort;
        let mut arena = std::mem::take(&mut self.arena);
        let nchunks = count.div_ceil(CHUNK);
        arena.prepare(nchunks);
        let mut analysis = self.analysis.take();
        if let Some(an) = &mut analysis {
            an.prepare(nchunks);
        }
        {
            let shm_ref: &Shm = shm;
            let pids_ref = &pids;
            let bufs = &arena.chunk_bufs[..nchunks];
            let trace_bufs = analysis.as_deref().map(|a| &a.read_bufs[..nchunks]);
            let run_chunk = |c: usize| {
                let lo = c * CHUNK;
                let hi = ((c + 1) * CHUNK).min(count);
                // SAFETY: chunk c is executed exactly once; buffer c is ours.
                let writes = unsafe { bufs[c].get_mut_unchecked() };
                // SAFETY: same chunk-exclusive discipline for the read trace.
                let trace = trace_bufs.map(|t| unsafe { &*t[c].0.get() });
                let t = KCtx::for_chunk(shm_ref, NO_FORBIDDEN, trace);
                for i in lo..hi {
                    let pid = pids_ref.get(i);
                    t.set_pid(pid);
                    if let Some((a, idx, v)) = f(&t, pid) {
                        if let Err(e) = shm_ref.check_access(a, idx) {
                            panic!("{e}");
                        }
                        assert!(pid <= u32::MAX as usize, "pid {pid} exceeds u32 range");
                        writes.push(WriteEntry {
                            key: ((a.slot() as u64) << 32) | idx as u64,
                            pidseq: (pid as u64) << 32,
                            val: v,
                        });
                    }
                }
            };
            mid_abort = self.run_kernel_chunks(count, nchunks, &run_chunk);
        }
        if let Some(cause) = mid_abort {
            // Mid-kernel abort: buffered writes are discarded whole (this
            // path shares the generic commit pipeline, so nothing has
            // touched shared memory); pooled state goes back for reuse.
            self.arena = arena;
            self.analysis = analysis;
            crate::cancel::unwind(cause);
        }
        let t_computed = Instant::now();
        self.commit(shm, policy, step_no, &mut arena, nchunks);
        let t_committed = Instant::now();
        self.metrics.kernel_steps += 1;
        self.metrics.record_host_ns(
            t_computed.duration_since(t_start).as_nanos() as u64,
            t_committed.duration_since(t_computed).as_nanos() as u64,
        );
        if let Some(an) = &mut analysis {
            let seed = self.seed();
            let report = self.metrics.analysis.get_or_insert_with(Box::default);
            crate::analyze::finish_step(
                an,
                report,
                shm,
                seed,
                step_no,
                policy,
                nchunks,
                &mut arena.chunk_bufs[..nchunks],
                None, // faults installed ⇒ kernels already routed generic
            );
        }
        self.arena = arena;
        self.analysis = analysis;
    }

    /// One synchronous combining-CRCW step: every processor contributes at
    /// most one value (`f` returns `Some(v)` to contribute), and
    /// `target[tidx]` receives the combination under `op` — exactly what the
    /// generic path commits when all contributors write that cell under
    /// [`ReduceOp::policy`].
    ///
    /// Charges one step, `|pids|` work, one buffered write per contributor,
    /// one committed cell (if any contributor) and one conflict (if two or
    /// more) — identical to the generic path.
    pub fn kernel_reduce<'a, P, F>(
        &mut self,
        shm: &mut Shm,
        pids: P,
        op: ReduceOp,
        target: ArrayId,
        tidx: usize,
        f: F,
    ) where
        P: Into<Pids<'a>>,
        F: Fn(&KCtx, usize) -> Option<Word> + Sync,
    {
        let pids = pids.into();
        if self.tuning.disable_kernels || self.faults.is_some() {
            self.step_with_policy(shm, pids, op.policy(), |ctx| {
                let t = KCtx::for_ctx(ctx, NO_FORBIDDEN);
                if let Some(v) = f(&t, ctx.pid) {
                    ctx.write(target, tidx, v);
                }
            });
            return;
        }

        self.poll_cancel();
        let count = pids.count();
        let step_no = self.step_counter;
        self.step_counter += 1;
        self.metrics.record_step(count as u64);
        if count == 0 {
            return;
        }
        let t_start = Instant::now();

        self.record_kernel_threads(count);
        let mid_abort;
        let nchunks = count.div_ceil(CHUNK);
        let mut analysis = self.analysis.take();
        // With the analyzer attached, record one write entry per contributor
        // (what the generic path would buffer) so the race census is
        // identical either way.
        let mut arena = analysis.as_ref().map(|_| std::mem::take(&mut self.arena));
        if let Some(an) = &mut analysis {
            an.prepare(nchunks);
        }
        if let Some(ar) = &mut arena {
            ar.prepare(nchunks);
        }
        let partials: Vec<ChunkCell<Partial>> = (0..nchunks)
            .map(|_| ChunkCell::new(Partial::empty(op)))
            .collect();
        {
            let shm_ref: &Shm = shm;
            let pids_ref = &pids;
            let partials_ref = &partials;
            let trace_bufs = analysis.as_deref().map(|a| &a.read_bufs[..nchunks]);
            let write_bufs = arena.as_ref().map(|ar| &ar.chunk_bufs[..nchunks]);
            let target_key = ((target.slot() as u64) << 32) | tidx as u64;
            let run_chunk = |c: usize| {
                let lo = c * CHUNK;
                let hi = ((c + 1) * CHUNK).min(count);
                // SAFETY: chunk c is executed exactly once; partial c and the
                // trace/write buffers c are ours.
                let p = unsafe { partials_ref[c].get_mut_unchecked() };
                let trace = trace_bufs.map(|t| unsafe { &*t[c].0.get() });
                let mut writes = write_bufs.map(|b| unsafe { b[c].get_mut_unchecked() });
                let t = KCtx::for_chunk(shm_ref, NO_FORBIDDEN, trace);
                for i in lo..hi {
                    let pid = pids_ref.get(i);
                    t.set_pid(pid);
                    if let Some(v) = f(&t, pid) {
                        p.k += 1;
                        p.acc = op.combine(p.acc, v);
                        if (pid as u64) < p.min_pid {
                            p.min_pid = pid as u64;
                            p.min_pid_val = v;
                        }
                        if let Some(w) = writes.as_mut() {
                            w.push(WriteEntry {
                                key: target_key,
                                pidseq: (pid as u64) << 32,
                                val: v,
                            });
                        }
                    }
                }
            };
            mid_abort = self.run_kernel_chunks(count, nchunks, &run_chunk);
        }
        if let Some(cause) = mid_abort {
            // Mid-kernel abort: partials are host-local and simply dropped;
            // the target cell was never touched.
            self.analysis = analysis;
            if let Some(ar) = arena {
                self.arena = ar;
            }
            crate::cancel::unwind(cause);
        }

        let mut total_k = 0u64;
        let mut acc = op.identity();
        let mut min_pid = u64::MAX;
        let mut min_pid_val = 0;
        for cell in partials {
            let p = cell.into_inner();
            if p.k == 0 {
                continue;
            }
            total_k += p.k;
            acc = op.combine(acc, p.acc);
            if p.min_pid < min_pid {
                min_pid = p.min_pid;
                min_pid_val = p.min_pid_val;
            }
        }
        self.metrics.writes_buffered += total_k;
        if total_k > 0 {
            let v = match op {
                ReduceOp::First => min_pid_val,
                _ => acc,
            };
            shm.host_set(target, tidx, v);
            self.metrics.writes_committed += 1;
            if total_k >= 2 {
                self.metrics.write_conflicts += 1;
            }
        }
        self.metrics.kernel_steps += 1;
        self.metrics
            .record_host_ns(t_start.elapsed().as_nanos() as u64, 0);
        if let (Some(an), Some(ar)) = (&mut analysis, &mut arena) {
            let seed = self.seed();
            let report = self.metrics.analysis.get_or_insert_with(Box::default);
            crate::analyze::finish_step(
                an,
                report,
                shm,
                seed,
                step_no,
                op.policy(),
                nchunks,
                &mut ar.chunk_bufs[..nchunks],
                None, // faults installed ⇒ kernels already routed generic
            );
        }
        if let Some(ar) = arena {
            self.arena = ar;
        }
        self.analysis = analysis;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Tuning;
    use crate::Metrics;

    /// The metric fields kernels must replicate exactly (host-observability
    /// counters — host_ns, fastpath_steps, kernel_steps — excluded).
    fn observed(m: &Metrics) -> (u64, u64, u64, u64, u64, u64) {
        (
            m.steps,
            m.work,
            m.peak_processors,
            m.writes_buffered,
            m.writes_committed,
            m.write_conflicts,
        )
    }

    fn machines(policy: WritePolicy) -> (Machine, Machine) {
        let fused = Machine::with_policy(99, policy);
        let mut generic = Machine::with_policy(99, policy);
        generic.tuning = Tuning {
            disable_kernels: true,
            ..Tuning::default()
        };
        (fused, generic)
    }

    #[test]
    fn map_matches_generic_step_memory_and_metrics() {
        let (mut mf, mut mg) = machines(WritePolicy::Arbitrary);
        let run = |m: &mut Machine| {
            let mut shm = Shm::new();
            let xs = shm.alloc("xs", 100, 0);
            for i in 0..100 {
                shm.host_set(xs, i, i as i64);
            }
            let out = shm.alloc("out", 100, 0);
            m.kernel_map(&mut shm, 0..100, out, |t, pid| t.read(xs, pid) * 3 + 1);
            shm.slice(out).to_vec()
        };
        let a = run(&mut mf);
        let b = run(&mut mg);
        assert_eq!(a, b);
        assert_eq!(observed(&mf.metrics), observed(&mg.metrics));
        assert_eq!(mf.metrics.kernel_steps, 1);
        assert_eq!(mg.metrics.kernel_steps, 0);
    }

    #[test]
    fn map_over_pid_list_writes_those_cells_only() {
        let mut m = Machine::new(7);
        let mut shm = Shm::new();
        let out = shm.alloc("out", 10, -1);
        let pids = vec![1usize, 4, 9];
        m.kernel_map(&mut shm, &pids, out, |_, pid| pid as i64);
        assert_eq!(shm.slice(out), &[-1, 1, -1, -1, 4, -1, -1, -1, -1, 9]);
        assert_eq!(m.metrics.work, 3);
        assert_eq!(m.metrics.writes_committed, 3);
    }

    #[test]
    fn permute_reverses() {
        let (mut mf, mut mg) = machines(WritePolicy::Arbitrary);
        let run = |m: &mut Machine| {
            let mut shm = Shm::new();
            let out = shm.alloc("out", 64, 0);
            m.kernel_permute(&mut shm, 0..64, out, |_, pid| (63 - pid, pid as i64));
            shm.slice(out).to_vec()
        };
        let a = run(&mut mf);
        let b = run(&mut mg);
        assert_eq!(a, b);
        assert!(a.iter().enumerate().all(|(i, &v)| v == (63 - i) as i64));
        assert_eq!(observed(&mf.metrics), observed(&mg.metrics));
    }

    #[test]
    fn scatter_resolves_conflicts_like_generic_path() {
        for policy in [
            WritePolicy::Arbitrary,
            WritePolicy::PriorityMin,
            WritePolicy::CombineMin,
            WritePolicy::CombineMax,
            WritePolicy::CombineSum,
            WritePolicy::CombineOr,
        ] {
            let (mut mf, mut mg) = machines(policy);
            let run = |m: &mut Machine| {
                let mut shm = Shm::new();
                let out = shm.alloc("out", 16, 0);
                // every processor writes cell pid%16/4 — 4-way conflicts —
                // and odd pids abstain
                m.kernel_scatter(&mut shm, 0..64, |_, pid| {
                    if pid % 2 == 1 {
                        return None;
                    }
                    Some((out, (pid % 16) / 4, pid as i64 + 1))
                });
                shm.slice(out).to_vec()
            };
            let a = run(&mut mf);
            let b = run(&mut mg);
            assert_eq!(a, b, "policy {policy:?}");
            assert_eq!(
                observed(&mf.metrics),
                observed(&mg.metrics),
                "policy {policy:?}"
            );
            assert!(mf.metrics.write_conflicts > 0);
        }
    }

    #[test]
    fn reduce_ops_match_their_policies() {
        for op in [
            ReduceOp::Or,
            ReduceOp::Sum,
            ReduceOp::Min,
            ReduceOp::Max,
            ReduceOp::First,
        ] {
            let (mut mf, mut mg) = machines(WritePolicy::Arbitrary);
            let run = |m: &mut Machine| {
                let mut shm = Shm::new();
                let xs = shm.alloc("xs", 50, 0);
                for i in 0..50 {
                    shm.host_set(xs, i, (i as i64 * 13) % 29 - 7);
                }
                let cell = shm.alloc("cell", 1, -99);
                m.kernel_reduce(&mut shm, 0..50, op, cell, 0, |t, pid| {
                    if pid % 3 == 0 {
                        None
                    } else {
                        Some(t.read(xs, pid))
                    }
                });
                shm.get(cell, 0)
            };
            let a = run(&mut mf);
            let b = run(&mut mg);
            assert_eq!(a, b, "op {op:?}");
            assert_eq!(observed(&mf.metrics), observed(&mg.metrics), "op {op:?}");
        }
    }

    #[test]
    fn reduce_first_takes_lowest_pid_even_from_unsorted_pid_list() {
        let (mut mf, mut mg) = machines(WritePolicy::Arbitrary);
        let run = |m: &mut Machine| {
            let mut shm = Shm::new();
            let cell = shm.alloc("cell", 1, 0);
            let pids = vec![9usize, 2, 7, 30, 4];
            m.kernel_reduce(&mut shm, &pids, ReduceOp::First, cell, 0, |_, pid| {
                Some(pid as i64 * 100)
            });
            shm.get(cell, 0)
        };
        assert_eq!(run(&mut mf), 200);
        assert_eq!(run(&mut mg), 200);
    }

    #[test]
    fn reduce_with_no_contributors_commits_nothing() {
        let (mut mf, mut mg) = machines(WritePolicy::Arbitrary);
        let run = |m: &mut Machine| {
            let mut shm = Shm::new();
            let cell = shm.alloc("cell", 1, 42);
            m.kernel_reduce(&mut shm, 0..32, ReduceOp::Or, cell, 0, |_, _| None);
            shm.get(cell, 0)
        };
        assert_eq!(run(&mut mf), 42);
        assert_eq!(run(&mut mg), 42);
        assert_eq!(observed(&mf.metrics), observed(&mg.metrics));
        assert_eq!(mf.metrics.writes_committed, 0);
    }

    #[test]
    fn zero_processor_kernel_costs_a_step_but_no_work() {
        let mut m = Machine::new(3);
        let mut shm = Shm::new();
        let out = shm.alloc("out", 4, 0);
        m.kernel_map(&mut shm, 0..0, out, |_, pid| pid as i64);
        assert_eq!(m.metrics.steps, 1);
        assert_eq!(m.metrics.work, 0);
        assert_eq!(m.metrics.writes_buffered, 0);
    }

    #[test]
    fn parallel_fused_loops_match_sequential() {
        let n = (1 << 15) + 17; // over the fan-out threshold
        let run = |force_parallel: bool| {
            let mut m = Machine::new(5);
            m.tuning.force_parallel = force_parallel;
            m.tuning.force_sequential = !force_parallel;
            let mut shm = Shm::new();
            let out = shm.alloc("out", n, 0);
            let acc = shm.alloc("acc", 1, 0);
            m.kernel_map(&mut shm, 0..n, out, |_, pid| (pid as i64).wrapping_mul(7));
            m.kernel_reduce(&mut shm, 0..n, ReduceOp::Sum, acc, 0, |t, pid| {
                Some(t.read(out, pid))
            });
            (shm.slice(out).to_vec(), shm.get(acc, 0))
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "own output array")]
    fn reading_the_output_array_is_rejected() {
        let mut m = Machine::new(6);
        let mut shm = Shm::new();
        let out = shm.alloc("out", 8, 0);
        m.kernel_map(&mut shm, 0..8, out, |t, pid| t.read(out, pid) + 1);
    }

    #[test]
    #[should_panic(expected = "own output array")]
    fn generic_fallback_rejects_output_reads_identically() {
        let mut m = Machine::new(6);
        m.tuning.disable_kernels = true;
        let mut shm = Shm::new();
        let out = shm.alloc("out", 8, 0);
        m.kernel_map(&mut shm, 0..8, out, |t, pid| t.read(out, pid) + 1);
    }
}
