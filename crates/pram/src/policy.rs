//! CRCW concurrent-write conflict-resolution policies.
//!
//! A CRCW PRAM is a family of models distinguished by what happens when
//! several processors write the same cell in the same step:
//!
//! * **Arbitrary** — some one writer succeeds; the algorithm may not assume
//!   which. This is the variant the paper's randomized procedures are
//!   analysed on (e.g. the dart-throwing sample of §3.1 only needs "one of
//!   the colliders lands; the others detect the collision").
//! * **PriorityMin** — the lowest-numbered processor wins. Strictly stronger
//!   than Arbitrary; we use it where determinism makes tests crisper and the
//!   algorithm is insensitive to the choice.
//! * **Combine(Min|Max|Sum|Or)** — the cell receives a combination of all
//!   written values (Fetch&Op-style combining CRCW). The OR variant is what
//!   "this amounts to an OR" in §2.2 refers to; any-winner would also do
//!   since all writers write the same value, but naming it keeps intent
//!   clear.
//!
//! A simulated `Arbitrary` winner is chosen by a seeded hash of
//! (step, array, index) over the contending writers, so runs replay exactly
//! while algorithms cannot rely on a fixed rule.

/// Conflict-resolution rule for concurrent writes to one cell in one step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePolicy {
    /// An arbitrary (seeded-pseudorandom) contender wins.
    Arbitrary,
    /// The contender with the smallest processor id wins.
    PriorityMin,
    /// Cell receives the minimum of all written values.
    CombineMin,
    /// Cell receives the maximum of all written values.
    CombineMax,
    /// Cell receives the sum of all written values (wrapping).
    CombineSum,
    /// Cell receives the bitwise OR of all written values.
    CombineOr,
}

impl WritePolicy {
    /// Resolve a group of contending writes.
    ///
    /// `writes` is the non-empty slice of `(pid, value)` pairs targeting one
    /// cell, already sorted by `pid` ascending. `tiebreak` is a seeded hash
    /// supplied by the machine for the `Arbitrary` rule.
    pub fn resolve(&self, writes: &[(usize, i64)], tiebreak: u64) -> i64 {
        debug_assert!(!writes.is_empty());
        match self {
            WritePolicy::Arbitrary => {
                let i = (tiebreak % writes.len() as u64) as usize;
                writes[i].1
            }
            WritePolicy::PriorityMin => writes[0].1,
            WritePolicy::CombineMin => writes.iter().fold(i64::MAX, |a, &(_, v)| a.min(v)),
            WritePolicy::CombineMax => writes.iter().fold(i64::MIN, |a, &(_, v)| a.max(v)),
            WritePolicy::CombineSum => writes.iter().fold(0i64, |a, &(_, v)| a.wrapping_add(v)),
            WritePolicy::CombineOr => writes.iter().fold(0i64, |a, &(_, v)| a | v),
        }
    }

    /// Resolve one run of the machine's sorted write log (all entries target
    /// the same cell; already sorted by writer pid, then buffering order).
    ///
    /// Same rules as [`WritePolicy::resolve`] but operating directly on the
    /// packed log entries so the hot commit loop never materialises a
    /// per-cell `(pid, value)` vector.
    #[inline]
    pub(crate) fn resolve_run(&self, run: &[crate::machine::WriteEntry], tiebreak: u64) -> i64 {
        debug_assert!(!run.is_empty());
        match self {
            WritePolicy::Arbitrary => {
                let i = (tiebreak % run.len() as u64) as usize;
                run[i].val
            }
            WritePolicy::PriorityMin => run[0].val,
            WritePolicy::CombineMin => run.iter().fold(i64::MAX, |a, e| a.min(e.val)),
            WritePolicy::CombineMax => run.iter().fold(i64::MIN, |a, e| a.max(e.val)),
            WritePolicy::CombineSum => run.iter().fold(0i64, |a, e| a.wrapping_add(e.val)),
            WritePolicy::CombineOr => run.iter().fold(0i64, |a, e| a | e.val),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: &[(usize, i64)] = &[(2, 10), (5, -3), (9, 7)];

    #[test]
    fn priority_min_takes_lowest_pid() {
        assert_eq!(WritePolicy::PriorityMin.resolve(W, 0), 10);
    }

    #[test]
    fn combine_rules() {
        assert_eq!(WritePolicy::CombineMin.resolve(W, 0), -3);
        assert_eq!(WritePolicy::CombineMax.resolve(W, 0), 10);
        assert_eq!(WritePolicy::CombineSum.resolve(W, 0), 14);
        assert_eq!(WritePolicy::CombineOr.resolve(&[(0, 1), (1, 4)], 0), 5);
    }

    #[test]
    fn arbitrary_picks_some_contender_and_is_seed_stable() {
        let v0 = WritePolicy::Arbitrary.resolve(W, 17);
        assert!(W.iter().any(|&(_, v)| v == v0));
        assert_eq!(v0, WritePolicy::Arbitrary.resolve(W, 17));
        // different tiebreaks should be able to pick different winners
        let distinct: std::collections::HashSet<i64> = (0..30)
            .map(|t| WritePolicy::Arbitrary.resolve(W, t))
            .collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn single_writer_always_wins() {
        for p in [
            WritePolicy::Arbitrary,
            WritePolicy::PriorityMin,
            WritePolicy::CombineMin,
            WritePolicy::CombineMax,
            WritePolicy::CombineSum,
            WritePolicy::CombineOr,
        ] {
            assert_eq!(p.resolve(&[(3, 42)], 99), 42);
        }
    }

    #[test]
    fn combine_sum_wraps_instead_of_panicking() {
        let w = &[(0, i64::MAX), (1, 1)];
        assert_eq!(WritePolicy::CombineSum.resolve(w, 0), i64::MIN);
    }
}
