// Fixture: an unannotated explicit Arbitrary election.
pub fn elect(m: &mut Machine, shm: &Shm, n: usize) {
    m.step_with_policy(shm, 0..n, WritePolicy::Arbitrary, |ctx| {
        ctx.write("win", 0, ctx.pid() as u64);
    });
}
