// Fixture: unsafe without a SAFETY comment, and an unwrap in a pram path.
pub fn read_first(v: &[u8]) -> u8 {
    let p = v.as_ptr();
    unsafe { *p }
}

pub fn first_line(s: &str) -> &str {
    s.lines().next().unwrap()
}
