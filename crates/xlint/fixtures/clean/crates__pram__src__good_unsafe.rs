// Fixture: correctly annotated unsafe, unwrap escapes, and tests.
pub fn read_first(v: &[u8]) -> u8 {
    let p = v.as_ptr();
    // SAFETY: v is non-empty by the caller's contract, so p is valid.
    unsafe { *p }
}

/// # Safety
/// `p` must point to a live, initialized byte.
pub unsafe fn deref(p: *const u8) -> u8 {
    // SAFETY: forwarded from this function's own contract.
    unsafe { *p }
}

pub fn first_line(s: &str) -> &str {
    // xlint: allow(unwrap): input is validated non-empty at the API edge
    s.lines().next().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Vec<u8> = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
