// Fixture: an approved, annotated Arbitrary election site, plus a plan
// constructor that mentions the policy without invoking it.
pub fn elect(m: &mut Machine, shm: &Shm, n: usize) {
    // xlint: allow(arbitrary-policy): all writers agree on the winner id,
    // so any arbitrary survivor commits the same value.
    m.step_with_policy(shm, 0..n, WritePolicy::Arbitrary, |ctx| {
        ctx.write("win", 0, ctx.pid() as u64);
    });
}

pub fn plan() -> StepPlan {
    StepPlan::new("elect", Affine::n(), WritePolicy::Arbitrary)
}
