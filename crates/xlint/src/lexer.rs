//! A byte-level Rust "lexer" that is just smart enough to separate code
//! from comments and literals.
//!
//! The lint rules are textual, so the only hard requirement is never to
//! mistake the inside of a string (or a comment) for code and vice versa.
//! [`mask`] produces two same-shaped views of a source file: one where
//! every non-code byte is blanked, one where every non-comment byte is
//! blanked. Newlines survive in both, so line numbers line up with the
//! original file.

/// Two same-length views of a source file (see module docs).
pub struct Masked {
    /// Source with comments and literal contents replaced by spaces.
    pub code: String,
    /// Source with everything except comment text replaced by spaces.
    pub comments: String,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the payload is the depth.
    BlockComment(u32),
    Str,
    /// Raw string; the payload is the number of `#`s that close it.
    RawStr(u32),
    Char,
}

/// True when `b` can continue an identifier (used for word boundaries and
/// the lifetime-vs-char-literal split).
fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Split `src` into its code view and its comment view.
pub fn mask(src: &str) -> Masked {
    let bytes = src.as_bytes();
    let mut code = vec![b' '; bytes.len()];
    let mut comments = vec![b' '; bytes.len()];
    let mut state = State::Code;
    let mut i = 0;

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            code[i] = b'\n';
            comments[i] = b'\n';
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    comments[i] = b'/';
                    comments[i + 1] = b'/';
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    comments[i] = b'/';
                    comments[i + 1] = b'*';
                    i += 2;
                } else if b == b'"' {
                    state = State::Str;
                    i += 1;
                } else if (b == b'r' || b == b'b')
                    && !i
                        .checked_sub(1)
                        .map(|p| is_ident(bytes[p]))
                        .unwrap_or(false)
                {
                    // raw / byte / raw-byte prefixes: r", r#"…"#, br", b", b'
                    let mut j = i + 1;
                    let raw = if b == b'b' && bytes.get(j) == Some(&b'r') {
                        j += 1;
                        true
                    } else {
                        b == b'r'
                    };
                    let mut hashes = 0u32;
                    while raw && bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if raw && bytes.get(j) == Some(&b'"') {
                        state = State::RawStr(hashes);
                        i = j + 1;
                    } else if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
                        state = State::Str;
                        i += 2;
                    } else if b == b'b' && bytes.get(i + 1) == Some(&b'\'') {
                        state = State::Char;
                        i += 2;
                    } else {
                        code[i] = b;
                        i += 1;
                    }
                } else if b == b'\'' {
                    // lifetime or char literal? A char literal is 'x' or an
                    // escape; a lifetime is 'ident not followed by a quote.
                    let next = bytes.get(i + 1).copied();
                    let after = bytes.get(i + 2).copied();
                    let is_char = match next {
                        Some(b'\\') => true,
                        Some(n) if is_ident(n) => after == Some(b'\''),
                        Some(_) => true, // e.g. '(' — only valid as a char
                        None => false,
                    };
                    if is_char {
                        state = State::Char;
                    } else {
                        code[i] = b; // lifetime mark stays code
                    }
                    i += 1;
                } else {
                    code[i] = b;
                    i += 1;
                }
            }
            State::LineComment => {
                comments[i] = b;
                i += 1;
            }
            State::BlockComment(d) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    comments[i] = b'*';
                    comments[i + 1] = b'/';
                    state = if d == 1 {
                        State::Code
                    } else {
                        State::BlockComment(d - 1)
                    };
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    comments[i] = b'/';
                    comments[i + 1] = b'*';
                    state = State::BlockComment(d + 1);
                    i += 2;
                } else {
                    comments[i] = b;
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' {
                    // A `\` at end of line is a string continuation; keep
                    // the newline so line numbers stay in sync.
                    if bytes.get(i + 1) == Some(&b'\n') {
                        code[i + 1] = b'\n';
                        comments[i + 1] = b'\n';
                    }
                    i += 2;
                } else {
                    if b == b'"' {
                        state = State::Code;
                    }
                    i += 1;
                }
            }
            State::RawStr(h) => {
                if b == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < h && bytes.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == h {
                        state = State::Code;
                        i = j;
                        continue;
                    }
                }
                i += 1;
            }
            State::Char => {
                if b == b'\\' {
                    i += 2;
                } else {
                    if b == b'\'' {
                        state = State::Code;
                    }
                    i += 1;
                }
            }
        }
    }

    // Both views blank multi-byte UTF-8 with spaces, which is fine: every
    // token the rules search for is ASCII.
    let sanitize = |v: Vec<u8>| {
        String::from_utf8(v).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
    };
    Masked {
        code: sanitize(code),
        comments: sanitize(comments),
    }
}

/// True when `line` contains `word` at identifier boundaries.
pub fn has_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len().max(1);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_not_code() {
        let m = mask(r#"let x = "unsafe { } // SAFETY:"; call();"#);
        assert!(!m.code.contains("unsafe"));
        assert!(!m.comments.contains("SAFETY"));
        assert!(m.code.contains("call()"));
    }

    #[test]
    fn comments_are_split_out() {
        let m = mask("foo(); // SAFETY: fine\nunsafe { bar() }\n");
        assert!(m.comments.contains("SAFETY: fine"));
        assert!(!m.code.contains("SAFETY"));
        assert!(m.code.contains("unsafe { bar() }"));
    }

    #[test]
    fn block_comments_nest() {
        let m = mask("/* a /* b */ still comment */ code()");
        assert!(m.comments.contains("still comment"));
        assert!(m.code.contains("code()"));
        assert!(!m.code.contains("still"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let m = mask(r##"let s = r#"unsafe " quote"# ; after()"##);
        assert!(!m.code.contains("unsafe"));
        assert!(m.code.contains("after()"));
    }

    #[test]
    fn lifetimes_are_code_chars_are_not() {
        let m = mask("fn f<'a>(x: &'a str) { let c = 'u'; let n = '\\n'; g(x) }");
        assert!(m.code.contains("'a str"));
        assert!(!m.code.contains("'u'"));
        assert!(m.code.contains("g(x)"));
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("unsafe {", "unsafe"));
        assert!(!has_word("unsafe_op_in_unsafe_fn", "unsafe"));
        assert!(!has_word("deny(unsafe_code)", "unsafe"));
        assert!(has_word("pub unsafe fn x()", "unsafe"));
    }

    #[test]
    fn line_numbers_survive() {
        let src = "a\n\"multi\nline\nstring\"\nb\n";
        let m = mask(src);
        assert_eq!(m.code.matches('\n').count(), src.matches('\n').count());
        assert_eq!(m.comments.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn string_continuations_keep_line_numbers() {
        let src = "let s = \"first \\\n    second\";\nunsafe {}\n";
        let m = mask(src);
        assert_eq!(m.code.matches('\n').count(), src.matches('\n').count());
        // the unsafe sits on line 3 in both views
        assert!(m.code.lines().nth(2).unwrap().contains("unsafe"));
    }
}
