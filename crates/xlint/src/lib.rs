//! `xlint` — repo-specific, lexer-level lint for the workspace.
//!
//! Four rules, all convention checks the compiler cannot express:
//!
//! 1. **unsafe-safety** — every `unsafe` keyword carries a `// SAFETY:`
//!    justification (or a `# Safety` doc section) nearby.
//! 2. **no-unwrap** — `crates/service` and `crates/pram` production code
//!    never panics via `.unwrap()` / `.expect()` without an explicit
//!    `xlint: allow(unwrap)` escape comment.
//! 3. **arbitrary-policy** — algorithm crates request
//!    `WritePolicy::Arbitrary` explicitly only at approved election
//!    sites marked `xlint: allow(arbitrary-policy)`.
//! 4. **entry-contracts** — every paper entry point declares a
//!    `ModelContract` and registers a `verify_plan` for the static
//!    checker (`pram::verify`).
//!
//! Std-only on purpose: the linter must build before anything else in
//! the workspace does and must never need linting itself transitively.
//! Run with `cargo run -p xlint` from the repo root; see `main.rs` for
//! the CLI surface.

pub mod lexer;
pub mod rules;

pub use rules::{run_all, Finding, SourceFile, ENTRY_POINTS};

use std::fs;
use std::path::{Path, PathBuf};

/// Directory components that are never linted: build output, vendored
/// shims (external idiom, not ours), lint fixtures (intentionally bad),
/// bench artifacts, and VCS metadata.
const SKIP_DIRS: &[&str] = &["target", "shims", "fixtures", "bench_results", ".git"];

/// Collect every `.rs` file under `root`, skipping [`SKIP_DIRS`], with
/// paths made relative to `root` (forward slashes). Deterministic order.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    walk(root, &mut paths)?;
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for p in paths {
        let text = fs::read_to_string(&p)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        out.push(SourceFile { path: rel, text });
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint everything under `root` and return the findings.
pub fn lint_root(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(run_all(&collect_sources(root)?))
}

/// Render findings as a JSON array (std-only, hand-rolled).
pub fn to_json(findings: &[Finding]) -> String {
    let items: Vec<String> = findings.iter().map(Finding::to_json).collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_root(which: &str) -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(which)
    }

    /// The fixtures live under a `fixtures/` component, which the walker
    /// skips by design — so fixture tests load files directly.
    fn fixture_sources(which: &str) -> Vec<SourceFile> {
        let root = fixture_root(which);
        let mut files: Vec<PathBuf> = fs::read_dir(&root)
            .unwrap_or_else(|e| panic!("fixture dir {}: {e}", root.display()))
            .map(|e| e.expect("fixture entry").path())
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect();
        files.sort();
        files
            .into_iter()
            .map(|p| SourceFile {
                // Fixture files impersonate production paths via their
                // names: `crates__service__src__foo.rs` stands in for
                // `crates/service/src/foo.rs`.
                path: p
                    .file_name()
                    .expect("fixture file name")
                    .to_string_lossy()
                    .replace("__", "/"),
                text: fs::read_to_string(&p).expect("fixture readable"),
            })
            .collect()
    }

    #[test]
    fn bad_fixture_trips_every_per_file_rule() {
        let files = fixture_sources("bad");
        let mut got = Vec::new();
        for f in &files {
            rules::rule_unsafe_safety(f, &mut got);
            rules::rule_no_unwrap(f, &mut got);
            rules::rule_arbitrary_policy(f, &mut got);
        }
        let rules_hit: std::collections::BTreeSet<&str> = got.iter().map(|f| f.rule).collect();
        assert!(rules_hit.contains("unsafe-safety"), "{got:?}");
        assert!(rules_hit.contains("no-unwrap"), "{got:?}");
        assert!(rules_hit.contains("arbitrary-policy"), "{got:?}");
    }

    #[test]
    fn clean_fixture_is_clean() {
        let files = fixture_sources("clean");
        assert!(!files.is_empty(), "clean fixtures missing");
        let mut got = Vec::new();
        for f in &files {
            rules::rule_unsafe_safety(f, &mut got);
            rules::rule_no_unwrap(f, &mut got);
            rules::rule_arbitrary_policy(f, &mut got);
        }
        assert!(got.is_empty(), "clean fixture flagged: {got:?}");
    }

    #[test]
    fn walker_skips_fixture_and_target_dirs() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let sources = collect_sources(here).expect("walk own crate");
        assert!(sources.iter().any(|s| s.path == "src/lib.rs"));
        assert!(
            sources.iter().all(|s| !s.path.contains("fixtures/")),
            "fixtures must not be linted as repo code"
        );
    }

    #[test]
    fn json_array_shape() {
        let f = Finding {
            file: "a.rs".into(),
            line: 1,
            rule: "no-unwrap",
            message: "m".into(),
        };
        assert_eq!(
            to_json(&[f.clone(), f]),
            r#"[{"file":"a.rs","line":1,"rule":"no-unwrap","message":"m"},{"file":"a.rs","line":1,"rule":"no-unwrap","message":"m"}]"#
        );
        assert_eq!(to_json(&[]), "[]");
    }
}
