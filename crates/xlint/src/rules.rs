//! The lint rules.
//!
//! Each rule is lexer-level: it works on the code/comment views of
//! [`crate::lexer::mask`], line by line, with no type information. The
//! rules are deliberately repo-specific — they encode this project's
//! conventions, not general Rust style.

use crate::lexer::{has_word, mask, Masked};

/// One lint finding, pointing at a file and line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number (0 for whole-repo findings).
    pub line: usize,
    /// Stable rule identifier.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// `path:line: [rule] message` (the text output format).
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }

    /// Minimal JSON object (std-only; all fields escaped).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"file":"{}","line":{},"rule":"{}","message":"{}"}}"#,
            json_escape(&self.file),
            self.line,
            self.rule,
            json_escape(&self.message)
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The paper entry points: every algorithm that declares a
/// [`ModelContract`](https://docs.rs) must also register a symbolic plan.
/// This table is the lint's ground truth; growing the paper surface means
/// growing it (the `entry_contracts` rule fails loudly when a name
/// disappears from the tree).
pub const ENTRY_POINTS: &[&str] = &[
    "hull2d/brute",
    "hull2d/folklore",
    "hull2d/presorted",
    "hull2d/logstar",
    "hull2d/unsorted",
    "hull2d/dac",
    "hull2d/batch",
    "hull3d/unsorted3d",
    "hull3d/find_facet",
    "lp/brute2",
    "lp/brute3",
    "lp/alon_megiddo",
    "lp/bridge_brute",
    "lp/facet_brute",
    "lp/inplace_bridge",
    "inplace/ragde_det",
    "inplace/ragde_rand",
    "inplace/compact",
    "inplace/sample",
    "inplace/vote",
];

/// A loaded source file ready for linting.
pub struct SourceFile {
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// Raw contents.
    pub text: String,
}

/// Per-line lint context for one file.
struct FileView<'a> {
    path: &'a str,
    code: Vec<&'a str>,
    comments: Vec<&'a str>,
    /// `true` for lines inside a `#[cfg(test)]` block.
    test_region: Vec<bool>,
}

fn view<'a>(path: &'a str, masked: &'a Masked) -> FileView<'a> {
    let code: Vec<&str> = masked.code.lines().collect();
    let comments: Vec<&str> = masked.comments.lines().collect();
    let test_region = test_regions(&code);
    FileView {
        path,
        code,
        comments,
        test_region,
    }
}

/// Mark the lines belonging to `#[cfg(test)]`-gated items by brace
/// matching from the attribute (lexer-level, so the "item" is whatever
/// block follows).
fn test_regions(code: &[&str]) -> Vec<bool> {
    let mut marked = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].contains("#[cfg(test)]") {
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            while j < code.len() {
                marked[j] = true;
                for b in code[j].bytes() {
                    match b {
                        b'{' => {
                            depth += 1;
                            opened = true;
                        }
                        b'}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    marked
}

/// True when any comment within `span` lines above `line` (inclusive of
/// the line itself) contains `needle`.
fn comment_above(v: &FileView<'_>, line: usize, span: usize, needle: &str) -> bool {
    let lo = line.saturating_sub(span);
    (lo..=line).any(|i| v.comments.get(i).is_some_and(|c| c.contains(needle)))
}

/// Rule `unsafe-safety`: every `unsafe` keyword is justified by a
/// `// SAFETY:` comment (or a `# Safety` doc section for `unsafe fn`)
/// within the five preceding lines. Applies everywhere, tests included —
/// an unjustified unsafe block in a test is still an unsafe block.
pub fn rule_unsafe_safety(file: &SourceFile, out: &mut Vec<Finding>) {
    let masked = mask(&file.text);
    let v = view(&file.path, &masked);
    for (i, code) in v.code.iter().enumerate() {
        if !has_word(code, "unsafe") {
            continue;
        }
        if comment_above(&v, i, 5, "SAFETY:") || comment_above(&v, i, 5, "# Safety") {
            continue;
        }
        out.push(Finding {
            file: v.path.to_string(),
            line: i + 1,
            rule: "unsafe-safety",
            message: "`unsafe` without a `// SAFETY:` comment in the 5 lines above".into(),
        });
    }
}

/// Rule `no-unwrap`: production crates (`crates/service`, `crates/pram`)
/// never `.unwrap()` / `.expect(` outside tests. Justified uses carry an
/// `xlint: allow(unwrap)` comment within the three preceding lines (the
/// window covers builder chains where the comment sits above the chain).
pub fn rule_no_unwrap(file: &SourceFile, out: &mut Vec<Finding>) {
    if !(file.path.contains("crates/service/src") || file.path.contains("crates/pram/src")) {
        return;
    }
    let masked = mask(&file.text);
    let v = view(&file.path, &masked);
    for (i, code) in v.code.iter().enumerate() {
        if v.test_region[i] {
            continue;
        }
        if !(code.contains(".unwrap()") || code.contains(".expect(")) {
            continue;
        }
        if comment_above(&v, i, 3, "xlint: allow(unwrap)") {
            continue;
        }
        out.push(Finding {
            file: v.path.to_string(),
            line: i + 1,
            rule: "no-unwrap",
            message: "`.unwrap()`/`.expect()` in production code \
                      (annotate `// xlint: allow(unwrap): why` if justified)"
                .into(),
        });
    }
}

/// Rule `arbitrary-policy`: algorithm crates only request
/// `WritePolicy::Arbitrary` explicitly (via a `*_with_policy` call) at
/// approved election sites, marked `xlint: allow(arbitrary-policy)`.
/// Everywhere else an Arbitrary election is a seed-dependence hazard the
/// analyzer would flag at run time — catch it before it runs.
pub fn rule_arbitrary_policy(file: &SourceFile, out: &mut Vec<Finding>) {
    let algo_crate = [
        "crates/core/src",
        "crates/hull3d/src",
        "crates/lp/src",
        "crates/inplace/src",
    ]
    .iter()
    .any(|p| file.path.contains(p));
    if !algo_crate {
        return;
    }
    let masked = mask(&file.text);
    let v = view(&file.path, &masked);
    for (i, code) in v.code.iter().enumerate() {
        if v.test_region[i] {
            continue;
        }
        // the policy argument may sit on the line after the call opener
        let with_policy_near =
            code.contains("_with_policy") || (i > 0 && v.code[i - 1].contains("_with_policy"));
        if !(with_policy_near && code.contains("WritePolicy::Arbitrary")) {
            continue;
        }
        if comment_above(&v, i, 3, "xlint: allow(arbitrary-policy)") {
            continue;
        }
        out.push(Finding {
            file: v.path.to_string(),
            line: i + 1,
            rule: "arbitrary-policy",
            message: "explicit Arbitrary write policy outside an approved election site \
                      (annotate `// xlint: allow(arbitrary-policy): why` if intended)"
                .into(),
        });
    }
}

/// Rule `entry-contracts`: every paper entry point in [`ENTRY_POINTS`]
/// declares its `ModelContract` in some module that also calls
/// `declare_contract` and registers a `verify_plan` for the static
/// checker. Whole-repo rule — findings point at the repo root.
pub fn rule_entry_contracts(files: &[SourceFile], out: &mut Vec<Finding>) {
    for name in ENTRY_POINTS {
        // Search for the quoted name rather than `algorithm: "..."` —
        // some contracts route the name through a `const` (hull2d/batch).
        let needle = format!("\"{name}\"");
        let defining: Vec<&SourceFile> =
            files.iter().filter(|f| f.text.contains(&needle)).collect();
        if defining.is_empty() {
            out.push(Finding {
                file: "<workspace>".into(),
                line: 0,
                rule: "entry-contracts",
                message: format!("entry point {name} declares no ModelContract anywhere"),
            });
            continue;
        }
        let ok = defining
            .iter()
            .any(|f| f.text.contains("declare_contract") && f.text.contains("verify_plan"));
        if !ok {
            out.push(Finding {
                file: defining[0].path.clone(),
                line: 0,
                rule: "entry-contracts",
                message: format!(
                    "entry point {name}: contract module lacks a declare_contract call \
                     or a verify_plan for the static checker"
                ),
            });
        }
    }
}

/// Run every rule over `files` and return the combined findings, sorted
/// by file and line.
pub fn run_all(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        rule_unsafe_safety(f, &mut out);
        rule_no_unwrap(f, &mut out);
        rule_arbitrary_policy(f, &mut out);
    }
    rule_entry_contracts(files, &mut out);
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, text: &str) -> SourceFile {
        SourceFile {
            path: path.into(),
            text: text.into(),
        }
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let mut out = Vec::new();
        rule_unsafe_safety(
            &src("crates/x/src/a.rs", "fn f() {\n    unsafe { g() }\n}\n"),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unsafe-safety");
        assert_eq!(out[0].line, 2);

        out.clear();
        rule_unsafe_safety(
            &src(
                "crates/x/src/a.rs",
                "fn f() {\n    // SAFETY: g upholds the invariant\n    unsafe { g() }\n}\n",
            ),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn unsafe_in_string_is_ignored() {
        let mut out = Vec::new();
        rule_unsafe_safety(
            &src("a.rs", "let s = \"unsafe\";\nlet r = r#\"unsafe\"#;\n"),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn doc_safety_section_counts() {
        let mut out = Vec::new();
        rule_unsafe_safety(
            &src(
                "a.rs",
                "/// # Safety\n/// ptr must be valid\npub unsafe fn f(p: *const u8) {}\n",
            ),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn unwrap_flagged_only_in_production_paths() {
        let text = "fn f() { x.unwrap(); }\n";
        let mut out = Vec::new();
        rule_no_unwrap(&src("crates/pram/src/a.rs", text), &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        rule_no_unwrap(&src("crates/geom/src/a.rs", text), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn unwrap_escape_hatch_and_tests() {
        let mut out = Vec::new();
        rule_no_unwrap(
            &src(
                "crates/service/src/a.rs",
                "// xlint: allow(unwrap): startup is fail-fast\nfn f() { x.unwrap(); }\n\
                 #[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); }\n}\n",
            ),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn arbitrary_policy_needs_annotation() {
        let bad = "m.step_with_policy(shm, 0..n, WritePolicy::Arbitrary, |ctx| {});\n";
        let mut out = Vec::new();
        rule_arbitrary_policy(&src("crates/lp/src/a.rs", bad), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "arbitrary-policy");

        let good = "// xlint: allow(arbitrary-policy): winner-only write\n\
                    m.step_with_policy(shm, 0..n, WritePolicy::Arbitrary, |ctx| {});\n";
        out.clear();
        rule_arbitrary_policy(&src("crates/lp/src/a.rs", good), &mut out);
        assert!(out.is_empty());

        // plan constructors mention Arbitrary without _with_policy — clean
        let plan = "StepPlan::new(\"s\", Affine::n(), WritePolicy::Arbitrary)\n";
        out.clear();
        rule_arbitrary_policy(&src("crates/lp/src/a.rs", plan), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn entry_contract_rule_wants_plan_and_declaration() {
        let good: Vec<SourceFile> = ENTRY_POINTS
            .iter()
            .map(|n| {
                src(
                    "crates/a/src/m.rs",
                    &format!(
                        "pub const C: ModelContract = ModelContract {{ algorithm: \"{n}\" }};\n\
                         pub fn verify_plan() {{}}\nfn run(m: &mut M) {{ m.declare_contract(&C); }}\n"
                    ),
                )
            })
            .collect();
        let mut out = Vec::new();
        rule_entry_contracts(&good, &mut out);
        assert!(out.is_empty(), "{out:?}");

        // drop one entry point entirely
        let mut missing = Vec::new();
        rule_entry_contracts(&good[1..], &mut missing);
        assert_eq!(missing.len(), 1);
        assert!(missing[0].message.contains(ENTRY_POINTS[0]));

        // contract present but no verify_plan
        let noplan = vec![src(
            "crates/a/src/m.rs",
            "const C: X = X { algorithm: \"hull2d/brute\" };\nfn r() { declare_contract(); }\n",
        )];
        let mut out2 = Vec::new();
        rule_entry_contracts(&noplan, &mut out2);
        assert!(out2
            .iter()
            .any(|f| f.rule == "entry-contracts" && f.message.contains("hull2d/brute")));
    }

    #[test]
    fn json_output_escapes() {
        let f = Finding {
            file: "a\"b.rs".into(),
            line: 3,
            rule: "no-unwrap",
            message: "line1\nline2".into(),
        };
        assert_eq!(
            f.to_json(),
            r#"{"file":"a\"b.rs","line":3,"rule":"no-unwrap","message":"line1\nline2"}"#
        );
    }
}
