//! `xlint` CLI.
//!
//! ```text
//! xlint [--root DIR] [--json]
//! ```
//!
//! Lints every `.rs` file under `DIR` (default: current directory),
//! skipping `target/`, `shims/`, `fixtures/`, `bench_results/`, and
//! `.git/`. Text output is `path:line: [rule] message`, one finding per
//! line; `--json` emits a machine-readable array instead.
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("xlint: --root expects a directory");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: xlint [--root DIR] [--json]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("xlint: unknown argument {other:?} (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let findings = match xlint::lint_root(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xlint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", xlint::to_json(&findings));
    } else {
        for f in &findings {
            println!("{}", f.render());
        }
        eprintln!("xlint: {} finding(s) across {} rule(s)", findings.len(), {
            let mut r: Vec<&str> = findings.iter().map(|f| f.rule).collect();
            r.sort_unstable();
            r.dedup();
            r.len()
        });
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
