//! Upper-hull facets in ℝ³ and their verification oracle.
//!
//! An *upper hull facet* is a triangle of input points whose supporting
//! plane has every input point on or below it, oriented counter-clockwise
//! when seen from above (+z). The upper hull is the set of such facets
//! whose xy-projections cover the xy convex hull of the input — the
//! "roof" of the point set. The paper's output convention: every point
//! knows the face above it.

use ipch_geom::predicates::{orient2d_sign, orient3d_sign};
use ipch_geom::{Point2, Point3};

/// One facet: vertex ids, counter-clockwise seen from above.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Facet {
    /// First vertex id.
    pub a: usize,
    /// Second vertex id.
    pub b: usize,
    /// Third vertex id.
    pub c: usize,
}

impl Facet {
    /// Canonical form: rotate so the smallest id comes first (orientation
    /// preserved). Lets facet sets be compared across algorithms.
    pub fn canonical(self) -> Facet {
        let Facet { a, b, c } = self;
        if a <= b && a <= c {
            self
        } else if b <= a && b <= c {
            Facet { a: b, b: c, c: a }
        } else {
            Facet { a: c, b: a, c: b }
        }
    }

    /// The three ids as an array.
    pub fn ids(&self) -> [usize; 3] {
        [self.a, self.b, self.c]
    }
}

/// Build a facet from three ids, orienting CCW-from-above. Returns `None`
/// if the points are collinear in projection (degenerate facet).
pub fn oriented_facet(points: &[Point3], i: usize, j: usize, k: usize) -> Option<Facet> {
    let s = orient2d_sign(points[i].xy(), points[j].xy(), points[k].xy());
    match s {
        0 => None,
        s if s > 0 => Some(Facet { a: i, b: j, c: k }),
        _ => Some(Facet { a: i, b: k, c: j }),
    }
}

/// Is `q` inside (or on the boundary of) the xy-projection of `f`?
pub fn xy_contains(points: &[Point3], f: &Facet, q: Point2) -> bool {
    let (a, b, c) = (points[f.a].xy(), points[f.b].xy(), points[f.c].xy());
    orient2d_sign(a, b, q) >= 0 && orient2d_sign(b, c, q) >= 0 && orient2d_sign(c, a, q) >= 0
}

/// Is point `q` strictly below the supporting plane of `f`?
/// (`orient3d > 0` ⇔ below for a CCW-from-above facet.)
pub fn strictly_below(points: &[Point3], f: &Facet, q: Point3) -> bool {
    orient3d_sign(points[f.a], points[f.b], points[f.c], q) > 0
}

/// Independently verify an upper-hull facet set:
///
/// 1. every facet is CCW-from-above and non-degenerate;
/// 2. every facet is *supporting*: no input point strictly above its plane;
/// 3. *coverage*: every input point's xy lies in some facet's projection
///    (so every point has a face above it), unless the input is too
///    degenerate to have facets (< 3 points or all collinear in xy —
///    callers pass `allow_empty` for those).
pub fn verify_upper_hull3(
    points: &[Point3],
    facets: &[Facet],
    allow_empty: bool,
) -> Result<(), String> {
    if facets.is_empty() {
        return if allow_empty || points.len() < 3 {
            Ok(())
        } else {
            Err("no facets for a non-trivial input".into())
        };
    }
    for (fi, f) in facets.iter().enumerate() {
        for &v in &f.ids() {
            if v >= points.len() {
                return Err(format!("facet {fi}: vertex {v} out of range"));
            }
        }
        if orient2d_sign(points[f.a].xy(), points[f.b].xy(), points[f.c].xy()) <= 0 {
            return Err(format!("facet {fi} not CCW from above"));
        }
        for (qi, &q) in points.iter().enumerate() {
            if orient3d_sign(points[f.a], points[f.b], points[f.c], q) < 0 {
                return Err(format!("point {qi} strictly above facet {fi}"));
            }
        }
    }
    for (qi, q) in points.iter().enumerate() {
        if !facets.iter().any(|f| xy_contains(points, f, q.xy())) {
            return Err(format!("point {qi} not covered by any facet"));
        }
    }
    Ok(())
}

/// The set of hull-vertex ids appearing in a facet set (comparison helper:
/// different algorithms may triangulate coplanar faces differently but
/// must agree on the vertices).
pub fn vertex_set(facets: &[Facet]) -> std::collections::BTreeSet<usize> {
    facets.iter().flat_map(|f| f.ids()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tetra() -> Vec<Point3> {
        vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(4.0, 0.0, 0.0),
            Point3::new(0.0, 4.0, 0.0),
            Point3::new(1.0, 1.0, 3.0),
        ]
    }

    #[test]
    fn oriented_facet_orients() {
        let pts = tetra();
        let f = oriented_facet(&pts, 0, 1, 3).unwrap();
        // CCW from above
        assert!(orient2d_sign(pts[f.a].xy(), pts[f.b].xy(), pts[f.c].xy()) > 0);
        let g = oriented_facet(&pts, 1, 0, 3).unwrap();
        assert_eq!(f.canonical(), g.canonical());
        // collinear-in-projection triple is rejected
        let col = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 1.0, 5.0),
            Point3::new(2.0, 2.0, 0.0),
        ];
        assert!(oriented_facet(&col, 0, 1, 2).is_none());
    }

    #[test]
    fn tetra_upper_hull_verifies() {
        let pts = tetra();
        // upper hull of the tetrahedron: three slanted facets through apex
        let fs: Vec<Facet> = [(0, 1, 3), (1, 2, 3), (2, 0, 3)]
            .iter()
            .filter_map(|&(i, j, k)| oriented_facet(&pts, i, j, k))
            .collect();
        verify_upper_hull3(&pts, &fs, false).unwrap();
    }

    #[test]
    fn verify_rejects_bad_sets() {
        let pts = tetra();
        // bottom facet: apex lies above it
        let bottom = vec![oriented_facet(&pts, 0, 1, 2).unwrap()];
        assert!(verify_upper_hull3(&pts, &bottom, false).is_err());
        // incomplete coverage
        let partial = vec![oriented_facet(&pts, 0, 1, 3).unwrap()];
        assert!(verify_upper_hull3(&pts, &partial, false).is_err());
        // empty without permission
        assert!(verify_upper_hull3(&pts, &[], false).is_err());
        assert!(verify_upper_hull3(&pts, &[], true).is_ok());
    }

    #[test]
    fn xy_containment_and_below() {
        let pts = tetra();
        let f = oriented_facet(&pts, 0, 1, 3).unwrap();
        assert!(xy_contains(&pts, &f, Point2::new(1.0, 0.5)));
        assert!(!xy_contains(&pts, &f, Point2::new(-1.0, -1.0)));
        assert!(strictly_below(&pts, &f, Point3::new(1.0, 0.5, -10.0)));
        assert!(!strictly_below(&pts, &f, Point3::new(1.0, 0.5, 100.0)));
    }

    #[test]
    fn canonical_is_rotation_invariant() {
        let f = Facet { a: 7, b: 2, c: 5 };
        assert_eq!(f.canonical(), Facet { a: 2, b: 5, c: 7 });
        assert_eq!(
            Facet { a: 5, b: 7, c: 2 }.canonical(),
            Facet { a: 2, b: 5, c: 7 }
        );
    }
}
