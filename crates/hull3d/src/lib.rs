//! # ipch-hull3d — 3-D convex hull algorithms (paper §4.3–§4.4)
//!
//! The paper's Theorem 6: the 3-D (upper) convex hull of n unsorted points
//! in O(log² n) time and O(min{n log² h, n log n}) work, w.h.p., on a
//! randomized CRCW PRAM — the parallel analogue of Edelsbrunner–Shi's
//! sequential O(n log² h) algorithm, but splitting about a random point
//! instead of the ham-sandwich cut.
//!
//! * [`facet`] — upper-hull facet representation and the independent
//!   verification oracle (supporting planes + coverage).
//! * [`seq`] — sequential baselines: an exact brute-force oracle and
//!   Chand–Kapur gift wrapping (O(n·h), the 3-D output-sensitive
//!   reference).
//! * [`parallel`] — the §4.3 algorithm on the PRAM simulator: random-vote
//!   splitters, in-place 3-D facet probes (k = p^{1/4}), projection-driven
//!   silhouette runs via the 2-D algorithm, 4-way division, failure
//!   sweeping, and the Reif–Sen-role fallback.

pub mod facet;
pub mod parallel;
pub mod seq;

pub use facet::{verify_upper_hull3, Facet};
