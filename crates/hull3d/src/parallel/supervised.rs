//! Supervised (Las Vegas) entry point for the 3-D hull (paper §4.3).
//!
//! The wrapper runs [`upper_hull3_unsorted`] under [`mod@ipch_pram::supervise`]
//! and demands the full independent certificate before returning: every
//! facet CCW-from-above and supporting (no point strictly above its
//! plane), every point covered ([`verify_upper_hull3`]), and every
//! `face_above` pointer naming a facet that actually covers its point.
//! Failed attempts retry on fresh seeds; exhaustion degrades to
//! Chand–Kapur gift wrapping — the sequential O(n·h) worst-case baseline,
//! charged at one processor — whose output passes the same certificate.

use ipch_geom::validate::validate_points3;
use ipch_geom::Point3;
use ipch_pram::{supervise, Machine, RunError, Shm, SuperviseConfig, Supervised};

use super::unsorted3d::{upper_hull3_unsorted, Hull3Output, Unsorted3Params, Unsorted3Trace};
use crate::facet::{verify_upper_hull3, xy_contains};
use crate::seq::giftwrap::upper_hull3_giftwrap;
use crate::seq::Seq3Stats;

/// The certificate a supervised 3-D result must pass.
fn certify3(algorithm: &'static str, points: &[Point3], out: &Hull3Output) -> Result<(), RunError> {
    verify_upper_hull3(points, &out.facets, points.len() < 3)
        .map_err(|detail| RunError::Verify { algorithm, detail })?;
    if out.facets.is_empty() {
        return Ok(());
    }
    for (i, &fi) in out.face_above.iter().enumerate() {
        if fi >= out.facets.len() || !xy_contains(points, &out.facets[fi], points[i].xy()) {
            return Err(RunError::Verify {
                algorithm,
                detail: format!("face_above[{i}] = {fi} does not name a covering facet"),
            });
        }
    }
    Ok(())
}

/// Supervised §4.3 3-D upper hull. Falls back to sequential gift wrapping.
pub fn upper_hull3_unsorted_supervised(
    m: &mut Machine,
    points: &[Point3],
    params: &Unsorted3Params,
    cfg: &SuperviseConfig,
) -> Result<Supervised<(Hull3Output, Unsorted3Trace)>, RunError> {
    const ALG: &str = "hull3d/unsorted3d";
    // Service-facing entry: reject NaN/infinite coordinates and duplicate
    // points before any step runs (gift wrapping's supporting-plane search
    // assumes distinct points; a NaN poisons every orientation test).
    validate_points3(points).map_err(|e| RunError::invalid_input(ALG, e))?;
    let mut fallback = |fm: &mut Machine| {
        let mut stats = Seq3Stats::default();
        let facets = upper_hull3_giftwrap(points, &mut stats);
        // Sequential fallback charged at p = 1: every predicate evaluation
        // is one unit of work and one time step.
        fm.charge(stats.total(), stats.total());
        let face_above: Vec<usize> = points
            .iter()
            .map(|q| {
                facets
                    .iter()
                    .position(|f| xy_contains(points, f, q.xy()))
                    .unwrap_or(usize::MAX)
            })
            .collect();
        fm.charge(1, (points.len() * facets.len().max(1)) as u64);
        let out = Hull3Output { facets, face_above };
        certify3(ALG, points, &out)?;
        Ok((out, Unsorted3Trace::default()))
    };
    supervise(
        m,
        ALG,
        cfg,
        |am: &mut Machine| {
            let mut shm = Shm::new();
            let (out, trace) = upper_hull3_unsorted(am, &mut shm, points, params);
            certify3(ALG, points, &out)?;
            Ok((out, trace))
        },
        Some(&mut fallback),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::gen3d::sphere_plus_interior;
    use ipch_pram::Outcome;

    #[test]
    fn clean_run_succeeds_first_try() {
        let pts = sphere_plus_interior(12, 240, 2);
        let mut m = Machine::new(5);
        let s = upper_hull3_unsorted_supervised(
            &mut m,
            &pts,
            &Unsorted3Params::default(),
            &SuperviseConfig::default(),
        )
        .expect("clean 3d run");
        assert_eq!(s.outcome, Outcome::FirstTry);
        verify_upper_hull3(&pts, &s.value.0.facets, false).unwrap();
    }

    #[test]
    fn malformed_inputs_reject_before_any_step() {
        let mut m = Machine::new(6);
        let cfg = SuperviseConfig::default();
        let params = Unsorted3Params::default();
        let mut nan = sphere_plus_interior(12, 64, 3);
        nan[5].z = f64::NAN;
        let mut dup = sphere_plus_interior(12, 64, 4);
        dup[8] = dup[9];
        for pts in [&nan, &dup] {
            let e = upper_hull3_unsorted_supervised(&mut m, pts, &params, &cfg).unwrap_err();
            assert!(matches!(e, RunError::InvalidInput { .. }), "got {e}");
        }
        assert_eq!(m.metrics.steps, 0);
        assert_eq!(m.metrics.supervisor.attempts, 0);
    }
}
