//! In-place 3-D facet finding (the d = 3 instance of paper §3.3).
//!
//! Identical structure to the 2-D in-place bridge finder, with the paper's
//! 3-D parameters: base size k = p^{1/4}, the deterministic base solver is
//! the exact brute-force facet probe ([`ipch_lp::bridge::facet_brute`],
//! Observation 2.2 with d = 3, n⁴ work on the base), survivors are points
//! strictly above the candidate facet's plane, sampled into the next base
//! at the escalating rate p_j, and the round is finished by the in-place
//! compaction of §3.2 once the survivors are few.

use ipch_geom::predicates::orient3d_sign;
use ipch_geom::Point3;
use ipch_inplace::compact::inplace_compact;
use ipch_inplace::sample::random_sample_with_p;
use ipch_lp::bridge::facet_brute;
use ipch_pram::{Machine, ModelClass, ModelContract, RaceExpectation, Shm, EMPTY};

use crate::facet::Facet;

/// Tuning of the in-place facet finder.
#[derive(Clone, Copy, Debug)]
pub struct FpConfig {
    /// Base parameter k; `None` = ⌈p^{1/4}⌉ clamped ≥ 4 (the paper's 3-D
    /// choice).
    pub k: Option<usize>,
    /// Rounds before the compaction finish (paper's β).
    pub beta: usize,
    /// Dart-throwing retries per sample.
    pub sample_attempts: usize,
    /// Hard round cap before reporting failure.
    pub max_rounds: usize,
}

impl Default for FpConfig {
    fn default() -> Self {
        Self {
            k: None,
            beta: 4,
            sample_attempts: 4,
            max_rounds: 16,
        }
    }
}

/// Concurrency contract: Arbitrary-CRCW in the paper; the sample-claim
/// contest and the facet election resolve by Priority, so every race
/// commits a value that is a deterministic function of the coin flips.
pub const FIND_FACET_CONTRACT: ModelContract = ModelContract {
    algorithm: "hull3d/find_facet",
    class: ModelClass::Crcw,
    races: RaceExpectation::Deterministic,
};

/// Symbolic step structure of [`find_facet_inplace`] for the static
/// checker ([`ipch_pram::verify`]): the survivor-flag initialisation, the
/// compaction feed, and the per-round survivor re-marking are all
/// injective per-point pid maps over the id universe — the contract's
/// CRCW allowance is consumed by the random-sample claim protocol and the
/// in-place compaction, which carry their own contracts and plans.
pub fn verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    use ipch_pram::WritePolicy;
    let mut p = AlgorithmPlan::new(FIND_FACET_CONTRACT);
    let surv = p.array("fp.surv", Affine::n());
    let sarr = p.array("fp.sarr", Affine::n());
    p.step(
        StepPlan::new("survivor-init", Affine::n(), WritePolicy::Arbitrary)
            .write_uniform(surv, IndexSet::Exact(Affine::pid())),
    );
    p.step(
        StepPlan::new("compaction-feed", Affine::n(), WritePolicy::Arbitrary)
            .write(sarr, IndexSet::Exact(Affine::pid())),
    );
    p.step(
        StepPlan::new("survivor-mark", Affine::n(), WritePolicy::Arbitrary)
            .write(surv, IndexSet::Exact(Affine::pid())),
    );
    p
}

/// Find the upper-hull facet of the scattered subset `active` pierced by
/// the vertical line through `(x0, y0)`, in place. `None` = outside the
/// subset's xy-hull or round cap exceeded (the failure the caller sweeps).
pub fn find_facet_inplace(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point3],
    active: &[usize],
    x0: f64,
    y0: f64,
    cfg: &FpConfig,
) -> Option<Facet> {
    m.declare_contract(&FIND_FACET_CONTRACT);
    let p = active.len();
    if p < 3 {
        return None;
    }
    let universe = points.len();
    let k = cfg
        .k
        .unwrap_or(((p as f64).powf(0.25).ceil() as usize).max(4));
    let capacity = 24 * k;

    // tiny problems: direct brute (p⁴ stays within a constant of p·16k³)
    if p <= 24 {
        return facet_brute(m, shm, points, active, x0, y0).map(|(a, b, c)| Facet { a, b, c });
    }

    // every round's workspace (survivor flags, compaction scratch, sample
    // claims) is scoped to this call — nothing leaks into the caller's Shm
    shm.scope(|shm| {
        let surv = shm.alloc("fp.surv", universe, 0);
        m.kernel_map(shm, active, surv, |_, _| 1);

        let mut p_j = 2.0 * k as f64 / p as f64;
        let mut best: Option<Facet> = None;
        for round in 0..cfg.max_rounds {
            let survivors: Vec<usize> = active
                .iter()
                .copied()
                .filter(|&i| shm.get(surv, i) != 0)
                .collect();

            // per-round scratch is recycled round to round
            let mut base: Vec<usize> = shm.scope(|shm| {
                if round >= cfg.beta || survivors.len() <= 4 * k {
                    let sarr = shm.alloc("fp.sarr", universe, EMPTY);
                    m.kernel_map(shm, &survivors, sarr, |_, i| i as i64);
                    if let Some(c) = inplace_compact(m, shm, sarr, capacity, 0.34) {
                        let mut b = Vec::new();
                        for s in 0..shm.len(c.slots) {
                            let v = shm.get(c.slots, s);
                            if v != EMPTY {
                                b.push(v as usize);
                            }
                        }
                        return b;
                    }
                }
                random_sample_with_p(
                    m,
                    shm,
                    &survivors,
                    universe,
                    k,
                    cfg.sample_attempts,
                    Some(p_j),
                )
                .sample
            });
            if let Some(f) = best {
                for id in f.ids() {
                    if !base.contains(&id) {
                        base.push(id);
                    }
                }
            }
            p_j = (p_j * 2.0 * k as f64).min(1.0);
            if base.len() > capacity || base.len() < 3 {
                continue;
            }

            let mut child = m.child(round as u64 ^ 0xface);
            let sol = facet_brute(&mut child, shm, points, &base, x0, y0);
            m.metrics.absorb(&child.metrics);
            let Some((a, b, c)) = sol else { continue };
            let facet = Facet { a, b, c };
            best = Some(facet);

            // survivor step: one concurrent step over the active set
            let (pa, pb, pc) = (points[a], points[b], points[c]);
            m.kernel_map(shm, active, surv, move |_, i| {
                (orient3d_sign(pa, pb, pc, points[i]) < 0) as i64
            });
            let nsurv = active.iter().filter(|&&i| shm.get(surv, i) != 0).count();
            if nsurv == 0 {
                return Some(facet);
            }
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facet::xy_contains;
    use ipch_geom::gen3d::{in_ball, sphere_plus_interior};
    use ipch_geom::Point2;

    fn verify_facet(points: &[Point3], active: &[usize], x0: f64, y0: f64, f: Facet) {
        assert!(xy_contains(points, &f, Point2::new(x0, y0)));
        for &i in active {
            assert!(
                orient3d_sign(points[f.a], points[f.b], points[f.c], points[i]) >= 0,
                "point {i} above probe facet"
            );
        }
    }

    #[test]
    fn probes_random_balls() {
        for seed in 0..5 {
            let pts = in_ball(600, seed);
            let active: Vec<usize> = (0..pts.len()).collect();
            let mut m = Machine::new(seed);
            let mut shm = Shm::new();
            // the centroid is interior, so a facet must exist above it
            let f = find_facet_inplace(
                &mut m,
                &mut shm,
                &pts,
                &active,
                0.0,
                0.0,
                &FpConfig::default(),
            )
            .unwrap_or_else(|| panic!("seed {seed}: no facet"));
            verify_facet(&pts, &active, 0.0, 0.0, f);
        }
    }

    #[test]
    fn probe_matches_oracle_facet() {
        let pts = sphere_plus_interior(16, 300, 2);
        let active: Vec<usize> = (0..pts.len()).collect();
        let mut m = Machine::new(7);
        let mut shm = Shm::new();
        let f = find_facet_inplace(
            &mut m,
            &mut shm,
            &pts,
            &active,
            0.05,
            -0.03,
            &FpConfig::default(),
        )
        .expect("facet");
        verify_facet(&pts, &active, 0.05, -0.03, f);
        // all three vertices must be sphere (hull) points
        for v in f.ids() {
            let p = pts[v];
            assert!((p.x * p.x + p.y * p.y + p.z * p.z - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn outside_projection_returns_none() {
        let pts = in_ball(200, 3);
        let active: Vec<usize> = (0..pts.len()).collect();
        let mut m = Machine::new(8);
        let mut shm = Shm::new();
        assert!(find_facet_inplace(
            &mut m,
            &mut shm,
            &pts,
            &active,
            10.0,
            10.0,
            &FpConfig::default()
        )
        .is_none());
    }

    #[test]
    fn scattered_subsets() {
        let pts = in_ball(900, 4);
        let active: Vec<usize> = (0..pts.len()).filter(|i| i % 2 == 0).collect();
        let mut m = Machine::new(9);
        let mut shm = Shm::new();
        let f = find_facet_inplace(
            &mut m,
            &mut shm,
            &pts,
            &active,
            0.0,
            0.0,
            &FpConfig::default(),
        )
        .expect("facet");
        for v in f.ids() {
            assert_eq!(v % 2, 0, "facet vertex outside the active subset");
        }
        verify_facet(&pts, &active, 0.0, 0.0, f);
    }

    #[test]
    fn work_near_linear() {
        let n = 4000;
        let pts = in_ball(n, 5);
        let active: Vec<usize> = (0..n).collect();
        let mut m = Machine::new(10);
        let mut shm = Shm::new();
        find_facet_inplace(
            &mut m,
            &mut shm,
            &pts,
            &active,
            0.0,
            0.0,
            &FpConfig::default(),
        )
        .unwrap();
        assert!(
            m.metrics.total_work() < 1000 * n as u64,
            "work {}",
            m.metrics.total_work()
        );
    }
}
