//! Parallel 3-D hull on the CRCW PRAM simulator.

pub mod probe;
pub mod sharded;
pub mod supervised;
pub mod unsorted3d;

/// All hull3d entry-point plans for the static checker
/// ([`ipch_pram::verify`]), in the crate's canonical order.
pub fn verify_plans() -> Vec<ipch_pram::verify::AlgorithmPlan> {
    vec![unsorted3d::verify_plan(), probe::verify_plan()]
}

#[cfg(test)]
mod verify_tests {
    use ipch_pram::verify::{verify_all, Verdict, VerifyConfig};

    #[test]
    fn all_hull3d_plans_verify() {
        for n in [0usize, 1, 2, 64, 4096] {
            let reports = verify_all(&super::verify_plans(), n, &VerifyConfig::default()).unwrap();
            assert_eq!(reports.len(), 2);
            for r in &reports {
                assert_eq!(
                    r.verdict,
                    Verdict::VerifiedStatic,
                    "{} at n={n}",
                    r.algorithm
                );
            }
        }
    }
}
