//! Parallel 3-D hull on the CRCW PRAM simulator.

pub mod probe;
pub mod sharded;
pub mod supervised;
pub mod unsorted3d;
