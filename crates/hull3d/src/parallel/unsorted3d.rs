//! The unsorted 3-D algorithm (paper §4.3–§4.4, Theorem 6).
//!
//! Quicksort-like marriage-before-conquest in 3-D: each active region, in
//! parallel, picks a random splitter (random vote, §3.1), finds the
//! upper-hull facet pierced by the vertical line through it (in-place 3-D
//! facet finding, [`super::probe`], k = p^{1/4}), kills every point
//! strictly under the new facet (each with a pointer to its facet — the
//! paper's output convention), and divides the remainder four ways about
//! the splitter. Failure sweeping re-solves probes that exceed their
//! budget; once `l` = facets + regions certifies a large output, the
//! algorithm switches to the Reif–Sen-role O(log n)-time fallback, giving
//! the `min{n log² h, n log n}` behaviour of Theorem 6.
//!
//! Two documented adaptations (DESIGN.md substitution table):
//!
//! * Probe feasibility is evaluated against **all live points**, not the
//!   region alone. The paper's region-local probing relies on the fence
//!   bookkeeping of §4.3 step 3, whose details are deferred to the
//!   never-published full version; global evaluation is unconditionally
//!   correct (every emitted facet is a true hull facet: hull vertices
//!   never die, so the probe pool always contains them), keeps the probe
//!   *count* output-sensitive, and only weakens the work constant.
//! * The per-region 2-D projection runs of step 3 (project along the new
//!   facet onto the xz/yz planes, run the 2-D algorithm, collect the
//!   silhouette edges) are implemented behind
//!   [`Unsorted3Params::run_projections`]; they are measured by the T5
//!   cost experiment but are not needed for correctness here because the
//!   division uses the splitter's coordinate quadrants directly.
//! * The Reif–Sen fallback is realised by the host gift-wrapping oracle
//!   charged at Reif–Sen's published cost (O(log n) steps, O(n log n)
//!   work), like the other cited-substrate charges.

use ipch_geom::predicates::orient3d_sign;
use ipch_geom::{Point2, Point3};
use ipch_pram::{
    Machine, Metrics, ModelClass, ModelContract, RaceExpectation, Shm, WritePolicy, EMPTY,
};

use super::probe::{find_facet_inplace, FpConfig};
use crate::facet::{xy_contains, Facet};
use crate::seq::giftwrap::upper_hull3_giftwrap;
use crate::seq::Seq3Stats;

/// Tuning parameters.
#[derive(Clone, Debug)]
pub struct Unsorted3Params {
    /// In-place facet-probe tuning.
    pub fp: FpConfig,
    /// Random-vote sample parameter.
    pub vote_k: usize,
    /// Fallback trigger on `l` = facets + regions; `None` = max(24, ⌈√n⌉).
    pub fallback_threshold: Option<usize>,
    /// Level cap; `None` = 2·log₂n + 8 (the paper's O(log n) depth).
    pub max_levels: Option<usize>,
    /// Run the paper's per-region 2-D projection step (costly; measured by
    /// the projection-cost experiment).
    pub run_projections: bool,
}

impl Default for Unsorted3Params {
    fn default() -> Self {
        Self {
            fp: FpConfig {
                max_rounds: 10,
                ..FpConfig::default()
            },
            vote_k: 8,
            fallback_threshold: None,
            max_levels: None,
            run_projections: false,
        }
    }
}

/// Per-level trace record.
#[derive(Clone, Copy, Debug, Default)]
pub struct Level3Record {
    /// Regions entering the level.
    pub regions: usize,
    /// Live points.
    pub active_points: usize,
    /// Largest region (F2's (15/16)^i envelope).
    pub max_size: usize,
    /// Probe failures this level.
    pub failures: usize,
    /// Facets emitted this level.
    pub facets: usize,
}

/// Run trace (experiments T5/F2 read this).
#[derive(Clone, Debug, Default)]
pub struct Unsorted3Trace {
    /// Per-level records.
    pub levels: Vec<Level3Record>,
    /// Whether the Reif–Sen-role fallback ran.
    pub fallback: bool,
    /// Probes swept after failure.
    pub swept: usize,
    /// Facets found by probing (excludes fallback).
    pub probe_facets: usize,
    /// Coverage-backstop probes after the main loop.
    pub backstop_probes: usize,
    /// 2-D silhouette edges found by the projection runs (if enabled).
    pub projection_edges: usize,
}

/// Output of the 3-D algorithm.
#[derive(Clone, Debug)]
pub struct Hull3Output {
    /// Upper-hull facets.
    pub facets: Vec<Facet>,
    /// `face_above[i]` = index into `facets` of a facet covering point i
    /// (`usize::MAX` only for inputs with no facets at all).
    pub face_above: Vec<usize>,
}

/// Concurrency contract: Arbitrary-CRCW in the paper; the kill step and
/// all elections resolve by Priority, so committed memory is independent
/// of the simulator's tiebreak seed.
pub const UNSORTED3_CONTRACT: ModelContract = ModelContract {
    algorithm: "hull3d/unsorted3d",
    class: ModelClass::Crcw,
    races: RaceExpectation::Deterministic,
};

/// Symbolic step structure of [`upper_hull3_unsorted`] for the static
/// checker ([`ipch_pram::verify`]): the (active point, new facet) facet
/// assignment election — targets come through a host-side active-id
/// table, so the write is declared by its bounds and resolved by Priority
/// — plus the injective kill and failure-mark steps. The facet probe and
/// the failure-sweep compaction carry their own contracts and plans.
pub fn verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    use ipch_pram::WritePolicy;
    let mut p = AlgorithmPlan::new(UNSORTED3_CONTRACT);
    let alive = p.array("u3.alive", Affine::n());
    let face = p.array("u3.face", Affine::n());
    let fail = p.array("u3.fail", Affine::n());
    // (active, facet) pairs: ≤ n · #new-facets ≤ n² processors
    p.step(
        StepPlan::new("facet-assign", Affine::n2(), WritePolicy::PriorityMin).write(
            face,
            IndexSet::Within {
                lo: Affine::k(0),
                hi: Affine::n().minus(1),
            },
        ),
    );
    p.step(
        StepPlan::new("kill-under", Affine::n(), WritePolicy::Arbitrary)
            .read(alive, IndexSet::Exact(Affine::pid()))
            .write_uniform(alive, IndexSet::Exact(Affine::pid())),
    );
    p.step(
        StepPlan::new("fail-mark", Affine::n(), WritePolicy::Arbitrary)
            .write(fail, IndexSet::Exact(Affine::pid())),
    );
    p
}

/// The §4.3 algorithm.
///
/// # Examples
///
/// ```
/// use ipch_geom::gen3d::sphere_plus_interior;
/// use ipch_hull3d::parallel::unsorted3d::{upper_hull3_unsorted, Unsorted3Params};
/// use ipch_pram::{Machine, Shm};
///
/// let points = sphere_plus_interior(10, 200, 1);
/// let mut machine = Machine::new(4);
/// let mut shm = Shm::new();
/// let (out, _trace) =
///     upper_hull3_unsorted(&mut machine, &mut shm, &points, &Unsorted3Params::default());
/// ipch_hull3d::verify_upper_hull3(&points, &out.facets, false).unwrap();
/// ```
pub fn upper_hull3_unsorted(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point3],
    params: &Unsorted3Params,
) -> (Hull3Output, Unsorted3Trace) {
    m.declare_contract(&UNSORTED3_CONTRACT);
    let n = points.len();
    let mut trace = Unsorted3Trace::default();
    if n < 3 {
        return (
            Hull3Output {
                facets: vec![],
                face_above: vec![usize::MAX; n],
            },
            trace,
        );
    }
    // SoA columns, transposed once: the per-level quadrant classification
    // streams the x/y columns instead of gathering 24-byte Point3 structs
    let soa = ipch_geom::soa::Points3SoA::from_points(points);
    let logn = (n.max(2) as f64).log2();
    let fallback_threshold = params
        .fallback_threshold
        .unwrap_or(((n as f64).sqrt().ceil() as usize).max(24));
    let max_levels = params.max_levels.unwrap_or((2.0 * logn) as usize + 8);

    // live flags + facet pointers (shared state)
    let alive = shm.alloc("u3.alive", n, 1);
    let face = shm.alloc("u3.face", n, EMPTY);

    let mut regions: Vec<Vec<usize>> = vec![(0..n).collect()];
    let mut facets: Vec<Facet> = Vec::new();
    let mut facet_keys: std::collections::HashSet<Facet> = std::collections::HashSet::new();

    for level in 0..max_levels {
        if regions.is_empty() {
            break;
        }
        let actives: Vec<usize> = (0..n).filter(|&i| shm.get(alive, i) != 0).collect();
        trace.levels.push(Level3Record {
            regions: regions.len(),
            active_points: actives.len(),
            max_size: regions.iter().map(|r| r.len()).max().unwrap_or(0),
            failures: 0,
            facets: 0,
        });
        let ri = trace.levels.len() - 1;
        let _ = level;

        // --- probe each region in parallel ------------------------------
        let mut splitters: Vec<Option<usize>> = Vec::new();
        let mut found: Vec<Option<Facet>> = Vec::new();
        let mut children: Vec<Metrics> = Vec::new();
        for (j, region) in regions.iter().enumerate() {
            let mut child = m.child((trace.levels.len() as u64) << 32 | j as u64);
            let mut scratch = Shm::new();
            let s = ipch_inplace::vote::random_vote(
                &mut child,
                &mut scratch,
                region,
                n,
                params.vote_k,
                4,
            );
            splitters.push(s);
            let f = s.and_then(|s| {
                find_facet_inplace(
                    &mut child,
                    &mut scratch,
                    points,
                    &actives,
                    points[s].x,
                    points[s].y,
                    &params.fp,
                )
            });
            found.push(f);
            children.push(child.metrics);
        }
        m.metrics.absorb_parallel(&children);

        // --- failure sweeping --------------------------------------------
        let failed: Vec<usize> = found
            .iter()
            .enumerate()
            .filter_map(|(j, f)| f.is_none().then_some(j))
            .collect();
        trace.levels[ri].failures = failed.len();
        if !failed.is_empty() {
            let bound = ((n as f64).powf(0.25).ceil() as usize).max(4);
            // scoped: the flag slot and Ragde's workspace are recycled level
            // to level instead of leaking per level
            let sweep_list: Vec<usize> = shm.scope(|shm| {
                let flags = shm.alloc("u3.fail", regions.len(), EMPTY);
                let ff = failed.clone();
                m.kernel_scatter(shm, 0..regions.len(), move |_, j| {
                    if ff.binary_search(&j).is_ok() {
                        Some((flags, j, j as i64))
                    } else {
                        None
                    }
                });
                let comp = ipch_inplace::ragde::ragde_compact_det(m, shm, flags, bound);
                match comp {
                    Some(c) => shm
                        .slice(c.dst)
                        .iter()
                        .copied()
                        .filter(|&x| x != EMPTY)
                        .map(|x| x as usize)
                        .collect(),
                    None => failed.clone(),
                }
            });
            let mut sweep_children: Vec<Metrics> = Vec::new();
            for j in sweep_list {
                let mut child = m.child(j as u64 ^ 0x3dfa);
                let mut scratch = Shm::new();
                let retry = FpConfig {
                    max_rounds: 64,
                    ..params.fp
                };
                let s = splitters[j].or_else(|| regions[j].first().copied());
                found[j] = s.and_then(|s| {
                    find_facet_inplace(
                        &mut child,
                        &mut scratch,
                        points,
                        &actives,
                        points[s].x,
                        points[s].y,
                        &retry,
                    )
                });
                if found[j].is_some() {
                    trace.swept += 1;
                }
                sweep_children.push(child.metrics);
            }
            m.metrics.absorb_parallel(&sweep_children);
        }

        // --- collect new facets -------------------------------------------
        let mut new_facets: Vec<(usize, Facet)> = Vec::new(); // (facet index, facet)
        for f in found.iter().flatten() {
            let c = f.canonical();
            if facet_keys.insert(c) {
                new_facets.push((facets.len(), c));
                facets.push(c);
            }
        }
        trace.levels[ri].facets = new_facets.len();
        trace.probe_facets += new_facets.len();

        // --- optional paper step 3: projection runs ----------------------
        if params.run_projections {
            if let Some(&(_, f0)) = new_facets.first() {
                trace.projection_edges += run_projection_step(m, points, &actives, f0);
            }
        }

        // --- kill step: one concurrent step over (actives × new facets) --
        if !new_facets.is_empty() {
            let nf = new_facets.len();
            let nfr = &new_facets;
            let act = &actives;
            // A point under several new facets is killed by all of them;
            // any of their ids is a correct `face` value. Priority (rather
            // than the paper's arbitrary-winner rule) makes the recorded id
            // the first-listed covering facet: all writers of `face[i]`
            // share the point and differ only in facet index, so min-pid =
            // min facet slot, and the output no longer depends on the
            // simulator's tiebreak seed.
            m.step_with_policy(
                shm,
                0..actives.len() * nf,
                WritePolicy::PriorityMin,
                |ctx| {
                    let ai = ctx.pid / nf;
                    let fi = ctx.pid % nf;
                    let i = act[ai];
                    let (fidx, f) = nfr[fi];
                    if xy_contains(points, &f, points[i].xy())
                        && orient3d_sign(points[f.a], points[f.b], points[f.c], points[i]) > 0
                    {
                        ctx.write(alive, i, 0);
                        ctx.write(face, i, fidx as i64);
                    }
                },
            );
        }

        // --- divide: four quadrants about each region's splitter ---------
        let mut next: Vec<Vec<usize>> = Vec::new();
        for (j, region) in regions.iter().enumerate() {
            let Some(s) = splitters[j] else {
                // unsplit region: keep the survivors together
                let rem: Vec<usize> = region
                    .iter()
                    .copied()
                    .filter(|&i| shm.get(alive, i) != 0)
                    .collect();
                if rem.len() >= 3 {
                    next.push(rem);
                }
                continue;
            };
            let (sx, sy) = (points[s].x, points[s].y);
            let (xs, ys) = (soa.xs(), soa.ys());
            let mut quads: [Vec<usize>; 4] = Default::default();
            for &i in region {
                if shm.get(alive, i) == 0 {
                    continue;
                }
                let q = (xs[i] > sx) as usize * 2 + (ys[i] > sy) as usize;
                quads[q].push(i);
            }
            for q in quads {
                if q.len() >= 3 {
                    next.push(q);
                }
            }
        }
        // the division itself is one concurrent step over the active points
        let act: Vec<usize> = (0..n).filter(|&i| shm.get(alive, i) != 0).collect();
        m.step(shm, &act, |_ctx| {});
        regions = next;

        // --- l-trigger -----------------------------------------------------
        let l = facets.len() + regions.len();
        if l >= fallback_threshold {
            run_rs_fallback(
                m,
                points,
                &mut facets,
                &mut facet_keys,
                &mut trace,
                shm,
                alive,
            );
            regions.clear();
            break;
        }
    }
    if !regions.is_empty() {
        run_rs_fallback(
            m,
            points,
            &mut facets,
            &mut facet_keys,
            &mut trace,
            shm,
            alive,
        );
    }

    // --- coverage backstop ------------------------------------------------
    // every still-alive point must have a facet above it; probe any that
    // don't (each probe finds a genuine facet, so this terminates)
    let mut guard = 0usize;
    loop {
        guard += 1;
        let actives: Vec<usize> = (0..n).filter(|&i| shm.get(alive, i) != 0).collect();
        let uncovered: Option<usize> = actives.iter().copied().find(|&i| {
            !facets
                .iter()
                .any(|f| xy_contains(points, f, points[i].xy()))
        });
        let Some(u) = uncovered else { break };
        if guard > n {
            break;
        }
        let mut child = m.child(u as u64 ^ 0xbac);
        let mut scratch = Shm::new();
        if let Some(f) = find_facet_inplace(
            &mut child,
            &mut scratch,
            points,
            &actives,
            points[u].x,
            points[u].y,
            &FpConfig {
                max_rounds: 64,
                ..params.fp
            },
        ) {
            m.metrics.absorb(&child.metrics);
            let c = f.canonical();
            if facet_keys.insert(c) {
                facets.push(c);
            }
            trace.backstop_probes += 1;
            // kill strictly-under points (one step)
            let act2: Vec<usize> = actives;
            m.step(shm, &act2, |ctx| {
                let i = ctx.pid;
                if xy_contains(points, &c, points[i].xy())
                    && orient3d_sign(points[c.a], points[c.b], points[c.c], points[i]) > 0
                {
                    ctx.write(alive, i, 0);
                }
            });
        } else {
            break; // degenerate (e.g. all points collinear in xy)
        }
    }

    // --- output pointers (charged host assignment, as in the 2-D output) --
    m.charge(1, n as u64);
    let mut face_above = vec![usize::MAX; n];
    for i in 0..n {
        let rec = shm.get(face, i);
        if rec != EMPTY {
            face_above[i] = rec as usize;
            continue;
        }
        if let Some(fi) = facets
            .iter()
            .position(|f| xy_contains(points, f, points[i].xy()))
        {
            face_above[i] = fi;
        }
    }
    (Hull3Output { facets, face_above }, trace)
}

/// The Reif–Sen-role fallback: the remaining hull facets of the live set,
/// computed by the host gift-wrapping oracle and charged at Reif–Sen's
/// bound (O(log n) steps, O(n log n) work).
#[allow(clippy::too_many_arguments)]
fn run_rs_fallback(
    m: &mut Machine,
    points: &[Point3],
    facets: &mut Vec<Facet>,
    facet_keys: &mut std::collections::HashSet<Facet>,
    trace: &mut Unsorted3Trace,
    shm: &mut Shm,
    alive: ipch_pram::ArrayId,
) {
    trace.fallback = true;
    let n = points.len();
    let actives: Vec<usize> = (0..n).filter(|&i| shm.get(alive, i) != 0).collect();
    if actives.len() < 3 {
        return;
    }
    let sub: Vec<Point3> = actives.iter().map(|&i| points[i]).collect();
    let mut st = Seq3Stats::default();
    let fs = upper_hull3_giftwrap(&sub, &mut st);
    let logn = (n.max(2) as f64).log2().ceil() as u64;
    m.charge(logn, n as u64 * logn);
    for f in fs {
        let g = Facet {
            a: actives[f.a],
            b: actives[f.b],
            c: actives[f.c],
        }
        .canonical();
        if facet_keys.insert(g) {
            facets.push(g);
        }
    }
}

/// Paper §4.3 step 3: project the live points onto the xz and yz planes
/// along directions parallel to the newly found facet, and find the 2-D
/// hulls of the projections with the 2-D unsorted algorithm (their edges
/// are 3-D hull edges). Returns the number of silhouette edges found.
fn run_projection_step(m: &mut Machine, points: &[Point3], actives: &[usize], f: Facet) -> usize {
    // facet plane z = αx + βy + γ
    let (a, b, c) = (points[f.a], points[f.b], points[f.c]);
    let ux = (b.x - a.x, b.y - a.y, b.z - a.z);
    let vx = (c.x - a.x, c.y - a.y, c.z - a.z);
    let nx = ux.1 * vx.2 - ux.2 * vx.1;
    let ny = ux.2 * vx.0 - ux.0 * vx.2;
    let nz = ux.0 * vx.1 - ux.1 * vx.0;
    if nz == 0.0 {
        return 0;
    }
    let alpha = -nx / nz;
    let beta = -ny / nz;

    let mut edges = 0usize;
    for proj in 0..2 {
        let pts2: Vec<Point2> = actives
            .iter()
            .map(|&i| {
                let p = points[i];
                if proj == 0 {
                    Point2::new(p.x, p.z - beta * p.y)
                } else {
                    Point2::new(p.y, p.z - alpha * p.x)
                }
            })
            .collect();
        let mut child = m.child(0x2d00 + proj as u64);
        let mut scratch = Shm::new();
        let (out, _) = ipch_hull2d::parallel::unsorted::upper_hull_unsorted(
            &mut child,
            &mut scratch,
            &pts2,
            &ipch_hull2d::parallel::unsorted::UnsortedParams::default(),
        );
        m.metrics.absorb(&child.metrics);
        edges += out.hull.num_edges();
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facet::{verify_upper_hull3, vertex_set};
    use crate::seq::brute3d::upper_hull3_brute;
    use ipch_geom::gen3d::{in_ball, in_cube, on_sphere, sphere_plus_interior};

    fn run(
        points: &[Point3],
        seed: u64,
        params: &Unsorted3Params,
    ) -> (Hull3Output, Unsorted3Trace, Machine) {
        let mut m = Machine::new(seed);
        let mut shm = Shm::new();
        let (out, trace) = upper_hull3_unsorted(&mut m, &mut shm, points, params);
        (out, trace, m)
    }

    /// Regression for the kill-step fix: the Priority kill writes (and the
    /// facet elections below them) must leave every race deterministic —
    /// the analyzer's salted replays must never flip a committed value.
    #[test]
    fn analyzer_pins_contract() {
        use ipch_pram::AnalyzeConfig;
        let pts = in_ball(200, 11);
        let mut m = Machine::new(5);
        m.enable_analysis(AnalyzeConfig::default());
        let mut shm = Shm::new();
        shm.enable_shadow(true);
        upper_hull3_unsorted(&mut m, &mut shm, &pts, &Unsorted3Params::default());
        let r = m.analysis_report().unwrap();
        assert_eq!(r.contract.unwrap().algorithm, "hull3d/unsorted3d");
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.seed_dependent_races, 0);
        assert_eq!(r.unconfirmed_arbitrary_races, 0);
        assert!(r.deterministic_races > 0, "kill step should be exercised");
    }

    #[test]
    fn matches_oracle_small() {
        for seed in 0..4 {
            let pts = in_ball(60, seed);
            let (out, _, _) = run(&pts, seed, &Unsorted3Params::default());
            verify_upper_hull3(&pts, &out.facets, false)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let mut st = Seq3Stats::default();
            let oracle = upper_hull3_brute(&pts, &mut st);
            assert_eq!(
                vertex_set(&out.facets),
                vertex_set(&oracle),
                "seed {seed}: vertex sets differ"
            );
        }
    }

    #[test]
    fn verifies_on_larger_inputs() {
        for (gi, gen) in [in_ball as fn(usize, u64) -> Vec<Point3>, in_cube, on_sphere]
            .iter()
            .enumerate()
        {
            let pts = gen(400, gi as u64 + 5);
            let (out, _, _) = run(&pts, gi as u64, &Unsorted3Params::default());
            verify_upper_hull3(&pts, &out.facets, false)
                .unwrap_or_else(|e| panic!("gen {gi}: {e}"));
            // pointer sanity: every point covered by its recorded facet
            for (i, &fi) in out.face_above.iter().enumerate() {
                assert_ne!(fi, usize::MAX, "point {i} lacks a face pointer");
                assert!(xy_contains(&pts, &out.facets[fi], pts[i].xy()));
            }
        }
    }

    #[test]
    fn output_sensitive_probes() {
        let n = 2000;
        let small = sphere_plus_interior(12, n, 3);
        let large = sphere_plus_interior(200, n, 3);
        let (o1, t1, _) = run(&small, 1, &Unsorted3Params::default());
        let (o2, t2, _) = run(&large, 1, &Unsorted3Params::default());
        verify_upper_hull3(&small, &o1.facets, false).unwrap();
        verify_upper_hull3(&large, &o2.facets, false).unwrap();
        assert!(
            o1.facets.len() < o2.facets.len(),
            "facet counts should track h"
        );
        let _ = (t1, t2);
    }

    #[test]
    fn big_h_triggers_fallback() {
        let pts = on_sphere(1500, 7);
        let (out, trace, _) = run(&pts, 2, &Unsorted3Params::default());
        assert!(trace.fallback);
        verify_upper_hull3(&pts, &out.facets, false).unwrap();
    }

    #[test]
    fn small_h_avoids_fallback() {
        let pts = sphere_plus_interior(10, 2000, 9);
        let (out, trace, _) = run(&pts, 3, &Unsorted3Params::default());
        assert!(!trace.fallback, "h = 10 should finish by probing");
        verify_upper_hull3(&pts, &out.facets, false).unwrap();
    }

    #[test]
    fn tiny_inputs() {
        let (out, _, _) = run(&[], 1, &Unsorted3Params::default());
        assert!(out.facets.is_empty());
        let two = vec![Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 0.0, 0.0)];
        let (out, _, _) = run(&two, 1, &Unsorted3Params::default());
        assert!(out.facets.is_empty());
    }

    #[test]
    fn projection_step_runs() {
        let pts = in_ball(300, 11);
        let params = Unsorted3Params {
            run_projections: true,
            ..Unsorted3Params::default()
        };
        let (out, trace, _) = run(&pts, 4, &params);
        verify_upper_hull3(&pts, &out.facets, false).unwrap();
        assert!(
            trace.projection_edges > 0,
            "projection runs should find silhouette edges"
        );
    }
}
