//! Shard-split 3-D upper hull: chunked partial hulls, candidate
//! reduction, one certified final hull.
//!
//! The 3-D analogue of the 2-D hull-of-hulls shard merge. The input is cut
//! into at most `shards` contiguous chunks; each chunk computes a fully
//! supervised partial hull on its own child machine (data-parallel kernel
//! backend, the PR that introduced fused lanes). A vertex of the whole
//! upper hull is extreme in *any* subset that contains it, so the union of
//! the chunk hulls' facet vertices contains every whole-hull vertex; a
//! final supervised run over that (much smaller) candidate set produces
//! the whole hull. Chunks whose partial hull has no facets (tiny or
//! xy-degenerate chunks) contribute all their points, so no candidate is
//! lost to degeneracy.
//!
//! Soundness never rests on that argument: the final facet set is
//! certified against the **entire** input by [`verify_upper_hull3`]
//! (supporting planes + full coverage) before it is returned. Any chunk
//! failure, or a final certificate failure, demotes the request to one
//! unsharded supervised run (`ServiceStats::shard_merge_failures` counts
//! the latter); terminal errors (cancellation, deadline, invalid input)
//! propagate immediately. Certified facet sets are canonical for inputs in
//! general position, so a sharded success matches the unsharded result.

use ipch_geom::validate::validate_points3;
use ipch_geom::Point3;
use ipch_pram::{KernelBackend, Machine, Metrics, Outcome, RunError, SuperviseConfig, Supervised};

use super::supervised::upper_hull3_unsorted_supervised;
use super::unsorted3d::Unsorted3Params;
use crate::facet::{verify_upper_hull3, Facet};

/// Algorithm name used in typed errors from the sharded path itself.
pub const SHARDED3_ALG: &str = "hull3d/sharded";

/// Child-machine tag base for chunk workers.
const SHARD3_TAG: u64 = 0x3DA2_D001;
/// Child-machine tag for the final candidate-set run.
const MERGE3_TAG: u64 = 0x3DA2_DBBB;
/// Child-machine tag for the unsharded demotion run.
const FALLBACK3_TAG: u64 = 0x3DA2_DFFF;

/// Supervised shard-split 3-D upper hull over `shards` chunk workers.
///
/// Facet vertex ids refer to the original `points` array. Aggregation
/// matches the 2-D sharded entry: `attempts` sums chunk and merge
/// attempts, `outcome` is the worst constituent outcome, `errors`
/// concatenates in chunk order.
pub fn upper_hull3_sharded_supervised(
    m: &mut Machine,
    points: &[Point3],
    shards: usize,
    cfg: &SuperviseConfig,
) -> Result<Supervised<Vec<Facet>>, RunError> {
    validate_points3(points).map_err(|e| RunError::invalid_input(SHARDED3_ALG, e))?;
    let n = points.len();
    let s = shards.max(2).min(n.max(1));
    m.metrics.service.shard_splits += 1;

    let chunk = n.div_ceil(s);
    let mut candidates: Vec<usize> = Vec::new();
    let mut part_metrics: Vec<Metrics> = Vec::new();
    let mut attempts = 0u32;
    let mut errors: Vec<RunError> = Vec::new();
    let mut worst = Outcome::FirstTry;
    for (k, base) in (0..n).step_by(chunk).enumerate() {
        let end = (base + chunk).min(n);
        let part = &points[base..end];
        let mut cm = m.child(SHARD3_TAG ^ k as u64);
        cm.tuning.kernel_backend = KernelBackend::Parallel;
        match upper_hull3_unsorted_supervised(&mut cm, part, &Unsorted3Params::default(), cfg) {
            Ok(sup) => {
                attempts += sup.attempts;
                errors.extend(sup.errors);
                worst = worse(worst, sup.outcome);
                let facets = &sup.value.0.facets;
                if facets.is_empty() {
                    // degenerate chunk: every point stays a candidate
                    candidates.extend(base..end);
                } else {
                    candidates.extend(
                        facets
                            .iter()
                            .flat_map(|f| [f.a, f.b, f.c])
                            .map(|v| base + v),
                    );
                }
                part_metrics.push(cm.metrics);
            }
            Err(e) if e.is_terminal() => {
                m.metrics.absorb_parallel(&part_metrics);
                m.metrics.absorb(&cm.metrics);
                return Err(e);
            }
            Err(e) => {
                m.metrics.absorb_parallel(&part_metrics);
                m.metrics.absorb(&cm.metrics);
                errors.push(e);
                return demote(m, points, cfg, attempts, errors);
            }
        }
    }
    m.metrics.absorb_parallel(&part_metrics);
    candidates.sort_unstable();
    candidates.dedup();

    // Final supervised run over the candidate set, then the whole-input
    // certificate: supporting planes and coverage against *all* points.
    let cand_pts: Vec<Point3> = candidates.iter().map(|&i| points[i]).collect();
    let mut mm = m.child(MERGE3_TAG);
    mm.tuning.kernel_backend = KernelBackend::Parallel;
    let merged =
        upper_hull3_unsorted_supervised(&mut mm, &cand_pts, &Unsorted3Params::default(), cfg);
    m.metrics.absorb(&mm.metrics);
    let merged = merged.and_then(|sup| {
        let facets: Vec<Facet> = sup
            .value
            .0
            .facets
            .iter()
            .map(|f| Facet {
                a: candidates[f.a],
                b: candidates[f.b],
                c: candidates[f.c],
            })
            .collect();
        verify_upper_hull3(points, &facets, n < 3).map_err(|detail| RunError::Verify {
            algorithm: SHARDED3_ALG,
            detail,
        })?;
        Ok((facets, sup.outcome, sup.attempts, sup.errors))
    });
    match merged {
        Ok((facets, outcome, merge_attempts, merge_errors)) => {
            errors.extend(merge_errors);
            Ok(Supervised {
                value: facets,
                outcome: worse(worst, outcome),
                attempts: attempts + merge_attempts,
                errors,
            })
        }
        Err(e) if e.is_terminal() => Err(e),
        Err(e) => {
            m.metrics.service.shard_merge_failures += 1;
            errors.push(e);
            demote(m, points, cfg, attempts, errors)
        }
    }
}

/// The worse of two constituent outcomes (`FellBack` dominates; retry
/// counts add).
fn worse(a: Outcome, b: Outcome) -> Outcome {
    match (a, b) {
        (Outcome::FellBack, _) | (_, Outcome::FellBack) => Outcome::FellBack,
        (Outcome::Retried(x), Outcome::Retried(y)) => Outcome::Retried(x + y),
        (Outcome::Retried(x), _) | (_, Outcome::Retried(x)) => Outcome::Retried(x),
        _ => Outcome::FirstTry,
    }
}

/// Unsharded demotion: one supervised run over the whole input, reported
/// as `FellBack`.
fn demote(
    m: &mut Machine,
    points: &[Point3],
    cfg: &SuperviseConfig,
    attempts: u32,
    mut errors: Vec<RunError>,
) -> Result<Supervised<Vec<Facet>>, RunError> {
    let mut fm = m.child(FALLBACK3_TAG);
    let r = upper_hull3_unsorted_supervised(&mut fm, points, &Unsorted3Params::default(), cfg);
    m.metrics.absorb(&fm.metrics);
    let sup = r?;
    errors.extend(sup.errors);
    Ok(Supervised {
        value: sup.value.0.facets,
        outcome: Outcome::FellBack,
        attempts: attempts + sup.attempts,
        errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::gen3d::sphere_plus_interior;
    use std::collections::HashSet;

    #[test]
    fn sharded3_matches_unsharded_facets() {
        for (seed, s) in [(2u64, 2usize), (3, 4)] {
            let pts = sphere_plus_interior(12, 300, seed);
            let mut m = Machine::new(seed);
            let sup = upper_hull3_sharded_supervised(&mut m, &pts, s, &SuperviseConfig::default())
                .expect("sharded 3d");
            verify_upper_hull3(&pts, &sup.value, false).unwrap();
            assert_eq!(m.metrics.service.shard_splits, 1);

            let mut m2 = Machine::new(seed);
            let solo = upper_hull3_unsorted_supervised(
                &mut m2,
                &pts,
                &Unsorted3Params::default(),
                &SuperviseConfig::default(),
            )
            .expect("unsharded 3d");
            let a: HashSet<Facet> = sup.value.iter().map(|f| f.canonical()).collect();
            let b: HashSet<Facet> = solo.value.0.facets.iter().map(|f| f.canonical()).collect();
            assert_eq!(a, b, "seed {seed} shards {s}");
        }
    }

    #[test]
    fn invalid_input_rejects_before_any_step() {
        let mut pts = sphere_plus_interior(12, 64, 9);
        pts[7].x = f64::NAN;
        let mut m = Machine::new(9);
        let e = upper_hull3_sharded_supervised(&mut m, &pts, 4, &SuperviseConfig::default())
            .unwrap_err();
        assert!(matches!(e, RunError::InvalidInput { .. }));
        assert_eq!(m.metrics.steps, 0);
    }
}
