//! Sequential probe-driven 3-D upper hull — the Edelsbrunner–Shi role.
//!
//! ES [SIAM J. Comp. 1991] probe the hull with linear programs ("minimize
//! the plane height over a query point subject to every point below the
//! plane") and split about the found facet; their O(n log² h) bound comes
//! from ham-sandwich splitting, which this baseline does not replicate —
//! it keeps the *probe structure* (one expected-O(n) Seidel LP per facet,
//! so O(n·h) total like gift wrapping) and serves as the sequential
//! output-sensitive comparator with the same probing skeleton as the
//! paper's parallel §4.3 method.
//!
//! Kill discipline mirrors the parallel algorithm: a point dies when its
//! xy lies inside an emitted facet's projection and it sits strictly below
//! the facet plane; hull vertices therefore never die, which is what makes
//! live-set probes globally supporting (two planes that compare at a
//! triangle's corners compare on the whole triangle).

use ipch_geom::predicates::{orient2d_sign, orient3d_sign};
use ipch_geom::{Point2, Point3};
use ipch_lp::constraint::Halfspace;
use ipch_lp::lp3d::Objective3;
use ipch_lp::seidel3::solve_lp3_seidel;
use ipch_pram::rng::SplitMix64;

use super::Seq3Stats;
use crate::facet::{oriented_facet, xy_contains, Facet};

/// Probe-driven sequential upper hull. Returns the facet set.
pub fn upper_hull3_probing(points: &[Point3], stats: &mut Seq3Stats, seed: u64) -> Vec<Facet> {
    let n = points.len();
    if n < 3 {
        return vec![];
    }
    let mut rng = SplitMix64::new(seed);
    let mut alive: Vec<bool> = vec![true; n];
    let mut facets: Vec<Facet> = Vec::new();
    let mut keys: std::collections::HashSet<Facet> = std::collections::HashSet::new();

    let mut guard = 0usize;
    loop {
        guard += 1;
        if guard > 4 * n + 16 {
            break; // degenerate safety valve (verified by tests not to fire)
        }
        // next splitter: any live point not covered by an emitted facet
        let q = (0..n).find(|&i| {
            alive[i]
                && !facets
                    .iter()
                    .any(|f| xy_contains(points, f, points[i].xy()))
        });
        let Some(q) = q else { break };

        let live: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
        // splitters on the xy-hull boundary can make the probe LP
        // degenerate (near-vertical supporting planes); retry nudged
        // toward the live centroid — the facet above a nearby interior
        // point still covers the boundary point for small nudges
        let cx = live.iter().map(|&i| points[i].x).sum::<f64>() / live.len() as f64;
        let cy = live.iter().map(|&i| points[i].y).sum::<f64>() / live.len() as f64;
        let mut found = None;
        for t in [0.0f64, 1e-9, 1e-6, 1e-3, 1e-2] {
            let qx = points[q].x + t * (cx - points[q].x);
            let qy = points[q].y + t * (cy - points[q].y);
            if let Some(f) = probe_facet(points, &live, Point2::new(qx, qy), stats, rng.next_u64())
            {
                found = Some(f);
                break;
            }
        }
        let Some(f) = found else {
            break; // degenerate configuration (e.g. all xy-collinear)
        };
        if keys.insert(f) {
            facets.push(f);
        } else if !xy_contains(points, &f, points[q].xy()) {
            // no new facet and the splitter is still uncovered: give the
            // stalled splitter one synthetic cover via brute search over
            // the facet's neighbourhood fails ⇒ stop rather than loop
            break;
        }
        // kill strictly-under points
        for &i in &live {
            stats.orient3d_tests += 1;
            if xy_contains(points, &f, points[i].xy())
                && orient3d_sign(points[f.a], points[f.b], points[f.c], points[i]) > 0
            {
                alive[i] = false;
            }
        }
    }
    facets.sort_by_key(|f| f.ids());
    facets
}

/// One LP probe: the upper-hull facet of `live` above abscissa `q`.
fn probe_facet(
    points: &[Point3],
    live: &[usize],
    q: Point2,
    stats: &mut Seq3Stats,
    seed: u64,
) -> Option<Facet> {
    let cs: Vec<Halfspace> = live
        .iter()
        .map(|&i| Halfspace {
            a: points[i].x,
            b: points[i].y,
            c: 1.0,
            d: points[i].z,
        })
        .collect();
    stats.orient3d_tests += live.len() as u64; // LP pass, O(live) expected
    let obj = Objective3 {
        cx: q.x,
        cy: q.y,
        cz: 1.0,
    };
    let (a, b, g) = solve_lp3_seidel(&cs, &obj, seed)?;

    // recover the exact facet among near-contacts of the LP plane,
    // widening the tolerance if the f64 plane was too tight
    let scale = 1.0 + a.abs() + b.abs() + g.abs();
    let mut tol = 1e-9 * scale;
    for _ in 0..6 {
        let contacts: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&i| {
                let p = points[i];
                (a * p.x + b * p.y + g - p.z).abs() <= tol
            })
            .collect();
        if contacts.len() >= 3 {
            if let Some(f) = exact_facet_among(points, live, &contacts, q, stats) {
                return Some(f);
            }
        }
        tol *= 100.0;
    }
    None
}

/// Exact search over the (small) contact set: a triple containing `q` in
/// projection whose plane supports every live point.
fn exact_facet_among(
    points: &[Point3],
    live: &[usize],
    contacts: &[usize],
    q: Point2,
    stats: &mut Seq3Stats,
) -> Option<Facet> {
    let c = contacts.len();
    for x in 0..c {
        for y in x + 1..c {
            for z in y + 1..c {
                let Some(f) = oriented_facet(points, contacts[x], contacts[y], contacts[z]) else {
                    continue;
                };
                stats.orient2d_tests += 3;
                if orient2d_sign(points[f.a].xy(), points[f.b].xy(), q) < 0
                    || orient2d_sign(points[f.b].xy(), points[f.c].xy(), q) < 0
                    || orient2d_sign(points[f.c].xy(), points[f.a].xy(), q) < 0
                {
                    continue;
                }
                let supporting = live.iter().all(|&i| {
                    stats.orient3d_tests += 1;
                    orient3d_sign(points[f.a], points[f.b], points[f.c], points[i]) >= 0
                });
                if supporting {
                    return Some(f);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facet::{verify_upper_hull3, vertex_set};
    use crate::seq::brute3d::upper_hull3_brute;
    use crate::seq::giftwrap::upper_hull3_giftwrap;
    use ipch_geom::gen3d::{in_ball, in_cube, sphere_plus_interior};

    #[test]
    fn matches_brute_oracle() {
        for seed in 0..4 {
            let pts = in_ball(50, seed);
            let mut s1 = Seq3Stats::default();
            let es = upper_hull3_probing(&pts, &mut s1, seed);
            verify_upper_hull3(&pts, &es, false).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let mut s2 = Seq3Stats::default();
            let br = upper_hull3_brute(&pts, &mut s2);
            assert_eq!(
                vertex_set(&es),
                vertex_set(&br),
                "seed {seed}: vertex sets differ"
            );
        }
    }

    #[test]
    fn larger_inputs_verify_and_match_giftwrap_vertices() {
        for (i, gen) in [in_ball as fn(usize, u64) -> Vec<Point3>, in_cube]
            .iter()
            .enumerate()
        {
            let pts = gen(300, i as u64 + 9);
            let mut s1 = Seq3Stats::default();
            let es = upper_hull3_probing(&pts, &mut s1, 1);
            verify_upper_hull3(&pts, &es, false).unwrap();
            let mut s2 = Seq3Stats::default();
            let gw = upper_hull3_giftwrap(&pts, &mut s2);
            assert_eq!(vertex_set(&es), vertex_set(&gw), "gen {i}");
        }
    }

    #[test]
    fn probes_track_output_size() {
        let n = 800;
        let small = sphere_plus_interior(10, n, 3);
        let large = sphere_plus_interior(120, n, 3);
        let mut s1 = Seq3Stats::default();
        let f1 = upper_hull3_probing(&small, &mut s1, 2).len();
        let mut s2 = Seq3Stats::default();
        let f2 = upper_hull3_probing(&large, &mut s2, 2).len();
        assert!(f1 < f2);
        assert!(s1.total() < s2.total(), "work should track h");
    }

    #[test]
    fn tiny_inputs() {
        let mut st = Seq3Stats::default();
        assert!(upper_hull3_probing(&[], &mut st, 1).is_empty());
        let two = vec![Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 0.0, 0.0)];
        assert!(upper_hull3_probing(&two, &mut st, 1).is_empty());
    }
}
