//! Exact brute-force 3-D upper hull — the O(n⁴) test oracle.
//!
//! A triple is an upper-hull facet iff its plane supports the whole set
//! (no point strictly above) and, to keep the facet set minimal on inputs
//! with coplanar points, no on-plane point lies strictly inside the
//! triangle's projection. On general-position inputs this is exactly the
//! unique facet triangulation of the upper hull.

use ipch_geom::predicates::{orient2d_sign, orient3d_sign};
use ipch_geom::Point3;

use super::Seq3Stats;
use crate::facet::{oriented_facet, Facet};

/// All upper-hull facets of `points` by exhaustive search.
pub fn upper_hull3_brute(points: &[Point3], stats: &mut Seq3Stats) -> Vec<Facet> {
    let n = points.len();
    let mut out = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            for k in j + 1..n {
                let Some(f) = oriented_facet(points, i, j, k) else {
                    continue;
                };
                let (a, b, c) = (points[f.a], points[f.b], points[f.c]);
                let mut supporting = true;
                let mut minimal = true;
                for (qi, &q) in points.iter().enumerate() {
                    if qi == i || qi == j || qi == k {
                        continue;
                    }
                    stats.orient3d_tests += 1;
                    let s = orient3d_sign(a, b, c, q);
                    if s < 0 {
                        supporting = false;
                        break;
                    }
                    if s == 0 {
                        // coplanar: strict interior point makes this triple
                        // non-minimal
                        stats.orient2d_tests += 3;
                        let (pa, pb, pc) = (a.xy(), b.xy(), c.xy());
                        let qq = q.xy();
                        if orient2d_sign(pa, pb, qq) > 0
                            && orient2d_sign(pb, pc, qq) > 0
                            && orient2d_sign(pc, pa, qq) > 0
                        {
                            minimal = false;
                            break;
                        }
                    }
                }
                if supporting && minimal {
                    out.push(f.canonical());
                }
            }
        }
    }
    out.sort_by_key(|f| f.ids());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facet::verify_upper_hull3;
    use ipch_geom::gen3d::{in_ball, in_cube, on_sphere, sphere_plus_interior};

    #[test]
    fn tetrahedron() {
        let pts = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(4.0, 0.0, 0.0),
            Point3::new(0.0, 4.0, 0.0),
            Point3::new(1.0, 1.0, 3.0),
        ];
        let mut st = Seq3Stats::default();
        let fs = upper_hull3_brute(&pts, &mut st);
        assert_eq!(fs.len(), 3, "three roof facets through the apex");
        verify_upper_hull3(&pts, &fs, false).unwrap();
    }

    #[test]
    fn random_inputs_verify() {
        for seed in 0..4 {
            for gen in [in_ball as fn(usize, u64) -> Vec<Point3>, in_cube, on_sphere] {
                let pts = gen(40, seed);
                let mut st = Seq3Stats::default();
                let fs = upper_hull3_brute(&pts, &mut st);
                verify_upper_hull3(&pts, &fs, false).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn deep_interior_points_are_not_vertices() {
        // Interior points well inside the xy-projection of the dome are
        // strictly below the hull. (Interior points near the silhouette
        // boundary CAN be upper-hull vertices when the sphere sample is
        // sparse — that is geometry, not a bug.)
        let pts = sphere_plus_interior(40, 120, 3);
        let mut st = Seq3Stats::default();
        let fs = upper_hull3_brute(&pts, &mut st);
        verify_upper_hull3(&pts, &fs, false).unwrap();
        let vs = crate::facet::vertex_set(&fs);
        for &v in &vs {
            let p = pts[v];
            let r2 = p.x * p.x + p.y * p.y + p.z * p.z;
            let xy = (p.x * p.x + p.y * p.y).sqrt();
            assert!(
                (r2 - 1.0).abs() < 1e-9 || xy > 0.2,
                "deep interior point {v} on hull"
            );
        }
    }

    #[test]
    fn facet_count_tracks_h() {
        let mut st = Seq3Stats::default();
        let f1 = upper_hull3_brute(&sphere_plus_interior(12, 80, 4), &mut st).len();
        let f2 = upper_hull3_brute(&sphere_plus_interior(48, 80, 4), &mut st).len();
        assert!(f2 > f1, "{f1} vs {f2}");
    }

    #[test]
    fn tiny_inputs() {
        let mut st = Seq3Stats::default();
        assert!(upper_hull3_brute(&[], &mut st).is_empty());
        let two = vec![Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 0.0, 0.0)];
        assert!(upper_hull3_brute(&two, &mut st).is_empty());
    }

    #[test]
    fn coplanar_input_supported() {
        let pts = ipch_geom::gen3d::coplanar(25, (0.5, -0.25, 1.0), 7);
        let mut st = Seq3Stats::default();
        let fs = upper_hull3_brute(&pts, &mut st);
        // facets exist and verify (any minimal triangulation is fine)
        verify_upper_hull3(&pts, &fs, false).unwrap();
    }
}
