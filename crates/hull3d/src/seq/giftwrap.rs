//! Gift wrapping (Chand–Kapur 1970) for the 3-D upper hull — the O(n·h)
//! output-sensitive sequential baseline (h = number of facets).
//!
//! Start from the silhouette: the 2-D upper hull of the (x, z) projection
//! lifts to upper-hull edges (its supporting lines extend to supporting
//! planes parallel to y). Then wrap: for every directed edge `u→v` that
//! needs the facet on its left (in xy-projection), pivot over the
//! left-side points — one O(n) pass per facet.

use ipch_geom::predicates::{orient2d_sign, orient3d_sign};
use ipch_geom::Point3;

use super::Seq3Stats;
use crate::facet::Facet;

/// Upper-hull facets by gift wrapping.
pub fn upper_hull3_giftwrap(points: &[Point3], stats: &mut Seq3Stats) -> Vec<Facet> {
    let n = points.len();
    if n < 3 {
        return vec![];
    }
    // silhouette: 2-D upper hull of the (x, z) projection
    let proj: Vec<ipch_geom::Point2> = points
        .iter()
        .map(|p| ipch_geom::Point2::new(p.x, p.z))
        .collect();
    let silhouette = ipch_geom::hull_chain::upper_hull_indices(&proj);
    stats.orient2d_tests += 2 * n as u64;
    if silhouette.len() < 2 {
        return vec![];
    }

    let mut queue: Vec<(usize, usize)> = Vec::new();
    for w in silhouette.windows(2) {
        queue.push((w[0], w[1]));
        queue.push((w[1], w[0]));
    }
    let mut visited: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let mut facets: std::collections::HashSet<Facet> = std::collections::HashSet::new();

    while let Some((u, v)) = queue.pop() {
        if !visited.insert((u, v)) {
            continue;
        }
        // pivot over points strictly left of u→v in projection
        let mut w: Option<usize> = None;
        for q in 0..n {
            if q == u || q == v {
                continue;
            }
            stats.orient2d_tests += 1;
            if orient2d_sign(points[u].xy(), points[v].xy(), points[q].xy()) <= 0 {
                continue;
            }
            w = Some(match w {
                None => q,
                Some(cur) => {
                    stats.orient3d_tests += 1;
                    // q above the plane of CCW facet (u, v, cur)?
                    if orient3d_sign(points[u], points[v], points[cur], points[q]) < 0 {
                        q
                    } else {
                        cur
                    }
                }
            });
        }
        let Some(w) = w else { continue }; // silhouette-boundary edge
        let f = Facet { a: u, b: v, c: w };
        if facets.insert(f.canonical()) {
            // the new facet is also the left-facet of (v, w) and (w, u)
            visited.insert((v, w));
            visited.insert((w, u));
            queue.push((w, v));
            queue.push((u, w));
        }
    }
    let mut out: Vec<Facet> = facets.into_iter().collect();
    out.sort_by_key(|f| f.ids());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facet::{verify_upper_hull3, vertex_set};
    use crate::seq::brute3d::upper_hull3_brute;
    use ipch_geom::gen3d::{in_ball, in_cube, on_sphere, sphere_plus_interior};

    #[test]
    fn matches_brute_oracle() {
        for seed in 0..5 {
            let pts = in_ball(50, seed);
            let mut s1 = Seq3Stats::default();
            let mut s2 = Seq3Stats::default();
            let gw = upper_hull3_giftwrap(&pts, &mut s1);
            let br = upper_hull3_brute(&pts, &mut s2);
            assert_eq!(gw, br, "seed {seed}");
            verify_upper_hull3(&pts, &gw, false).unwrap();
        }
    }

    #[test]
    fn cube_and_sphere_distributions() {
        for seed in 0..3 {
            for gen in [in_cube as fn(usize, u64) -> Vec<Point3>, on_sphere] {
                let pts = gen(60, seed + 10);
                let mut s1 = Seq3Stats::default();
                let mut s2 = Seq3Stats::default();
                let gw = upper_hull3_giftwrap(&pts, &mut s1);
                let br = upper_hull3_brute(&pts, &mut s2);
                assert_eq!(gw, br, "seed {seed}");
            }
        }
    }

    #[test]
    fn work_scales_with_h() {
        let n = 600;
        let small = sphere_plus_interior(10, n, 5);
        let large = sphere_plus_interior(150, n, 5);
        let mut s1 = Seq3Stats::default();
        let mut s2 = Seq3Stats::default();
        upper_hull3_giftwrap(&small, &mut s1);
        upper_hull3_giftwrap(&large, &mut s2);
        assert!(
            s2.total() > 3 * s1.total(),
            "work should track h: {} vs {}",
            s1.total(),
            s2.total()
        );
    }

    #[test]
    fn tiny_inputs() {
        let mut st = Seq3Stats::default();
        assert!(upper_hull3_giftwrap(&[], &mut st).is_empty());
        let two = vec![Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 1.0)];
        assert!(upper_hull3_giftwrap(&two, &mut st).is_empty());
    }

    #[test]
    fn interior_points_excluded() {
        let pts = sphere_plus_interior(20, 200, 9);
        let mut st = Seq3Stats::default();
        let fs = upper_hull3_giftwrap(&pts, &mut st);
        verify_upper_hull3(&pts, &fs, false).unwrap();
        for &v in &vertex_set(&fs) {
            let p = pts[v];
            assert!((p.x * p.x + p.y * p.y + p.z * p.z - 1.0).abs() < 1e-9);
        }
    }
}
