//! Sequential 3-D baselines.

pub mod brute3d;
pub mod es;
pub mod giftwrap;

/// Operation counters for sequential 3-D runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct Seq3Stats {
    /// orient3d evaluations.
    pub orient3d_tests: u64,
    /// orient2d evaluations (projections, containment).
    pub orient2d_tests: u64,
}

impl Seq3Stats {
    /// Total counted operations.
    pub fn total(&self) -> u64 {
        self.orient3d_tests + self.orient2d_tests
    }
}
