//! Bridge finding (paper Observation 2.4 and the base-problem oracle).
//!
//! *The bridge is the upper hull edge that intersects the vertical line
//! through one specified point* (the splitter). Kirkpatrick–Seidel observed
//! that finding it reduces to 2-variable LP: over lines `y = a·x + b`,
//! minimize the height `a·x₀ + b` at the splitter abscissa subject to every
//! point lying on or below the line (`a·xᵢ + b ≥ yᵢ`). The optimal line
//! supports the hull edge straddling x₀.
//!
//! [`bridge_lp_constraints`]/[`bridge_lp_objective`] build that reduction
//! (used by the LP experiments, T6). The hull algorithms themselves use
//! [`bridge_brute`]: the fully *exact* all-pairs formulation — a pair
//! (i, j) straddling x₀ is the bridge iff every other point is on or below
//! the line through it, which is a pure orientation test. One marking step
//! with n³ virtual processors, one election step, and two combining steps
//! to canonicalize collinear contacts. This is Observation 2.3's n³
//! brute-force specialized to one probe, and it is the deterministic
//! base-problem solver of §3.3 step 2.
//!
//! [`facet_brute`] is the 3-D analogue (Observation 2.2 with d = 3): the
//! upper-hull facet pierced by the vertical line through a splitter,
//! found over all point triples with n⁴ work.

use ipch_geom::predicates::{orient2d_sign, orient3d_sign};
use ipch_geom::{Point2, Point3};
use ipch_pram::{Machine, ModelClass, ModelContract, RaceExpectation, Shm, WritePolicy, EMPTY};

use crate::constraint::{f64_key, Halfplane, Objective2};

/// Concurrency contract of [`bridge_brute`]: the knock-out marks agree,
/// and every election (winner pair, canonical contacts) runs under
/// Priority or Combine — deterministic, never seed-dependent.
pub const BRIDGE_BRUTE_CONTRACT: ModelContract = ModelContract {
    algorithm: "lp/bridge_brute",
    class: ModelClass::Crcw,
    races: RaceExpectation::Deterministic,
};

/// Concurrency contract of [`facet_brute`]: as [`BRIDGE_BRUTE_CONTRACT`],
/// with the triple election under Priority.
pub const FACET_BRUTE_CONTRACT: ModelContract = ModelContract {
    algorithm: "lp/facet_brute",
    class: ModelClass::Crcw,
    races: RaceExpectation::Deterministic,
};

/// Symbolic step structure of [`bridge_brute`] for the static checker
/// ([`ipch_pram::verify`]): an n³-processor uniform knock-out scatter into
/// the n² pair array, then guarded single-cell elections (Priority winner,
/// Combine contact keys, Priority contact ids).
pub fn bridge_verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    let mut p = AlgorithmPlan::new(BRIDGE_BRUTE_CONTRACT);
    let bad = p.array("bridge.bad", Affine::n2());
    let win = p.array("bridge.win", Affine::k(1));
    let lmax = p.array("bridge.lmax", Affine::k(1));
    let rmin = p.array("bridge.rmin", Affine::k(1));
    let lwin = p.array("bridge.lwin", Affine::k(1));
    let rwin = p.array("bridge.rwin", Affine::k(1));
    // pid/n over n³ processors covers pairs [0, n²): every writer that hits
    // a pair writes the same mark (1).
    p.step(
        StepPlan::new("mark", Affine::n3(), WritePolicy::CombineOr).write_uniform(
            bad,
            IndexSet::Within {
                lo: Affine::k(0),
                hi: Affine::n2().plus(-1),
            },
        ),
    );
    p.step(
        StepPlan::new("elect", Affine::n2(), WritePolicy::PriorityMin)
            .read(bad, IndexSet::Exact(Affine::pid()))
            .write(
                win,
                IndexSet::Within {
                    lo: Affine::k(0),
                    hi: Affine::k(0),
                },
            ),
    );
    p.step(
        StepPlan::new("contact-keys", Affine::n(), WritePolicy::CombineMax).write(
            lmax,
            IndexSet::Within {
                lo: Affine::k(0),
                hi: Affine::k(0),
            },
        ),
    );
    p.step(
        StepPlan::new("contact-keys-min", Affine::n(), WritePolicy::CombineMin).write(
            rmin,
            IndexSet::Within {
                lo: Affine::k(0),
                hi: Affine::k(0),
            },
        ),
    );
    p.step(
        StepPlan::new("contact-elect", Affine::n(), WritePolicy::PriorityMin)
            .write(
                lwin,
                IndexSet::Within {
                    lo: Affine::k(0),
                    hi: Affine::k(0),
                },
            )
            .write(
                rwin,
                IndexSet::Within {
                    lo: Affine::k(0),
                    hi: Affine::k(0),
                },
            ),
    );
    p
}

/// Symbolic step structure of [`facet_brute`]. The candidate count is
/// host-enumerated (C(n,3) triples, then the survivors); the plan bounds
/// both by n³, and the supporting-test scatter — nc·n processors at run
/// time — by its write footprint into the candidate array, which is what
/// the bounds proof needs.
pub fn facet_verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    let mut p = AlgorithmPlan::new(FACET_BRUTE_CONTRACT);
    let bad = p.array("facet.bad", Affine::n3());
    let bad2 = p.array("facet.bad2", Affine::n3());
    let win = p.array("facet.win", Affine::k(1));
    p.step(
        StepPlan::new("triple-mark", Affine::n3(), WritePolicy::CombineOr)
            .write_uniform(bad, IndexSet::Exact(Affine::pid())),
    );
    p.step(
        StepPlan::new("support-mark", Affine::n3(), WritePolicy::CombineOr).write_uniform(
            bad2,
            IndexSet::Within {
                lo: Affine::k(0),
                hi: Affine::n3().plus(-1),
            },
        ),
    );
    p.step(
        StepPlan::new("facet-elect", Affine::n3(), WritePolicy::PriorityMin)
            .read(bad2, IndexSet::Exact(Affine::pid()))
            .write(
                win,
                IndexSet::Within {
                    lo: Affine::k(0),
                    hi: Affine::k(0),
                },
            ),
    );
    p
}

/// A bridge: the two endpoint *ids* (into the caller's point array) of the
/// upper-hull edge straddling the splitter, `points[left].x ≤ x₀ <
/// points[right].x`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bridge {
    /// Left endpoint id.
    pub left: usize,
    /// Right endpoint id.
    pub right: usize,
}

/// The LP constraints of the Kirkpatrick–Seidel reduction for the points
/// `ids` (variables are the line's (slope a, intercept b)).
pub fn bridge_lp_constraints(points: &[Point2], ids: &[usize]) -> Vec<Halfplane> {
    ids.iter()
        .map(|&i| Halfplane {
            a: points[i].x,
            b: 1.0,
            c: points[i].y,
        })
        .collect()
}

/// The LP objective of the reduction: minimize the line height at `x0`.
pub fn bridge_lp_objective(x0: f64) -> Objective2 {
    Objective2 { cx: x0, cy: 1.0 }
}

/// Exact brute-force bridge over the subset `ids` of `points`, straddling
/// the vertical line `x = x0`. Returns `None` when no pair straddles
/// (x0 outside the subset's open x-range).
///
/// Cost: O(1) executed steps, Θ(|ids|³) work.
pub fn bridge_brute(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point2],
    ids: &[usize],
    x0: f64,
) -> Option<Bridge> {
    let n = ids.len();
    if n < 2 {
        return None;
    }
    let npairs = n * n;

    // Step 1: knock out non-straddling and non-supporting pairs.
    let bad = shm.alloc("bridge.bad", npairs, 0);
    m.step_with_policy(shm, 0..npairs * n, WritePolicy::CombineOr, |ctx| {
        let p = ctx.pid / n;
        let k = ctx.pid % n;
        let (i, j) = (p / n, p % n);
        let (pi, pj) = (points[ids[i]], points[ids[j]]);
        if !(pi.x <= x0 && x0 < pj.x) {
            if k == 0 {
                ctx.write(bad, p, 1);
            }
            return;
        }
        // pi.x ≤ x0 < pj.x ⇒ pi.x < pj.x: left-to-right orientation is valid
        if orient2d_sign(pi, pj, points[ids[k]]) > 0 {
            ctx.write(bad, p, 1);
        }
    });

    // Step 2: surviving pairs elect a representative supporting line. All
    // survivors support the same bridge geometry, but their ids differ, so
    // the election runs under Priority (lexicographically least pair) —
    // an Arbitrary-policy election here would make the representative, and
    // hence the returned contact pair, depend on the simulator's tiebreak
    // seed whenever contacts are collinear.
    let win = shm.alloc("bridge.win", 1, EMPTY);
    m.step_with_policy(shm, 0..npairs, WritePolicy::PriorityMin, |ctx| {
        let p = ctx.pid;
        if ctx.read(bad, p) == 0 {
            ctx.write(win, 0, p as i64);
        }
    });
    let w = shm.get(win, 0);
    if w == EMPTY {
        return None;
    }
    let (wi, wj) = ((w as usize) / n, (w as usize) % n);
    let (a, b) = (points[ids[wi]], points[ids[wj]]);

    // Steps 3–4: canonicalize collinear contacts — among subset points *on*
    // the supporting line, the left contact is the one with the largest
    // x ≤ x0 and the right contact the smallest x > x0 (combining min/max
    // over order-isomorphic f64 keys, then an election step each).
    let lmax = shm.alloc("bridge.lmax", 1, i64::MIN);
    let rmin = shm.alloc("bridge.rmin", 1, i64::MAX);
    m.step_with_policy(shm, 0..n, WritePolicy::CombineMax, |ctx| {
        let k = ctx.pid;
        let pk = points[ids[k]];
        if orient2d_sign(a, b, pk) == 0 && pk.x <= x0 {
            ctx.write(lmax, 0, f64_key(pk.x));
        }
    });
    m.step_with_policy(shm, 0..n, WritePolicy::CombineMin, |ctx| {
        let k = ctx.pid;
        let pk = points[ids[k]];
        if orient2d_sign(a, b, pk) == 0 && pk.x > x0 {
            ctx.write(rmin, 0, f64_key(pk.x));
        }
    });
    let (lkey, rkey) = (shm.get(lmax, 0), shm.get(rmin, 0));
    let lwin = shm.alloc("bridge.lwin", 1, EMPTY);
    let rwin = shm.alloc("bridge.rwin", 1, EMPTY);
    m.step_with_policy(shm, 0..n, WritePolicy::PriorityMin, |ctx| {
        let k = ctx.pid;
        let pk = points[ids[k]];
        if orient2d_sign(a, b, pk) == 0 {
            if pk.x <= x0 && f64_key(pk.x) == lkey {
                ctx.write(lwin, 0, ids[k] as i64);
            }
            if pk.x > x0 && f64_key(pk.x) == rkey {
                ctx.write(rwin, 0, ids[k] as i64);
            }
        }
    });
    let (l, r) = (shm.get(lwin, 0), shm.get(rwin, 0));
    debug_assert!(l != EMPTY && r != EMPTY);
    Some(Bridge {
        left: l as usize,
        right: r as usize,
    })
}

/// Exact brute-force 3-D facet probe: the upper-hull facet whose
/// xy-projection contains the splitter abscissa `(x0, y0)`, over the subset
/// `ids` of `points`. Returns the facet's three vertex ids (counter-
/// clockwise seen from above), or `None` if `(x0, y0)` is outside the
/// subset's xy convex hull or the subset is degenerate.
///
/// Cost: O(1) executed steps, Θ(|ids|⁴) work.
pub fn facet_brute(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point3],
    ids: &[usize],
    x0: f64,
    y0: f64,
) -> Option<(usize, usize, usize)> {
    let n = ids.len();
    if n < 3 {
        return None;
    }
    let q = Point2::new(x0, y0);
    // Host-enumerated unordered triples (the model's i<j<k processor
    // wiring; enumeration is addressing, not work — the steps below carry
    // the PRAM cost).
    let triples: Vec<(u32, u32, u32)> = {
        let mut v = Vec::with_capacity(n * (n - 1) * (n - 2) / 6);
        for i in 0..n {
            for j in i + 1..n {
                for k in j + 1..n {
                    v.push((i as u32, j as u32, k as u32));
                }
            }
        }
        v
    };
    let nt = triples.len();

    // Step 1: knock out degenerate triples and those whose projected
    // triangle misses the splitter (C(n,3) processors, O(1) work each).
    let bad = shm.alloc("facet.bad", nt, 0);
    let triples_ref = &triples;
    m.step_with_policy(shm, 0..nt, WritePolicy::CombineOr, |ctx| {
        let (i, j, k) = triples_ref[ctx.pid];
        let (a3, b3, c3) = (
            points[ids[i as usize]],
            points[ids[j as usize]],
            points[ids[k as usize]],
        );
        let s = orient2d_sign(a3.xy(), b3.xy(), c3.xy());
        if s == 0 {
            ctx.write(bad, ctx.pid, 1);
            return;
        }
        let (a3, b3, c3) = if s > 0 { (a3, b3, c3) } else { (a3, c3, b3) };
        if orient2d_sign(a3.xy(), b3.xy(), q) < 0
            || orient2d_sign(b3.xy(), c3.xy(), q) < 0
            || orient2d_sign(c3.xy(), a3.xy(), q) < 0
        {
            ctx.write(bad, ctx.pid, 1);
        }
    });

    // Step 2: supporting test over the surviving candidates × all points.
    let cands: Vec<usize> = (0..nt).filter(|&t| shm.get(bad, t) == 0).collect();
    if cands.is_empty() {
        return None;
    }
    let nc = cands.len();
    let bad2 = shm.alloc("facet.bad2", nc, 0);
    let cands_ref = &cands;
    m.step_with_policy(shm, 0..nc * n, WritePolicy::CombineOr, |ctx| {
        let c = ctx.pid / n;
        let d = ctx.pid % n;
        let (i, j, k) = triples_ref[cands_ref[c]];
        let (a3, b3, c3) = (
            points[ids[i as usize]],
            points[ids[j as usize]],
            points[ids[k as usize]],
        );
        let (a3, b3, c3) = if orient2d_sign(a3.xy(), b3.xy(), c3.xy()) > 0 {
            (a3, b3, c3)
        } else {
            (a3, c3, b3)
        };
        // point d above the plane? (orient3d > 0 ⇔ below for a CCW triple)
        if orient3d_sign(a3, b3, c3, points[ids[d]]) < 0 {
            ctx.write(bad2, c, 1);
        }
    });

    // Step 3: elect a surviving triple. As in [`bridge_brute`], survivors
    // are interchangeable (coplanar-contact degeneracies yield several) but
    // not identical, so Priority elects the least candidate index instead
    // of a seed-dependent Arbitrary winner.
    let win = shm.alloc("facet.win", 1, EMPTY);
    m.step_with_policy(shm, 0..nc, WritePolicy::PriorityMin, |ctx| {
        let c = ctx.pid;
        if ctx.read(bad2, c) == 0 {
            ctx.write(win, 0, cands_ref[c] as i64);
        }
    });
    let w = shm.get(win, 0);
    if w == EMPTY {
        return None;
    }
    let (i, j, k) = triples[w as usize];
    let (i, j, k) = (i as usize, j as usize, k as usize);
    let (a3, b3, c3) = (points[ids[i]], points[ids[j]], points[ids[k]]);
    if orient2d_sign(a3.xy(), b3.xy(), c3.xy()) > 0 {
        Some((ids[i], ids[j], ids[k]))
    } else {
        Some((ids[i], ids[k], ids[j]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::hull_chain::UpperHull;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn check_bridge(points: &[Point2], x0: f64) -> Option<Bridge> {
        let mut m = Machine::new(7);
        let mut shm = Shm::new();
        let ids: Vec<usize> = (0..points.len()).collect();
        let b = bridge_brute(&mut m, &mut shm, points, &ids, x0);
        if let Some(br) = b {
            // every point on or below the bridge line
            let (u, v) = (points[br.left], points[br.right]);
            assert!(u.x <= x0 && x0 < v.x, "bridge does not straddle");
            for &w in points {
                assert!(orient2d_sign(u, v, w) <= 0, "{w:?} above bridge");
            }
        }
        b
    }

    /// Regression for the election fixes: with four collinear hull points
    /// every straddling pair supports the bridge line, so `bridge.win`
    /// takes concurrent distinct writes — Priority must make the winner a
    /// deterministic function of the input, never of the tiebreak seed.
    #[test]
    fn analyzer_pins_bridge_election() {
        use ipch_pram::AnalyzeConfig;
        let pts = vec![
            p(-2.0, 0.0),
            p(-1.0, 0.0),
            p(1.0, 0.0),
            p(2.0, 0.0),
            p(0.0, -1.0),
        ];
        let mut m = Machine::new(9);
        m.enable_analysis(AnalyzeConfig::default());
        m.declare_contract(&BRIDGE_BRUTE_CONTRACT);
        let mut shm = Shm::new();
        shm.enable_shadow(true);
        let ids: Vec<usize> = (0..pts.len()).collect();
        let b = bridge_brute(&mut m, &mut shm, &pts, &ids, 0.0).expect("bridge exists");
        // canonical contacts: largest x ≤ 0 and smallest x > 0 on the line
        assert_eq!((b.left, b.right), (1, 2));
        let r = m.analysis_report().unwrap();
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.seed_dependent_races, 0);
        assert_eq!(r.unconfirmed_arbitrary_races, 0);
        assert!(r.deterministic_races > 0, "election should be contested");
    }

    #[test]
    fn bridge_on_triangle() {
        let pts = vec![
            p(0.0, 0.0),
            p(2.0, 2.0),
            p(4.0, 0.0),
            p(1.0, 0.5),
            p(3.0, 0.5),
        ];
        let b = check_bridge(&pts, 1.0).unwrap();
        assert_eq!((b.left, b.right), (0, 1));
        let b = check_bridge(&pts, 3.0).unwrap();
        assert_eq!((b.left, b.right), (1, 2));
        let b = check_bridge(&pts, 2.0).unwrap(); // exactly at the apex
        assert_eq!((b.left, b.right), (1, 2));
    }

    #[test]
    fn bridge_outside_range_is_none() {
        let pts = vec![p(0.0, 0.0), p(1.0, 1.0)];
        assert!(check_bridge(&pts, -1.0).is_none());
        assert!(check_bridge(&pts, 1.0).is_none()); // x0 ≥ max x
        assert!(check_bridge(&pts, 0.5).is_some());
    }

    #[test]
    fn bridge_collinear_contacts_canonicalized() {
        // four collinear points on the top edge: contacts must hug x0
        let pts = vec![
            p(0.0, 1.0),
            p(1.0, 1.0),
            p(2.0, 1.0),
            p(3.0, 1.0),
            p(1.5, 0.0),
        ];
        let b = check_bridge(&pts, 1.5).unwrap();
        assert_eq!((b.left, b.right), (1, 2));
    }

    #[test]
    fn bridge_matches_hull_oracle_randomly() {
        use ipch_geom::generators::uniform_disk;
        for seed in 0..10u64 {
            let pts = uniform_disk(60, seed);
            let hull = UpperHull::of(&pts);
            // probe midpoints of each hull edge's x-span
            for w in hull.vertices.windows(2) {
                let x0 = (pts[w[0]].x + pts[w[1]].x) / 2.0;
                let b = check_bridge(&pts, x0).unwrap();
                assert_eq!((b.left, b.right), (w[0], w[1]), "seed {seed} x0 {x0}");
            }
        }
    }

    #[test]
    fn bridge_subset_ignores_excluded_points() {
        // the global hull apex is excluded from the subset
        let pts = vec![
            p(0.0, 0.0),
            p(2.0, 5.0),
            p(4.0, 0.0),
            p(1.0, 1.0),
            p(3.0, 1.0),
        ];
        let ids = vec![0usize, 2, 3, 4];
        let mut m = Machine::new(8);
        let mut shm = Shm::new();
        let b = bridge_brute(&mut m, &mut shm, &pts, &ids, 2.0).unwrap();
        assert_eq!((b.left, b.right), (3, 4));
    }

    /// As [`analyzer_pins_bridge_election`], for the 3-D facet election: a
    /// coplanar square top makes several triples support the pierced facet,
    /// so `facet.win` takes concurrent distinct writes under Priority.
    #[test]
    fn analyzer_pins_facet_election() {
        use ipch_pram::AnalyzeConfig;
        let pts = vec![
            Point3::new(1.0, 1.0, 0.0),
            Point3::new(1.0, -1.0, 0.0),
            Point3::new(-1.0, 1.0, 0.0),
            Point3::new(-1.0, -1.0, 0.0),
            Point3::new(0.0, 0.0, -2.0),
        ];
        let mut m = Machine::new(4);
        m.enable_analysis(AnalyzeConfig::default());
        m.declare_contract(&FACET_BRUTE_CONTRACT);
        let mut shm = Shm::new();
        shm.enable_shadow(true);
        let ids: Vec<usize> = (0..pts.len()).collect();
        facet_brute(&mut m, &mut shm, &pts, &ids, 0.1, 0.05).expect("facet exists");
        let r = m.analysis_report().unwrap();
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.seed_dependent_races, 0);
        assert_eq!(r.unconfirmed_arbitrary_races, 0);
        assert!(r.deterministic_races > 0, "election should be contested");
    }

    #[test]
    fn facet_on_tetrahedron() {
        let pts = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(4.0, 0.0, 0.0),
            Point3::new(0.0, 4.0, 0.0),
            Point3::new(1.0, 1.0, 3.0), // apex
            Point3::new(1.0, 1.0, -5.0),
        ];
        let mut m = Machine::new(9);
        let mut shm = Shm::new();
        let ids: Vec<usize> = (0..pts.len()).collect();
        let f = facet_brute(&mut m, &mut shm, &pts, &ids, 1.0, 1.0).unwrap();
        // the facet above (1,1) must include the apex
        let tri = [f.0, f.1, f.2];
        assert!(tri.contains(&3), "facet {tri:?} misses the apex");
        // all points below its plane
        let (a, b, c) = (pts[f.0], pts[f.1], pts[f.2]);
        for &d in &pts {
            assert!(orient3d_sign(a, b, c, d) >= 0);
        }
    }

    #[test]
    fn facet_outside_projection_is_none() {
        let pts = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(0.3, 0.3, 1.0),
        ];
        let mut m = Machine::new(10);
        let mut shm = Shm::new();
        let ids: Vec<usize> = (0..pts.len()).collect();
        assert!(facet_brute(&mut m, &mut shm, &pts, &ids, 5.0, 5.0,).is_none());
        assert!(facet_brute(&mut m, &mut shm, &pts, &ids, 0.2, 0.2).is_some());
    }

    #[test]
    fn lp_reduction_consistent_with_brute_bridge() {
        use crate::brute::{solve_lp2_brute, Lp2Outcome};
        use ipch_geom::generators::uniform_square;
        let pts = uniform_square(40, 5);
        let ids: Vec<usize> = (0..pts.len()).collect();
        let hull = UpperHull::of(&pts);
        let mid = hull.vertices.len() / 2;
        let x0 = (pts[hull.vertices[mid - 1]].x + pts[hull.vertices[mid]].x) / 2.0;
        let cs = bridge_lp_constraints(&pts, &ids);
        let obj = bridge_lp_objective(x0);
        let mut m = Machine::new(11);
        let mut shm = Shm::new();
        match solve_lp2_brute(&mut m, &mut shm, &cs, &obj) {
            Lp2Outcome::Optimal(s) => {
                // LP variables are (slope, intercept): tight constraints =
                // bridge endpoints
                let mut tights = [s.tight.0, s.tight.1];
                tights.sort_by(|&u, &v| pts[u].cmp_xy(&pts[v]).reverse());
                let b = bridge_brute(&mut m, &mut shm, &pts, &ids, x0).unwrap();
                let mut expect = [b.left, b.right];
                expect.sort_by(|&u, &v| pts[u].cmp_xy(&pts[v]).reverse());
                assert_eq!(tights, expect);
            }
            other => panic!("{other:?}"),
        }
    }
}
