//! LP constraint types and exact feasibility kernels.
//!
//! A 2-D LP instance is: minimize `cx·x + cy·y` subject to half-planes
//! `aᵢ·x + bᵢ·y ≥ cᵢ`. The bridge-finding reduction (Observation 2.4)
//! produces instances whose variables are the *line coefficients* (slope,
//! intercept) of the sought hull edge — see [`crate::bridge`].
//!
//! Candidate optima are intersections of constraint boundaries; deciding
//! whether a candidate satisfies a constraint is a sign-of-determinant
//! question that we evaluate **exactly** via [`ipch_geom::exact`]
//! expansions (Cramer's rule without division), so degenerate instances
//! (parallel boundaries, multiple optima) are decided, not guessed.

use ipch_geom::exact::{two_product, Expansion};

/// Half-plane constraint `a·x + b·y ≥ c`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Halfplane {
    /// x-coefficient.
    pub a: f64,
    /// y-coefficient.
    pub b: f64,
    /// Right-hand side.
    pub c: f64,
}

/// Linear objective `minimize cx·x + cy·y`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Objective2 {
    /// x-coefficient.
    pub cx: f64,
    /// y-coefficient.
    pub cy: f64,
}

/// A 2-D LP optimum: the vertex `(x, y)` and the two tight constraints
/// that define it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Lp2Solution {
    /// Optimal x.
    pub x: f64,
    /// Optimal y.
    pub y: f64,
    /// Indices of the two defining (tight) constraints.
    pub tight: (usize, usize),
}

/// Half-space constraint `a·x + b·y + c·z ≥ d`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Halfspace {
    /// x-coefficient.
    pub a: f64,
    /// y-coefficient.
    pub b: f64,
    /// z-coefficient.
    pub c: f64,
    /// Right-hand side.
    pub d: f64,
}

/// Exact 2×2 determinant as an expansion.
fn det2e(a: f64, b: f64, c: f64, d: f64) -> Expansion {
    let (h1, l1) = two_product(a, d);
    let (h2, l2) = two_product(b, c);
    Expansion::from_two(h1, l1).sub(&Expansion::from_two(h2, l2))
}

/// The candidate vertex of two half-plane boundaries, in exact Cramer
/// form: `(D, Dx, Dy)` with `x = Dx/D`, `y = Dy/D`. `D.sign() == 0` means
/// the boundaries are parallel (no candidate).
pub fn cramer2(i: &Halfplane, j: &Halfplane) -> (Expansion, Expansion, Expansion) {
    let d = det2e(i.a, i.b, j.a, j.b);
    let dx = det2e(i.c, i.b, j.c, j.b);
    let dy = det2e(i.a, i.c, j.a, j.c);
    (d, dx, dy)
}

/// Exact test: does the candidate `(Dx/D, Dy/D)` satisfy half-plane `k`?
///
/// `a·(Dx/D) + b·(Dy/D) ≥ c  ⇔  sign(a·Dx + b·Dy − c·D) agrees with
/// sign(D)` (or is zero).
pub fn candidate_satisfies(d: &Expansion, dx: &Expansion, dy: &Expansion, k: &Halfplane) -> bool {
    let t = dx.scale(k.a).add(&dy.scale(k.b)).sub(&d.scale(k.c));
    t.sign() * d.sign() >= 0
}

/// Filtered feasibility test: decide by f64 when the margin is safely
/// above the rounding-error bound, falling back to the exact
/// [`candidate_satisfies`]. `approx = (D, Dx, Dy)` as f64.
#[inline]
pub fn candidate_satisfies_fast(
    exact: &(Expansion, Expansion, Expansion),
    approx: (f64, f64, f64),
    k: &Halfplane,
) -> bool {
    let (df, dxf, dyf) = approx;
    let t = k.a * dxf + k.b * dyf - k.c * df;
    let mag = (k.a * dxf).abs() + (k.b * dyf).abs() + (k.c * df).abs();
    if t.abs() > 1e-13 * mag {
        let ts = if t > 0.0 { 1 } else { -1 };
        ts * exact.0.sign() >= 0
    } else {
        candidate_satisfies(&exact.0, &exact.1, &exact.2, k)
    }
}

/// Approximate (f64) objective value of a Cramer candidate. Used only as a
/// comparison key; exact rational tie-breaking happens host-side.
pub fn candidate_objective(d: &Expansion, dx: &Expansion, dy: &Expansion, obj: &Objective2) -> f64 {
    (obj.cx * dx.approx() + obj.cy * dy.approx()) / d.approx()
}

/// Exact comparison of two Cramer candidates' objectives:
/// sign of `f(cand1) − f(cand2)`.
pub fn compare_objectives(
    c1: (&Expansion, &Expansion, &Expansion),
    c2: (&Expansion, &Expansion, &Expansion),
    obj: &Objective2,
) -> std::cmp::Ordering {
    // f1 = N1/D1, f2 = N2/D2 with Nᵢ = cx·Dxᵢ + cy·Dyᵢ
    let n1 = c1.1.scale(obj.cx).add(&c1.2.scale(obj.cy));
    let n2 = c2.1.scale(obj.cx).add(&c2.2.scale(obj.cy));
    // sign(N1·D2 − N2·D1)·sign(D1)·sign(D2)
    let diff = n1.mul(c2.0).sub(&n2.mul(c1.0));
    let s = diff.sign() * c1.0.sign() * c2.0.sign();
    s.cmp(&0)
}

/// Order-isomorphic mapping f64 → i64 (total order on finite floats),
/// letting PRAM Combining-Min steps minimize real-valued keys exactly.
///
/// Delegates to the canonical [`ipch_geom::soa::f64_key`] (kept here for
/// API stability — every LP call site imports it from this module).
#[inline]
pub fn f64_key(v: f64) -> i64 {
    ipch_geom::soa::f64_key(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hp(a: f64, b: f64, c: f64) -> Halfplane {
        Halfplane { a, b, c }
    }

    #[test]
    fn cramer_simple_intersection() {
        // x ≥ 1 (boundary x = 1), y ≥ 2 (boundary y = 2) → vertex (1, 2)
        let (d, dx, dy) = cramer2(&hp(1.0, 0.0, 1.0), &hp(0.0, 1.0, 2.0));
        assert_eq!(dx.approx() / d.approx(), 1.0);
        assert_eq!(dy.approx() / d.approx(), 2.0);
    }

    #[test]
    fn cramer_parallel_detected() {
        let (d, _, _) = cramer2(&hp(1.0, 1.0, 0.0), &hp(2.0, 2.0, 5.0));
        assert_eq!(d.sign(), 0);
    }

    #[test]
    fn satisfies_basic_and_boundary() {
        let (d, dx, dy) = cramer2(&hp(1.0, 0.0, 1.0), &hp(0.0, 1.0, 2.0)); // (1,2)
        assert!(candidate_satisfies(&d, &dx, &dy, &hp(1.0, 1.0, 2.0))); // 3 ≥ 2
        assert!(candidate_satisfies(&d, &dx, &dy, &hp(1.0, 1.0, 3.0))); // 3 ≥ 3 tight
        assert!(!candidate_satisfies(&d, &dx, &dy, &hp(1.0, 1.0, 4.0))); // 3 < 4
                                                                         // negative-D orientation must not flip the verdict
        let (d2, dx2, dy2) = cramer2(&hp(0.0, 1.0, 2.0), &hp(1.0, 0.0, 1.0));
        assert_eq!(d2.sign(), -d.sign());
        assert!(candidate_satisfies(&d2, &dx2, &dy2, &hp(1.0, 1.0, 2.0)));
        assert!(!candidate_satisfies(&d2, &dx2, &dy2, &hp(1.0, 1.0, 4.0)));
    }

    #[test]
    fn satisfies_near_degenerate_exactly() {
        // Candidate exactly on the constraint boundary, built so f64
        // evaluation of a·x + b·y − c would be noisy.
        let (d, dx, dy) = cramer2(&hp(3.0, 1.0, 0.1), &hp(1.0, 3.0, 0.1));
        // the symmetric vertex lies on x = y; constraint x − y ≥ 0 is tight
        assert!(candidate_satisfies(&d, &dx, &dy, &hp(1.0, -1.0, 0.0)));
        assert!(!candidate_satisfies(&d, &dx, &dy, &hp(1.0, -1.0, 1e-300)));
    }

    #[test]
    fn objective_comparison_exact() {
        let obj = Objective2 { cx: 1.0, cy: 1.0 };
        let a = cramer2(&hp(1.0, 0.0, 1.0), &hp(0.0, 1.0, 2.0)); // (1,2): f=3
        let b = cramer2(&hp(1.0, 0.0, 2.0), &hp(0.0, 1.0, 1.0)); // (2,1): f=3
        let c = cramer2(&hp(1.0, 0.0, 1.0), &hp(0.0, 1.0, 1.0)); // (1,1): f=2
        assert_eq!(
            compare_objectives((&a.0, &a.1, &a.2), (&b.0, &b.1, &b.2), &obj),
            std::cmp::Ordering::Equal
        );
        assert_eq!(
            compare_objectives((&c.0, &c.1, &c.2), (&a.0, &a.1, &a.2), &obj),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn f64_key_monotone() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -2.0,
            -1.0,
            -1e-300,
            -0.0,
            0.0,
            1e-300,
            1.0,
            2.0,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(f64_key(w[0]) <= f64_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        assert!(f64_key(-2.0) < f64_key(-1.0));
        assert!(f64_key(-0.0) < f64_key(0.0)); // distinct keys, right order
    }
}
