//! # ipch-lp — linear-programming substrate (paper §2.1, §3.3–3.4)
//!
//! The paper's convex-hull algorithms "use linear programming to *probe*
//! the convex hull, finding a facet about which we may then split the
//! problem and recurse" (§1). This crate provides every LP ingredient they
//! invoke:
//!
//! * [`constraint`] — half-plane / half-space constraint types, objectives,
//!   and the exact (expansion-arithmetic) feasibility kernels.
//! * [`brute`] — Observation 2.2: constant-time brute-force LP with
//!   n^{d+1} work, executed on the PRAM simulator.
//! * [`seidel`] — Seidel's randomized incremental LP, the sequential
//!   oracle the parallel solvers are verified against.
//! * [`alon_megiddo`] — Lemma 2.2: the Alon–Megiddo-style randomized
//!   parallel LP (contiguous input): repeated random base problems +
//!   survivor filtering with the doubling probability schedule, O(1)
//!   rounds almost surely.
//! * [`bridge`] — Observation 2.4: the Kirkpatrick–Seidel reduction of
//!   *bridge finding* (the upper-hull edge crossing a vertical line) to
//!   2-variable LP, plus the fully exact all-pairs brute-force bridge
//!   solver the hull algorithms use as their base-problem oracle, and its
//!   3-D (facet through a vertical line) analogue.
//! * [`inplace_bridge`] — §3.3/§3.4: in-place bridge finding on a
//!   *scattered* subset of the input, built from the random-sample and
//!   in-place-compaction procedures — the paper's replacement for
//!   Alon–Megiddo's contiguous-input assumption.

pub mod alon_megiddo;
pub mod bridge;
pub mod brute;
pub mod constraint;
pub mod inplace_bridge;
pub mod lp3d;
pub mod seidel;
pub mod seidel3;
pub mod supervised;

/// All LP entry-point plans for the static checker
/// ([`ipch_pram::verify`]), in the crate's canonical order.
pub fn verify_plans() -> Vec<ipch_pram::verify::AlgorithmPlan> {
    vec![
        brute::verify_plan(),
        lp3d::verify_plan(),
        alon_megiddo::verify_plan(),
        bridge::bridge_verify_plan(),
        bridge::facet_verify_plan(),
        inplace_bridge::verify_plan(),
    ]
}

#[cfg(test)]
mod verify_tests {
    use ipch_pram::verify::{verify_all, Verdict, VerifyConfig};

    #[test]
    fn all_lp_plans_verify() {
        for n in [0usize, 1, 2, 64, 4096] {
            let reports = verify_all(&super::verify_plans(), n, &VerifyConfig::default()).unwrap();
            assert_eq!(reports.len(), 6);
            for r in &reports {
                assert_eq!(
                    r.verdict,
                    Verdict::VerifiedStatic,
                    "{} at n={n}",
                    r.algorithm
                );
            }
        }
    }
}
