//! Seidel's randomized incremental LP — the sequential baseline/oracle.
//!
//! Expected O(n) time for fixed dimension. The paper's probes are all
//! 2-variable LPs, so only d = 2 is provided. Works in f64 (it is the
//! *reference* the parallel solvers' outputs are compared against on
//! non-degenerate instances; exactness lives in the brute solver).
//!
//! The instance must be bounded: callers add a large bounding box when the
//! natural constraints do not bound the objective (the bridge reduction's
//! instances are bounded whenever the splitter lies strictly inside the
//! point set's x-range; see [`crate::bridge`]).

use ipch_pram::rng::SplitMix64;

use crate::constraint::{Halfplane, Objective2};

/// Solve `minimize obj` subject to `constraints`, returning the optimal
/// vertex, or `None` for infeasible/unbounded instances.
pub fn solve_lp2_seidel(
    constraints: &[Halfplane],
    obj: &Objective2,
    seed: u64,
) -> Option<(f64, f64)> {
    let mut order: Vec<usize> = (0..constraints.len()).collect();
    let mut rng = SplitMix64::new(seed);
    for i in (1..order.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        order.swap(i, j);
    }

    // Start from a huge bounding box oriented so the objective is bounded.
    const M: f64 = 1e12;
    let mut x;
    let mut y;
    // initial optimum of the box alone
    x = if obj.cx > 0.0 { -M } else { M };
    y = if obj.cy > 0.0 { -M } else { M };

    let mut active: Vec<Halfplane> = Vec::with_capacity(constraints.len() + 4);
    for (idx, &ci) in order.iter().enumerate() {
        let c = constraints[ci];
        if c.a * x + c.b * y >= c.c - 1e-9 * c.c.abs().max(1.0) {
            active.push(c);
            continue;
        }
        // Re-optimize on the boundary line a·x + b·y = c over constraints
        // seen so far (a 1-D LP).
        let sol = solve_on_line(&active[..], &c, obj)?;
        x = sol.0;
        y = sol.1;
        active.push(c);
        let _ = idx;
    }
    if x.abs() >= M * 0.99 || y.abs() >= M * 0.99 {
        return None; // ran off the artificial box: unbounded
    }
    Some((x, y))
}

/// 1-D LP: minimize `obj` along the line `l.a·x + l.b·y = l.c`, subject to
/// the half-planes in `cs`. Returns `None` if the feasible interval is
/// empty.
fn solve_on_line(cs: &[Halfplane], l: &Halfplane, obj: &Objective2) -> Option<(f64, f64)> {
    // Parameterize the line as p(t) = p0 + t·dir.
    let (p0, dir) = if l.b.abs() >= l.a.abs() {
        // y = (c − a·x)/b; param by x
        ((0.0, l.c / l.b), (1.0, -l.a / l.b))
    } else {
        ((l.c / l.a, 0.0), (-l.b / l.a, 1.0))
    };
    const M: f64 = 1e12;
    let mut lo = -M;
    let mut hi = M;
    for c in cs {
        // c.a·(p0x + t·dx) + c.b·(p0y + t·dy) ≥ c.c
        let g = c.a * dir.0 + c.b * dir.1;
        let h = c.c - (c.a * p0.0 + c.b * p0.1);
        if g.abs() < 1e-30 {
            if h > 1e-9 * h.abs().max(1.0) {
                return None; // line entirely infeasible for c
            }
            continue;
        }
        let t = h / g;
        if g > 0.0 {
            lo = lo.max(t);
        } else {
            hi = hi.min(t);
        }
        if lo > hi + 1e-9 {
            return None;
        }
    }
    let fdir = obj.cx * dir.0 + obj.cy * dir.1;
    let t = if fdir > 0.0 {
        lo
    } else if fdir < 0.0 {
        hi
    } else {
        lo
    };
    Some((p0.0 + t * dir.0, p0.1 + t * dir.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hp(a: f64, b: f64, c: f64) -> Halfplane {
        Halfplane { a, b, c }
    }

    #[test]
    fn box_corner() {
        let cs = vec![
            hp(1.0, 0.0, 1.0),
            hp(0.0, 1.0, 2.0),
            hp(-1.0, 0.0, -10.0),
            hp(0.0, -1.0, -10.0),
        ];
        let (x, y) = solve_lp2_seidel(&cs, &Objective2 { cx: 1.0, cy: 1.0 }, 1).unwrap();
        assert!((x - 1.0).abs() < 1e-6 && (y - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible() {
        let cs = vec![hp(1.0, 0.0, 5.0), hp(-1.0, 0.0, -1.0)];
        assert!(solve_lp2_seidel(&cs, &Objective2 { cx: 0.0, cy: 1.0 }, 2).is_none());
    }

    #[test]
    fn unbounded_reported() {
        let cs = vec![hp(0.0, 1.0, 0.0)]; // y >= 0 only
        assert!(solve_lp2_seidel(&cs, &Objective2 { cx: 1.0, cy: 0.0 }, 3).is_none());
    }

    #[test]
    fn agrees_with_brute_on_random_instances() {
        use crate::brute::{solve_lp2_brute, Lp2Outcome};
        let mut rng = SplitMix64::new(9);
        for trial in 0..30u64 {
            let n = 3 + (trial % 10) as usize;
            let cs: Vec<Halfplane> = (0..n)
                .map(|_| {
                    let t = rng.next_f64() * std::f64::consts::TAU;
                    hp(-t.cos(), -t.sin(), -1.0 - rng.next_f64())
                })
                .collect();
            let th = rng.next_f64() * std::f64::consts::TAU;
            let obj = Objective2 {
                cx: th.cos(),
                cy: th.sin(),
            };
            let mut m = ipch_pram::Machine::new(trial);
            let mut shm = ipch_pram::Shm::new();
            let b = solve_lp2_brute(&mut m, &mut shm, &cs, &obj);
            let s = solve_lp2_seidel(&cs, &obj, trial);
            if let (Lp2Outcome::Optimal(bs), Some((sx, sy))) = (b, s) {
                let fb = obj.cx * bs.x + obj.cy * bs.y;
                let fs = obj.cx * sx + obj.cy * sy;
                assert!(
                    (fb - fs).abs() < 1e-6 * (1.0 + fb.abs()),
                    "trial {trial}: {fb} vs {fs}"
                );
            }
        }
    }

    #[test]
    fn seed_invariance_of_optimum() {
        let cs = vec![
            hp(1.0, 0.0, 0.0),
            hp(0.0, 1.0, 0.0),
            hp(-1.0, -1.0, -3.0),
            hp(1.0, -1.0, -2.0),
        ];
        let obj = Objective2 { cx: 0.3, cy: 0.7 };
        let a = solve_lp2_seidel(&cs, &obj, 1).unwrap();
        let b = solve_lp2_seidel(&cs, &obj, 999).unwrap();
        let fa = obj.cx * a.0 + obj.cy * a.1;
        let fb = obj.cx * b.0 + obj.cy * b.1;
        assert!((fa - fb).abs() < 1e-9);
    }
}
