//! Supervised (Las Vegas) entry points for the LP-flavoured primitives.
//!
//! A bridge or facet probe has a cheap independent certificate — the
//! returned element must straddle/contain the query abscissa and *support*
//! the active set (no active point strictly above it). The wrappers here
//! check exactly that before returning anything, so under an installed
//! [`ipch_pram::FaultPlan`] the caller receives a verified answer or a
//! typed [`RunError`]:
//!
//! * [`find_bridge_inplace_supervised`] — the §3.3 randomized in-place
//!   bridge finder; retries reseed the dart throws, exhaustion falls back
//!   to the Θ(p³)-work brute-force bridge.
//! * [`bridge_brute_supervised`] / [`facet_brute_supervised`] — the brute
//!   probes, verification-wrapped: they are deterministic, so retries only
//!   matter under injected faults (a re-derived fault schedule can clear a
//!   transient corruption).

use ipch_geom::predicates::{on_or_below, orient2d_sign, orient3d_sign};
use ipch_geom::validate::{ensure_finite2, ensure_finite3, ensure_query};
use ipch_geom::{Point2, Point3};
use ipch_pram::{supervise, Machine, RunError, Shm, SuperviseConfig, Supervised};

use crate::bridge::{bridge_brute, facet_brute, Bridge};
use crate::inplace_bridge::{find_bridge_inplace, IbConfig, IbTrace};

/// Entry validation shared by the LP wrappers: finite coordinates, finite
/// query abscissa(s), and in-bounds active indices. Duplicate *points* are
/// legal here (a bridge over a multiset is well defined); duplicate active
/// indices are not — the sampling analysis counts distinct elements.
fn validate_active(
    algorithm: &'static str,
    n_points: usize,
    active: &[usize],
) -> Result<(), RunError> {
    let mut seen = vec![false; n_points];
    for (pos, &i) in active.iter().enumerate() {
        if i >= n_points {
            return Err(RunError::invalid_input(
                algorithm,
                format!("active[{pos}] = {i} out of bounds for {n_points} points"),
            ));
        }
        if seen[i] {
            return Err(RunError::invalid_input(
                algorithm,
                format!("active index {i} appears more than once"),
            ));
        }
        seen[i] = true;
    }
    Ok(())
}

/// Certificate for a 2-D bridge over `active` at `x0`: endpoints active,
/// straddling, and supporting (no active point strictly above the line).
fn certify_bridge(
    algorithm: &'static str,
    points: &[Point2],
    active: &[usize],
    x0: f64,
    b: &Bridge,
) -> Result<(), RunError> {
    let fail = |detail: String| RunError::Verify { algorithm, detail };
    if !active.contains(&b.left) || !active.contains(&b.right) {
        return Err(fail(format!(
            "bridge ({}, {}) endpoints not in the active set",
            b.left, b.right
        )));
    }
    let (u, v) = (points[b.left], points[b.right]);
    if !(u.x <= x0 && x0 < v.x) {
        return Err(fail(format!(
            "bridge ({}, {}) does not straddle x0 = {x0}",
            b.left, b.right
        )));
    }
    for &t in active {
        if !on_or_below(u, v, points[t]) {
            return Err(fail(format!(
                "active point {t} lies strictly above the bridge ({}, {})",
                b.left, b.right
            )));
        }
    }
    Ok(())
}

/// Supervised §3.3 in-place bridge finder. `None` from an attempt (dart
/// rounds exhausted) is a typed invariant failure and retries; exhaustion
/// falls back to [`bridge_brute`]. Returns the brute fallback's result
/// with a default trace.
pub fn find_bridge_inplace_supervised(
    m: &mut Machine,
    points: &[Point2],
    active: &[usize],
    x0: f64,
    ib: &IbConfig,
    cfg: &SuperviseConfig,
) -> Result<Supervised<(Bridge, IbTrace)>, RunError> {
    const ALG: &str = "lp/inplace_bridge";
    ensure_finite2(points).map_err(|e| RunError::invalid_input(ALG, e))?;
    ensure_query("x0", x0).map_err(|e| RunError::invalid_input(ALG, e))?;
    validate_active(ALG, points.len(), active)?;
    let mut fallback = |fm: &mut Machine| {
        let mut shm = Shm::new();
        let b = bridge_brute(fm, &mut shm, points, active, x0).ok_or(RunError::Invariant {
            algorithm: ALG,
            detail: format!("brute fallback found no bridge straddling x0 = {x0}"),
        })?;
        certify_bridge(ALG, points, active, x0, &b)?;
        Ok((b, IbTrace::default()))
    };
    supervise(
        m,
        ALG,
        cfg,
        |am: &mut Machine| {
            let mut shm = Shm::new();
            let (b, trace) =
                find_bridge_inplace(am, &mut shm, points, active, x0, ib).ok_or_else(|| {
                    RunError::Invariant {
                        algorithm: ALG,
                        detail: "no bridge after the configured sample/dart rounds".into(),
                    }
                })?;
            certify_bridge(ALG, points, active, x0, &b)?;
            Ok((b, trace))
        },
        Some(&mut fallback),
    )
}

/// Supervised brute-force bridge: the deterministic probe, verification-
/// wrapped (no fallback — the brute probe *is* the last resort).
pub fn bridge_brute_supervised(
    m: &mut Machine,
    points: &[Point2],
    active: &[usize],
    x0: f64,
    cfg: &SuperviseConfig,
) -> Result<Supervised<Bridge>, RunError> {
    const ALG: &str = "lp/bridge_brute";
    ensure_finite2(points).map_err(|e| RunError::invalid_input(ALG, e))?;
    ensure_query("x0", x0).map_err(|e| RunError::invalid_input(ALG, e))?;
    validate_active(ALG, points.len(), active)?;
    supervise(
        m,
        ALG,
        cfg,
        |am: &mut Machine| {
            let mut shm = Shm::new();
            let b = bridge_brute(am, &mut shm, points, active, x0).ok_or(RunError::Invariant {
                algorithm: ALG,
                detail: format!("no pair of active points straddles x0 = {x0}"),
            })?;
            certify_bridge(ALG, points, active, x0, &b)?;
            Ok(b)
        },
        None,
    )
}

/// Supervised brute-force 3-D facet probe: the returned triple must be CCW
/// seen from above, contain `(x0, y0)` in its xy-projection, and support
/// the active set (no active point strictly above its plane).
pub fn facet_brute_supervised(
    m: &mut Machine,
    points: &[Point3],
    active: &[usize],
    x0: f64,
    y0: f64,
    cfg: &SuperviseConfig,
) -> Result<Supervised<(usize, usize, usize)>, RunError> {
    const ALG: &str = "lp/facet_brute";
    ensure_finite3(points).map_err(|e| RunError::invalid_input(ALG, e))?;
    ensure_query("x0", x0).map_err(|e| RunError::invalid_input(ALG, e))?;
    ensure_query("y0", y0).map_err(|e| RunError::invalid_input(ALG, e))?;
    validate_active(ALG, points.len(), active)?;
    supervise(
        m,
        ALG,
        cfg,
        |am: &mut Machine| {
            let mut shm = Shm::new();
            let (a, b, c) =
                facet_brute(am, &mut shm, points, active, x0, y0).ok_or(RunError::Invariant {
                    algorithm: ALG,
                    detail: format!("no facet over ({x0}, {y0}) in the active set"),
                })?;
            let fail = |detail: String| RunError::Verify {
                algorithm: ALG,
                detail,
            };
            let (pa, pb, pc) = (points[a], points[b], points[c]);
            if orient2d_sign(pa.xy(), pb.xy(), pc.xy()) <= 0 {
                return Err(fail(format!("facet ({a}, {b}, {c}) not CCW from above")));
            }
            let q = Point2::new(x0, y0);
            let inside = orient2d_sign(pa.xy(), pb.xy(), q) >= 0
                && orient2d_sign(pb.xy(), pc.xy(), q) >= 0
                && orient2d_sign(pc.xy(), pa.xy(), q) >= 0;
            if !inside {
                return Err(fail(format!(
                    "facet ({a}, {b}, {c}) projection misses ({x0}, {y0})"
                )));
            }
            for &t in active {
                if orient3d_sign(pa, pb, pc, points[t]) < 0 {
                    return Err(fail(format!(
                        "active point {t} strictly above facet ({a}, {b}, {c})"
                    )));
                }
            }
            Ok((a, b, c))
        },
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_pram::Outcome;

    fn disk(n: usize, seed: u64) -> Vec<Point2> {
        ipch_geom::generators::uniform_disk(n, seed)
    }

    #[test]
    fn clean_inplace_bridge_verifies_first_try() {
        let pts = disk(800, 5);
        let active: Vec<usize> = (0..pts.len()).collect();
        let mut m = Machine::new(1);
        let s = find_bridge_inplace_supervised(
            &mut m,
            &pts,
            &active,
            0.0,
            &IbConfig::default(),
            &SuperviseConfig::default(),
        )
        .expect("a bridge straddles x = 0 inside the disk");
        assert_eq!(s.outcome, Outcome::FirstTry);
        let b = s.value.0;
        assert!(pts[b.left].x <= 0.0 && 0.0 < pts[b.right].x);
    }

    #[test]
    fn brute_bridge_with_no_straddle_is_a_typed_error() {
        let pts = disk(100, 6);
        let active: Vec<usize> = (0..pts.len()).collect();
        let mut m = Machine::new(2);
        let err = bridge_brute_supervised(&mut m, &pts, &active, 1e9, &SuperviseConfig::default())
            .unwrap_err();
        assert!(matches!(err, RunError::AttemptsExhausted { .. }));
    }

    #[test]
    fn malformed_lp_inputs_reject_before_any_step() {
        let cfg = SuperviseConfig::default();
        let mut m = Machine::new(3);
        let mut nan = disk(32, 7);
        nan[3].x = f64::NAN;
        let full: Vec<usize> = (0..32).collect();
        let e =
            find_bridge_inplace_supervised(&mut m, &nan, &full, 0.0, &IbConfig::default(), &cfg)
                .unwrap_err();
        assert!(matches!(e, RunError::InvalidInput { .. }), "got {e}");

        let good = disk(32, 8);
        let e = bridge_brute_supervised(&mut m, &good, &full, f64::INFINITY, &cfg).unwrap_err();
        assert!(matches!(e, RunError::InvalidInput { .. }), "got {e}");

        let oob = vec![0, 1, 99];
        let e = bridge_brute_supervised(&mut m, &good, &oob, 0.0, &cfg).unwrap_err();
        assert!(matches!(e, RunError::InvalidInput { .. }), "got {e}");

        let repeated = vec![0, 1, 1];
        let e = bridge_brute_supervised(&mut m, &good, &repeated, 0.0, &cfg).unwrap_err();
        assert!(matches!(e, RunError::InvalidInput { .. }), "got {e}");

        let pts3: Vec<Point3> = (0..8)
            .map(|i| Point3::new(i as f64, (i * i) as f64, 1.0))
            .collect();
        let a3: Vec<usize> = (0..8).collect();
        let e = facet_brute_supervised(&mut m, &pts3, &a3, f64::NAN, 0.0, &cfg).unwrap_err();
        assert!(matches!(e, RunError::InvalidInput { .. }), "got {e}");

        assert_eq!(m.metrics.steps, 0, "rejection precedes any machine step");
    }
}
