//! Brute-force LP (paper Observation 2.2).
//!
//! *It is possible to solve linear programming in d dimensions in constant
//! time, with n^{d+1} processors: find the intersection of all d-tuples of
//! constraints, then for each such tuple check whether its intersection,
//! which is a candidate solution, is violated by any other constraint.*
//!
//! Executed on the PRAM simulator: one step marks infeasible candidate
//! pairs with n·C(n,2) virtual processors (the super-linear work is the
//! whole point — experiment F4/T6 watch it), one Combining-Min step picks
//! the best feasible candidate by objective key, and one step elects the
//! winner. Feasibility is decided exactly ([`crate::constraint`]); among
//! candidates whose f64 objective keys tie, an exact rational comparison
//! breaks the tie host-side (charged O(1)).

use ipch_pram::{
    Machine, ModelClass, ModelContract, RaceExpectation, ReduceOp, Shm, WritePolicy, EMPTY,
};

use crate::constraint::{
    candidate_objective, candidate_satisfies_fast, compare_objectives, cramer2, f64_key, Halfplane,
    Lp2Solution, Objective2,
};

/// Outcome of a brute-force LP solve.
#[derive(Clone, Debug, PartialEq)]
pub enum Lp2Outcome {
    /// A bounded optimum.
    Optimal(Lp2Solution),
    /// No candidate vertex satisfies all constraints (infeasible instance
    /// or an unbounded objective — no vertex optimum exists).
    NoVertexOptimum,
}

/// Concurrency contract: the feasibility marks agree; the best-vertex
/// election is a Combine(min) reduction — deterministic, never
/// seed-dependent.
pub const LP2_BRUTE_CONTRACT: ModelContract = ModelContract {
    algorithm: "lp/brute2",
    class: ModelClass::Crcw,
    races: RaceExpectation::Deterministic,
};

/// Symbolic step structure of [`solve_lp2_brute`] for the static checker
/// ([`ipch_pram::verify`]): the n³-processor uniform knock-out scatter
/// into the n² candidate array, then two guarded single-cell reductions
/// (Combine(min) objective key, First-priority winner).
pub fn verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    let mut p = AlgorithmPlan::new(LP2_BRUTE_CONTRACT);
    let bad = p.array("lp2.bad", Affine::n2());
    let best = p.array("lp2.best", Affine::k(1));
    let win = p.array("lp2.win", Affine::k(1));
    p.step(
        StepPlan::new("mark", Affine::n3(), WritePolicy::CombineOr).write_uniform(
            bad,
            IndexSet::Within {
                lo: Affine::k(0),
                hi: Affine::n2().plus(-1),
            },
        ),
    );
    p.step(
        StepPlan::new("best-key", Affine::n2(), WritePolicy::CombineMin)
            .read(bad, IndexSet::Exact(Affine::pid()))
            .write(
                best,
                IndexSet::Within {
                    lo: Affine::k(0),
                    hi: Affine::k(0),
                },
            ),
    );
    p.step(
        StepPlan::new("elect", Affine::n2(), WritePolicy::PriorityMin)
            .read(bad, IndexSet::Exact(Affine::pid()))
            .write(
                win,
                IndexSet::Within {
                    lo: Affine::k(0),
                    hi: Affine::k(0),
                },
            ),
    );
    p
}

/// Solve `minimize obj` over `constraints` by the Observation 2.2 method.
///
/// Costs O(1) executed steps and Θ(n³) work for n constraints (d = 2).
pub fn solve_lp2_brute(
    m: &mut Machine,
    shm: &mut Shm,
    constraints: &[Halfplane],
    obj: &Objective2,
) -> Lp2Outcome {
    m.declare_contract(&LP2_BRUTE_CONTRACT);
    let n = constraints.len();
    if n < 2 {
        return Lp2Outcome::NoVertexOptimum;
    }
    let npairs = n * n;

    // Host precomputation of the C(n,2) Cramer systems. In the model each
    // candidate's pair of processors computes this in the marking step; we
    // hoist it so the n³ feasibility checks share it (work accounting is
    // unchanged — the marking step below still runs n³ processors).
    type Exact3 = (
        ipch_geom::exact::Expansion,
        ipch_geom::exact::Expansion,
        ipch_geom::exact::Expansion,
    );
    type Candidate = Option<(Exact3, (f64, f64, f64))>;
    let cands: Vec<Candidate> = (0..npairs)
        .map(|p| {
            let (i, j) = (p / n, p % n);
            if i >= j {
                return None;
            }
            let (d, dx, dy) = cramer2(&constraints[i], &constraints[j]);
            if d.sign() == 0 {
                return None;
            }
            let approx = (d.approx(), dx.approx(), dy.approx());
            Some(((d, dx, dy), approx))
        })
        .collect();

    // All three steps run against scoped workspace — iterated LP solves
    // (e.g. inside Alon–Megiddo rounds) recycle the same three slots.
    shm.scope(|shm| {
        // Step 1: feasibility marking. Processor (p, k) with p = i·n + j
        // checks candidate (i, j) against constraint k. Infeasible or
        // degenerate pairs are knocked out via a Combining-Or write.
        let bad = shm.alloc("lp2.bad", npairs, 0);
        m.kernel_scatter_with_policy(shm, 0..npairs * n, WritePolicy::CombineOr, |_, pid| {
            let p = pid / n;
            let k = pid % n;
            match &cands[p] {
                None => {
                    if k == 0 {
                        Some((bad, p, 1)) // diagonal, duplicate, or parallel
                    } else {
                        None
                    }
                }
                Some((exact, approx)) => {
                    if !candidate_satisfies_fast(exact, *approx, &constraints[k]) {
                        Some((bad, p, 1))
                    } else {
                        None
                    }
                }
            }
        });

        // Step 2: Combining-Min over surviving candidates' objective keys.
        let best = shm.alloc("lp2.best", 1, i64::MAX);
        m.kernel_reduce(shm, 0..npairs, ReduceOp::Min, best, 0, |t, p| {
            if t.read(bad, p) != 0 {
                return None;
            }
            cands[p]
                .as_ref()
                .map(|((d, dx, dy), _)| f64_key(candidate_objective(d, dx, dy, obj)))
        });
        let best_key = shm.get(best, 0);
        if best_key == i64::MAX {
            return Lp2Outcome::NoVertexOptimum;
        }

        // Step 3: candidates achieving the key elect a winner (priority rule:
        // the lowest-numbered pair).
        let win = shm.alloc("lp2.win", 1, EMPTY);
        m.kernel_reduce(shm, 0..npairs, ReduceOp::First, win, 0, |t, p| {
            if t.read(bad, p) != 0 {
                return None;
            }
            match &cands[p] {
                Some(((d, dx, dy), _))
                    if f64_key(candidate_objective(d, dx, dy, obj)) == best_key =>
                {
                    Some(p as i64)
                }
                _ => None,
            }
        });
        let mut wp = shm.get(win, 0) as usize;

        // Host-side exact tie-break among same-key candidates (charged O(1)):
        // f64 keys quantize the objective, so candidates within one rounding
        // step of each other need the rational comparison.
        m.charge(1, npairs as u64);
        for (p, cand) in cands.iter().enumerate() {
            if shm.get(bad, p) != 0 || p == wp {
                continue;
            }
            if let Some(((d, dx, dy), _)) = cand {
                let key = f64_key(candidate_objective(d, dx, dy, obj));
                let ((wd, wdx, wdy), _) = cands[wp].as_ref().unwrap();
                if key == best_key
                    && compare_objectives((d, dx, dy), (wd, wdx, wdy), obj)
                        == std::cmp::Ordering::Less
                {
                    wp = p;
                }
            }
        }

        let (i, j) = (wp / n, wp % n);
        let ((d, dx, dy), _) = cands[wp].as_ref().unwrap();
        Lp2Outcome::Optimal(Lp2Solution {
            x: dx.approx() / d.approx(),
            y: dy.approx() / d.approx(),
            tight: (i, j),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::candidate_satisfies;

    fn hp(a: f64, b: f64, c: f64) -> Halfplane {
        Halfplane { a, b, c }
    }

    /// The best-vertex election is a Combine(min) reduction: concurrent
    /// distinct writes, resolved deterministically — the declared contract
    /// must hold with zero seed-dependent races.
    #[test]
    fn analyzer_pins_combine_election() {
        use ipch_pram::AnalyzeConfig;
        // regular fan of tangent halfplanes around the unit circle
        let n = 24;
        let cs: Vec<Halfplane> = (0..n)
            .map(|i| {
                let t = std::f64::consts::TAU * i as f64 / n as f64;
                hp(t.cos(), t.sin(), -1.0)
            })
            .collect();
        let mut m = Machine::new(6);
        m.enable_analysis(AnalyzeConfig::default());
        let mut shm = Shm::new();
        shm.enable_shadow(true);
        let out = solve_lp2_brute(&mut m, &mut shm, &cs, &Objective2 { cx: 0.0, cy: 1.0 });
        assert!(matches!(out, Lp2Outcome::Optimal(_)));
        let r = m.analysis_report().unwrap();
        assert_eq!(r.contract.unwrap().algorithm, "lp/brute2");
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.seed_dependent_races, 0);
        assert_eq!(r.unconfirmed_arbitrary_races, 0);
        assert!(r.deterministic_races > 0, "combine election exercised");
    }

    #[test]
    fn box_corner() {
        // x ≥ 1, y ≥ 2, x ≤ 10, y ≤ 10; minimize x + y → (1, 2)
        let cs = vec![
            hp(1.0, 0.0, 1.0),
            hp(0.0, 1.0, 2.0),
            hp(-1.0, 0.0, -10.0),
            hp(0.0, -1.0, -10.0),
        ];
        let mut m = Machine::new(1);
        let mut shm = Shm::new();
        match solve_lp2_brute(&mut m, &mut shm, &cs, &Objective2 { cx: 1.0, cy: 1.0 }) {
            Lp2Outcome::Optimal(s) => {
                assert_eq!((s.x, s.y), (1.0, 2.0));
                assert_eq!(s.tight, (0, 1));
            }
            other => panic!("{other:?}"),
        }
        // O(1) steps, Θ(n³)-scale work
        assert_eq!(m.metrics.steps, 3);
        assert!(m.metrics.work >= 4 * 4 * 4);
    }

    #[test]
    fn infeasible_detected() {
        let cs = vec![hp(1.0, 0.0, 5.0), hp(-1.0, 0.0, -1.0), hp(0.0, 1.0, 0.0)];
        let mut m = Machine::new(2);
        let mut shm = Shm::new();
        assert_eq!(
            solve_lp2_brute(&mut m, &mut shm, &cs, &Objective2 { cx: 0.0, cy: 1.0 }),
            Lp2Outcome::NoVertexOptimum
        );
    }

    #[test]
    fn unbounded_has_no_vertex_optimum() {
        // only y ≥ 0 and x ≥ 0; minimize −x − y is unbounded: every vertex
        // candidate (single one: origin) is feasible, so brute force would
        // report the origin — the caller must supply a bounded instance.
        // minimize x + y IS bounded at the origin:
        let cs = vec![hp(1.0, 0.0, 0.0), hp(0.0, 1.0, 0.0)];
        let mut m = Machine::new(3);
        let mut shm = Shm::new();
        match solve_lp2_brute(&mut m, &mut shm, &cs, &Objective2 { cx: 1.0, cy: 1.0 }) {
            Lp2Outcome::Optimal(s) => assert_eq!((s.x, s.y), (0.0, 0.0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn redundant_and_parallel_constraints() {
        let cs = vec![
            hp(1.0, 0.0, 1.0),
            hp(1.0, 0.0, 0.5), // redundant, parallel to [0]
            hp(0.0, 1.0, 1.0),
            hp(0.0, 1.0, -3.0), // redundant
            hp(-1.0, -1.0, -100.0),
        ];
        let mut m = Machine::new(4);
        let mut shm = Shm::new();
        match solve_lp2_brute(&mut m, &mut shm, &cs, &Objective2 { cx: 1.0, cy: 1.0 }) {
            Lp2Outcome::Optimal(s) => {
                assert_eq!((s.x, s.y), (1.0, 1.0));
                assert_eq!(s.tight, (0, 2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn matches_polygon_vertex_enumeration_randomly() {
        // random bounded instances: feasible region = intersection of
        // half-planes tangent to the unit circle (always contains origin)
        let mut rng = ipch_pram::rng::SplitMix64::new(42);
        for trial in 0..25 {
            let n = 3 + (trial % 8);
            let cs: Vec<Halfplane> = (0..n)
                .map(|_| {
                    let t = rng.next_f64() * std::f64::consts::TAU;
                    // half-plane containing the origin: −cosθ·x − sinθ·y ≥ −1
                    hp(-t.cos(), -t.sin(), -1.0)
                })
                .collect();
            let t = rng.next_f64() * std::f64::consts::TAU;
            let obj = Objective2 {
                cx: t.cos(),
                cy: t.sin(),
            };
            let mut m = Machine::new(trial as u64);
            let mut shm = Shm::new();
            if let Lp2Outcome::Optimal(s) = solve_lp2_brute(&mut m, &mut shm, &cs, &obj) {
                // reference: enumerate all feasible vertices on the host
                let mut best = f64::INFINITY;
                for i in 0..n {
                    for j in i + 1..n {
                        let (d, dx, dy) = cramer2(&cs[i], &cs[j]);
                        if d.sign() == 0 {
                            continue;
                        }
                        if (0..n).all(|k| candidate_satisfies(&d, &dx, &dy, &cs[k])) {
                            let f = candidate_objective(&d, &dx, &dy, &obj);
                            best = best.min(f);
                        }
                    }
                }
                let got = obj.cx * s.x + obj.cy * s.y;
                assert!(
                    (got - best).abs() <= 1e-9 * (1.0 + best.abs()),
                    "trial {trial}: got {got}, best {best}"
                );
            }
        }
    }
}
