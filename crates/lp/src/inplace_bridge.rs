//! In-place bridge finding (paper §3.3–§3.4, Lemma 4.2).
//!
//! The convex-hull recursion needs bridges for *many unrelated subproblems
//! scattered through the input*, where the points of one subproblem are not
//! contiguous. Alon–Megiddo assumes contiguous input; the paper replaces it
//! with this in-place procedure (which it notes is *simpler to implement*
//! while matching the time/work/confidence bounds):
//!
//! 1. Apply the random-sample procedure to draw a base problem of Θ(k)
//!    constraints into a 16k workspace (k = p^{1/3} in 2-D).
//! 2. Solve the base problem deterministically in constant time
//!    ([`crate::bridge::bridge_brute`] — the exact n³ brute force).
//! 3. Every point checks whether it violates the solution (lies strictly
//!    above the candidate bridge line); violators are *survivors* and are
//!    candidates for the next base, sampled at the escalating rate
//!    p_j = min{1, 2k·p_{j−1}}, p₁ = 2k/p.
//! 4. After β rounds, in-place-compact all survivors into the base problem
//!    ([`ipch_inplace::compact::inplace_compact`]) and solve once more; if
//!    there are too many to compact, run more sampling rounds. If at any
//!    point there are no survivors, the last base solution is the bridge.
//!
//! Correctness is unconditional (the survivor check is global and exact);
//! the randomness only bounds *how many rounds* it takes — which is what
//! Lemma 4.2 asserts (constant, with failure probability e^{−Ω(k^r)}) and
//! what experiment T6 measures. Bases accumulate across rounds so the
//! candidate height at x₀ is monotone.

use ipch_geom::predicates::orient2d_sign;
use ipch_geom::Point2;
use ipch_pram::{Machine, ModelClass, ModelContract, RaceExpectation, Shm, WritePolicy, EMPTY};

use ipch_inplace::compact::inplace_compact;
use ipch_inplace::sample::random_sample_with_p;

use crate::bridge::{bridge_brute, Bridge};

/// Tuning of the in-place bridge finder.
#[derive(Clone, Copy, Debug)]
pub struct IbConfig {
    /// Base-size parameter k; `None` = ⌈p^{1/3}⌉ clamped ≥ 4 (paper's 2-D
    /// choice; the 3-D algorithm passes p^{1/4}).
    pub k: Option<usize>,
    /// Rounds before the compaction finish is attempted (the paper's β).
    pub beta: usize,
    /// Dart-throwing retry rounds inside each random sample (paper's d).
    pub sample_attempts: usize,
    /// Hard cap on total rounds before declaring failure.
    pub max_rounds: usize,
}

impl Default for IbConfig {
    fn default() -> Self {
        Self {
            k: None,
            beta: 4,
            sample_attempts: 4,
            max_rounds: 16,
        }
    }
}

/// Diagnostics for experiment T6.
#[derive(Clone, Debug, Default)]
pub struct IbTrace {
    /// Total rounds (base solves) executed.
    pub rounds: usize,
    /// Survivor counts after each solved round.
    pub survivors: Vec<usize>,
    /// Whether the §3.3-step-4 compaction finish was used.
    pub compaction_used: bool,
    /// Final base size.
    pub base_size: usize,
}

/// Find the upper-hull bridge of the scattered subset `active` straddling
/// `x = x0`, in place. Returns `Some((bridge, trace))` on success, `None`
/// either when the subset has no straddling pair or when the round cap was
/// hit; callers that need to distinguish use
/// [`find_bridge_inplace_traced`].
///
/// # Examples
///
/// ```
/// use ipch_geom::generators::uniform_disk;
/// use ipch_lp::inplace_bridge::{find_bridge_inplace, IbConfig};
/// use ipch_pram::{Machine, Shm};
///
/// let points = uniform_disk(800, 5);
/// let active: Vec<usize> = (0..points.len()).collect();
/// let mut m = Machine::new(1);
/// let mut shm = Shm::new();
/// let (bridge, _trace) =
///     find_bridge_inplace(&mut m, &mut shm, &points, &active, 0.0, &IbConfig::default())
///         .expect("a bridge straddles x = 0 inside the disk");
/// assert!(points[bridge.left].x <= 0.0 && 0.0 < points[bridge.right].x);
/// ```
pub fn find_bridge_inplace(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point2],
    active: &[usize],
    x0: f64,
    cfg: &IbConfig,
) -> Option<(Bridge, IbTrace)> {
    match find_bridge_inplace_traced(m, shm, points, active, x0, cfg) {
        (Some(b), t) => Some((b, t)),
        (None, _) => None,
    }
}

/// Concurrency contract: Arbitrary-CRCW in the paper; the sample-claim
/// contest and the bridge elections resolve by Priority, so every race is
/// a deterministic function of the coin flips.
pub const INPLACE_BRIDGE_CONTRACT: ModelContract = ModelContract {
    algorithm: "lp/inplace_bridge",
    class: ModelClass::Crcw,
    races: RaceExpectation::Deterministic,
};

/// Symbolic step structure of [`find_bridge_inplace`] for the static
/// checker ([`ipch_pram::verify`]): survivor-flag initialisation, the
/// compaction feed, and the per-round survivor check are all one-to-one
/// pid maps over the id universe — the contract's CRCW allowance is
/// consumed by the random-sample claim protocol and the in-place
/// compaction, which carry their own contracts and plans.
pub fn verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    use ipch_pram::WritePolicy;
    let mut p = AlgorithmPlan::new(INPLACE_BRIDGE_CONTRACT);
    let surv = p.array("ib.surv", Affine::n());
    let sarr = p.array("ib.sarr", Affine::n());
    p.step(
        StepPlan::new("survivor-init", Affine::n(), WritePolicy::Arbitrary)
            .write_uniform(surv, IndexSet::Exact(Affine::pid())),
    );
    p.step(
        StepPlan::new("compaction-feed", Affine::n(), WritePolicy::Arbitrary)
            .write(sarr, IndexSet::Exact(Affine::pid())),
    );
    p.step(
        StepPlan::new("survivor-check", Affine::n(), WritePolicy::Arbitrary)
            .write(surv, IndexSet::Exact(Affine::pid())),
    );
    p
}

/// As [`find_bridge_inplace`], but always returns the trace.
pub fn find_bridge_inplace_traced(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point2],
    active: &[usize],
    x0: f64,
    cfg: &IbConfig,
) -> (Option<Bridge>, IbTrace) {
    m.declare_contract(&INPLACE_BRIDGE_CONTRACT);
    let mut trace = IbTrace::default();
    let p = active.len();
    if p < 2 {
        return (None, trace);
    }
    let universe = points.len();
    let k = cfg.k.unwrap_or(((p as f64).cbrt().ceil() as usize).max(4));
    let capacity = 24 * k;

    // Tiny problems: the whole subset is the base. The threshold keeps the
    // brute cost p³ within a constant factor of p processors ("k is
    // sufficiently small that this can be done in constant time with n
    // processors") — beyond it, sampling is strictly cheaper.
    if p <= 16 {
        trace.rounds = 1;
        trace.base_size = p;
        let b = bridge_brute(m, shm, points, active, x0);
        trace.survivors.push(0);
        return (b, trace);
    }

    // Survivor flags: private registers indexed by point id.
    let surv = shm.alloc("ib.surv", universe, 0);
    m.step(shm, active, |ctx| {
        let i = ctx.pid;
        ctx.write(surv, i, 1);
    });

    let mut p_j = 2.0 * k as f64 / p as f64;
    let mut best: Option<Bridge> = None;

    for round in 0..cfg.max_rounds {
        trace.rounds = round + 1;
        // survivors list (in-model: the flagged processors themselves)
        let survivors: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&i| shm.get(surv, i) != 0)
            .collect();

        // Each round's base is a *fresh* Θ(k) workspace (the paper's 16k
        // cells): a sample of the survivors, plus the current bridge
        // endpoints so the candidate height at x₀ is monotone.
        let mut base: Vec<usize> = Vec::new();
        if round >= cfg.beta || survivors.len() <= 4 * k {
            // §3.3 step 4: compact ALL survivors into the base via the
            // in-place approximate compaction and solve.
            let sarr = shm.alloc("ib.sarr", universe, EMPTY);
            m.step(shm, &survivors, |ctx| {
                let i = ctx.pid;
                ctx.write(sarr, i, i as i64);
            });
            if let Some(c) = inplace_compact(m, shm, sarr, capacity, 0.34) {
                trace.compaction_used = true;
                for s in 0..shm.len(c.slots) {
                    let v = shm.get(c.slots, s);
                    if v != EMPTY {
                        base.push(v as usize);
                    }
                }
            } else {
                // too many survivors to compact: fall back to sampling
                let out = random_sample_with_p(
                    m,
                    shm,
                    &survivors,
                    universe,
                    k,
                    cfg.sample_attempts,
                    Some(p_j),
                );
                base.extend_from_slice(&out.sample);
            }
        } else {
            let out = random_sample_with_p(
                m,
                shm,
                &survivors,
                universe,
                k,
                cfg.sample_attempts,
                Some(p_j),
            );
            base.extend_from_slice(&out.sample);
        }
        if let Some(b) = best {
            if !base.contains(&b.left) {
                base.push(b.left);
            }
            if !base.contains(&b.right) {
                base.push(b.right);
            }
        }
        p_j = (p_j * 2.0 * k as f64).min(1.0);
        if base.len() > capacity || base.len() < 2 {
            continue;
        }

        // Step 2: deterministic base solve (child machine, sequential
        // composition — rounds are genuinely iterative).
        let mut child = m.child(round as u64 ^ 0xb41d);
        let sol = bridge_brute(&mut child, shm, points, &base, x0);
        m.metrics.absorb(&child.metrics);
        let Some(bridge) = sol else { continue };
        best = Some(bridge);
        trace.base_size = trace.base_size.max(base.len());

        // Step 3: global survivor check — one concurrent step.
        let (u, v) = (points[bridge.left], points[bridge.right]);
        // xlint: allow(arbitrary-policy): each processor writes only
        // surv[pid] — exclusive cells, the policy never resolves a collision.
        m.step_with_policy(shm, active, WritePolicy::Arbitrary, |ctx| {
            let i = ctx.pid;
            let above = orient2d_sign(u, v, points[i]) > 0;
            ctx.write(surv, i, if above { 1 } else { 0 });
        });
        let nsurv = active.iter().filter(|&&i| shm.get(surv, i) != 0).count();
        trace.survivors.push(nsurv);
        if nsurv == 0 {
            return (Some(bridge), trace);
        }
    }
    let _ = best;
    (None, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::generators::{circle_plus_interior, uniform_disk, uniform_square};
    use ipch_geom::hull_chain::UpperHull;

    fn verify_bridge(points: &[Point2], active: &[usize], x0: f64, b: Bridge) {
        let (u, v) = (points[b.left], points[b.right]);
        assert!(u.x <= x0 && x0 < v.x, "does not straddle x0={x0}");
        assert!(active.contains(&b.left) && active.contains(&b.right));
        for &i in active {
            assert!(
                orient2d_sign(u, v, points[i]) <= 0,
                "point {i} above bridge"
            );
        }
    }

    #[test]
    fn finds_bridges_on_random_inputs() {
        for seed in 0..8u64 {
            let pts = uniform_disk(2000, seed);
            let active: Vec<usize> = (0..pts.len()).collect();
            let hull = UpperHull::of(&pts);
            let mid = hull.vertices.len() / 2;
            let x0 = (pts[hull.vertices[mid - 1]].x + pts[hull.vertices[mid]].x) / 2.0;
            let mut m = Machine::new(seed);
            let mut shm = Shm::new();
            let (b, trace) =
                find_bridge_inplace(&mut m, &mut shm, &pts, &active, x0, &IbConfig::default())
                    .unwrap_or_else(|| panic!("seed {seed}: no bridge"));
            verify_bridge(&pts, &active, x0, b);
            assert_eq!(
                (b.left, b.right),
                (hull.vertices[mid - 1], hull.vertices[mid])
            );
            assert!(trace.rounds <= 12, "seed {seed}: {} rounds", trace.rounds);
        }
    }

    #[test]
    fn works_on_scattered_subsets() {
        let pts = uniform_square(3000, 42);
        // active: every third point — scattered, never compacted
        let active: Vec<usize> = (0..pts.len()).filter(|i| i % 3 == 0).collect();
        let sub: Vec<Point2> = active.iter().map(|&i| pts[i]).collect();
        let sub_hull = UpperHull::of(&sub);
        let mid = sub_hull.vertices.len() / 2;
        let x0 = (sub[sub_hull.vertices[mid - 1]].x + sub[sub_hull.vertices[mid]].x) / 2.0;
        let mut m = Machine::new(1);
        let mut shm = Shm::new();
        let (b, _) = find_bridge_inplace(&mut m, &mut shm, &pts, &active, x0, &IbConfig::default())
            .expect("bridge");
        verify_bridge(&pts, &active, x0, b);
    }

    #[test]
    fn small_subsets_use_direct_brute() {
        let pts = uniform_disk(14, 3);
        let active: Vec<usize> = (0..14).collect();
        let hull = UpperHull::of(&pts);
        let x0 = (pts[hull.vertices[0]].x + pts[hull.vertices[1]].x) / 2.0;
        let mut m = Machine::new(2);
        let mut shm = Shm::new();
        let (b, trace) =
            find_bridge_inplace(&mut m, &mut shm, &pts, &active, x0, &IbConfig::default()).unwrap();
        verify_bridge(&pts, &active, x0, b);
        assert_eq!(trace.rounds, 1);
    }

    #[test]
    fn no_bridge_outside_range() {
        let pts = uniform_disk(500, 4);
        let active: Vec<usize> = (0..pts.len()).collect();
        let xmax = pts.iter().map(|p| p.x).fold(f64::MIN, f64::max);
        let mut m = Machine::new(5);
        let mut shm = Shm::new();
        assert!(find_bridge_inplace(
            &mut m,
            &mut shm,
            &pts,
            &active,
            xmax + 1.0,
            &IbConfig::default()
        )
        .is_none());
    }

    #[test]
    fn constant_rounds_across_sizes() {
        let mut worst = 0usize;
        for &n in &[1000usize, 4000, 16_000] {
            for seed in 0..3u64 {
                let pts = circle_plus_interior(32, n, seed);
                let active: Vec<usize> = (0..n).collect();
                let hull = UpperHull::of(&pts);
                let mid = hull.vertices.len() / 2;
                let x0 = (pts[hull.vertices[mid - 1]].x + pts[hull.vertices[mid]].x) / 2.0;
                let mut m = Machine::new(seed + 50);
                let mut shm = Shm::new();
                let (b, trace) =
                    find_bridge_inplace(&mut m, &mut shm, &pts, &active, x0, &IbConfig::default())
                        .unwrap();
                verify_bridge(&pts, &active, x0, b);
                worst = worst.max(trace.rounds);
            }
        }
        assert!(worst <= 10, "round count grew to {worst}");
    }

    #[test]
    fn work_stays_near_linear() {
        let n = 20_000;
        let pts = uniform_disk(n, 9);
        let active: Vec<usize> = (0..n).collect();
        let hull = UpperHull::of(&pts);
        let mid = hull.vertices.len() / 2;
        let x0 = (pts[hull.vertices[mid - 1]].x + pts[hull.vertices[mid]].x) / 2.0;
        let mut m = Machine::new(10);
        let mut shm = Shm::new();
        find_bridge_inplace(&mut m, &mut shm, &pts, &active, x0, &IbConfig::default()).unwrap();
        assert!(
            m.metrics.total_work() < 300 * n as u64,
            "work {} not near-linear in {n}",
            m.metrics.total_work()
        );
    }
}
