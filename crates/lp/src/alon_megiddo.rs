//! Alon–Megiddo-style randomized parallel LP (paper Lemma 2.2).
//!
//! *Given n constraints in ℝ^d, linear programming can be performed in
//! constant time with n processors on a CRCW PRAM, with failure probability
//! 2^{−c·n^{1/3}}.*
//!
//! The paper describes the method (§2.4): "repeatedly choosing a subset of
//! the constraints, and finding the solution to this subset… The initial
//! subset is chosen at random from all the constraints, and later choices
//! are made at random from those that violate the currently known solution"
//! — the base problem is small enough to solve by brute force
//! (Observation 2.2) in one shot.
//!
//! Implementation notes:
//!
//! * Base problems accumulate: round j's base is the previous base plus a
//!   Bernoulli sample of the current *survivors* (violators), taken at the
//!   escalating rate p_j = min{1, 2k·p_{j−1}} of §3.3 (p₁ = 2k/n). Keeping
//!   the previous base makes the optimum monotone, so termination ⇔ zero
//!   survivors, checked with one concurrent step per round.
//! * Each base solve runs [`crate::brute::solve_lp2_brute`] on a child
//!   machine; sibling rounds are sequential (they genuinely are — this is
//!   the iterative part), so the child metrics are absorbed sequentially.
//! * The run fails (returns `None`) if the base would exceed its Θ(k)
//!   capacity or the round cap is hit — exactly the events whose
//!   probability Lemma 2.2 bounds; the T6 experiment measures them.

use ipch_pram::{Machine, ModelClass, ModelContract, RaceExpectation, Shm, WritePolicy};

use crate::brute::{solve_lp2_brute, Lp2Outcome};
use crate::constraint::{Halfplane, Lp2Solution, Objective2};

/// Tuning of the Alon–Megiddo solver.
#[derive(Clone, Copy, Debug)]
pub struct AmConfig {
    /// Base-problem size parameter k (the paper sets k = p^{1/3} for 2-D).
    /// `None` derives it from the instance: k = ⌈n^{1/3}⌉, clamped ≥ 4.
    pub k: Option<usize>,
    /// Hard cap on rounds before declaring failure (the paper's β plus the
    /// final compaction retry; default 12).
    pub max_rounds: usize,
    /// Base capacity in multiples of k (default 16 — the paper's 16k
    /// workspace).
    pub capacity_factor: usize,
}

impl Default for AmConfig {
    fn default() -> Self {
        Self {
            k: None,
            max_rounds: 12,
            capacity_factor: 16,
        }
    }
}

/// Per-run diagnostics (experiment T6 tabulates these).
#[derive(Clone, Debug, Default)]
pub struct AmTrace {
    /// Rounds executed (base solves).
    pub rounds: usize,
    /// Survivor count after each round's solution.
    pub survivors: Vec<usize>,
    /// Final base-problem size.
    pub base_size: usize,
}

/// Concurrency contract: inherits the brute solver's Combine(min)
/// elections; the violation-counting steps use Sum — all deterministic.
pub const LP2_AM_CONTRACT: ModelContract = ModelContract {
    algorithm: "lp/alon_megiddo",
    class: ModelClass::Crcw,
    races: RaceExpectation::Deterministic,
};

/// Symbolic step structure of [`solve_lp2_am`] for the static checker
/// ([`ipch_pram::verify`]): per-round coin flips read the survivor flags
/// and the violation test rewrites them, both one-to-one over the
/// constraint ids — the CRCW allowance is consumed by the brute base
/// solver, which carries its own contract and plan.
pub fn verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    let mut p = AlgorithmPlan::new(LP2_AM_CONTRACT);
    let surv = p.array("am.surv", Affine::n());
    p.step(
        StepPlan::new("coin-flip", Affine::n(), WritePolicy::Arbitrary)
            .read(surv, IndexSet::Exact(Affine::pid())),
    );
    p.step(
        StepPlan::new("survivor-test", Affine::n(), WritePolicy::Arbitrary)
            .write(surv, IndexSet::Exact(Affine::pid())),
    );
    p
}

/// Solve `minimize obj` over `constraints` by the Alon–Megiddo scheme.
pub fn solve_lp2_am(
    m: &mut Machine,
    shm: &mut Shm,
    constraints: &[Halfplane],
    obj: &Objective2,
    cfg: &AmConfig,
) -> Option<(Lp2Solution, AmTrace)> {
    m.declare_contract(&LP2_AM_CONTRACT);
    let n = constraints.len();
    if n < 2 {
        return None;
    }
    let k = cfg.k.unwrap_or(((n as f64).cbrt().ceil() as usize).max(4));
    let capacity = cfg.capacity_factor * k;
    let mut trace = AmTrace::default();

    // Artificial bounding triangle (huge), always part of every base: a
    // base that is unbounded in the objective direction has no vertex
    // optimum, and its brute "solution" would be an uncertified vertex
    // that can pass the survivor check while being suboptimal. Alon &
    // Megiddo likewise assume a bounded program. If the artificial bounds
    // end up tight in the final optimum, the user's program was unbounded
    // and we report failure.
    const M: f64 = 1e15;
    let bounds: [Halfplane; 3] = [
        Halfplane {
            a: 1.0,
            b: 0.0,
            c: -M,
        },
        Halfplane {
            a: -0.5,
            b: 0.75f64.sqrt(),
            c: -M,
        },
        Halfplane {
            a: -0.5,
            b: -(0.75f64.sqrt()),
            c: -M,
        },
    ];
    let cs_at = |i: usize| -> &Halfplane {
        if i < 3 {
            &bounds[i]
        } else {
            &constraints[i - 3]
        }
    };

    // Private registers: survivor flags, one per user constraint.
    let surv = shm.alloc("am.surv", n, 1); // initially everyone "violates"
    let mut p_j = 2.0 * k as f64 / n as f64;
    // solution tights in *extended* index space (0..3 artificial)
    let mut solution: Option<Lp2Solution> = None;

    for round in 0..cfg.max_rounds {
        trace.rounds = round + 1;
        // Sampling step: every surviving constraint flips a p_j coin and
        // joins this round's base (one concurrent step; base membership is
        // a private-register write, collected host-side for the solve).
        // The base is *fresh* each round — Θ(k) like the paper's 16k
        // workspace — plus the artificial bounds and the previous optimum's
        // tight constraints, which make the optimum certified and monotone.
        let mut base: Vec<usize> = vec![0, 1, 2];
        base.extend(
            m.step_map(shm, 0..n, |ctx| {
                let i = ctx.pid;
                ctx.read(surv, i) != 0 && ctx.rng().bernoulli(p_j)
            })
            .into_iter()
            .enumerate()
            .filter_map(|(i, take)| take.then_some(i + 3)),
        );
        if let Some(s) = &solution {
            if !base.contains(&s.tight.0) {
                base.push(s.tight.0);
            }
            if !base.contains(&s.tight.1) {
                base.push(s.tight.1);
            }
        }
        if base.len() > capacity + 3 {
            return None; // base overflow — the rare failure event
        }

        // Solve the base by brute force on a child machine.
        let base_cs: Vec<Halfplane> = base.iter().map(|&i| *cs_at(i)).collect();
        let mut child = m.child(round as u64 ^ 0xa11);
        let out = solve_lp2_brute(&mut child, shm, &base_cs, obj);
        m.metrics.absorb(&child.metrics);
        let sol = match out {
            Lp2Outcome::Optimal(s) => Lp2Solution {
                x: s.x,
                y: s.y,
                tight: (base[s.tight.0], base[s.tight.1]),
            },
            Lp2Outcome::NoVertexOptimum => {
                // infeasible base ⇒ infeasible program
                return None;
            }
        };

        // Survivor step: every constraint tests the new solution (one
        // concurrent step with n processors).
        let (sx, sy) = (sol.x, sol.y);
        // xlint: allow(arbitrary-policy): each processor writes only
        // surv[pid] — exclusive cells, the policy never resolves a collision.
        m.step_with_policy(shm, 0..n, WritePolicy::Arbitrary, |ctx| {
            let i = ctx.pid;
            let c = &constraints[i];
            let viol = c.a * sx + c.b * sy < c.c - 1e-9 * (1.0 + c.c.abs());
            ctx.write(surv, i, if viol { 1 } else { 0 });
        });
        let nsurv = shm.slice(surv).iter().filter(|&&v| v != 0).count();
        trace.survivors.push(nsurv);
        solution = Some(sol);
        trace.base_size = trace.base_size.max(base.len());
        if nsurv == 0 {
            if sol.tight.0 < 3 || sol.tight.1 < 3 {
                return None; // artificial bound tight: program unbounded
            }
            let sol = Lp2Solution {
                tight: (sol.tight.0 - 3, sol.tight.1 - 3),
                ..sol
            };
            return Some((sol, trace));
        }
        p_j = (p_j * 2.0 * k as f64).min(1.0);
    }
    let _ = solution;
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_pram::rng::SplitMix64;

    fn hp(a: f64, b: f64, c: f64) -> Halfplane {
        Halfplane { a, b, c }
    }

    fn tangent_instance(n: usize, seed: u64) -> (Vec<Halfplane>, Objective2) {
        let mut rng = SplitMix64::new(seed);
        let cs: Vec<Halfplane> = (0..n)
            .map(|_| {
                let t = rng.next_f64() * std::f64::consts::TAU;
                hp(-t.cos(), -t.sin(), -1.0 - rng.next_f64())
            })
            .collect();
        let th = rng.next_f64() * std::f64::consts::TAU;
        (
            cs,
            Objective2 {
                cx: th.cos(),
                cy: th.sin(),
            },
        )
    }

    #[test]
    fn agrees_with_brute_on_random_instances() {
        for seed in 0..15u64 {
            let (cs, obj) = tangent_instance(200, seed);
            let mut m = Machine::new(seed);
            let mut shm = Shm::new();
            let (sol, trace) =
                solve_lp2_am(&mut m, &mut shm, &cs, &obj, &AmConfig::default()).expect("am failed");
            let mut m2 = Machine::new(seed);
            let mut shm2 = Shm::new();
            if let Lp2Outcome::Optimal(b) =
                crate::brute::solve_lp2_brute(&mut m2, &mut shm2, &cs, &obj)
            {
                let fa = obj.cx * sol.x + obj.cy * sol.y;
                let fb = obj.cx * b.x + obj.cy * b.y;
                assert!(
                    (fa - fb).abs() < 1e-9 * (1.0 + fb.abs()),
                    "seed {seed}: {fa} vs {fb} after {} rounds",
                    trace.rounds
                );
            }
        }
    }

    #[test]
    fn rounds_stay_constant_as_n_grows() {
        let mut worst = 0usize;
        for &n in &[100usize, 1000, 10_000] {
            for seed in 0..5u64 {
                let (cs, obj) = tangent_instance(n, seed + 100);
                let mut m = Machine::new(seed);
                let mut shm = Shm::new();
                let (_, trace) =
                    solve_lp2_am(&mut m, &mut shm, &cs, &obj, &AmConfig::default()).unwrap();
                worst = worst.max(trace.rounds);
            }
        }
        assert!(worst <= 8, "rounds grew: {worst}");
    }

    #[test]
    fn survivor_counts_collapse() {
        let (cs, obj) = tangent_instance(5000, 3);
        let mut m = Machine::new(3);
        let mut shm = Shm::new();
        let (_, trace) = solve_lp2_am(&mut m, &mut shm, &cs, &obj, &AmConfig::default()).unwrap();
        // survivors must hit zero and shrink overall
        assert_eq!(*trace.survivors.last().unwrap(), 0);
        if trace.survivors.len() >= 2 {
            assert!(trace.survivors[trace.survivors.len() - 1] <= trace.survivors[0]);
        }
    }

    #[test]
    fn work_is_near_linear_not_cubic() {
        // the whole point of AM vs brute: n constraints solved with
        // O(n)-ish work (base solves are k³ = O(n)), not n³
        let (cs, obj) = tangent_instance(3000, 4);
        let mut m = Machine::new(4);
        let mut shm = Shm::new();
        solve_lp2_am(&mut m, &mut shm, &cs, &obj, &AmConfig::default()).unwrap();
        let n = 3000u64;
        assert!(
            m.metrics.total_work() < 200 * n,
            "work {} not near-linear",
            m.metrics.total_work()
        );
    }

    #[test]
    fn tiny_instances() {
        let cs = vec![hp(1.0, 0.0, 0.0), hp(0.0, 1.0, 0.0), hp(-1.0, -1.0, -2.0)];
        let obj = Objective2 { cx: 1.0, cy: 1.0 };
        let mut m = Machine::new(5);
        let mut shm = Shm::new();
        let (sol, _) = solve_lp2_am(&mut m, &mut shm, &cs, &obj, &AmConfig::default()).unwrap();
        assert!((sol.x - 0.0).abs() < 1e-9 && (sol.y - 0.0).abs() < 1e-9);
    }
}
