//! Seidel's randomized incremental LP in three variables (f64) — expected
//! O(n) time. The sequential probe engine behind the Edelsbrunner–Shi-role
//! 3-D baseline: "minimize the plane height over a splitter subject to all
//! points below the plane" is a 3-variable LP, and ES probe their hull
//! exactly this way (the paper's §1: "use linear programming to 'probe'
//! the convex hull").
//!
//! Recursive structure: shuffle; maintain the optimum; when constraint `c`
//! is violated, re-solve on `c`'s boundary plane (a 2-variable LP over the
//! earlier constraints), which in turn recurses to 1-variable LPs.
//! Works in f64 with relative tolerances — it is a *baseline/oracle*
//! cross-checked against the exact brute solver in tests; the exactness
//! story lives in [`crate::lp3d`] and [`crate::bridge`].

use ipch_pram::rng::SplitMix64;

use crate::constraint::Halfspace;
use crate::constraint::{Halfplane, Objective2};
use crate::lp3d::Objective3;
use crate::seidel::solve_lp2_seidel;

// The 3-D box must sit well inside the 2-D sub-solver's internal ±1e12
// box so sub-optima on our box faces are not mistaken for unboundedness.
const M: f64 = 1e9;
const EPS: f64 = 1e-9;

/// Solve `minimize obj` over `constraints`; `None` if infeasible or
/// unbounded (the artificial ±M box is reported as unbounded).
pub fn solve_lp3_seidel(
    constraints: &[Halfspace],
    obj: &Objective3,
    seed: u64,
) -> Option<(f64, f64, f64)> {
    let mut order: Vec<usize> = (0..constraints.len()).collect();
    let mut rng = SplitMix64::new(seed);
    for i in (1..order.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        order.swap(i, j);
    }

    let mut x = if obj.cx > 0.0 { -M } else { M };
    let mut y = if obj.cy > 0.0 { -M } else { M };
    let mut z = if obj.cz > 0.0 { -M } else { M };

    // the artificial box participates as real constraints so every sub-LP
    // stays bounded
    let mut seen: Vec<Halfspace> = vec![
        Halfspace {
            a: 1.0,
            b: 0.0,
            c: 0.0,
            d: -M,
        },
        Halfspace {
            a: -1.0,
            b: 0.0,
            c: 0.0,
            d: -M,
        },
        Halfspace {
            a: 0.0,
            b: 1.0,
            c: 0.0,
            d: -M,
        },
        Halfspace {
            a: 0.0,
            b: -1.0,
            c: 0.0,
            d: -M,
        },
        Halfspace {
            a: 0.0,
            b: 0.0,
            c: 1.0,
            d: -M,
        },
        Halfspace {
            a: 0.0,
            b: 0.0,
            c: -1.0,
            d: -M,
        },
    ];
    for &ci in &order {
        let c = constraints[ci];
        if c.a * x + c.b * y + c.c * z >= c.d - EPS * (1.0 + c.d.abs()) {
            seen.push(c);
            continue;
        }
        // re-optimize on the plane a·x + b·y + c·z = d
        let sol = solve_on_plane(&seen, &c, obj, rng.next_u64())?;
        x = sol.0;
        y = sol.1;
        z = sol.2;
        seen.push(c);
    }
    if x.abs() >= M * 0.99 || y.abs() >= M * 0.99 || z.abs() >= M * 0.99 {
        return None;
    }
    Some((x, y, z))
}

/// 2-D LP on the boundary plane of `l`, subject to `cs`.
fn solve_on_plane(
    cs: &[Halfspace],
    l: &Halfspace,
    obj: &Objective3,
    seed: u64,
) -> Option<(f64, f64, f64)> {
    // Parameterize the plane by the two coordinates with the smallest
    // normal component eliminated: solve for the axis with max |coeff|.
    let (ax, abs) = [l.a.abs(), l.b.abs(), l.c.abs()]
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    if abs == 0.0 {
        return None; // degenerate constraint
    }
    // plane: eliminated coordinate e = (d − p·u − q·v)/w in terms of the
    // two free coordinates (u, v)
    // index mapping: free coordinates are the two axes != ax
    let free: [usize; 2] = match ax {
        0 => [1, 2],
        1 => [0, 2],
        _ => [0, 1],
    };
    let coeff = [l.a, l.b, l.c];
    let w = coeff[ax];
    let sub = |h: &Halfspace| -> Halfplane {
        // h.a x + h.b y + h.c z ≥ h.d with eliminated coordinate replaced
        let hc = [h.a, h.b, h.c];
        let scale = hc[ax] / w;
        Halfplane {
            a: hc[free[0]] - scale * coeff[free[0]],
            b: hc[free[1]] - scale * coeff[free[1]],
            c: h.d - scale * l.d,
        }
    };
    let o = [obj.cx, obj.cy, obj.cz];
    let oscale = o[ax] / w;
    let obj2 = Objective2 {
        cx: o[free[0]] - oscale * coeff[free[0]],
        cy: o[free[1]] - oscale * coeff[free[1]],
    };
    let cs2: Vec<Halfplane> = cs.iter().map(sub).collect();
    let (u, v) = solve_lp2_seidel(&cs2, &obj2, seed)?;
    let e = (l.d - coeff[free[0]] * u - coeff[free[1]] * v) / w;
    let mut out = [0.0f64; 3];
    out[free[0]] = u;
    out[free[1]] = v;
    out[ax] = e;
    Some((out[0], out[1], out[2]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp3d::{solve_lp3_brute, Lp3Outcome};
    use ipch_pram::{Machine, Shm};

    fn hs(a: f64, b: f64, c: f64, d: f64) -> Halfspace {
        Halfspace { a, b, c, d }
    }

    #[test]
    fn box_corner() {
        let cs = vec![
            hs(1.0, 0.0, 0.0, 1.0),
            hs(0.0, 1.0, 0.0, 2.0),
            hs(0.0, 0.0, 1.0, 3.0),
            hs(-1.0, -1.0, -1.0, -100.0),
        ];
        let (x, y, z) = solve_lp3_seidel(
            &cs,
            &Objective3 {
                cx: 1.0,
                cy: 1.0,
                cz: 1.0,
            },
            1,
        )
        .unwrap();
        assert!((x - 1.0).abs() < 1e-6 && (y - 2.0).abs() < 1e-6 && (z - 3.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let cs = vec![hs(0.0, 0.0, 1.0, 5.0), hs(0.0, 0.0, -1.0, -1.0)];
        assert!(solve_lp3_seidel(
            &cs,
            &Objective3 {
                cx: 0.0,
                cy: 0.0,
                cz: 1.0
            },
            2
        )
        .is_none());
    }

    #[test]
    fn unbounded_reported() {
        let cs = vec![hs(0.0, 0.0, 1.0, 0.0)];
        assert!(solve_lp3_seidel(
            &cs,
            &Objective3 {
                cx: 1.0,
                cy: 0.0,
                cz: 0.0
            },
            3
        )
        .is_none());
    }

    #[test]
    fn agrees_with_exact_brute_on_random_instances() {
        let mut rng = SplitMix64::new(11);
        for trial in 0..15u64 {
            // half-spaces tangent to the unit sphere (bounded, feasible at 0)
            let n = 6 + (trial as usize % 10);
            let cs: Vec<Halfspace> = (0..n)
                .map(|_| {
                    let u = rng.next_f64() * 2.0 - 1.0;
                    let t = rng.next_f64() * std::f64::consts::TAU;
                    let r = (1.0 - u * u).sqrt();
                    hs(-r * t.cos(), -r * t.sin(), -u, -1.0 - rng.next_f64())
                })
                .collect();
            let obj = Objective3 {
                cx: 0.2,
                cy: -0.5,
                cz: 0.84,
            };
            let s = solve_lp3_seidel(&cs, &obj, trial);
            let mut m = Machine::new(trial);
            let mut shm = Shm::new();
            let b = solve_lp3_brute(&mut m, &mut shm, &cs, &obj);
            if let (Some((x, y, z)), Lp3Outcome::Optimal(bs)) = (s, b) {
                let fs = obj.cx * x + obj.cy * y + obj.cz * z;
                let fb = obj.cx * bs.x + obj.cy * bs.y + obj.cz * bs.z;
                assert!(
                    (fs - fb).abs() < 1e-5 * (1.0 + fb.abs()),
                    "trial {trial}: {fs} vs {fb}"
                );
            }
        }
    }

    #[test]
    fn facet_probe_objective_matches() {
        // the probe LP: minimize height at splitter over supporting planes
        use ipch_geom::gen3d::in_ball;
        let pts = in_ball(60, 7);
        let cs: Vec<Halfspace> = pts.iter().map(|p| hs(p.x, p.y, 1.0, p.z)).collect();
        let obj = Objective3 {
            cx: 0.1,
            cy: -0.2,
            cz: 1.0,
        };
        let (a, b, g) = solve_lp3_seidel(&cs, &obj, 5).unwrap();
        // the optimal plane z = a·x + b·y + g supports all points
        for p in &pts {
            assert!(a * p.x + b * p.y + g >= p.z - 1e-6);
        }
        let _ = g;
    }
}
