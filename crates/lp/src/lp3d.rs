//! Brute-force LP in three variables (paper Observation 2.2, d = 3):
//! *constant time with n⁴ processors* — all constraint triples form
//! candidate vertices, each checked against every constraint.
//!
//! Used by the 3-D facet machinery's analysis experiments and as the
//! reference the specialized [`crate::bridge::facet_brute`] probe is
//! validated against (the facet probe is this LP with the
//! Edelsbrunner–Shi objective "minimize plane height over the splitter").
//!
//! Feasibility is decided exactly: the candidate vertex of three
//! half-space boundaries is kept in Cramer form (4 exact 3×3 determinant
//! expansions) and each test is a sign computation.

use ipch_geom::exact::{two_product, Expansion};
use ipch_pram::{Machine, ModelClass, ModelContract, RaceExpectation, Shm, WritePolicy, EMPTY};

use crate::constraint::{f64_key, Halfspace};

/// Linear objective `minimize cx·x + cy·y + cz·z`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Objective3 {
    /// x-coefficient.
    pub cx: f64,
    /// y-coefficient.
    pub cy: f64,
    /// z-coefficient.
    pub cz: f64,
}

/// A 3-D LP optimum: the vertex and its three tight constraints.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Lp3Solution {
    /// Optimal point.
    pub x: f64,
    /// Optimal point.
    pub y: f64,
    /// Optimal point.
    pub z: f64,
    /// Defining constraint indices.
    pub tight: (usize, usize, usize),
}

/// Outcome of a 3-D brute solve.
#[derive(Clone, Debug, PartialEq)]
pub enum Lp3Outcome {
    /// Bounded optimum found.
    Optimal(Lp3Solution),
    /// No feasible candidate vertex.
    NoVertexOptimum,
}

fn e2(a: f64, b: f64) -> Expansion {
    let (h, l) = two_product(a, b);
    Expansion::from_two(h, l)
}

/// Exact 3×3 determinant of an f64 matrix (rows r0, r1, r2).
fn det3(r0: [f64; 3], r1: [f64; 3], r2: [f64; 3]) -> Expansion {
    let m01 = e2(r1[1], r2[2]).sub(&e2(r1[2], r2[1]));
    let m02 = e2(r1[0], r2[2]).sub(&e2(r1[2], r2[0]));
    let m03 = e2(r1[0], r2[1]).sub(&e2(r1[1], r2[0]));
    m01.scale(r0[0])
        .sub(&m02.scale(r0[1]))
        .add(&m03.scale(r0[2]))
}

/// Cramer system of three half-space boundaries: `(D, Dx, Dy, Dz)`.
pub fn cramer3(
    i: &Halfspace,
    j: &Halfspace,
    k: &Halfspace,
) -> (Expansion, Expansion, Expansion, Expansion) {
    let d = det3([i.a, i.b, i.c], [j.a, j.b, j.c], [k.a, k.b, k.c]);
    let dx = det3([i.d, i.b, i.c], [j.d, j.b, j.c], [k.d, k.b, k.c]);
    let dy = det3([i.a, i.d, i.c], [j.a, j.d, j.c], [k.a, k.d, k.c]);
    let dz = det3([i.a, i.b, i.d], [j.a, j.b, j.d], [k.a, k.b, k.d]);
    (d, dx, dy, dz)
}

/// Exact test: does the candidate satisfy half-space `h`?
pub fn candidate3_satisfies(
    d: &Expansion,
    dx: &Expansion,
    dy: &Expansion,
    dz: &Expansion,
    h: &Halfspace,
) -> bool {
    let t = dx
        .scale(h.a)
        .add(&dy.scale(h.b))
        .add(&dz.scale(h.c))
        .sub(&d.scale(h.d));
    t.sign() * d.sign() >= 0
}

/// Concurrency contract: as the 2-D brute solver — agreeing marks plus a
/// Combine(min) best-vertex election.
pub const LP3_BRUTE_CONTRACT: ModelContract = ModelContract {
    algorithm: "lp/brute3",
    class: ModelClass::Crcw,
    races: RaceExpectation::Deterministic,
};

/// Symbolic step structure of [`solve_lp3_brute`] for the static checker
/// ([`ipch_pram::verify`]). The C(n,3) candidate triples are
/// host-enumerated; the plan bounds them by n³ and the (triple,
/// constraint) marking scatter — nt·n processors at run time — by its
/// write footprint into the candidate array.
pub fn verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    let mut p = AlgorithmPlan::new(LP3_BRUTE_CONTRACT);
    let bad = p.array("lp3.bad", Affine::n3());
    let best = p.array("lp3.best", Affine::k(1));
    let win = p.array("lp3.win", Affine::k(1));
    p.step(
        StepPlan::new("mark", Affine::n3(), WritePolicy::CombineOr).write_uniform(
            bad,
            IndexSet::Within {
                lo: Affine::k(0),
                hi: Affine::n3().plus(-1),
            },
        ),
    );
    p.step(
        StepPlan::new("best-key", Affine::n3(), WritePolicy::CombineMin)
            .read(bad, IndexSet::Exact(Affine::pid()))
            .write(
                best,
                IndexSet::Within {
                    lo: Affine::k(0),
                    hi: Affine::k(0),
                },
            ),
    );
    p.step(
        StepPlan::new("elect", Affine::n3(), WritePolicy::PriorityMin)
            .read(bad, IndexSet::Exact(Affine::pid()))
            .write(
                win,
                IndexSet::Within {
                    lo: Affine::k(0),
                    hi: Affine::k(0),
                },
            ),
    );
    p
}

/// Solve `minimize obj` over `constraints` by Observation 2.2 (d = 3).
///
/// Costs O(1) executed steps and Θ(n⁴)-scale work. Like the 2-D solver,
/// the instance must be bounded in the objective direction for the result
/// to be the true optimum (callers add artificial bounds when unsure).
pub fn solve_lp3_brute(
    m: &mut Machine,
    shm: &mut Shm,
    constraints: &[Halfspace],
    obj: &Objective3,
) -> Lp3Outcome {
    m.declare_contract(&LP3_BRUTE_CONTRACT);
    let n = constraints.len();
    if n < 3 {
        return Lp3Outcome::NoVertexOptimum;
    }
    // host-enumerated unordered triples (processor wiring)
    let triples: Vec<(u32, u32, u32)> = {
        let mut v = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                for k in j + 1..n {
                    v.push((i as u32, j as u32, k as u32));
                }
            }
        }
        v
    };
    let nt = triples.len();
    let cands: Vec<Option<(Expansion, Expansion, Expansion, Expansion)>> = triples
        .iter()
        .map(|&(i, j, k)| {
            let c = cramer3(
                &constraints[i as usize],
                &constraints[j as usize],
                &constraints[k as usize],
            );
            (c.0.sign() != 0).then_some(c)
        })
        .collect();

    // Step 1: feasibility marking over (triple, constraint) pairs.
    let bad = shm.alloc("lp3.bad", nt, 0);
    let cands_ref = &cands;
    m.step_with_policy(shm, 0..nt * n, WritePolicy::CombineOr, |ctx| {
        let t = ctx.pid / n;
        let w = ctx.pid % n;
        match &cands_ref[t] {
            None => {
                if w == 0 {
                    ctx.write(bad, t, 1);
                }
            }
            Some((d, dx, dy, dz)) => {
                if !candidate3_satisfies(d, dx, dy, dz, &constraints[w]) {
                    ctx.write(bad, t, 1);
                }
            }
        }
    });

    // Step 2: Combining-Min over feasible candidates' objective keys.
    let objective = |c: &(Expansion, Expansion, Expansion, Expansion)| -> f64 {
        (obj.cx * c.1.approx() + obj.cy * c.2.approx() + obj.cz * c.3.approx()) / c.0.approx()
    };
    let best = shm.alloc("lp3.best", 1, i64::MAX);
    m.step_with_policy(shm, 0..nt, WritePolicy::CombineMin, |ctx| {
        let t = ctx.pid;
        if ctx.read(bad, t) != 0 {
            return;
        }
        if let Some(c) = &cands_ref[t] {
            ctx.write(best, 0, f64_key(objective(c)));
        }
    });
    let best_key = shm.get(best, 0);
    if best_key == i64::MAX {
        return Lp3Outcome::NoVertexOptimum;
    }

    // Step 3: election.
    let win = shm.alloc("lp3.win", 1, EMPTY);
    m.step_with_policy(shm, 0..nt, WritePolicy::PriorityMin, |ctx| {
        let t = ctx.pid;
        if ctx.read(bad, t) != 0 {
            return;
        }
        if let Some(c) = &cands_ref[t] {
            if f64_key(objective(c)) == best_key {
                ctx.write(win, 0, t as i64);
            }
        }
    });
    let w = shm.get(win, 0) as usize;
    let (i, j, k) = triples[w];
    let c = cands[w].as_ref().unwrap();
    let d = c.0.approx();
    Lp3Outcome::Optimal(Lp3Solution {
        x: c.1.approx() / d,
        y: c.2.approx() / d,
        z: c.3.approx() / d,
        tight: (i as usize, j as usize, k as usize),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hs(a: f64, b: f64, c: f64, d: f64) -> Halfspace {
        Halfspace { a, b, c, d }
    }

    #[test]
    fn box_corner() {
        // x,y,z ≥ 1,2,3 and ≤ 10; minimize x+y+z → (1,2,3)
        let cs = vec![
            hs(1.0, 0.0, 0.0, 1.0),
            hs(0.0, 1.0, 0.0, 2.0),
            hs(0.0, 0.0, 1.0, 3.0),
            hs(-1.0, 0.0, 0.0, -10.0),
            hs(0.0, -1.0, 0.0, -10.0),
            hs(0.0, 0.0, -1.0, -10.0),
        ];
        let mut m = Machine::new(1);
        let mut shm = Shm::new();
        match solve_lp3_brute(
            &mut m,
            &mut shm,
            &cs,
            &Objective3 {
                cx: 1.0,
                cy: 1.0,
                cz: 1.0,
            },
        ) {
            Lp3Outcome::Optimal(s) => {
                assert_eq!((s.x, s.y, s.z), (1.0, 2.0, 3.0));
                assert_eq!(s.tight, (0, 1, 2));
            }
            o => panic!("{o:?}"),
        }
        assert_eq!(m.metrics.steps, 3, "O(1) time");
    }

    #[test]
    fn infeasible() {
        let cs = vec![
            hs(1.0, 0.0, 0.0, 5.0),
            hs(-1.0, 0.0, 0.0, -1.0),
            hs(0.0, 1.0, 0.0, 0.0),
            hs(0.0, 0.0, 1.0, 0.0),
        ];
        let mut m = Machine::new(2);
        let mut shm = Shm::new();
        assert_eq!(
            solve_lp3_brute(
                &mut m,
                &mut shm,
                &cs,
                &Objective3 {
                    cx: 0.0,
                    cy: 1.0,
                    cz: 0.0
                }
            ),
            Lp3Outcome::NoVertexOptimum
        );
    }

    #[test]
    fn matches_facet_probe_objective() {
        // the facet above a splitter = LP over plane coefficients: minimize
        // height at (x0, y0) s.t. a·xi + b·yi + c ≥ zi
        use ipch_geom::gen3d::in_ball;
        let pts = in_ball(24, 3);
        let (x0, y0) = (0.0, 0.0);
        let cs: Vec<Halfspace> = pts.iter().map(|p| hs(p.x, p.y, 1.0, p.z)).collect();
        let obj = Objective3 {
            cx: x0,
            cy: y0,
            cz: 1.0,
        };
        let mut m = Machine::new(4);
        let mut shm = Shm::new();
        let lp = solve_lp3_brute(&mut m, &mut shm, &cs, &obj);
        let ids: Vec<usize> = (0..pts.len()).collect();
        let mut m2 = Machine::new(5);
        let mut shm2 = Shm::new();
        let facet = crate::bridge::facet_brute(&mut m2, &mut shm2, &pts, &ids, x0, y0).unwrap();
        if let Lp3Outcome::Optimal(s) = lp {
            // same supporting plane: the LP's height at the splitter must
            // equal the facet plane's height there
            let f = [facet.0, facet.1, facet.2];
            let (a, b, c) = (pts[f[0]], pts[f[1]], pts[f[2]]);
            // plane z = αx + βy + γ through a,b,c
            let ux = (b.x - a.x, b.y - a.y, b.z - a.z);
            let vx = (c.x - a.x, c.y - a.y, c.z - a.z);
            let nx = ux.1 * vx.2 - ux.2 * vx.1;
            let ny = ux.2 * vx.0 - ux.0 * vx.2;
            let nz = ux.0 * vx.1 - ux.1 * vx.0;
            let alpha = -nx / nz;
            let beta = -ny / nz;
            let gamma = a.z - alpha * a.x - beta * a.y;
            let facet_height = alpha * x0 + beta * y0 + gamma;
            let lp_height = s.x * x0 + s.y * y0 + s.z;
            assert!(
                (facet_height - lp_height).abs() < 1e-9,
                "{facet_height} vs {lp_height}"
            );
        } else {
            panic!("LP failed");
        }
    }

    #[test]
    fn redundant_constraints_ignored() {
        let mut cs = vec![
            hs(1.0, 0.0, 0.0, 0.0),
            hs(0.0, 1.0, 0.0, 0.0),
            hs(0.0, 0.0, 1.0, 0.0),
            hs(-1.0, -1.0, -1.0, -9.0),
        ];
        for i in 0..4 {
            cs.push(hs(1.0, 0.0, 0.0, -10.0 - i as f64)); // deeply redundant
        }
        let mut m = Machine::new(6);
        let mut shm = Shm::new();
        match solve_lp3_brute(
            &mut m,
            &mut shm,
            &cs,
            &Objective3 {
                cx: 1.0,
                cy: 1.0,
                cz: 1.0,
            },
        ) {
            Lp3Outcome::Optimal(s) => assert_eq!((s.x, s.y, s.z), (0.0, 0.0, 0.0)),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn degenerate_parallel_planes() {
        let cs = vec![
            hs(0.0, 0.0, 1.0, 0.0),
            hs(0.0, 0.0, 1.0, -1.0), // parallel to [0]
            hs(1.0, 0.0, 0.0, 0.0),
            hs(0.0, 1.0, 0.0, 0.0),
            hs(-1.0, -1.0, -1.0, -5.0),
        ];
        let mut m = Machine::new(7);
        let mut shm = Shm::new();
        match solve_lp3_brute(
            &mut m,
            &mut shm,
            &cs,
            &Objective3 {
                cx: 1.0,
                cy: 1.0,
                cz: 1.0,
            },
        ) {
            Lp3Outcome::Optimal(s) => assert_eq!((s.x, s.y, s.z), (0.0, 0.0, 0.0)),
            o => panic!("{o:?}"),
        }
    }
}
