//! Data-parallel kernel backend vs the sequential fused loops.
//!
//! Every pair runs the *same* PRAM program (bit-identical memory and
//! metrics — the determinism suite proves it); the ratio is the multi-core
//! win of chunked pool dispatch over the single-threaded fused loop:
//!
//! * `map-fused` / `map-par`       — dense `kernel_map` over a pid range
//!   (the contiguous-subslice path: no atomics, no per-element bounds
//!   checks, autovectorizable inner loop).
//! * `map-gather-*`                — `kernel_map` over an id list (the
//!   gather path real hull levels use).
//! * `reduce-fused` / `reduce-par` — `kernel_reduce` CombineSum with
//!   per-chunk partials folded in fixed chunk order.
//! * `scatter-fused` / `scatter-par` — conflict-free conditional scatter.
//!
//! The worker count is whatever the host grants (`IPCH_THREADS` override
//! honored); every CSV row records it — speedups are only meaningful with
//! `threads > 1`, and a 1-core container records honest ~1.0x ratios.
//!
//! A custom `main` appends to `bench_results/kernels_par.csv`.

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use ipch_pram::{pool, KernelBackend, Machine, ReduceOp, Shm, Tuning};

const SIZES: [usize; 4] = [1 << 12, 1 << 15, 1 << 18, 1 << 20];

/// Backend variants compared at every size. The parallel rows force the
/// dispatch threshold to 1 so even the small-n rows take the chunked code
/// path — the threshold's own no-regression guarantee is shown by the
/// `map-auto` rows, which leave `Tuning::default()` untouched (small n
/// stays on the sequential fast path by threshold).
fn tuning_for(backend: &str) -> Tuning {
    match backend {
        "fused" => Tuning {
            kernel_backend: KernelBackend::Fused,
            ..Tuning::default()
        },
        "par" => Tuning {
            kernel_backend: KernelBackend::Parallel,
            kernel_par_threshold: 1,
            ..Tuning::default()
        },
        // default thresholded dispatch: sequential below 2^15, chunked above
        _ => Tuning::default(),
    }
}

fn machine(backend: &str) -> Machine {
    let mut m = Machine::new(42);
    m.tuning = tuning_for(backend);
    m
}

fn bench_kernels_par(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_par");
    group.sample_size(10);

    for &n in &SIZES {
        group.throughput(Throughput::Elements(n as u64));

        // dense map over a pid range: out[i] = f(a[i])
        for backend in ["fused", "par", "auto"] {
            group.bench_with_input(
                BenchmarkId::new(format!("map-{backend}"), n),
                &n,
                |b, &n| {
                    let mut m = machine(backend);
                    let mut shm = Shm::new();
                    let a = shm.alloc("a", n, 1);
                    let out = shm.alloc("out", n, 0);
                    b.iter(|| {
                        m.kernel_map(&mut shm, 0..n, out, |t, i| {
                            t.read(a, i).wrapping_mul(3).wrapping_add(1)
                        });
                        black_box(shm.get(out, n - 1))
                    });
                },
            );
        }

        // gather map over an explicit id list (every hull level's shape)
        for backend in ["fused", "par"] {
            group.bench_with_input(
                BenchmarkId::new(format!("map-gather-{backend}"), n),
                &n,
                |b, &n| {
                    let mut m = machine(backend);
                    let mut shm = Shm::new();
                    let a = shm.alloc("a", n, 1);
                    let out = shm.alloc("out", n, 0);
                    let ids: Vec<usize> = (0..n).collect();
                    b.iter(|| {
                        m.kernel_map(&mut shm, &ids, out, |t, i| t.read(a, i) + 1);
                        black_box(shm.get(out, n - 1))
                    });
                },
            );
        }

        // reduce: CombineSum of one contribution per processor
        for backend in ["fused", "par"] {
            group.bench_with_input(
                BenchmarkId::new(format!("reduce-{backend}"), n),
                &n,
                |b, &n| {
                    let mut m = machine(backend);
                    let mut shm = Shm::new();
                    let a = shm.alloc("a", n, 1);
                    let cell = shm.alloc("cell", 1, 0);
                    b.iter(|| {
                        m.kernel_reduce(&mut shm, 0..n, ReduceOp::Sum, cell, 0, |t, i| {
                            Some(t.read(a, i))
                        });
                        black_box(shm.get(cell, 0))
                    });
                },
            );
        }

        // conflict-free conditional scatter
        for backend in ["fused", "par"] {
            group.bench_with_input(
                BenchmarkId::new(format!("scatter-{backend}"), n),
                &n,
                |b, &n| {
                    let mut m = machine(backend);
                    let mut shm = Shm::new();
                    let a = shm.alloc("a", n, 1);
                    let out = shm.alloc("out", n, 0);
                    b.iter(|| {
                        m.kernel_scatter(&mut shm, 0..n, |t, i| {
                            if t.read(a, i) != 0 && i % 4 != 3 {
                                Some((out, i, i as i64))
                            } else {
                                None
                            }
                        });
                        black_box(shm.get(out, 0))
                    });
                },
            );
        }
    }
    group.finish();
}

fn append_results(c: &Criterion, threads: usize) -> std::io::Result<std::path::PathBuf> {
    use std::io::Write;
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("kernels_par.csv");
    let fresh = !path.exists();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    if fresh {
        writeln!(f, "id,threads,median_ns_per_iter,melem_per_s")?;
    }
    for m in &c.measurements {
        writeln!(
            f,
            "{},{threads},{},{}",
            m.id,
            m.median.as_nanos(),
            m.elements_per_sec()
                .map(|r| format!("{:.3}", r / 1e6))
                .unwrap_or_default()
        )?;
    }
    Ok(path)
}

fn main() {
    // `cargo test --benches` executes bench binaries with `--test`; bail.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let threads = pool::configured_lanes();
    println!("kernels_par: {threads} configured lane(s) (IPCH_THREADS overrides)");
    let mut c = Criterion::default();
    bench_kernels_par(&mut c);

    // speedup summary: sequential fused loop vs chunked parallel dispatch
    for &n in &SIZES {
        let t = |name: &str| {
            c.measurements
                .iter()
                .find(|m| m.id == format!("kernels_par/{name}/{n}"))
                .map(|m| m.median.as_nanos() as f64)
        };
        if let (
            Some(mf),
            Some(mp),
            Some(ma),
            Some(gf),
            Some(gp),
            Some(rf),
            Some(rp),
            Some(sf),
            Some(sp),
        ) = (
            t("map-fused"),
            t("map-par"),
            t("map-auto"),
            t("map-gather-fused"),
            t("map-gather-par"),
            t("reduce-fused"),
            t("reduce-par"),
            t("scatter-fused"),
            t("scatter-par"),
        ) {
            println!(
                "n={n} threads={threads}: map {:.2}x (auto {:.2}x), gather-map {:.2}x, reduce {:.2}x, scatter {:.2}x vs fused",
                mf / mp,
                mf / ma,
                gf / gp,
                rf / rp,
                sf / sp,
            );
        }
    }
    match append_results(&c, threads) {
        Ok(p) => println!("appended results: {}", p.display()),
        Err(e) => eprintln!("could not append results: {e}"),
    }
}
