//! Wall-clock benches of the 3-D algorithms (experiment F6).

use criterion::{criterion_group, criterion_main, Criterion};
use ipch_geom::gen3d::sphere_plus_interior;
use ipch_hull3d::parallel::unsorted3d::{upper_hull3_unsorted, Unsorted3Params};
use ipch_hull3d::seq::giftwrap::upper_hull3_giftwrap;
use ipch_hull3d::seq::Seq3Stats;
use ipch_pram::{Machine, Shm};

fn bench_hull3d(c: &mut Criterion) {
    let pts = sphere_plus_interior(24, 600, 1);
    let mut group = c.benchmark_group("hull3d");
    group.sample_size(10);
    group.bench_function("giftwrap_n600_h24", |b| {
        b.iter(|| {
            let mut st = Seq3Stats::default();
            upper_hull3_giftwrap(&pts, &mut st)
        })
    });
    group.bench_function("theorem6_n600_h24", |b| {
        b.iter(|| {
            let mut m = Machine::new(1);
            let mut shm = Shm::new();
            upper_hull3_unsorted(&mut m, &mut shm, &pts, &Unsorted3Params::default())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hull3d);
criterion_main!(benches);
