//! Wall-clock benches of the LP substrate (experiment F6).

use criterion::{criterion_group, criterion_main, Criterion};
use ipch_geom::generators::uniform_disk;
use ipch_geom::UpperHull;
use ipch_lp::alon_megiddo::{solve_lp2_am, AmConfig};
use ipch_lp::brute::solve_lp2_brute;
use ipch_lp::constraint::{Halfplane, Objective2};
use ipch_lp::inplace_bridge::{find_bridge_inplace, IbConfig};
use ipch_lp::seidel::solve_lp2_seidel;
use ipch_pram::rng::SplitMix64;
use ipch_pram::{Machine, Shm};

fn instance(m: usize, seed: u64) -> (Vec<Halfplane>, Objective2) {
    let mut rng = SplitMix64::new(seed);
    let cs = (0..m)
        .map(|_| {
            let t = rng.next_f64() * std::f64::consts::TAU;
            Halfplane {
                a: -t.cos(),
                b: -t.sin(),
                c: -1.0 - rng.next_f64(),
            }
        })
        .collect();
    (cs, Objective2 { cx: 0.6, cy: 0.8 })
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp");
    group.sample_size(10);

    let (cs_small, obj) = instance(128, 1);
    group.bench_function("brute_m128", |b| {
        b.iter(|| {
            let mut m = Machine::new(1);
            let mut shm = Shm::new();
            solve_lp2_brute(&mut m, &mut shm, &cs_small, &obj)
        })
    });
    let (cs_big, obj2) = instance(8192, 2);
    group.bench_function("alon_megiddo_m8192", |b| {
        b.iter(|| {
            let mut m = Machine::new(2);
            let mut shm = Shm::new();
            solve_lp2_am(&mut m, &mut shm, &cs_big, &obj2, &AmConfig::default())
        })
    });
    group.bench_function("seidel_m8192", |b| {
        b.iter(|| solve_lp2_seidel(&cs_big, &obj2, 3))
    });

    let pts = uniform_disk(8192, 3);
    let hull = UpperHull::of(&pts);
    let mid = hull.vertices.len() / 2;
    let x0 = (pts[hull.vertices[mid - 1]].x + pts[hull.vertices[mid]].x) / 2.0;
    let active: Vec<usize> = (0..pts.len()).collect();
    group.bench_function("inplace_bridge_m8192", |b| {
        b.iter(|| {
            let mut m = Machine::new(4);
            let mut shm = Shm::new();
            find_bridge_inplace(&mut m, &mut shm, &pts, &active, x0, &IbConfig::default())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
