//! Simulator step-throughput benches: how fast does one `Machine::step`
//! commit under contrasting write profiles?
//!
//! Workloads (n = 2^10 .. 2^22 processors, one write each):
//!
//! * `scatter`        — in-order conflict-free scatter: the fast-path shape
//!   (no gather, no sort, no policy resolution).
//! * `scatter-sorted` — the same writes with the fast path disabled, i.e.
//!   the full gather → sort → resolve commit pipeline on conflict-free
//!   data. The `scatter` / `scatter-sorted` ratio is the fast path's win.
//! * `combine`        — every processor targets one of 64 cells under
//!   `CombineSum`: pure conflict resolution.
//! * `mixed`          — ¾ of processors scatter, ¼ pile onto hot cells —
//!   the profile of real algorithm steps (marking + voting).
//!
//! A custom `main` (instead of `criterion_main!`) appends every measurement
//! to `bench_results/machine.csv` so runs accumulate a throughput history.

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use ipch_pram::{primitives, Machine, ReduceOp, Shm, Tuning, WritePolicy};

const SIZES: [usize; 4] = [1 << 10, 1 << 14, 1 << 18, 1 << 22];

/// A faithful re-implementation of the simulator's *previous* commit
/// pipeline (reconstructed from history), kept here as the benchmark
/// baseline the optimized machine is compared against: eager per-pid RNG
/// construction, fresh per-chunk write vectors each step, gather into one
/// allocation, tuple-keyed sort, and a per-cell tiebreak hash + policy
/// dispatch even for unconflicted cells.
mod seed_style {
    use ipch_pram::rng::{mix64, SplitMix64};
    use ipch_pram::{ArrayId, Shm, WritePolicy};

    struct Entry {
        idx: u32,
        pid: usize,
        val: i64,
    }

    pub struct Ctx<'b> {
        pub pid: usize,
        #[allow(dead_code)]
        rng: SplitMix64, // constructed eagerly, like the old pipeline
        writes: &'b mut Vec<Entry>,
    }

    impl Ctx<'_> {
        pub fn write(&mut self, i: usize, v: i64) {
            self.writes.push(Entry {
                idx: i as u32,
                pid: self.pid,
                val: v,
            });
        }
    }

    pub struct SeedMachine {
        seed: u64,
        step_no: u64,
    }

    impl SeedMachine {
        pub fn new(seed: u64) -> Self {
            Self { seed, step_no: 0 }
        }

        /// One step over pids `0..count`, all writes into array `a`.
        pub fn step<F: Fn(&mut Ctx)>(
            &mut self,
            shm: &mut Shm,
            a: ArrayId,
            count: usize,
            policy: WritePolicy,
            f: F,
        ) {
            let step_no = self.step_no;
            self.step_no += 1;
            const CHUNK: usize = 8192;
            let nchunks = count.div_ceil(CHUNK);
            let per_chunk: Vec<Vec<Entry>> = (0..nchunks)
                .map(|c| {
                    let (lo, hi) = (c * CHUNK, ((c + 1) * CHUNK).min(count));
                    let mut writes: Vec<Entry> = Vec::new();
                    for pid in lo..hi {
                        let mut ctx = Ctx {
                            pid,
                            rng: SplitMix64::for_step_pid(self.seed, step_no, pid as u64),
                            writes: &mut writes,
                        };
                        f(&mut ctx);
                    }
                    writes
                })
                .collect();
            let total: usize = per_chunk.iter().map(|w| w.len()).sum();
            let mut all: Vec<Entry> = Vec::with_capacity(total);
            for w in per_chunk {
                all.extend(w);
            }
            all.sort_unstable_by_key(|x| (x.idx, x.pid));
            let mut i = 0;
            let mut group: Vec<(usize, i64)> = Vec::new();
            while i < all.len() {
                let idx = all[i].idx;
                group.clear();
                while i < all.len() && all[i].idx == idx {
                    group.push((all[i].pid, all[i].val));
                    i += 1;
                }
                let tiebreak = mix64(
                    self.seed ^ mix64(step_no ^ (idx as u64).wrapping_mul(0x9E3779B97F4A7C15)),
                );
                let v = policy.resolve(&group, tiebreak);
                shm.host_set(a, idx as usize, v);
            }
        }
    }
}

fn machine(tuning: Tuning) -> Machine {
    let mut m = Machine::new(42);
    m.tuning = tuning;
    m
}

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    group.sample_size(10);

    for &n in &SIZES {
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("scatter", n), &n, |b, &n| {
            let mut m = machine(Tuning::default());
            let mut shm = Shm::new();
            let a = shm.alloc("a", n, 0);
            b.iter(|| {
                m.step(&mut shm, 0..n, |ctx| {
                    let pid = ctx.pid;
                    ctx.write(a, pid, pid as i64);
                });
                black_box(shm.get(a, n - 1))
            });
            assert_eq!(m.metrics.fastpath_steps, m.metrics.host_steps);
        });

        group.bench_with_input(BenchmarkId::new("scatter-sorted", n), &n, |b, &n| {
            let mut m = machine(Tuning {
                disable_fast_path: true,
                ..Tuning::default()
            });
            let mut shm = Shm::new();
            let a = shm.alloc("a", n, 0);
            b.iter(|| {
                m.step(&mut shm, 0..n, |ctx| {
                    let pid = ctx.pid;
                    ctx.write(a, pid, pid as i64);
                });
                black_box(shm.get(a, n - 1))
            });
            assert_eq!(m.metrics.fastpath_steps, 0);
        });

        group.bench_with_input(BenchmarkId::new("combine", n), &n, |b, &n| {
            let mut m = machine(Tuning::default());
            let mut shm = Shm::new();
            let a = shm.alloc("acc", 64, 0);
            b.iter(|| {
                m.step_with_policy(&mut shm, 0..n, WritePolicy::CombineSum, |ctx| {
                    ctx.write(a, ctx.pid % 64, 1);
                });
                black_box(shm.get(a, 0))
            });
        });

        group.bench_with_input(BenchmarkId::new("scatter-seedbase", n), &n, |b, &n| {
            let mut m = seed_style::SeedMachine::new(42);
            let mut shm = Shm::new();
            let a = shm.alloc("a", n, 0);
            b.iter(|| {
                m.step(&mut shm, a, n, WritePolicy::Arbitrary, |ctx| {
                    let pid = ctx.pid;
                    ctx.write(pid, pid as i64);
                });
                black_box(shm.get(a, n - 1))
            });
        });

        group.bench_with_input(BenchmarkId::new("combine-seedbase", n), &n, |b, &n| {
            let mut m = seed_style::SeedMachine::new(42);
            let mut shm = Shm::new();
            let a = shm.alloc("acc", 64, 0);
            b.iter(|| {
                m.step(&mut shm, a, n, WritePolicy::CombineSum, |ctx| {
                    let pid = ctx.pid;
                    ctx.write(pid % 64, 1);
                });
                black_box(shm.get(a, 0))
            });
        });

        group.bench_with_input(BenchmarkId::new("mixed", n), &n, |b, &n| {
            let mut m = machine(Tuning::default());
            let mut shm = Shm::new();
            let a = shm.alloc("a", n, 0);
            let hot = shm.alloc("hot", 16, 0);
            b.iter(|| {
                m.step(&mut shm, 0..n, |ctx| {
                    let pid = ctx.pid;
                    if pid % 4 == 0 {
                        ctx.write(hot, pid % 16, 1);
                    } else {
                        ctx.write(a, pid, pid as i64);
                    }
                });
                black_box(shm.get(a, 1))
            });
        });
    }
    group.finish();
}

/// The fused bulk-kernel layer vs the identical workload routed through
/// the generic per-processor `step` dispatch (`Tuning::disable_kernels`).
/// Each fused/generic pair executes the same PRAM program and charges the
/// same metrics; the ratio is pure host-dispatch overhead.
fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);

    for &n in &SIZES {
        group.throughput(Throughput::Elements(n as u64));

        for (name, generic) in [("map-fused", false), ("map-generic", true)] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                let mut m = machine(Tuning {
                    disable_kernels: generic,
                    ..Tuning::default()
                });
                let mut shm = Shm::new();
                let a = shm.alloc("a", n, 1);
                let out = shm.alloc("out", n, 0);
                b.iter(|| {
                    m.kernel_map(&mut shm, 0..n, out, |t, i| t.read(a, i) + 1);
                    black_box(shm.get(out, n - 1))
                });
            });
        }

        for (name, generic) in [("scatter-fused", false), ("scatter-generic", true)] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                let mut m = machine(Tuning {
                    disable_kernels: generic,
                    ..Tuning::default()
                });
                let mut shm = Shm::new();
                let a = shm.alloc("a", n, 1);
                let out = shm.alloc("out", n, 0);
                b.iter(|| {
                    m.kernel_scatter(&mut shm, 0..n, |t, i| {
                        if t.read(a, i) != 0 && i % 4 != 3 {
                            Some((out, i, i as i64))
                        } else {
                            None
                        }
                    });
                    black_box(shm.get(out, 0))
                });
            });
        }

        for (name, generic) in [("reduce-fused", false), ("reduce-generic", true)] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                let mut m = machine(Tuning {
                    disable_kernels: generic,
                    ..Tuning::default()
                });
                let mut shm = Shm::new();
                let a = shm.alloc("a", n, 1);
                let cell = shm.alloc("cell", 1, 0);
                b.iter(|| {
                    m.kernel_reduce(&mut shm, 0..n, ReduceOp::Sum, cell, 0, |t, i| {
                        Some(t.read(a, i))
                    });
                    black_box(shm.get(cell, 0))
                });
            });
        }
    }
    group.finish();
}

/// Workspace-leak regression: 10⁴ iterated primitive calls must not grow
/// the live array population — scoped arenas recycle the same slots. The
/// CSV records host ns/step and the peak live-array count (the number
/// this PR pins at O(1); before scoped arenas it grew by ~7 arrays per
/// iteration).
fn leak_bench() -> std::io::Result<()> {
    use std::io::Write;
    const ITERS: usize = 10_000;
    let n = 1 << 12;
    let mut m = Machine::new(7);
    let mut shm = Shm::new();
    let flags = shm.alloc("flags", n, 0);
    shm.host_set(flags, n / 2, 1);
    let mut peak = 0usize;
    let t0 = std::time::Instant::now();
    for _ in 0..ITERS {
        black_box(primitives::or_over(&mut m, &mut shm, flags, 0, n));
        black_box(primitives::leftmost_nonzero(&mut m, &mut shm, flags));
        peak = peak.max(shm.array_count());
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    let ns_per_step = elapsed_ns as f64 / m.metrics.steps as f64;
    println!(
        "leak bench: {ITERS} iterations, {} steps, {:.0} ns/step, peak live arrays {peak}",
        m.metrics.steps, ns_per_step
    );
    assert!(
        peak <= 16,
        "workspace leak: {peak} live arrays after {ITERS} iterations"
    );

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("leak.csv");
    let fresh = !path.exists();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    if fresh {
        writeln!(f, "iterations,steps,host_ns_per_step,peak_live_arrays")?;
    }
    writeln!(f, "{ITERS},{},{ns_per_step:.1},{peak}", m.metrics.steps)?;
    println!("appended results: {}", path.display());
    Ok(())
}

fn append_results(c: &Criterion) -> std::io::Result<std::path::PathBuf> {
    use std::io::Write;
    // anchor at the workspace root: bench binaries run with the package
    // directory as cwd, but results belong next to the tables' CSVs
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("machine.csv");
    let fresh = !path.exists();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    if fresh {
        writeln!(f, "id,median_ns_per_iter,melem_per_s")?;
    }
    for m in &c.measurements {
        writeln!(
            f,
            "{},{},{}",
            m.id,
            m.median.as_nanos(),
            m.elements_per_sec()
                .map(|r| format!("{:.3}", r / 1e6))
                .unwrap_or_default()
        )?;
    }
    Ok(path)
}

fn main() {
    // `cargo test --benches` executes bench binaries with `--test`; a full
    // measurement sweep there would be slow noise, so bail out.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let mut c = Criterion::default();
    bench_machine(&mut c);
    bench_kernels(&mut c);

    // speedup summary: the optimized pipeline vs its own sorted path and
    // vs the reconstructed previous-generation commit path
    for &n in &SIZES {
        let t = |name: &str| {
            c.measurements
                .iter()
                .find(|m| m.id == format!("machine/{name}/{n}"))
                .map(|m| m.median.as_nanos() as f64)
        };
        if let (Some(fast), Some(slow), Some(seed), Some(comb), Some(comb_seed)) = (
            t("scatter"),
            t("scatter-sorted"),
            t("scatter-seedbase"),
            t("combine"),
            t("combine-seedbase"),
        ) {
            println!(
                "n={n}: scatter {:.2}x vs seed-baseline ({:.2}x vs own sorted path); combine {:.2}x vs seed-baseline",
                seed / fast,
                slow / fast,
                comb_seed / comb,
            );
        }
    }
    // fused-kernel summary: the same PRAM program through the bulk kernels
    // vs the generic per-processor dispatch
    for &n in &SIZES {
        let t = |name: &str| {
            c.measurements
                .iter()
                .find(|m| m.id == format!("kernels/{name}/{n}"))
                .map(|m| m.median.as_nanos() as f64)
        };
        if let (Some(mf), Some(mg), Some(sf), Some(sg), Some(rf), Some(rg)) = (
            t("map-fused"),
            t("map-generic"),
            t("scatter-fused"),
            t("scatter-generic"),
            t("reduce-fused"),
            t("reduce-generic"),
        ) {
            println!(
                "n={n}: kernels map {:.2}x, scatter {:.2}x, reduce {:.2}x vs generic dispatch",
                mg / mf,
                sg / sf,
                rg / rf,
            );
        }
    }
    match append_results(&c) {
        Ok(p) => println!("appended results: {}", p.display()),
        Err(e) => eprintln!("could not append results: {e}"),
    }
    if let Err(e) = leak_bench() {
        eprintln!("could not run leak bench: {e}");
    }
}
