//! Saturation throughput of the serving runtime with batch admission.
//!
//! A closed-loop driver pushes `R` small same-algorithm requests (n = 32,
//! far below `batch_point_cap`) at a drained single-threaded service and
//! measures end-to-end requests per second — admission, coalescing, the
//! fused batch kernel (or the per-request supervised path), resolution,
//! and ticket delivery all inside the clock. The sweep crosses
//!
//! * `batch_max` ∈ {1, 4, 8, 16} — 1 is the unbatched baseline
//!   (`batch_window: 0`, every request runs the full supervised path);
//! * tenants ∈ {1, 4} — batches only form within a queue shard, and
//!   tenant affinity spreads tenants across lanes, so multi-tenant
//!   traffic exercises coalescing across interleaved streams.
//!
//! Small supervised runs are dominated by the simulator's per-step
//! overhead (hundreds of steps each), while a fused batch election takes
//! three machine steps regardless of batch size — so throughput should
//! scale strongly with `batch_max`. Each measurement is the median of
//! three repetitions; one `speedup` column relates every row to the
//! unbatched row of the same tenant count.
//!
//! Results append to `bench_results/service_saturation.csv`. Runs are
//! single-core honest: the `threads` column records the configured
//! simulator lanes. `IPCH_SAT_SMOKE=1` shrinks the request count for CI.

use std::time::Instant;

use ipch_geom::generators::uniform_disk;
use ipch_service::{Hull2dAlgo, Request, Service, ServiceConfig, Workload};

const POINTS_PER_REQUEST: usize = 32;
const BATCH_SWEEP: [usize; 4] = [1, 4, 8, 16];
const TENANT_SWEEP: [usize; 2] = [1, 4];
const REPS: usize = 3;

struct Row {
    batch_max: usize,
    tenants: usize,
    requests: usize,
    elapsed_ms: f64,
    reqs_per_s: f64,
}

/// One closed-loop measurement: submit `requests` pinned-seed requests,
/// drain, wait on every ticket. Returns the wall-clock seconds.
fn run_once(batch_max: usize, tenants: usize, requests: usize) -> f64 {
    let tenant_names = ["alpha", "beta", "gamma", "delta"];
    let cfg = ServiceConfig {
        workers: 0,
        queue_capacity: requests,
        per_tenant_inflight: requests,
        // batch_max == 1 is the unbatched baseline: coalescing off
        batch_window: if batch_max > 1 { 2 * batch_max } else { 0 },
        batch_max,
        ..ServiceConfig::default()
    };
    let svc = Service::new(cfg);
    // identical request bodies across configs: same points, same seeds
    let pts = uniform_disk(POINTS_PER_REQUEST, 77);
    let start = Instant::now();
    let tickets: Vec<_> = (0..requests)
        .map(|i| {
            let req = Request::new(
                tenant_names[i % tenants],
                i as u64,
                Workload::Hull2d {
                    points: pts.clone(),
                    algo: Hull2dAlgo::Unsorted,
                },
            );
            svc.submit(req).expect("queue sized for the whole run")
        })
        .collect();
    svc.drain();
    for t in tickets {
        t.wait().expect("clean saturation traffic completes");
    }
    let secs = start.elapsed().as_secs_f64();
    let stats = svc.health().stats;
    assert_eq!(stats.completed, requests as u64, "lost requests");
    if batch_max > 1 {
        assert!(stats.batches_formed > 0, "sweep point never batched");
    }
    secs
}

fn measure(batch_max: usize, tenants: usize, requests: usize) -> Row {
    // warm-up (allocator, lazy pools), then median of REPS
    run_once(batch_max, tenants, requests.min(32));
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| run_once(batch_max, tenants, requests))
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times[REPS / 2];
    Row {
        batch_max,
        tenants,
        requests,
        elapsed_ms: median * 1e3,
        reqs_per_s: requests as f64 / median,
    }
}

fn append_results(rows: &[Row], threads: usize) -> std::io::Result<std::path::PathBuf> {
    use std::io::Write;
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("service_saturation.csv");
    let fresh = !path.exists();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    if fresh {
        writeln!(
            f,
            "id,batch_max,tenants,requests,n,threads,elapsed_ms,reqs_per_s,speedup_vs_unbatched"
        )?;
    }
    for r in rows {
        let base = rows
            .iter()
            .find(|b| b.tenants == r.tenants && b.batch_max == 1)
            .map(|b| b.reqs_per_s)
            .unwrap_or(r.reqs_per_s);
        writeln!(
            f,
            "service_saturation/b{}/t{},{},{},{},{},{},{:.3},{:.1},{:.2}",
            r.batch_max,
            r.tenants,
            r.batch_max,
            r.tenants,
            r.requests,
            POINTS_PER_REQUEST,
            threads,
            r.elapsed_ms,
            r.reqs_per_s,
            r.reqs_per_s / base,
        )?;
    }
    Ok(path)
}

fn main() {
    // `cargo test --benches` executes bench binaries with `--test`; the
    // sweep is seconds of wall clock, so bail out there.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let smoke = std::env::var("IPCH_SAT_SMOKE").is_ok_and(|v| v == "1");
    let requests = if smoke { 64 } else { 240 };
    let threads = ipch_pram::pool::configured_lanes();

    let mut rows = Vec::new();
    for &tenants in &TENANT_SWEEP {
        for &batch_max in &BATCH_SWEEP {
            let row = measure(batch_max, tenants, requests);
            println!(
                "batch_max={:2} tenants={} : {:8.1} req/s ({:.1} ms for {} requests)",
                row.batch_max, row.tenants, row.reqs_per_s, row.elapsed_ms, row.requests
            );
            rows.push(row);
        }
        let base = rows
            .iter()
            .find(|r| r.tenants == tenants && r.batch_max == 1)
            .map(|r| r.reqs_per_s)
            .unwrap();
        for r in rows.iter().filter(|r| r.tenants == tenants) {
            if r.batch_max > 1 {
                println!(
                    "  tenants={}: batch {:2} speedup {:.2}x",
                    tenants,
                    r.batch_max,
                    r.reqs_per_s / base
                );
            }
        }
    }
    match append_results(&rows, threads) {
        Ok(p) => println!("appended results: {}", p.display()),
        Err(e) => eprintln!("could not append results: {e}"),
    }
}
