//! Wall-clock benches for the sequential 2-D baselines (experiment F6).
//!
//! Two workloads per algorithm: small output (h = 16) and full output
//! (on-circle, h = n) at the same n — the output-sensitivity story in
//! real time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipch_geom::generators::{circle_plus_interior, on_circle};
use ipch_hull2d::seq::{chan, graham, jarvis, ks, monotone, SeqStats};

fn bench_seq2d(c: &mut Criterion) {
    let n = 20_000;
    let small_h = circle_plus_interior(16, n, 1);
    let big_h = on_circle(n, 1);

    let mut group = c.benchmark_group("seq2d");
    group.sample_size(10);
    for (wname, pts) in [("h16", &small_h), ("h=n", &big_h)] {
        group.bench_with_input(BenchmarkId::new("monotone", wname), pts, |b, pts| {
            b.iter(|| {
                let mut st = SeqStats::default();
                monotone::upper_hull(pts, &mut st)
            })
        });
        group.bench_with_input(BenchmarkId::new("graham", wname), pts, |b, pts| {
            b.iter(|| {
                let mut st = SeqStats::default();
                graham::upper_hull(pts, &mut st)
            })
        });
        group.bench_with_input(BenchmarkId::new("ks", wname), pts, |b, pts| {
            b.iter(|| {
                let mut st = SeqStats::default();
                ks::upper_hull(pts, &mut st)
            })
        });
        group.bench_with_input(BenchmarkId::new("chan", wname), pts, |b, pts| {
            b.iter(|| {
                let mut st = SeqStats::default();
                chan::upper_hull(pts, &mut st)
            })
        });
        // jarvis on h = n is O(n²): bench it only on the small-h workload
        if wname == "h16" {
            group.bench_with_input(BenchmarkId::new("jarvis", wname), pts, |b, pts| {
                b.iter(|| {
                    let mut st = SeqStats::default();
                    jarvis::upper_hull(pts, &mut st)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_seq2d);
criterion_main!(benches);
