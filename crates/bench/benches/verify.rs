//! Static-checker cost benches: what does a `pram::verify` pass cost?
//!
//! Two rows:
//!
//! * `all-plans` — a full sweep of every entry-point plan in the
//!   workspace at one input size (the CI / test-suite shape).
//! * `admission` — a single served-algorithm plan check (the exact work
//!   `Service::submit` pays per request when `precheck_plans` is on).
//!
//! The point of the numbers is the admission budget: the precheck is a
//! handful of symbolic evaluations over a step template, so it should
//! price in nanoseconds-to-microseconds regardless of `n` — the checker
//! evaluates affine endpoints, it never enumerates processors. A row
//! that scales with `n` is a checker regression.
//!
//! A custom `main` (instead of `criterion_main!`) appends every
//! measurement to `bench_results/verify.csv`.

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use ipch_pram::verify::{verify, verify_all, AlgorithmPlan, VerifyConfig};

const SIZES: [usize; 3] = [1 << 8, 1 << 14, 1 << 20];

fn all_plans() -> Vec<AlgorithmPlan> {
    let mut plans = ipch_hull2d::parallel::verify_plans::verify_plans();
    plans.extend(ipch_hull3d::parallel::verify_plans());
    plans.extend(ipch_lp::verify_plans());
    plans.extend(ipch_inplace::verify_plans());
    plans
}

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify");
    group.sample_size(20);
    let cfg = VerifyConfig::default();

    let plans = all_plans();
    for &n in &SIZES {
        group.throughput(Throughput::Elements(plans.len() as u64));
        group.bench_with_input(BenchmarkId::new("all-plans", n), &n, |b, &n| {
            b.iter(|| black_box(verify_all(&plans, n, &cfg).expect("plans verify")));
        });
    }

    let admission = plans
        .iter()
        .find(|p| p.contract.algorithm == "hull2d/unsorted")
        .expect("served algorithm has a plan");
    for &n in &SIZES {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("admission", n), &n, |b, &n| {
            b.iter(|| black_box(verify(admission, n, &cfg).expect("plan verifies")));
        });
    }
    group.finish();
}

fn append_results(c: &Criterion) -> std::io::Result<std::path::PathBuf> {
    use std::io::Write;
    // anchor at the workspace root: bench binaries run with the package
    // directory as cwd, but results belong next to the tables' CSVs
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("verify.csv");
    let fresh = !path.exists();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    if fresh {
        writeln!(f, "id,median_ns_per_iter,melem_per_s")?;
    }
    for m in &c.measurements {
        writeln!(
            f,
            "{},{},{}",
            m.id,
            m.median.as_nanos(),
            m.elements_per_sec()
                .map(|r| format!("{:.3}", r / 1e6))
                .unwrap_or_default()
        )?;
    }
    Ok(path)
}

fn main() {
    // `cargo test --benches` executes bench binaries with `--test`; a full
    // measurement sweep there would be slow noise, so bail out.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let mut c = Criterion::default();
    bench_verify(&mut c);
    match append_results(&c) {
        Ok(path) => println!(
            "appended {} rows to {}",
            c.measurements.len(),
            path.display()
        ),
        Err(e) => eprintln!("could not write verify.csv: {e}"),
    }
}
