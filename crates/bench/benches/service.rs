//! Serving-runtime overhead benches: what does routing a request through
//! `ipch_service::Service` cost over calling the supervised algorithm
//! directly?
//!
//! * `direct` — `upper_hull_unsorted_supervised` on a caller-owned
//!   machine: the baseline everything else in the repo measures.
//! * `served` — the same workload through the full service path:
//!   admission (queue + tenant bookkeeping under the lock), breaker
//!   planning, a request-owned machine with a cancellation token
//!   attached, panic isolation, metrics absorption, and ticket delivery.
//!   The service runs with `workers: 0` and is drained on the measuring
//!   thread, so both sides execute on one thread and the served/direct
//!   multiplier isolates the wrapper overhead (it should sit within host
//!   noise of 1.0 — the simulated step commits dominate).
//! * `shed` — the admission fast path under overload: the queue is
//!   pre-filled to capacity, so every submission resolves to a typed
//!   `Rejected` without touching a machine. This is the latency a client
//!   sees when load is shed.
//!
//! A custom `main` (instead of `criterion_main!`) appends every
//! measurement to `bench_results/service.csv`, plus one `shed-rate` row
//! from a fixed overload scenario (a 200-request burst into a 16-deep
//! queue, two workers): for that row the second column is the shed count
//! and the third is the shed fraction.

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use ipch_geom::generators::uniform_disk;
use ipch_hull2d::parallel::supervised::upper_hull_unsorted_supervised;
use ipch_hull2d::parallel::unsorted::UnsortedParams;
use ipch_pram::{Machine, SuperviseConfig};
use ipch_service::{Hull2dAlgo, Request, Service, ServiceConfig, ServiceError, Workload};

const SIZES: [usize; 2] = [256, 1024];

fn request(pts: &[ipch_geom::Point2], seed: u64) -> Request {
    Request::new(
        "bench",
        seed,
        Workload::Hull2d {
            points: pts.to_vec(),
            algo: Hull2dAlgo::Unsorted,
        },
    )
}

fn bench_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    for &n in &SIZES {
        group.throughput(Throughput::Elements(n as u64));
        let pts = uniform_disk(n, 21);

        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            let params = UnsortedParams::default();
            let cfg = SuperviseConfig::default();
            let mut m = Machine::new(31);
            b.iter(|| {
                let s =
                    upper_hull_unsorted_supervised(&mut m, &pts, &params, &cfg).expect("clean run");
                black_box(s.value.0.hull.len())
            });
        });

        group.bench_with_input(BenchmarkId::new("served", n), &n, |b, _| {
            let svc = Service::new(ServiceConfig {
                workers: 0,
                ..ServiceConfig::default()
            });
            // Same machine seed as the direct side: the request's machine
            // derives the same attempt streams, so both sides simulate
            // identical work and the ratio isolates the wrapper.
            b.iter(|| {
                let t = svc.submit(request(&pts, 31)).expect("admitted");
                svc.drain();
                black_box(t.wait().expect("clean run").sim_steps)
            });
        });

        group.bench_with_input(BenchmarkId::new("shed", n), &n, |b, _| {
            let svc = Service::new(ServiceConfig {
                workers: 0,
                queue_capacity: 4,
                ..ServiceConfig::default()
            });
            // Fill the queue; every measured submission is then a typed
            // rejection (never drained, so the queue stays full).
            for seed in 0..4 {
                svc.submit(request(&pts, seed)).expect("fills the queue");
            }
            b.iter(|| match svc.submit(request(&pts, 99)) {
                Err(e @ ServiceError::Rejected { .. }) => black_box(e.code().len()),
                other => panic!("expected a shed, got {other:?}"),
            });
        });
    }
    group.finish();
}

/// Fixed overload scenario for the shed-rate row: a 200-request burst
/// into a 16-deep queue with two live workers (no pacing, so the burst
/// front is admitted and the long tail is shed).
fn shed_rate_scenario() -> (u64, f64) {
    let svc = Service::new(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        per_tenant_inflight: 256,
        ..ServiceConfig::default()
    });
    let pts = uniform_disk(256, 22);
    let mut tickets = Vec::new();
    for seed in 0..200u64 {
        if let Ok(t) = svc.submit(request(&pts, seed)) {
            tickets.push(t);
        }
    }
    for t in tickets {
        t.wait().expect("admitted requests complete");
    }
    let stats = svc.health().stats;
    assert_eq!(stats.submitted, stats.total_resolved(), "lost requests");
    (
        stats.total_shed(),
        stats.total_shed() as f64 / stats.submitted as f64,
    )
}

fn append_results(c: &Criterion, sheds: u64, rate: f64) -> std::io::Result<std::path::PathBuf> {
    use std::io::Write;
    // anchor at the workspace root: bench binaries run with the package
    // directory as cwd, but results belong next to the tables' CSVs
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("service.csv");
    let fresh = !path.exists();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    if fresh {
        writeln!(f, "id,median_ns_per_iter,melem_per_s")?;
    }
    for m in &c.measurements {
        writeln!(
            f,
            "{},{},{}",
            m.id,
            m.median.as_nanos(),
            m.elements_per_sec()
                .map(|r| format!("{:.3}", r / 1e6))
                .unwrap_or_default()
        )?;
    }
    writeln!(f, "service/shed-rate/burst200,{sheds},{rate:.3}")?;
    Ok(path)
}

fn main() {
    // `cargo test --benches` executes bench binaries with `--test`; a full
    // measurement sweep there would be slow noise, so bail out.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let mut c = Criterion::default();
    bench_latency(&mut c);

    // served/direct multiplier summary
    for &n in &SIZES {
        let t = |name: &str| {
            c.measurements
                .iter()
                .find(|m| m.id == format!("service/{name}/{n}"))
                .map(|m| m.median.as_nanos() as f64)
        };
        if let (Some(direct), Some(served)) = (t("direct"), t("served")) {
            println!("n={n}: service wrapper multiplier {:.2}x", served / direct);
        }
    }
    let (sheds, rate) = shed_rate_scenario();
    println!("overload burst: shed {sheds}/200 ({:.1}%)", rate * 100.0);
    match append_results(&c, sheds, rate) {
        Ok(p) => println!("appended results: {}", p.display()),
        Err(e) => eprintln!("could not append results: {e}"),
    }
}
