//! Supervisor overhead benches: what does routing a randomized algorithm
//! through [`ipch_pram::supervise`] cost when *no* fault plan is installed?
//!
//! Three Las Vegas entry points, each measured bare and supervised:
//!
//! * `sample` — the §3.1 random-sample procedure vs
//!   `random_sample_supervised` (certificate: subset + Lemma 3.1 bounds).
//! * `bridge` — the §3.3 in-place bridge finder vs
//!   `find_bridge_inplace_supervised` (certificate: straddle + support).
//! * `hull`   — the Theorem 5 unsorted 2-D hull vs
//!   `upper_hull_unsorted_supervised` (certificate: full hull verification
//!   + output-pointer check).
//!
//! The bare side runs the algorithm on [`ipch_pram::attempt_machine`]`(m, 0)`
//! — the *identical* machine (same derived seed, same random streams) the
//! supervisor's first attempt executes on — so the two sides do exactly the
//! same simulated work and the supervised/bare multiplier printed at the
//! end isolates the supervision overhead: a `catch_unwind` frame, the
//! certificate, and the metrics absorb. The simulated step commits dominate
//! all three, so the multiplier should sit within host noise of 1.0 (the
//! certificate is the only term that scales, and it is a single linear
//! pass against hundreds of simulated steps).
//!
//! A custom `main` (instead of `criterion_main!`) appends every
//! measurement to `bench_results/supervise.csv`.

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use ipch_hull2d::parallel::supervised::upper_hull_unsorted_supervised;
use ipch_hull2d::parallel::unsorted::{upper_hull_unsorted, UnsortedParams};
use ipch_inplace::sample::random_sample;
use ipch_inplace::supervised::random_sample_supervised;
use ipch_lp::inplace_bridge::{find_bridge_inplace, IbConfig};
use ipch_lp::supervised::find_bridge_inplace_supervised;
use ipch_pram::{attempt_machine, Machine, Shm, SuperviseConfig};

const SIZES: [usize; 2] = [512, 2048];
const PROFILES: [&str; 3] = ["sample", "bridge", "hull"];

fn bench_profile(c: &mut Criterion, profile: &str, supervised: bool) {
    let mut group = c.benchmark_group("supervise");
    group.sample_size(10);
    let mode = if supervised { "sup" } else { "bare" };
    let cfg = SuperviseConfig::default();

    for &n in &SIZES {
        group.throughput(Throughput::Elements(n as u64));
        let id = BenchmarkId::new(format!("{profile}-{mode}"), n);
        match profile {
            "sample" => group.bench_with_input(id, &n, |b, &n| {
                let active: Vec<usize> = (0..n).collect();
                let mut m = Machine::new(11);
                b.iter(|| {
                    if supervised {
                        let s = random_sample_supervised(&mut m, &active, n, 16, 4, &cfg)
                            .expect("clean run");
                        black_box(s.value.len())
                    } else {
                        let mut am = attempt_machine(&m, 0);
                        let mut shm = Shm::new();
                        let out = random_sample(&mut am, &mut shm, &active, n, 16, 4);
                        black_box(out.sample.len())
                    }
                });
            }),
            "bridge" => group.bench_with_input(id, &n, |b, &n| {
                let pts = ipch_geom::generators::uniform_disk(n, 7);
                let active: Vec<usize> = (0..n).collect();
                let ib = IbConfig::default();
                let mut m = Machine::new(12);
                b.iter(|| {
                    if supervised {
                        let s =
                            find_bridge_inplace_supervised(&mut m, &pts, &active, 0.0, &ib, &cfg)
                                .expect("clean run");
                        black_box(s.value.0.left)
                    } else {
                        let mut am = attempt_machine(&m, 0);
                        let mut shm = Shm::new();
                        let (bridge, _) =
                            find_bridge_inplace(&mut am, &mut shm, &pts, &active, 0.0, &ib)
                                .expect("a bridge straddles x = 0 inside the disk");
                        black_box(bridge.left)
                    }
                });
            }),
            _ => group.bench_with_input(id, &n, |b, &n| {
                let pts = ipch_geom::generators::uniform_disk(n, 8);
                let params = UnsortedParams::default();
                let mut m = Machine::new(13);
                b.iter(|| {
                    if supervised {
                        let s = upper_hull_unsorted_supervised(&mut m, &pts, &params, &cfg)
                            .expect("clean run");
                        black_box(s.value.0.hull.len())
                    } else {
                        let mut am = attempt_machine(&m, 0);
                        let mut shm = Shm::new();
                        let (out, _) = upper_hull_unsorted(&mut am, &mut shm, &pts, &params);
                        black_box(out.hull.len())
                    }
                });
            }),
        }
    }
    group.finish();
}

fn append_results(c: &Criterion) -> std::io::Result<std::path::PathBuf> {
    use std::io::Write;
    // anchor at the workspace root: bench binaries run with the package
    // directory as cwd, but results belong next to the tables' CSVs
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("supervise.csv");
    let fresh = !path.exists();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    if fresh {
        writeln!(f, "id,median_ns_per_iter,melem_per_s")?;
    }
    for m in &c.measurements {
        writeln!(
            f,
            "{},{},{}",
            m.id,
            m.median.as_nanos(),
            m.elements_per_sec()
                .map(|r| format!("{:.3}", r / 1e6))
                .unwrap_or_default()
        )?;
    }
    Ok(path)
}

fn main() {
    // `cargo test --benches` executes bench binaries with `--test`; a full
    // measurement sweep there would be slow noise, so bail out.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let mut c = Criterion::default();
    for profile in PROFILES {
        bench_profile(&mut c, profile, false);
        bench_profile(&mut c, profile, true);
    }

    // supervised-mode multiplier summary
    for &n in &SIZES {
        let t = |name: String| {
            c.measurements
                .iter()
                .find(|m| m.id == format!("supervise/{name}/{n}"))
                .map(|m| m.median.as_nanos() as f64)
        };
        for profile in PROFILES {
            if let (Some(bare), Some(sup)) =
                (t(format!("{profile}-bare")), t(format!("{profile}-sup")))
            {
                println!("n={n}: {profile} supervisor multiplier {:.2}x", sup / bare);
            }
        }
    }
    match append_results(&c) {
        Ok(p) => println!("appended results: {}", p.display()),
        Err(e) => eprintln!("could not append results: {e}"),
    }
}
