//! Analyzer overhead benches: what does `Machine::enable_analysis` cost?
//!
//! Three step profiles, each measured with the analyzer off and on:
//!
//! * `scatter` — in-order conflict-free scatter (the fast-path shape):
//!   the analyzer's worst relative case, since the step itself is cheap.
//! * `combine` — every processor piles onto 64 cells under `CombineSum`:
//!   races on every cell, so the analyzer also classifies contests.
//! * `kscatter` — the fused scatter kernel, checking that tracing doesn't
//!   destroy the fused path's advantage.
//!
//! The disabled runs exist to pin the "zero cost when off" claim: they run
//! the *same binary* with the analyzer simply not enabled, so comparing
//! their medians against `bench_results/machine.csv` history (or the
//! `machine` bench directly) exposes any passive tax the analysis hooks
//! put on the hot path. The on/off ratio printed at the end is the
//! enabled-mode multiplier.
//!
//! A custom `main` (instead of `criterion_main!`) appends every
//! measurement to `bench_results/analyze.csv`.

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use ipch_pram::{AnalyzeConfig, Machine, Shm, WritePolicy};

const SIZES: [usize; 2] = [1 << 14, 1 << 18];
const PROFILES: [&str; 3] = ["scatter", "combine", "kscatter"];

fn machine(analyze: bool) -> Machine {
    let mut m = Machine::new(42);
    if analyze {
        m.enable_analysis(AnalyzeConfig::default());
    }
    m
}

fn bench_profile(c: &mut Criterion, profile: &str, analyze: bool) {
    let mut group = c.benchmark_group("analyze");
    group.sample_size(10);
    let mode = if analyze { "on" } else { "off" };

    for &n in &SIZES {
        group.throughput(Throughput::Elements(n as u64));
        let id = BenchmarkId::new(format!("{profile}-{mode}"), n);
        match profile {
            "scatter" => group.bench_with_input(id, &n, |b, &n| {
                let mut m = machine(analyze);
                let mut shm = Shm::new();
                let a = shm.alloc("a", n, 0);
                b.iter(|| {
                    m.step(&mut shm, 0..n, |ctx| {
                        let pid = ctx.pid;
                        ctx.write(a, pid, pid as i64);
                    });
                    black_box(shm.get(a, n - 1))
                });
            }),
            "combine" => group.bench_with_input(id, &n, |b, &n| {
                let mut m = machine(analyze);
                let mut shm = Shm::new();
                let a = shm.alloc("acc", 64, 0);
                b.iter(|| {
                    m.step_with_policy(&mut shm, 0..n, WritePolicy::CombineSum, |ctx| {
                        ctx.write(a, ctx.pid % 64, 1);
                    });
                    black_box(shm.get(a, 0))
                });
            }),
            _ => group.bench_with_input(id, &n, |b, &n| {
                let mut m = machine(analyze);
                let mut shm = Shm::new();
                let src = shm.alloc("src", n, 3);
                let dst = shm.alloc("dst", n, 0);
                b.iter(|| {
                    m.kernel_scatter(&mut shm, 0..n, |t, pid| {
                        Some((dst, pid, t.read(src, pid) + pid as i64))
                    });
                    black_box(shm.get(dst, n - 1))
                });
            }),
        }
    }
    group.finish();
}

fn append_results(c: &Criterion) -> std::io::Result<std::path::PathBuf> {
    use std::io::Write;
    // anchor at the workspace root: bench binaries run with the package
    // directory as cwd, but results belong next to the tables' CSVs
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("analyze.csv");
    let fresh = !path.exists();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    if fresh {
        writeln!(f, "id,median_ns_per_iter,melem_per_s")?;
    }
    for m in &c.measurements {
        writeln!(
            f,
            "{},{},{}",
            m.id,
            m.median.as_nanos(),
            m.elements_per_sec()
                .map(|r| format!("{:.3}", r / 1e6))
                .unwrap_or_default()
        )?;
    }
    Ok(path)
}

fn main() {
    // `cargo test --benches` executes bench binaries with `--test`; a full
    // measurement sweep there would be slow noise, so bail out.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let mut c = Criterion::default();
    for profile in PROFILES {
        bench_profile(&mut c, profile, false);
        bench_profile(&mut c, profile, true);
    }

    // enabled-mode multiplier summary
    for &n in &SIZES {
        let t = |name: String| {
            c.measurements
                .iter()
                .find(|m| m.id == format!("analyze/{name}/{n}"))
                .map(|m| m.median.as_nanos() as f64)
        };
        for profile in PROFILES {
            if let (Some(off), Some(on)) = (t(format!("{profile}-off")), t(format!("{profile}-on")))
            {
                println!("n={n}: {profile} analyzer multiplier {:.2}x", on / off);
            }
        }
    }
    match append_results(&c) {
        Ok(p) => println!("appended results: {}", p.display()),
        Err(e) => eprintln!("could not append results: {e}"),
    }
}
