//! Wall-clock benches of the PRAM-simulated parallel algorithms
//! (experiment F6). These time the *simulation*, which is how expensive it
//! is to reproduce the paper's step counts — the machine-independent
//! metrics live in the `tables` harness.

use criterion::{criterion_group, criterion_main, Criterion};
use ipch_geom::generators::{circle_plus_interior, uniform_disk};
use ipch_geom::point::sorted_by_x;
use ipch_hull2d::parallel::dac::upper_hull_dac;
use ipch_hull2d::parallel::logstar::{upper_hull_logstar, LogstarParams};
use ipch_hull2d::parallel::presorted::{upper_hull_presorted, PresortedParams};
use ipch_hull2d::parallel::unsorted::{upper_hull_unsorted, UnsortedParams};
use ipch_pram::{Machine, Shm};

fn bench_parallel2d(c: &mut Criterion) {
    let n = 4096;
    let sorted = sorted_by_x(&uniform_disk(n, 1));
    let unsorted_pts = circle_plus_interior(32, n, 1);

    let mut group = c.benchmark_group("parallel2d");
    group.sample_size(10);
    group.bench_function("presorted_const_time", |b| {
        b.iter(|| {
            let mut m = Machine::new(1);
            let mut shm = Shm::new();
            upper_hull_presorted(&mut m, &mut shm, &sorted, &PresortedParams::default())
        })
    });
    group.bench_function("logstar", |b| {
        b.iter(|| {
            let mut m = Machine::new(2);
            let mut shm = Shm::new();
            upper_hull_logstar(&mut m, &mut shm, &sorted, &LogstarParams::default()).unwrap()
        })
    });
    group.bench_function("unsorted_theorem5", |b| {
        b.iter(|| {
            let mut m = Machine::new(3);
            let mut shm = Shm::new();
            upper_hull_unsorted(&mut m, &mut shm, &unsorted_pts, &UnsortedParams::default())
        })
    });
    group.bench_function("dac_fallback", |b| {
        b.iter(|| {
            let mut m = Machine::new(4);
            let mut shm = Shm::new();
            upper_hull_dac(&mut m, &mut shm, &unsorted_pts, false)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parallel2d);
criterion_main!(benches);
