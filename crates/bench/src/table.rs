//! Minimal table/CSV output (no external deps).

use std::io::Write;
use std::path::PathBuf;

/// One experiment's result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table id (e.g. "t3"), used as the CSV file stem.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of stringified cells.
    pub rows: Vec<Vec<String>>,
    /// Free-text notes printed under the table (expected shape, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// New empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: vec![],
            notes: vec![],
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: &str) {
        self.notes.push(s.to_string());
    }

    /// Render to stdout.
    pub fn print(&self) {
        println!("\n== {} — {} ==", self.id.to_uppercase(), self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let s: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            println!("  {}", s.join("  "));
        };
        line(&self.headers);
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for r in &self.rows {
            line(r);
        }
        for n in &self.notes {
            println!("  note: {n}");
        }
    }

    /// Write as CSV under `bench_results/<id>.csv`.
    pub fn write_csv(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("bench_results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for r in &self.rows {
            writeln!(f, "{}", r.join(","))?;
        }
        Ok(path)
    }
}

/// Format helpers.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("tx", "demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        t.print();
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("tx", "demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn fmt() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.0), "1234");
        assert_eq!(f(1.5), "1.50");
    }
}
