//! The experiment implementations (DESIGN.md §3: T1–T10, F1–F5).
//!
//! Every function returns a [`Table`]; the `tables` binary prints it and
//! writes the CSV. `quick` shrinks sweeps to CI size. All runs are seeded
//! and deterministic.

use ipch_geom::gen3d;
use ipch_geom::generators as g2;
use ipch_geom::point::sorted_by_x;
use ipch_geom::{Point2, UpperHull};
use ipch_hull2d::parallel::dac::upper_hull_dac;
use ipch_hull2d::parallel::folklore::upper_hull_folklore_full;
use ipch_hull2d::parallel::invariant::{hull_of_hulls, HbConfig};
use ipch_hull2d::parallel::logstar::{upper_hull_logstar, LogstarParams};
use ipch_hull2d::parallel::presorted::{upper_hull_presorted, PresortedParams};
use ipch_hull2d::parallel::unsorted::{upper_hull_unsorted, UnsortedParams};
use ipch_hull2d::seq::{self, SeqStats};
use ipch_hull3d::parallel::unsorted3d::{upper_hull3_unsorted, Unsorted3Params};
use ipch_hull3d::seq::Seq3Stats;
use ipch_lp::alon_megiddo::{solve_lp2_am, AmConfig};
use ipch_lp::constraint::{Halfplane, Objective2};
use ipch_lp::inplace_bridge::{find_bridge_inplace_traced, IbConfig};
use ipch_pram::rng::SplitMix64;
use ipch_pram::{schedule, Machine, Shm, EMPTY};

use crate::table::{f, Table};

fn machine(seed: u64) -> (Machine, Shm) {
    (Machine::new(seed), Shm::new())
}

/// A seeded 2-D point-set generator, as used in the distribution tables.
type Gen2 = fn(usize, u64) -> Vec<Point2>;

/// T1 — presorted O(1)-time algorithm (Lemma 2.5): steps flat in n.
pub fn t1(quick: bool) -> Table {
    let mut t = Table::new(
        "t1",
        "presorted hull: O(1) steps, O(n log n) work (Lemma 2.5)",
        &[
            "dist",
            "n",
            "steps",
            "work",
            "work/nlogn",
            "peak",
            "rand_nodes",
            "swept",
        ],
    );
    let ns: &[usize] = if quick {
        &[512, 2048]
    } else {
        &[512, 2048, 8192, 16384]
    };
    let dists: [(&str, Gen2); 3] = [
        ("square", g2::uniform_square),
        ("disk", g2::uniform_disk),
        ("circle", g2::on_circle),
    ];
    for (name, gen) in dists {
        for &n in ns {
            let pts = sorted_by_x(&gen(n, 42));
            let (mut m, mut shm) = machine(7);
            let (out, rep) =
                upper_hull_presorted(&mut m, &mut shm, &pts, &PresortedParams::default());
            assert_eq!(out.hull, UpperHull::of(&pts));
            let nlogn = n as f64 * (n as f64).log2();
            t.row(vec![
                name.into(),
                n.to_string(),
                m.metrics.total_steps().to_string(),
                m.metrics.total_work().to_string(),
                f(m.metrics.total_work() as f64 / nlogn),
                m.metrics.peak_processors.to_string(),
                rep.randomized_nodes.to_string(),
                rep.swept_failures.to_string(),
            ]);
        }
    }
    t.note("expected: steps saturate to a constant as n grows; work/(n log n) bounded");
    t
}

/// T2 — log* algorithm (Theorem 2): steps ~ log* n, work O(n)/level.
pub fn t2(quick: bool) -> Table {
    let mut t = Table::new(
        "t2",
        "log*-time hull (Theorem 2): steps, depth, work/n, Lemma-7 time at p = n/log*n",
        &["n", "steps", "depth", "work/n", "T(p=n/log*n)"],
    );
    let ns: &[usize] = if quick {
        &[512, 4096]
    } else {
        &[512, 4096, 32768, 131072]
    };
    for &n in ns {
        let pts = sorted_by_x(&g2::uniform_disk(n, 11));
        let (mut m, mut shm) = machine(3);
        let (out, rep) =
            upper_hull_logstar(&mut m, &mut shm, &pts, &LogstarParams::default()).unwrap();
        assert_eq!(out.hull, UpperHull::of(&pts));
        let logstar = 3u64; // log* n for any feasible n
        let p = (n as u64 / logstar).max(1);
        let sched = schedule::simulate_with_p(&m.metrics, p, schedule::DEFAULT_TC);
        t.row(vec![
            n.to_string(),
            m.metrics.total_steps().to_string(),
            rep.depth.to_string(),
            f(m.metrics.total_work() as f64 / n as f64),
            f(sched.time),
        ]);
    }
    t.note("expected: steps/depth essentially flat (log* n ≤ 4 at any feasible n)");
    t
}

/// T3 — unsorted 2-D (Theorem 5): work/n tracks log h, not log n.
pub fn t3(quick: bool) -> Table {
    let mut t = Table::new(
        "t3",
        "unsorted 2-D hull (Theorem 5): work vs output size h",
        &[
            "n", "h", "log2(h)", "steps", "work", "work/n", "levels", "fallback",
        ],
    );
    let n = if quick { 2048 } else { 8192 };
    let hs: &[usize] = if quick {
        &[8, 64, 512]
    } else {
        &[8, 32, 128, 512, 2048]
    };
    let seeds: u64 = if quick { 2 } else { 5 };
    for &h in hs {
        // average across seeds: individual runs vary with splitter luck
        let mut steps = 0.0;
        let mut work = 0.0;
        let mut levels = 0.0;
        let mut fellback = false;
        for seed in 0..seeds {
            let pts = g2::circle_plus_interior(h, n, 17 + seed);
            let (mut m, mut shm) = machine(5 + seed);
            let (out, trace) =
                upper_hull_unsorted(&mut m, &mut shm, &pts, &UnsortedParams::default());
            assert_eq!(out.hull, UpperHull::of(&pts));
            steps += m.metrics.total_steps() as f64;
            work += m.metrics.total_work() as f64;
            levels += trace.levels.len() as f64;
            fellback |= trace.fallback;
        }
        let s = seeds as f64;
        t.row(vec![
            n.to_string(),
            h.to_string(),
            f((h as f64).log2()),
            f(steps / s),
            f(work / s),
            f(work / s / n as f64),
            f(levels / s),
            fellback.to_string(),
        ]);
    }
    // n-sweep at fixed h: work/n should be ~constant in n
    let h = 32;
    for &n in if quick {
        &[2048usize, 8192][..]
    } else {
        &[2048usize, 8192, 32768][..]
    } {
        let pts = g2::circle_plus_interior(h, n, 19);
        let (mut m, mut shm) = machine(6);
        let (out, trace) = upper_hull_unsorted(&mut m, &mut shm, &pts, &UnsortedParams::default());
        assert_eq!(out.hull, UpperHull::of(&pts));
        t.row(vec![
            n.to_string(),
            h.to_string(),
            f((h as f64).log2()),
            m.metrics.total_steps().to_string(),
            m.metrics.total_work().to_string(),
            f(m.metrics.total_work() as f64 / n as f64),
            trace.levels.len().to_string(),
            trace.fallback.to_string(),
        ]);
    }
    t.note("expected: work/n grows with log h at fixed n and saturates once l ≥ √n triggers the fallback;");
    t.note("at fixed h, work/n is insensitive to n (output sensitivity)");
    t
}

/// T4 — output-sensitivity crossover vs baselines.
pub fn t4(quick: bool) -> Table {
    let mut t = Table::new(
        "t4",
        "crossover: Theorem-5 work vs non-output-sensitive DAC and sequential baselines",
        &[
            "h",
            "uns_work",
            "dac_work",
            "uns/dac",
            "ks_ops",
            "chan_ops",
            "jarvis_ops",
            "quickhull_ops",
            "monotone_ops",
        ],
    );
    let n = if quick { 2048 } else { 8192 };
    let hs: &[usize] = if quick {
        &[8, 128]
    } else {
        &[8, 32, 128, 512, 2048]
    };
    for &h in hs {
        let pts = g2::circle_plus_interior(h, n, 23);
        let (mut m1, mut s1) = machine(1);
        let (o1, _) = upper_hull_unsorted(&mut m1, &mut s1, &pts, &UnsortedParams::default());
        let (mut m2, mut s2) = machine(2);
        let o2 = upper_hull_dac(&mut m2, &mut s2, &pts, false);
        assert_eq!(o1.hull, o2.hull);
        let ops = |algo: fn(&[Point2], &mut SeqStats) -> UpperHull| {
            let mut st = SeqStats::default();
            algo(&pts, &mut st);
            st.total()
        };
        t.row(vec![
            h.to_string(),
            m1.metrics.total_work().to_string(),
            m2.metrics.total_work().to_string(),
            f(m1.metrics.total_work() as f64 / m2.metrics.total_work() as f64),
            ops(seq::ks::upper_hull).to_string(),
            ops(seq::chan::upper_hull).to_string(),
            ops(seq::jarvis::upper_hull).to_string(),
            ops(seq::quickhull::upper_hull).to_string(),
            ops(seq::monotone::upper_hull).to_string(),
        ]);
    }
    t.note("expected: uns/dac < 1 for small h, approaching/crossing 1 as h -> n;");
    t.note("jarvis degrades with h; ks/chan grow only in log h");
    t
}

/// T5 — unsorted 3-D (Theorem 6): work vs h, probe counts, fallback.
pub fn t5(quick: bool) -> Table {
    let mut t = Table::new(
        "t5",
        "unsorted 3-D hull (Theorem 6): work vs output size",
        &[
            "n",
            "h_req",
            "facets",
            "steps",
            "work",
            "work/n",
            "probes",
            "fallback",
            "giftwrap_ops",
            "es_probe_ops",
        ],
    );
    let n = if quick { 500 } else { 1500 };
    let hs: &[usize] = if quick {
        &[12, 96]
    } else {
        &[12, 48, 192, 768]
    };
    for &h in hs {
        let pts = gen3d::sphere_plus_interior(h, n, 29);
        let (mut m, mut shm) = machine(4);
        let (out, trace) =
            upper_hull3_unsorted(&mut m, &mut shm, &pts, &Unsorted3Params::default());
        ipch_hull3d::verify_upper_hull3(&pts, &out.facets, false).expect("t5 verify");
        let mut st = Seq3Stats::default();
        ipch_hull3d::seq::giftwrap::upper_hull3_giftwrap(&pts, &mut st);
        let mut st_es = Seq3Stats::default();
        ipch_hull3d::seq::es::upper_hull3_probing(&pts, &mut st_es, 31);
        t.row(vec![
            n.to_string(),
            h.to_string(),
            out.facets.len().to_string(),
            m.metrics.total_steps().to_string(),
            m.metrics.total_work().to_string(),
            f(m.metrics.total_work() as f64 / n as f64),
            (trace.probe_facets + trace.backstop_probes).to_string(),
            trace.fallback.to_string(),
            st.total().to_string(),
            st_es.total().to_string(),
        ]);
    }
    t.note("expected: work grows with h then saturates at the fallback (min{n log^2 h, n log n} shape);");
    t.note("probe count tracks the facet count (output sensitivity)");
    t
}

/// T6 — Alon–Megiddo LP and in-place bridge finding: O(1) rounds.
pub fn t6(quick: bool) -> Table {
    let mut t = Table::new(
        "t6",
        "LP probes (Lemma 2.2 / §3.3): rounds stay constant as m grows",
        &[
            "m",
            "am_rounds_avg",
            "am_rounds_max",
            "am_fail",
            "ib_rounds_avg",
            "ib_rounds_max",
            "ib_fail",
            "ib_base_avg",
        ],
    );
    let ms: &[usize] = if quick {
        &[256, 2048]
    } else {
        &[256, 1024, 4096, 16384, 65536]
    };
    let seeds: u64 = if quick { 3 } else { 8 };
    for &mm in ms {
        let mut am_rounds = vec![];
        let mut am_fail = 0;
        let mut ib_rounds = vec![];
        let mut ib_fail = 0;
        let mut ib_base = vec![];
        for seed in 0..seeds {
            // AM on tangent-constraint instances
            let mut rng = SplitMix64::new(seed + 100);
            let cs: Vec<Halfplane> = (0..mm)
                .map(|_| {
                    let th = rng.next_f64() * std::f64::consts::TAU;
                    Halfplane {
                        a: -th.cos(),
                        b: -th.sin(),
                        c: -1.0 - rng.next_f64(),
                    }
                })
                .collect();
            let obj = Objective2 { cx: 0.3, cy: 0.95 };
            let (mut m, mut shm) = machine(seed);
            match solve_lp2_am(&mut m, &mut shm, &cs, &obj, &AmConfig::default()) {
                Some((_, tr)) => am_rounds.push(tr.rounds as f64),
                None => am_fail += 1,
            }
            // in-place bridge on a disk instance
            let pts = g2::uniform_disk(mm, seed + 200);
            let hull = UpperHull::of(&pts);
            let mid = hull.vertices.len() / 2;
            let x0 = (pts[hull.vertices[mid - 1]].x + pts[hull.vertices[mid]].x) / 2.0;
            let active: Vec<usize> = (0..mm).collect();
            let (mut m2, mut shm2) = machine(seed + 50);
            let (b, tr) = find_bridge_inplace_traced(
                &mut m2,
                &mut shm2,
                &pts,
                &active,
                x0,
                &IbConfig::default(),
            );
            if b.is_some() {
                ib_rounds.push(tr.rounds as f64);
                ib_base.push(tr.base_size as f64);
            } else {
                ib_fail += 1;
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
        t.row(vec![
            mm.to_string(),
            f(avg(&am_rounds)),
            f(max(&am_rounds)),
            am_fail.to_string(),
            f(avg(&ib_rounds)),
            f(max(&ib_rounds)),
            ib_fail.to_string(),
            f(avg(&ib_base)),
        ]);
    }
    t.note(
        "expected: round counts concentrate on a small constant independent of m; failures rare",
    );
    t
}

/// T7 — random sample (Lemma 3.1): size in [k/2, 4k], uniform.
pub fn t7(quick: bool) -> Table {
    let mut t = Table::new(
        "t7",
        "random sample (Lemma 3.1): size bounds and uniformity",
        &[
            "k",
            "trials",
            "avg_size",
            "in_bounds_frac",
            "chi2_norm",
            "vote_failures",
        ],
    );
    let mcount = 2000;
    let trials: u64 = if quick { 100 } else { 400 };
    for &k in &[4usize, 8, 16, 32, 64] {
        let active: Vec<usize> = (0..mcount).collect();
        let mut sizes = vec![];
        let mut inb = 0usize;
        let mut counts = vec![0u64; mcount];
        let mut vote_failures = 0usize;
        for seed in 0..trials {
            let (mut m, mut shm) = machine(seed * 31 + k as u64);
            let out = ipch_inplace::sample::random_sample(&mut m, &mut shm, &active, mcount, k, 4);
            sizes.push(out.sample.len() as f64);
            if out.size_in_bounds(k) {
                inb += 1;
            }
            for &e in &out.sample {
                counts[e] += 1;
            }
            let (mut m2, mut shm2) = machine(seed * 37 + k as u64);
            if ipch_inplace::vote::random_vote(&mut m2, &mut shm2, &active, mcount, k, 4).is_none()
            {
                vote_failures += 1;
            }
        }
        let total: u64 = counts.iter().sum();
        let expect = total as f64 / mcount as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        // normalized: chi2 / dof ≈ 1 under uniformity
        t.row(vec![
            k.to_string(),
            trials.to_string(),
            f(sizes.iter().sum::<f64>() / sizes.len() as f64),
            f(inb as f64 / trials as f64),
            f(chi2 / (mcount - 1) as f64),
            vote_failures.to_string(),
        ]);
    }
    t.note("expected: avg size ~2k, in-bounds fraction -> 1 as k grows, chi2/dof ~ 1, no vote failures");
    t
}

/// T8 — compaction (Lemmas 2.1, 3.2): O(1) steps, bounded workspace.
pub fn t8(quick: bool) -> Table {
    let mut t = Table::new(
        "t8",
        "approximate compaction: Ragde (Lemma 2.1) and in-place (Lemma 3.2)",
        &[
            "m",
            "k",
            "pattern",
            "det_steps",
            "det_area",
            "rand_ok_frac",
            "ipc_rounds",
            "ipc_workspace",
        ],
    );
    let ms: &[usize] = if quick {
        &[1024, 4096]
    } else {
        &[1024, 4096, 16384, 65536]
    };
    for &mm in ms {
        for (pat, mk) in [("random", 0usize), ("clustered", 1), ("stride", 2)] {
            let k = 4usize;
            let occupied: Vec<usize> = match mk {
                0 => {
                    let mut rng = SplitMix64::new(mm as u64);
                    let mut s = std::collections::BTreeSet::new();
                    while s.len() < k {
                        s.insert(rng.next_below(mm as u64) as usize);
                    }
                    s.into_iter().collect()
                }
                1 => (0..k).map(|i| mm / 2 + i).collect(),
                _ => (0..k).map(|i| i * (mm / k)).collect(),
            };
            // deterministic Ragde
            let (mut m, mut shm) = machine(1);
            let src = shm.alloc("src", mm, EMPTY);
            for &i in &occupied {
                shm.host_set(src, i, i as i64);
            }
            let det = ipch_inplace::ragde::ragde_compact_det(&mut m, &mut shm, src, k).unwrap();
            let det_steps = m.metrics.steps;
            let det_area = shm.len(det.dst);
            // randomized success rate
            let trials = 50;
            let mut ok = 0;
            for seed in 0..trials {
                let (mut m2, mut shm2) = machine(seed);
                let s2 = shm2.alloc("src", mm, EMPTY);
                for &i in &occupied {
                    shm2.host_set(s2, i, i as i64);
                }
                if ipch_inplace::ragde::ragde_compact_rand(&mut m2, &mut shm2, s2, k, 4).is_some() {
                    ok += 1;
                }
            }
            // in-place compaction
            let (mut m3, mut shm3) = machine(2);
            let s3 = shm3.alloc("src", mm, EMPTY);
            for &i in &occupied {
                shm3.host_set(s3, i, i as i64);
            }
            let ipc = ipch_inplace::compact::inplace_compact(&mut m3, &mut shm3, s3, k, 0.2)
                .expect("t8 ipc");
            t.row(vec![
                mm.to_string(),
                k.to_string(),
                pat.into(),
                det_steps.to_string(),
                det_area.to_string(),
                f(ok as f64 / trials as f64),
                ipc.rounds.to_string(),
                ipc.workspace_cells.to_string(),
            ]);
        }
    }
    t.note("expected: det steps constant (2) for all m; rand success ~1; ipc rounds ~1/delta; workspace o(m)");
    t
}

/// T9 — failure sweeping ablation (§2.3).
pub fn t9(quick: bool) -> Table {
    let mut t = Table::new(
        "t9",
        "failure sweeping (§2.3): forced failures are always recovered",
        &[
            "algo", "n", "mode", "failures", "swept", "overflow", "correct",
        ],
    );
    let n = if quick { 1000 } else { 3000 };
    // presorted with a crippled randomized finder
    for seed in 0..3u64 {
        let pts = sorted_by_x(&g2::uniform_disk(n, seed + 40));
        let params = PresortedParams {
            small_threshold: Some(48),
            ib: IbConfig {
                max_rounds: 0,
                ..IbConfig::default()
            },
            sweep_bound: Some(4096),
            ..PresortedParams::default()
        };
        let (mut m, mut shm) = machine(seed);
        let (out, rep) = upper_hull_presorted(&mut m, &mut shm, &pts, &params);
        t.row(vec![
            "presorted".into(),
            n.to_string(),
            "crippled-finder".into(),
            rep.swept_failures.to_string(),
            rep.swept_failures.to_string(),
            rep.sweep_overflow.to_string(),
            (out.hull == UpperHull::of(&pts)).to_string(),
        ]);
    }
    // unsorted: sweeping on vs off with a crippled finder
    for &sweeping in &[true, false] {
        let pts = g2::uniform_disk(n, 77);
        let params = UnsortedParams {
            ib: IbConfig {
                max_rounds: 0,
                ..IbConfig::default()
            },
            disable_sweeping: !sweeping,
            ..UnsortedParams::default()
        };
        let (mut m, mut shm) = machine(9);
        let (out, trace) = upper_hull_unsorted(&mut m, &mut shm, &pts, &params);
        let failures: usize = trace.levels.iter().map(|l| l.failures).sum();
        t.row(vec![
            "unsorted".into(),
            n.to_string(),
            if sweeping { "sweep-on" } else { "sweep-off" }.into(),
            failures.to_string(),
            trace.swept.to_string(),
            "false".into(),
            (out.hull == UpperHull::of(&pts)).to_string(),
        ]);
    }
    t.note("expected: correctness holds in every mode; sweeping resolves failures immediately,");
    t.note("without it the run leans on retries/fallback (more levels)");
    t
}

/// T10 — point-hull invariance (Lemma 2.6): hull-of-hulls costs.
pub fn t10(quick: bool) -> Table {
    let mut t = Table::new(
        "t10",
        "hull-of-hulls (Lemma 2.6): constant combine time over m groups of q points",
        &[
            "groups_m",
            "group_q",
            "steps",
            "work",
            "charged_work",
            "correct",
        ],
    );
    let cases: &[(usize, usize)] = if quick {
        &[(8, 32), (32, 32)]
    } else {
        &[(8, 32), (32, 32), (128, 32), (32, 128), (128, 128)]
    };
    for &(gm, gq) in cases {
        let n = gm * gq;
        let pts = sorted_by_x(&g2::uniform_disk(n, 61));
        let groups: Vec<UpperHull> = (0..gm)
            .map(|i| {
                let ids: Vec<usize> = (i * gq..(i + 1) * gq).collect();
                let sub: Vec<Point2> = ids.iter().map(|&j| pts[j]).collect();
                UpperHull::new(
                    ipch_geom::hull_chain::upper_hull_indices(&sub)
                        .into_iter()
                        .map(|j| ids[j])
                        .collect(),
                )
            })
            .collect();
        let (mut m, mut shm) = machine(13);
        let (h, _) = hull_of_hulls(&mut m, &mut shm, &pts, &groups, &HbConfig::default()).unwrap();
        t.row(vec![
            gm.to_string(),
            gq.to_string(),
            m.metrics.total_steps().to_string(),
            m.metrics.work.to_string(),
            m.metrics.charged_work.to_string(),
            (h == UpperHull::of(&pts)).to_string(),
        ]);
    }
    t.note("expected: steps grow (at most) with log m, independent of q; charged work carries the √q primitive cost");
    t
}

/// F1 — Lemma 5.1: subproblem-size decay under the (15/16)^i envelope.
pub fn f1(quick: bool) -> Table {
    let mut t = Table::new(
        "f1",
        "subproblem-size decay (Lemma 5.1)",
        &[
            "level",
            "problems",
            "max_size",
            "envelope_(15/16)^i*n",
            "active",
        ],
    );
    let n = if quick { 2048 } else { 8192 };
    let pts = g2::uniform_disk(n, 3);
    let (mut m, mut shm) = machine(21);
    let (_, trace) = upper_hull_unsorted(&mut m, &mut shm, &pts, &UnsortedParams::default());
    for l in &trace.levels {
        t.row(vec![
            l.level.to_string(),
            l.problems.to_string(),
            l.max_size.to_string(),
            f((15.0f64 / 16.0).powi(l.level as i32) * n as f64),
            l.active_points.to_string(),
        ]);
    }
    t.note("expected: max_size decays geometrically, tracking (or beating) the (15/16)^i envelope");
    t
}

/// F2 — Lemma 6.1: 3-D region-size decay.
pub fn f2(quick: bool) -> Table {
    let mut t = Table::new(
        "f2",
        "3-D region-size decay (Lemma 6.1)",
        &[
            "level",
            "regions",
            "max_size",
            "envelope_(15/16)^i*n",
            "active",
            "facets",
        ],
    );
    let n = if quick { 500 } else { 1200 };
    let pts = gen3d::in_ball(n, 5);
    let (mut m, mut shm) = machine(23);
    let (_, trace) = upper_hull3_unsorted(&mut m, &mut shm, &pts, &Unsorted3Params::default());
    for (i, l) in trace.levels.iter().enumerate() {
        t.row(vec![
            i.to_string(),
            l.regions.to_string(),
            l.max_size.to_string(),
            f((15.0f64 / 16.0).powi(i as i32) * n as f64),
            l.active_points.to_string(),
            l.facets.to_string(),
        ]);
    }
    t.note("expected: geometric decay of max region size (4-way splits beat the 2-D rate)");
    t
}

/// F3 — §4.1 step 3: growth of the lower bound l and the fallback trigger.
pub fn f3(quick: bool) -> Table {
    let mut t = Table::new(
        "f3",
        "phase mechanics: growth of l = edges + problems (fallback at l ≥ √n)",
        &["input", "phase", "l", "threshold", "fallback"],
    );
    let n = if quick { 1024 } else { 4096 };
    for (name, pts) in [
        ("on_circle(h=n)", g2::on_circle(n, 9)),
        ("disk", g2::uniform_disk(n, 9)),
        ("h=16", g2::circle_plus_interior(16, n, 9)),
    ] {
        let (mut m, mut shm) = machine(31);
        let (_, trace) = upper_hull_unsorted(&mut m, &mut shm, &pts, &UnsortedParams::default());
        let thr = ((n as f64).sqrt().ceil() as usize).max(32);
        for (ph, &l) in trace.l_history.iter().enumerate() {
            t.row(vec![
                name.into(),
                ph.to_string(),
                l.to_string(),
                thr.to_string(),
                trace.fallback.to_string(),
            ]);
        }
        if trace.l_history.is_empty() {
            t.row(vec![
                name.into(),
                "-".into(),
                "-".into(),
                thr.to_string(),
                trace.fallback.to_string(),
            ]);
        }
    }
    t.note(
        "expected: l races to the threshold on h=n inputs (early fallback), stays tiny for small h",
    );
    t
}

/// F4 — Lemma 2.4: the O(k) time / n^{1+1/k} processor trade-off.
pub fn f4(quick: bool) -> Table {
    let mut t = Table::new(
        "f4",
        "folklore trade-off (Lemma 2.4): time O(k), processors n^{1+1/k}",
        &["k", "n", "steps", "peak_procs", "n^{1+1/k}", "peak/bound"],
    );
    let n = if quick { 1024 } else { 4096 };
    let pts = sorted_by_x(&g2::uniform_disk(n, 7));
    for k in 1..=5usize {
        let (mut m, mut shm) = machine(k as u64);
        let out = upper_hull_folklore_full(&mut m, &mut shm, &pts, k);
        assert_eq!(out.hull, UpperHull::of(&pts));
        let bound = (n as f64).powf(1.0 + 1.0 / k as f64);
        t.row(vec![
            k.to_string(),
            n.to_string(),
            m.metrics.total_steps().to_string(),
            m.metrics.peak_processors.to_string(),
            f(bound),
            f(m.metrics.peak_processors as f64 / bound),
        ]);
    }
    t.note("expected: steps grow ~linearly in k while peak processors fall toward n");
    t
}

/// F5 — Lemma 7 (Matias–Vishkin): simulated time vs physical processors.
pub fn f5(quick: bool) -> Table {
    let mut t = Table::new(
        "f5",
        "processor allocation (Lemma 7): T = t + w/p + log t as p varies",
        &["p", "T", "ideal_T", "overhead"],
    );
    let n = if quick { 2048 } else { 8192 };
    let pts = g2::uniform_disk(n, 2);
    let (mut m, mut shm) = machine(41);
    let (out, _) = upper_hull_unsorted(&mut m, &mut shm, &pts, &UnsortedParams::default());
    assert_eq!(out.hull, UpperHull::of(&pts));
    for c in schedule::sweep_p(&m.metrics, 1 << 20, schedule::DEFAULT_TC) {
        t.row(vec![
            c.p.to_string(),
            f(c.time),
            f(c.ideal_time),
            f(c.time - c.ideal_time),
        ]);
    }
    t.note("expected: T ~ w/p for small p, flattening to t once p saturates the parallelism");
    t
}

/// A1 — ablation: random-vote splitter (paper §3.1) vs deterministic
/// mid-extent splitter.
pub fn a1(quick: bool) -> Table {
    use ipch_hull2d::parallel::unsorted::SplitterPolicy;
    let mut t = Table::new(
        "a1",
        "ablation: splitter policy (random vote vs mid-extent)",
        &[
            "dist",
            "policy",
            "steps",
            "work",
            "levels",
            "max_level_size@5",
        ],
    );
    let n = if quick { 2048 } else { 8192 };
    for (dname, pts) in [
        ("disk", g2::uniform_disk(n, 3)),
        ("clustered", {
            // adversarial for mid-extent: mass on one side
            let mut v = g2::uniform_disk(n - 8, 5);
            for i in 0..8 {
                v.push(Point2::new(1000.0 + i as f64, -(i as f64)));
            }
            v
        }),
    ] {
        for (pname, policy) in [
            ("vote", SplitterPolicy::RandomVote),
            ("mid-x", SplitterPolicy::MidExtent),
        ] {
            let params = UnsortedParams {
                splitter: policy,
                ..UnsortedParams::default()
            };
            let (mut m, mut shm) = machine(9);
            let (out, trace) = upper_hull_unsorted(&mut m, &mut shm, &pts, &params);
            assert_eq!(out.hull, UpperHull::of(&pts), "{dname}/{pname}");
            let deep = trace.levels.get(5).map(|l| l.max_size).unwrap_or(0);
            t.row(vec![
                dname.into(),
                pname.into(),
                m.metrics.total_steps().to_string(),
                m.metrics.total_work().to_string(),
                trace.levels.len().to_string(),
                deep.to_string(),
            ]);
        }
    }
    t.note("expected: similar on benign inputs; the random vote keeps its balance guarantee on skewed mass");
    t
}

/// A2 — ablation: vote/sample workspace parameter k (the 16k workspace).
pub fn a2(quick: bool) -> Table {
    let mut t = Table::new(
        "a2",
        "ablation: sample parameter k (16k workspace) vs vote failures and cost",
        &["vote_k", "steps", "work", "level_failures", "swept"],
    );
    let n = if quick { 2048 } else { 8192 };
    let pts = g2::uniform_disk(n, 7);
    for k in [2usize, 4, 8, 16, 32] {
        let params = UnsortedParams {
            vote_k: k,
            ..UnsortedParams::default()
        };
        let (mut m, mut shm) = machine(11);
        let (out, trace) = upper_hull_unsorted(&mut m, &mut shm, &pts, &params);
        assert_eq!(out.hull, UpperHull::of(&pts), "k={k}");
        let failures: usize = trace.levels.iter().map(|l| l.failures).sum();
        t.row(vec![
            k.to_string(),
            m.metrics.total_steps().to_string(),
            m.metrics.total_work().to_string(),
            failures.to_string(),
            trace.swept.to_string(),
        ]);
    }
    t.note("expected: tiny k makes votes flakier (more failures/sweeps); large k pays more sampling work");
    t
}

/// A3 — ablation: charged Cole sort vs the executed bitonic network in
/// the DAC fallback.
pub fn a3(quick: bool) -> Table {
    use ipch_hull2d::parallel::dac::{upper_hull_dac_with, SortMode};
    let mut t = Table::new(
        "a3",
        "ablation: sort substrate in the DAC hull (charged Cole vs executed bitonic)",
        &["n", "mode", "steps", "executed_work", "charged_work"],
    );
    let ns: &[usize] = if quick {
        &[1024, 4096]
    } else {
        &[1024, 4096, 16384]
    };
    for &n in ns {
        let pts = g2::uniform_disk(n, 13);
        for (name, mode) in [
            ("cole(charged)", SortMode::ChargedCole),
            ("bitonic(executed)", SortMode::ExecutedBitonic),
        ] {
            let (mut m, mut shm) = machine(2);
            let out = upper_hull_dac_with(&mut m, &mut shm, &pts, false, mode);
            assert_eq!(out.hull, UpperHull::of(&pts));
            t.row(vec![
                n.to_string(),
                name.into(),
                m.metrics.total_steps().to_string(),
                m.metrics.work.to_string(),
                m.metrics.charged_work.to_string(),
            ]);
        }
    }
    t.note("expected: bitonic trades the charged log-n bound for executed log²n layers — every comparator measured");
    t
}

/// SIM — simulator host observability: wall-clock cost of the step
/// pipeline itself (compute vs commit), fast-path hit rate, and conflict
/// counts, over contrasting write workloads and a real algorithm run.
///
/// These are *host* measurements (how fast the simulator simulates), never
/// PRAM costs; they exist so simulator-performance regressions are visible
/// in the same harness as the model experiments.
pub fn sim(quick: bool) -> Table {
    let mut t = Table::new(
        "sim",
        "simulator host performance: compute/commit wall time, fast-path rate, conflicts",
        &[
            "workload",
            "n",
            "steps",
            "writes",
            "conflicts",
            "fastpath%",
            "compute_ms",
            "commit_ms",
            "Mwrites/s",
        ],
    );
    let n = if quick { 1 << 14 } else { 1 << 18 };
    let rounds = if quick { 8 } else { 32 };

    let record = |t: &mut Table, name: &str, n: usize, m: &Machine| {
        let met = &m.metrics;
        let secs = met.host_total_ns() as f64 / 1e9;
        t.row(vec![
            name.into(),
            n.to_string(),
            met.steps.to_string(),
            met.writes_buffered.to_string(),
            met.write_conflicts.to_string(),
            f(met.fastpath_hit_rate().unwrap_or(0.0) * 100.0),
            f(met.host_compute_ns as f64 / 1e6),
            f(met.host_commit_ns as f64 / 1e6),
            f(met.writes_buffered as f64 / secs.max(1e-9) / 1e6),
        ]);
    };

    // conflict-free in-order scatter: the fast-path showcase
    {
        let (mut m, mut shm) = machine(1);
        let a = shm.alloc("sim.scatter", n, 0);
        for _ in 0..rounds {
            m.step(&mut shm, 0..n, |ctx| {
                let pid = ctx.pid;
                ctx.write(a, pid, pid as i64);
            });
        }
        record(&mut t, "scatter", n, &m);
    }
    // all processors combine into a handful of cells: pure conflict load
    {
        let (mut m, mut shm) = machine(2);
        let a = shm.alloc("sim.acc", 64, 0);
        for _ in 0..rounds {
            m.step_with_policy(&mut shm, 0..n, ipch_pram::WritePolicy::CombineSum, |ctx| {
                ctx.write(a, ctx.pid % 64, 1);
            });
        }
        record(&mut t, "combine", n, &m);
    }
    // a real algorithm end-to-end (mixed read/write/conflict profile)
    {
        let hull_n = if quick { 2048 } else { 8192 };
        let pts = sorted_by_x(&g2::uniform_disk(hull_n, 42));
        let (mut m, mut shm) = machine(7);
        let (out, _) = upper_hull_presorted(&mut m, &mut shm, &pts, &PresortedParams::default());
        assert_eq!(out.hull, UpperHull::of(&pts));
        record(&mut t, "presorted-hull", hull_n, &m);
    }
    t.note(
        "host wall-clock only — simulated step/work accounting is identical across commit paths",
    );
    t.note("expected: scatter ~100% fastpath; combine 0% with one conflict per cell per step");
    t
}

/// All experiments in order.
/// FAULTS — empirical attempt-failure probability of the supervised Las
/// Vegas entry points vs n, under fixed per-algorithm fault plans.
///
/// Las Vegas analysis (Lemmas 3.1/2.1, §5) bounds the probability that one
/// *attempt* fails; the supervisor's retry count is geometric in that
/// probability. This experiment measures the per-attempt failure rate
/// directly, for three exposure profiles:
///
/// * `sample` under a forced-true coin bias — extra attempters push the
///   sample over the 4k Lemma 3.1 ceiling, so failure rises with n;
/// * `ragde` under cell corruption — the destination area is a shrinking
///   fraction of live memory, so failure *falls* with n;
/// * `unsorted` 2-D hull under light corruption — per-attempt exposure is
///   rate × steps and steps grow with n, so failure rises with n.
pub fn faults(quick: bool) -> Table {
    use ipch_hull2d::parallel::supervised::upper_hull_unsorted_supervised;
    use ipch_inplace::supervised::{ragde_compact_supervised, random_sample_supervised};
    use ipch_pram::{FaultPlan, Outcome, RngBias, RunError, SuperviseConfig, Supervised};

    let mut t = Table::new(
        "faults",
        "attempt failure probability under injected faults",
        &[
            "algorithm",
            "n",
            "trials",
            "attempts",
            "failed",
            "fail_rate",
            "first_try",
            "retried",
            "fell_back",
            "typed_err",
        ],
    );

    #[derive(Default)]
    struct Tally {
        trials: u64,
        attempts: u64,
        failed: u64,
        first_try: u64,
        retried: u64,
        fell_back: u64,
        typed_err: u64,
    }
    impl Tally {
        fn absorb<T>(&mut self, r: &Result<Supervised<T>, RunError>, max_attempts: u64) {
            self.trials += 1;
            match r {
                Ok(s) => {
                    self.attempts += u64::from(s.attempts);
                    match s.outcome {
                        Outcome::FirstTry => self.first_try += 1,
                        Outcome::Retried(k) => {
                            self.retried += 1;
                            self.failed += u64::from(k);
                        }
                        Outcome::FellBack => {
                            self.fell_back += 1;
                            self.failed += u64::from(s.attempts);
                        }
                    }
                }
                Err(_) => {
                    self.typed_err += 1;
                    self.attempts += max_attempts;
                    self.failed += max_attempts;
                }
            }
        }
        fn row(&self, t: &mut Table, algorithm: &str, n: usize) {
            t.row(vec![
                algorithm.to_string(),
                n.to_string(),
                self.trials.to_string(),
                self.attempts.to_string(),
                self.failed.to_string(),
                f(self.failed as f64 / (self.attempts.max(1)) as f64),
                self.first_try.to_string(),
                self.retried.to_string(),
                self.fell_back.to_string(),
                self.typed_err.to_string(),
            ]);
        }
    }

    // The supervisor converts attempt panics into typed errors; keep the
    // default hook from spraying backtraces for those expected events.
    std::panic::set_hook(Box::new(|_| {}));

    let ns: &[usize] = if quick {
        &[256, 512, 1024]
    } else {
        &[256, 512, 1024, 2048, 4096]
    };
    let trials = if quick { 6 } else { 20 };
    let cfg = SuperviseConfig::default();
    let max_a = u64::from(cfg.max_attempts);

    for &n in ns {
        // sample: forced-true bias inflates the attempter count toward 4k.
        let mut tally = Tally::default();
        let active: Vec<usize> = (0..n).collect();
        for s in 0..trials {
            let mut m = Machine::new(1000 + s);
            m.install_faults(FaultPlan {
                rng_bias: Some(RngBias {
                    rate: 0.06,
                    force: true,
                }),
                ..FaultPlan::default()
            });
            let r = random_sample_supervised(&mut m, &active, n, 16, 4, &cfg);
            tally.absorb(&r, max_a);
        }
        tally.row(&mut t, "sample", n);
    }

    for &n in ns {
        // ragde: heavy corruption; the n-cell source dilutes the chance a
        // corrupted cell lands in the small destination area.
        let mut tally = Tally::default();
        for s in 0..trials {
            let (mut m, mut shm) = machine(2000 + s);
            m.install_faults(FaultPlan {
                corrupt_rate: 0.4,
                ..FaultPlan::default()
            });
            let src = shm.alloc("faults.src", n, EMPTY);
            for i in 0..6 {
                shm.host_set(src, i * (n / 6), (100 + i) as i64);
            }
            let r = ragde_compact_supervised(&mut m, &mut shm, src, 8, 6, &cfg);
            tally.absorb(&r, max_a);
        }
        tally.row(&mut t, "ragde", n);
    }

    for &n in ns {
        // unsorted 2-D: light corruption, but exposure = rate × steps.
        let mut tally = Tally::default();
        let pts = g2::uniform_disk(n, 77);
        for s in 0..trials {
            let mut m = Machine::new(3000 + s);
            m.install_faults(FaultPlan {
                corrupt_rate: 0.01,
                ..FaultPlan::default()
            });
            let r = upper_hull_unsorted_supervised(&mut m, &pts, &UnsortedParams::default(), &cfg);
            tally.absorb(&r, max_a);
        }
        tally.row(&mut t, "unsorted", n);
    }

    let _ = std::panic::take_hook();
    t.note(
        "expected: sample fail_rate jumps once 0.06n crosses the 4k ceiling, unsorted rises \
         with n (exposure = rate × steps); ragde stays high and flat (few, short attempts); \
         typed_err counts runs that ended in a typed error — never a wrong answer",
    );
    t
}

pub fn all(quick: bool) -> Vec<Table> {
    vec![
        t1(quick),
        t2(quick),
        t3(quick),
        t4(quick),
        t5(quick),
        t6(quick),
        t7(quick),
        t8(quick),
        t9(quick),
        t10(quick),
        f1(quick),
        f2(quick),
        f3(quick),
        f4(quick),
        f5(quick),
        a1(quick),
        a2(quick),
        a3(quick),
        sim(quick),
        faults(quick),
    ]
}
