//! Regenerate the experiment tables (DESIGN.md §3).
//!
//! ```text
//! tables [all|t1..t10|f1..f5|a1..a3|sim|faults]... [--quick]
//! ```
//!
//! Prints each table and writes `bench_results/<id>.csv`.

use ipch_bench::experiments as ex;
use ipch_bench::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let run_all = wanted.is_empty() || wanted.contains(&"all");

    let selected: Vec<Table> = if run_all {
        ex::all(quick)
    } else {
        let mut out = Vec::new();
        for w in wanted {
            let t = match w {
                "t1" => ex::t1(quick),
                "t2" => ex::t2(quick),
                "t3" => ex::t3(quick),
                "t4" => ex::t4(quick),
                "t5" => ex::t5(quick),
                "t6" => ex::t6(quick),
                "t7" => ex::t7(quick),
                "t8" => ex::t8(quick),
                "t9" => ex::t9(quick),
                "t10" => ex::t10(quick),
                "f1" => ex::f1(quick),
                "f2" => ex::f2(quick),
                "f3" => ex::f3(quick),
                "f4" => ex::f4(quick),
                "f5" => ex::f5(quick),
                "a1" => ex::a1(quick),
                "a2" => ex::a2(quick),
                "a3" => ex::a3(quick),
                "sim" => ex::sim(quick),
                "faults" => ex::faults(quick),
                other => {
                    eprintln!("unknown experiment: {other}");
                    std::process::exit(2);
                }
            };
            out.push(t);
        }
        out
    };

    for t in &selected {
        t.print();
        match t.write_csv() {
            Ok(p) => println!("  csv: {}", p.display()),
            Err(e) => eprintln!("  csv write failed: {e}"),
        }
    }
}
