//! # ipch-bench — the experiment harness
//!
//! The paper is a theory paper with no measured tables; DESIGN.md defines
//! the experiment set (T1–T10, F1–F5) that turns each theorem into a
//! measurable claim. This crate regenerates every one of them:
//!
//! * `cargo run --release -p ipch-bench --bin tables -- all` prints every
//!   experiment as an aligned table and writes CSVs under
//!   `bench_results/`.
//! * `cargo bench` runs the criterion wall-clock benches (experiment F6).
//!
//! Pass `--quick` for reduced sweeps (CI-sized).

pub mod experiments;
pub mod table;

pub use table::Table;
