//! In-place approximate compaction (paper Lemma 3.2).
//!
//! *Given an array of size m containing at most k non-zero elements, one can
//! determine whether k < m^ε and if so perform an in-place approximate
//! compaction of these elements into an area of size k⁴, deterministically,
//! using max{k, m^{4ε+δ}} processors with workspace of size m^{4ε+δ}, where
//! δ < 1 and ε < (1−δ)/4.*
//!
//! The scheme (paper §3.2): split the array into groups; every non-zero
//! element marks its group's bit; Ragde-compact the *group marks* (there
//! are ≤ min{#groups, k} of them); subdivide each surviving group and
//! repeat, ignoring empty groups. After ≤ 1/δ rounds the groups have length
//! one and the marks are the elements themselves.
//!
//! Implementation notes:
//!
//! * Group lengths are powers of the branching factor `sub ≈ m^δ`, so each
//!   element computes its sub-group index arithmetically from its position.
//! * Renumbering across rounds uses the *modulus* of the deterministic
//!   Ragde compaction: an element's new group id is
//!   `(old_id mod p)·sub + subindex`, which every element computes locally
//!   — no pointer chasing, no reordering, exactly the in-place discipline.
//! * The per-element current group id lives in an m-cell array that models
//!   the virtual processors' *private registers* ("a virtual processor
//!   standing by each element", §1); the o(m) bound of the lemma concerns
//!   the shared workspace, which here is the mark/compaction tables of size
//!   O(bound⁴·sub) = O(m^{4ε+δ}).

use ipch_pram::{ArrayId, Machine, ModelClass, ModelContract, RaceExpectation, Shm, EMPTY};

use crate::ragde::ragde_compact_det;

/// Concurrency contract: Common-CRCW — the only races are occupancy marks
/// and duplicate stores of identical payloads.
pub const COMPACT_CONTRACT: ModelContract = ModelContract {
    algorithm: "inplace/compact",
    class: ModelClass::Crcw,
    races: RaceExpectation::SameValue,
};

/// Result of an in-place compaction.
#[derive(Clone, Debug)]
pub struct InplaceCompaction {
    /// Compacted payloads: `count` occupied cells in an area of size
    /// O(bound⁴), rest `EMPTY`.
    pub slots: ArrayId,
    /// Parallel array: `positions[s]` = original index of the element whose
    /// payload sits in `slots[s]` (or `EMPTY`).
    pub positions: ArrayId,
    /// Number of elements compacted.
    pub count: usize,
    /// Refinement rounds executed (≤ ~1/δ).
    pub rounds: usize,
    /// Largest shared workspace table allocated, in cells (for table T8).
    pub workspace_cells: usize,
}

/// Symbolic step structure of [`inplace_compact`] for the static checker
/// ([`ipch_pram::verify`]). The group-mark and final-scatter indices are
/// the element's current group id — data held in registers, outside the
/// symbolic index language — so the plan declares them opaque and the
/// verdict is honestly `NeedsDynamic`: the group-refinement exclusivity
/// argument is confirmed by the dynamic analyzer.
pub fn verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    use ipch_pram::WritePolicy;
    let mut p = AlgorithmPlan::new(COMPACT_CONTRACT);
    let src = p.array("ipc.src", Affine::n());
    let seg = p.array("ipc.seg", Affine::n());
    let marks = p.array("ipc.marks", Affine::n());
    let slots = p.array("ipc.slots", Affine::n());
    p.step(
        StepPlan::new("segment-init", Affine::n(), WritePolicy::Arbitrary)
            .read(src, IndexSet::Exact(Affine::pid()))
            .write(seg, IndexSet::Exact(Affine::pid())),
    );
    // marks[g] = g (or the singleton position): every writer that hits a
    // cell writes the same payload — a per-cell-uniform opaque scatter.
    p.step(
        StepPlan::new("group-mark", Affine::n(), WritePolicy::Arbitrary)
            .read(src, IndexSet::Exact(Affine::pid()))
            .read(seg, IndexSet::Exact(Affine::pid()))
            .write_uniform(marks, IndexSet::Opaque),
    );
    p.step(
        StepPlan::new("renumber", Affine::n(), WritePolicy::Arbitrary)
            .read(seg, IndexSet::Exact(Affine::pid()))
            .write(seg, IndexSet::Exact(Affine::pid())),
    );
    p.step(
        StepPlan::new("final-scatter", Affine::n(), WritePolicy::Arbitrary)
            .read(src, IndexSet::Exact(Affine::pid()))
            .read(seg, IndexSet::Exact(Affine::pid()))
            .write(slots, IndexSet::Opaque),
    );
    p
}

/// In-place approximate compaction of the occupied (non-`EMPTY`) cells of
/// `src`. `bound` plays the role of m^ε: if more than `bound` cells are
/// occupied this is detected and `None` is returned. `delta` sets the
/// branching factor `sub = max(2, ⌊m^δ⌋)` and hence the round count.
pub fn inplace_compact(
    m: &mut Machine,
    shm: &mut Shm,
    src: ArrayId,
    bound: usize,
    delta: f64,
) -> Option<InplaceCompaction> {
    m.declare_contract(&COMPACT_CONTRACT);
    let n = shm.len(src);
    if n == 0 {
        let slots = shm.alloc("ipc.slots", 1, EMPTY);
        let positions = shm.alloc("ipc.pos", 1, EMPTY);
        return Some(InplaceCompaction {
            slots,
            positions,
            count: 0,
            rounds: 0,
            workspace_cells: 0,
        });
    }
    assert!((0.0..1.0).contains(&delta), "need 0 <= delta < 1");
    let sub = ((n as f64).powf(delta).floor() as usize).max(2);

    // Target initial group count ≈ bound⁴·sub (the m^{4ε+δ} workspace);
    // group length = smallest power of `sub` that gets us under it.
    let g_target = (bound.max(2).pow(4).saturating_mul(sub)).min(n);
    let mut len = 1usize; // group length, a power of sub
    while n.div_ceil(len) > g_target {
        len = len.saturating_mul(sub);
    }
    let t_rounds = {
        let mut t = 0usize;
        let mut l = len;
        while l > 1 {
            l /= sub;
            t += 1;
        }
        t
    };

    // Per-element private register: current group id.
    let seg = shm.alloc("ipc.seg", n, EMPTY);
    m.step(shm, 0..n, |ctx| {
        let i = ctx.pid;
        if ctx.read(src, i) != EMPTY {
            ctx.write(seg, i, (i / len) as i64);
        }
    });

    let mut id_space = n.div_ceil(len);
    let mut cur_len = len;
    let mut workspace_cells = 0usize;
    let mut rounds = 0usize;

    loop {
        rounds += 1;
        let final_round = cur_len == 1;
        // Mark occupied groups; in the final round the payload is the
        // element's own position (groups are singletons).
        let marks = shm.alloc("ipc.marks", id_space, EMPTY);
        workspace_cells = workspace_cells.max(id_space);
        m.step(shm, 0..n, |ctx| {
            let i = ctx.pid;
            if ctx.read(src, i) != EMPTY {
                let g = ctx.read(seg, i) as usize;
                let payload = if final_round { i as i64 } else { g as i64 };
                ctx.write(marks, g, payload);
            }
        });

        let c = ragde_compact_det(m, shm, marks, bound)?;
        let p = c.modulus.expect("deterministic variant") as usize;
        workspace_cells = workspace_cells.max(p);

        if final_round {
            // `c.dst[g mod p]` = element position; scatter the payloads.
            let slots = shm.alloc("ipc.slots", p, EMPTY);
            m.step(shm, 0..n, |ctx| {
                let i = ctx.pid;
                if ctx.read(src, i) != EMPTY {
                    let g = ctx.read(seg, i) as usize;
                    let v = ctx.read(src, i);
                    ctx.write(slots, g % p, v);
                }
            });
            return Some(InplaceCompaction {
                slots,
                positions: c.dst,
                count: c.count,
                rounds,
                workspace_cells,
            });
        }

        // Renumber: new id = (old mod p)·sub + subindex, computed locally.
        let next_len = cur_len / sub;
        m.step(shm, 0..n, |ctx| {
            let i = ctx.pid;
            if ctx.read(src, i) != EMPTY {
                let g = ctx.read(seg, i) as usize;
                let slot = g % p;
                let subidx = (i / next_len) % sub;
                ctx.write(seg, i, (slot * sub + subidx) as i64);
            }
        });
        id_space = p * sub;
        cur_len = next_len;
        debug_assert!(rounds <= t_rounds + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize, occupied: &[(usize, i64)]) -> (Machine, Shm, ArrayId) {
        let mut shm = Shm::new();
        let a = shm.alloc("src", n, EMPTY);
        for &(i, v) in occupied {
            shm.host_set(a, i, v);
        }
        (Machine::new(5), shm, a)
    }

    fn check(n: usize, occupied: &[(usize, i64)], bound: usize, delta: f64) {
        let (mut m, mut shm, a) = setup(n, occupied);
        let c = inplace_compact(&mut m, &mut shm, a, bound, delta)
            .unwrap_or_else(|| panic!("n={n} bound={bound} delta={delta}: unexpected failure"));
        assert_eq!(c.count, occupied.len());
        // payload/position pairing must be exact
        let mut got: Vec<(usize, i64)> = Vec::new();
        for s in 0..shm.len(c.slots) {
            let v = shm.get(c.slots, s);
            let pos = shm.get(c.positions, s);
            assert_eq!(v == EMPTY, pos == EMPTY, "slot {s} half-filled");
            if v != EMPTY {
                got.push((pos as usize, v));
            }
        }
        got.sort_unstable();
        let mut expect = occupied.to_vec();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn basic_scattered() {
        check(1000, &[(3, 33), (400, 44), (999, 55)], 4, 0.3);
    }

    #[test]
    fn clustered_elements() {
        // all in one initial group — forces the refinement to actually split
        check(4096, &[(100, 1), (101, 2), (102, 3), (103, 4)], 5, 0.25);
    }

    #[test]
    fn empty_and_single() {
        check(256, &[], 3, 0.3);
        check(256, &[(255, 7)], 3, 0.3);
        check(1, &[(0, 9)], 2, 0.5);
    }

    #[test]
    fn detects_overflow() {
        let occ: Vec<(usize, i64)> = (0..12).map(|i| (i * 11, i as i64)).collect();
        let (mut m, mut shm, a) = setup(512, &occ);
        assert!(inplace_compact(&mut m, &mut shm, a, 8, 0.3).is_none());
        let (mut m2, mut shm2, a2) = setup(512, &occ);
        assert!(inplace_compact(&mut m2, &mut shm2, a2, 12, 0.3).is_some());
    }

    #[test]
    fn various_deltas_and_sizes() {
        let mut rng = ipch_pram::rng::SplitMix64::new(11);
        for &n in &[64usize, 300, 1024, 5000] {
            for &delta in &[0.2, 0.4, 0.6] {
                let mut occ: Vec<(usize, i64)> = Vec::new();
                let mut used = std::collections::HashSet::new();
                for _ in 0..6 {
                    let i = rng.next_below(n as u64) as usize;
                    if used.insert(i) {
                        occ.push((i, 100 + i as i64));
                    }
                }
                check(n, &occ, 6, delta);
            }
        }
    }

    #[test]
    fn constant_round_count() {
        // rounds ≈ 1/δ regardless of m
        for &n in &[1 << 10, 1 << 14, 1 << 16] {
            let (mut m, mut shm, a) = setup(n, &[(n / 2, 1), (n - 1, 2)]);
            let c = inplace_compact(&mut m, &mut shm, a, 3, 0.34).unwrap();
            assert!(c.rounds <= 5, "n={n}: rounds={}", c.rounds);
            assert!(
                m.metrics.steps <= 8 * c.rounds as u64 + 2,
                "n={n}: steps={}",
                m.metrics.steps
            );
        }
    }

    #[test]
    fn workspace_is_sublinear_for_small_bound() {
        let n = 1 << 16;
        let (mut m, mut shm, a) = setup(n, &[(7, 1), (n / 3, 2), (n - 2, 3)]);
        let c = inplace_compact(&mut m, &mut shm, a, 3, 0.25).unwrap();
        // bound⁴·sub = 81·16 cells-ish, far below n; allow prime slack
        assert!(
            c.workspace_cells < n / 4,
            "workspace {} not o(m)",
            c.workspace_cells
        );
    }
}
