//! Supervised (Las Vegas) entry points for the §3 in-place primitives.
//!
//! Both Section-3 building blocks carry natural certificates:
//!
//! * the random-sample procedure's Lemma 3.1 size guarantee
//!   (`k/2 ≤ |S| ≤ 4k`) plus the subset property, checked by
//!   [`random_sample_supervised`];
//! * Ragde compaction's payload preservation — the destination must hold
//!   exactly the multiset of occupied source payloads — checked by
//!   [`ragde_compact_supervised`] against [`ragde::expected_payloads`].
//!
//! Failed attempts retry on fresh child seeds; exhaustion degrades to a
//! deterministic stand-in (a strided sample, the modulus-based
//! deterministic compaction). Under an installed [`ipch_pram::FaultPlan`]
//! the caller receives a verified value or a typed [`RunError`].

use std::cell::RefCell;

use ipch_pram::{supervise, ArrayId, Machine, RunError, Shm, SuperviseConfig, Supervised};

use crate::ragde::{self, ragde_compact_det, ragde_compact_rand, Compaction};
use crate::sample::random_sample;

/// Supervised random sample of Θ(k) of the `active` elements (Lemma 3.1).
///
/// The certificate checks the subset property always, and the
/// `k/2 ≤ |S| ≤ 4k` size bound whenever it is satisfiable at all
/// (`2·|active| ≥ k`; below that no subset can meet it and the lemma's
/// premise `k ≤ m` has already been violated by the caller). The
/// deterministic fallback takes every ⌈m/k⌉-th active element — exactly
/// min(m, k) elements, inside the bound — charged at one step and m work.
pub fn random_sample_supervised(
    m: &mut Machine,
    active: &[usize],
    universe: usize,
    k: usize,
    attempts: usize,
    cfg: &SuperviseConfig,
) -> Result<Supervised<Vec<usize>>, RunError> {
    const ALG: &str = "inplace/sample";
    // Entry validation: active ids must be in-universe and distinct (the
    // Lemma 3.1 size analysis counts distinct elements).
    let mut seen = vec![false; universe];
    for (pos, &i) in active.iter().enumerate() {
        if i >= universe {
            return Err(RunError::invalid_input(
                ALG,
                format!("active[{pos}] = {i} out of bounds for universe {universe}"),
            ));
        }
        if seen[i] {
            return Err(RunError::invalid_input(
                ALG,
                format!("active element {i} appears more than once"),
            ));
        }
        seen[i] = true;
    }
    let certify = |sample: &[usize], in_bounds: bool| -> Result<(), RunError> {
        let fail = |detail: String| RunError::Verify {
            algorithm: ALG,
            detail,
        };
        if 2 * active.len() >= k && !in_bounds {
            return Err(fail(format!(
                "sample size {} outside [{}, {}]",
                sample.len(),
                k.div_ceil(2),
                4 * k
            )));
        }
        if let Some(&e) = sample.iter().find(|e| !active.contains(e)) {
            return Err(fail(format!("sampled element {e} is not active")));
        }
        Ok(())
    };
    let mut fallback = |fm: &mut Machine| {
        let stride = (active.len() / k.max(1)).max(1);
        let sample: Vec<usize> = active.iter().copied().step_by(stride).take(k).collect();
        fm.charge(1, active.len() as u64);
        let len = sample.len();
        certify(&sample, 2 * len >= k && len <= 4 * k)?;
        Ok(sample)
    };
    supervise(
        m,
        ALG,
        cfg,
        |am: &mut Machine| {
            let mut shm = Shm::new();
            let out = random_sample(am, &mut shm, active, universe, k, attempts);
            certify(&out.sample, out.size_in_bounds(k))?;
            Ok(out.sample)
        },
        Some(&mut fallback),
    )
}

/// Supervised Ragde compaction of `src` (occupied = non-`EMPTY` cells)
/// under the occupancy `bound`.
///
/// Attempts run the fully-executed randomized dart throwing; the
/// certificate demands that the destination hold exactly the occupied
/// source payloads (as a multiset). Exhaustion falls back to the
/// deterministic modulus-based variant under the same certificate. Note
/// an over-`bound` occupancy fails *every* path by design — that is the
/// lemma's "detect k ≥ m^{1/4}" answer, surfaced as a typed error.
pub fn ragde_compact_supervised(
    m: &mut Machine,
    shm: &mut Shm,
    src: ArrayId,
    bound: usize,
    rounds: usize,
    cfg: &SuperviseConfig,
) -> Result<Supervised<Compaction>, RunError> {
    const ALG: &str = "inplace/ragde";
    // Attempt and fallback both need the caller's shared memory (the
    // source array lives there, and the destination must survive the
    // return); a RefCell hands the one &mut to whichever closure runs.
    let shm = RefCell::new(shm);
    let certify = |shm: &Shm, c: &Compaction| -> Result<(), RunError> {
        let mut got = ragde::payloads(shm, c);
        let mut want = ragde::expected_payloads(shm, src);
        got.sort_unstable();
        want.sort_unstable();
        if got != want {
            return Err(RunError::Verify {
                algorithm: ALG,
                detail: format!(
                    "destination holds {} payloads, source {} — multiset mismatch",
                    got.len(),
                    want.len()
                ),
            });
        }
        Ok(())
    };
    let mut fallback = |fm: &mut Machine| {
        let mut g = shm.borrow_mut();
        let shm: &mut Shm = &mut g;
        let c = ragde_compact_det(fm, shm, src, bound).ok_or(RunError::Invariant {
            algorithm: ALG,
            detail: format!("more than {bound} occupied cells — compaction refused"),
        })?;
        certify(shm, &c)?;
        Ok(c)
    };
    supervise(
        m,
        ALG,
        cfg,
        |am: &mut Machine| {
            let mut g = shm.borrow_mut();
            let shm: &mut Shm = &mut g;
            let c = ragde_compact_rand(am, shm, src, bound, rounds).ok_or(RunError::Invariant {
                algorithm: ALG,
                detail: format!(
                    "occupancy over {bound} or a thrower unplaced after {rounds} rounds"
                ),
            })?;
            certify(shm, &c)?;
            Ok(c)
        },
        Some(&mut fallback),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_pram::{Outcome, EMPTY};

    #[test]
    fn clean_sample_verifies_first_try() {
        let active: Vec<usize> = (0..500).filter(|i| i % 5 == 0).collect();
        let mut m = Machine::new(3);
        let s = random_sample_supervised(&mut m, &active, 500, 8, 4, &SuperviseConfig::default())
            .expect("clean sample");
        assert_eq!(s.outcome, Outcome::FirstTry);
        assert!(s.value.iter().all(|e| e % 5 == 0));
    }

    #[test]
    fn clean_compaction_verifies_and_preserves_payloads() {
        let mut m = Machine::new(4);
        let mut shm = Shm::new();
        let src = shm.alloc("src", 256, EMPTY);
        for i in [3usize, 17, 100, 200, 255] {
            shm.host_set(src, i, (1000 + i) as i64);
        }
        let s = ragde_compact_supervised(&mut m, &mut shm, src, 8, 6, &SuperviseConfig::default())
            .expect("clean compaction");
        assert_eq!(s.outcome, Outcome::FirstTry);
        assert_eq!(s.value.count, 5);
        let mut got = ragde::payloads(&shm, &s.value);
        got.sort_unstable();
        assert_eq!(got, vec![1003, 1017, 1100, 1200, 1255]);
    }

    #[test]
    fn over_bound_occupancy_is_a_typed_error_not_a_wrong_answer() {
        let mut m = Machine::new(5);
        let mut shm = Shm::new();
        let src = shm.alloc("src", 64, EMPTY);
        for i in 0..32 {
            shm.host_set(src, i, i as i64);
        }
        let err =
            ragde_compact_supervised(&mut m, &mut shm, src, 4, 4, &SuperviseConfig::default())
                .unwrap_err();
        // every attempt fails, then the deterministic fallback refuses too
        assert!(matches!(err, RunError::Invariant { .. }));
        assert!(m.metrics.supervisor.fallbacks > 0);
    }

    #[test]
    fn malformed_active_sets_reject_before_any_step() {
        let mut m = Machine::new(6);
        let cfg = SuperviseConfig::default();
        let e = random_sample_supervised(&mut m, &[1, 2, 50], 50, 2, 4, &cfg).unwrap_err();
        assert!(matches!(e, RunError::InvalidInput { .. }), "got {e}");
        let e = random_sample_supervised(&mut m, &[1, 2, 2], 50, 2, 4, &cfg).unwrap_err();
        assert!(matches!(e, RunError::InvalidInput { .. }), "got {e}");
        assert_eq!(m.metrics.steps, 0);
        assert_eq!(m.metrics.supervisor.attempts, 0);
    }
}
