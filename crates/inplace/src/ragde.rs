//! Approximate compaction (paper Lemma 2.1, Ragde 1990).
//!
//! *Given an array of size m containing at most k non-zero elements, one can
//! determine whether k < m^{1/4} and if so compress these k elements into an
//! area of size k⁴, in constant time on a CRCW PRAM with m processors.*
//!
//! Two implementations:
//!
//! * [`ragde_compact_det`] — deterministic, by modulus hashing: find a
//!   prime `p ≥ bound⁴` such that `x ↦ x mod p` is injective on the set of
//!   occupied positions, then scatter in one step. Such a prime exists
//!   near bound⁴ because each of the ≤ C(k,2) position differences has few
//!   prime divisors that large. Ragde's paper performs the prime search
//!   with the m processors in O(1) time; we perform it host-side and
//!   **charge** O(1) steps / O(m) work (recorded in the metrics' charged
//!   bucket — see DESIGN.md's substitution table). The scatter step that
//!   actually moves data is executed on the simulator. The modulus is
//!   returned so callers (the in-place compaction of Lemma 3.2) can let
//!   each element *compute* its own destination slot — the property the
//!   refinement scheme relies on.
//! * [`ragde_compact_rand`] — fully executed randomized alternative:
//!   occupied cells dart-throw into the bound⁴ area with CRCW collision
//!   detection, retrying a constant number of rounds. Succeeds w.h.p.
//!   since the area is quadratically larger than k².
//!
//! Occupancy convention: a cell is occupied iff it differs from
//! [`ipch_pram::EMPTY`]; its value is the payload that gets moved.

use ipch_pram::{
    ArrayId, Machine, ModelClass, ModelContract, RaceExpectation, Shm, WritePolicy, EMPTY,
};

/// Result of a compaction.
#[derive(Clone, Debug)]
pub struct Compaction {
    /// Destination array: `count` occupied cells, the rest `EMPTY`.
    pub dst: ArrayId,
    /// Number of occupied cells moved.
    pub count: usize,
    /// For the deterministic variant: the modulus `p` with
    /// `dst[x mod p] = payload(x)` for every occupied position `x`.
    pub modulus: Option<u64>,
}

/// Is `n` prime? (Host-side trial division; moduli stay small.)
fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// Destination-area size: Lemma 2.1's k⁴, capped for practicality.
///
/// The lemma sizes the area k⁴ because that guarantees an injective prime
/// can be *found in O(1) parallel time*; any injective prime is
/// functionally correct. Beyond small bounds k⁴ is astronomically larger
/// than the array itself, so we start the (host-side, charged) search at
/// `min(k⁴, max(64, 4k², m))` — still quadratically above the worst-case
/// collision count, and never trivially larger than the input. Documented
/// in DESIGN.md's substitution table.
fn dst_area(bound: usize, m: usize) -> u64 {
    let b = bound.max(2) as u128;
    let k4 = b.pow(4);
    let cap = (4 * b * b).max(64).max(m as u128);
    k4.min(cap) as u64
}

/// Smallest prime `p ≥ lo` such that `x ↦ x mod p` is injective on `xs`.
fn injective_prime(xs: &[usize], lo: u64) -> u64 {
    let mut p = lo.max(2);
    loop {
        while !is_prime(p) {
            p += 1;
        }
        let mut seen = std::collections::HashSet::with_capacity(xs.len());
        if xs.iter().all(|&x| seen.insert(x as u64 % p)) {
            return p;
        }
        p += 1;
    }
}

/// Count occupied cells of `src` in one Combining-CRCW step.
pub fn count_occupied(m: &mut Machine, shm: &mut Shm, src: ArrayId) -> usize {
    let n = shm.len(src);
    let acc = shm.alloc("ragde.count", 1, 0);
    m.step_with_policy(shm, 0..n, WritePolicy::CombineSum, |ctx| {
        let i = ctx.pid;
        if ctx.read(src, i) != EMPTY {
            ctx.write(acc, 0, 1);
        }
    });
    shm.get(acc, 0) as usize
}

/// Concurrency contract: Common-CRCW — the injective scatter is
/// conflict-free; only agreeing occupancy marks race.
pub const RAGDE_DET_CONTRACT: ModelContract = ModelContract {
    algorithm: "inplace/ragde_det",
    class: ModelClass::Crcw,
    races: RaceExpectation::SameValue,
};

/// Concurrency contract: the dart throws contest slots under Priority
/// (any winner is valid; losers retry), so the committed memory is a
/// deterministic function of the coin flips.
pub const RAGDE_RAND_CONTRACT: ModelContract = ModelContract {
    algorithm: "inplace/ragde_rand",
    class: ModelClass::Crcw,
    races: RaceExpectation::Deterministic,
};

/// Symbolic step structure of [`ragde_compact_det`] for the static
/// checker ([`ipch_pram::verify`]). The mod-prime scatter's destination
/// index (`i mod p` for the run-time injective prime `p`) is outside the
/// symbolic index language, so the plan declares it opaque: the verdict is
/// honestly `NeedsDynamic` — exclusivity rests on the number-theoretic
/// injectivity argument, which only the dynamic analyzer confirms.
pub fn det_verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    let mut p = AlgorithmPlan::new(RAGDE_DET_CONTRACT);
    let src = p.array("ragde.src", Affine::n());
    let count = p.array("ragde.count", Affine::k(1));
    let dst = p.array("ragde.dst", Affine::n());
    p.step(
        StepPlan::new("count", Affine::n(), WritePolicy::CombineSum)
            .read(src, IndexSet::Exact(Affine::pid()))
            .write_uniform(
                count,
                IndexSet::Within {
                    lo: Affine::k(0),
                    hi: Affine::k(0),
                },
            ),
    );
    p.step(
        StepPlan::new("mod-prime-scatter", Affine::n(), WritePolicy::Arbitrary)
            .read(src, IndexSet::Exact(Affine::pid()))
            .write(dst, IndexSet::Opaque),
    );
    p
}

/// Symbolic step structure of [`ragde_compact_rand`]. The dart throws
/// target coin-chosen slots, and the claim step writes only where the
/// thrower won the Priority contest — both outside the symbolic index
/// language, so the plan is honestly `NeedsDynamic`.
pub fn rand_verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    let mut p = AlgorithmPlan::new(RAGDE_RAND_CONTRACT);
    let src = p.array("ragde.src", Affine::n());
    let count = p.array("ragde.count", Affine::k(1));
    let dst = p.array("ragde.rdst", Affine::n());
    let placed = p.array("ragde.placed", Affine::n());
    let try_slot = p.array("ragde.try", Affine::n());
    let unplaced = p.array("ragde.unplaced", Affine::k(1));
    p.step(
        StepPlan::new("count", Affine::n(), WritePolicy::CombineSum)
            .read(src, IndexSet::Exact(Affine::pid()))
            .write_uniform(
                count,
                IndexSet::Within {
                    lo: Affine::k(0),
                    hi: Affine::k(0),
                },
            ),
    );
    p.step(
        StepPlan::new("throw-pick", Affine::n(), WritePolicy::Arbitrary)
            .read(src, IndexSet::Exact(Affine::pid()))
            .read(placed, IndexSet::Exact(Affine::pid()))
            .write(try_slot, IndexSet::Exact(Affine::pid())),
    );
    p.step(
        StepPlan::new("throw-contest", Affine::n(), WritePolicy::PriorityMin)
            .read(try_slot, IndexSet::Exact(Affine::pid()))
            .write(dst, IndexSet::Opaque),
    );
    p.step(
        StepPlan::new("winner-claim", Affine::n(), WritePolicy::Arbitrary)
            .read(try_slot, IndexSet::Exact(Affine::pid()))
            .write(dst, IndexSet::Opaque)
            .write(placed, IndexSet::Exact(Affine::pid())),
    );
    p.step(
        StepPlan::new("unplaced-or", Affine::n(), WritePolicy::CombineOr)
            .read(placed, IndexSet::Exact(Affine::pid()))
            .write_uniform(
                unplaced,
                IndexSet::Within {
                    lo: Affine::k(0),
                    hi: Affine::k(0),
                },
            ),
    );
    p
}

/// Deterministic approximate compaction (Lemma 2.1 interface).
///
/// Fails (returns `None`) iff more than `bound` cells are occupied — the
/// lemma's "determine whether k < m^{1/4}" detection, with `bound` playing
/// the role of m^{1/4}. On success the destination has size ≥ bound⁴
/// (exactly the injective prime `p`).
pub fn ragde_compact_det(
    m: &mut Machine,
    shm: &mut Shm,
    src: ArrayId,
    bound: usize,
) -> Option<Compaction> {
    m.declare_contract(&RAGDE_DET_CONTRACT);
    let n = shm.len(src);
    let count = count_occupied(m, shm, src);
    if count > bound {
        return None;
    }
    // Host-side stand-in for Ragde's parallel prime search: charged O(1)
    // steps and O(m) work (the m processors it would occupy).
    m.charge(3, n as u64);
    let occupied: Vec<usize> = (0..n).filter(|&i| shm.get(src, i) != EMPTY).collect();
    let p = injective_prime(&occupied, dst_area(bound, n));

    let dst = shm.alloc("ragde.dst", p as usize, EMPTY);
    // Executed scatter step: every processor of an occupied cell writes its
    // payload to its computed slot. Injectivity ⇒ no write conflicts.
    m.step(shm, 0..n, |ctx| {
        let i = ctx.pid;
        let v = ctx.read(src, i);
        if v != EMPTY {
            ctx.write(dst, i % p as usize, v);
        }
    });
    Some(Compaction {
        dst,
        count,
        modulus: Some(p),
    })
}

/// Randomized approximate compaction: fully executed dart-throwing.
///
/// Occupied cells throw into a `max(16, bound⁴)`-cell area; collisions are
/// detected by read-back and collided throwers retry, up to `rounds`
/// rounds. Returns `None` if more than `bound` cells are occupied or some
/// thrower is still unplaced after all rounds (probability ≤ (k²/area)^rounds
/// -ish; callers treat `None` as the "failure" their sweeping handles).
pub fn ragde_compact_rand(
    m: &mut Machine,
    shm: &mut Shm,
    src: ArrayId,
    bound: usize,
    rounds: usize,
) -> Option<Compaction> {
    m.declare_contract(&RAGDE_RAND_CONTRACT);
    let n = shm.len(src);
    let count = count_occupied(m, shm, src);
    if count > bound {
        return None;
    }
    let area = (dst_area(bound, n) as usize).max(16);
    let dst = shm.alloc("ragde.rdst", area, EMPTY);
    let placed = shm.alloc("ragde.placed", n, 0);
    let try_slot = shm.alloc("ragde.try", n, EMPTY);

    for _ in 0..rounds {
        // Step A: each unplaced occupied cell picks a slot and records it.
        m.step(shm, 0..n, |ctx| {
            let i = ctx.pid;
            if ctx.read(src, i) != EMPTY && ctx.read(placed, i) == 0 {
                let s = ctx.rng().next_below(area as u64) as i64;
                ctx.write(try_slot, i, s);
            }
        });
        // Step B: throw the id at the chosen slot if the slot is free.
        // Colliding throwers are interchangeable (the loser just retries
        // next round), so Priority resolves the collision: the committed
        // id is the least thrower, a deterministic function of the coin
        // flips rather than of the simulator's tiebreak seed.
        m.step_with_policy(shm, 0..n, WritePolicy::PriorityMin, |ctx| {
            let i = ctx.pid;
            if ctx.read(src, i) != EMPTY && ctx.read(placed, i) == 0 {
                let s = ctx.read(try_slot, i) as usize;
                if ctx.read(dst, s) == EMPTY {
                    ctx.write(dst, s, i as i64);
                }
            }
        });
        // Step C: read back; the winner claims the slot with its payload and
        // marks itself placed. (Winner-only write ⇒ no conflict.)
        m.step(shm, 0..n, |ctx| {
            let i = ctx.pid;
            if ctx.read(src, i) != EMPTY && ctx.read(placed, i) == 0 {
                let s = ctx.read(try_slot, i) as usize;
                if ctx.read(dst, s) == i as i64 {
                    let v = ctx.read(src, i);
                    ctx.write(dst, s, v);
                    ctx.write(placed, i, 1);
                }
            }
        });
    }
    // Did everyone land? One OR step.
    let unplaced = shm.alloc("ragde.unplaced", 1, 0);
    m.step_with_policy(shm, 0..n, WritePolicy::CombineOr, |ctx| {
        let i = ctx.pid;
        if ctx.read(src, i) != EMPTY && ctx.read(placed, i) == 0 {
            ctx.write(unplaced, 0, 1);
        }
    });
    if shm.get(unplaced, 0) != 0 {
        return None;
    }
    Some(Compaction {
        dst,
        count,
        modulus: None,
    })
}

/// Test helper: collect the payloads of a compaction's destination.
pub fn payloads(shm: &Shm, c: &Compaction) -> Vec<i64> {
    let mut v: Vec<i64> = shm
        .slice(c.dst)
        .iter()
        .copied()
        .filter(|&x| x != EMPTY)
        .collect();
    v.sort_unstable();
    v
}

/// Convenience used by tests and experiments: the payloads that *should*
/// end up in the destination.
pub fn expected_payloads(shm: &Shm, src: ArrayId) -> Vec<i64> {
    let mut v: Vec<i64> = shm
        .slice(src)
        .iter()
        .copied()
        .filter(|&x| x != EMPTY)
        .collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_pram::primitives;

    fn setup(n: usize, occupied: &[(usize, i64)]) -> (Machine, Shm, ArrayId) {
        let mut shm = Shm::new();
        let a = shm.alloc("src", n, EMPTY);
        for &(i, v) in occupied {
            shm.host_set(a, i, v);
        }
        (Machine::new(77), shm, a)
    }

    /// Regression for the dart-throw fix: step B runs under Priority, so
    /// slot contests are Deterministic races (never SeedDependent). Two
    /// throwers into 16 slots collide in ~1/16 of rounds; across 100 seeds
    /// a contest is statistically certain.
    #[test]
    fn analyzer_pins_priority_darts() {
        use ipch_pram::AnalyzeConfig;
        let mut contested = 0;
        for seed in 0..100 {
            let mut m = Machine::new(seed);
            m.enable_analysis(AnalyzeConfig::default());
            let mut shm = Shm::new();
            shm.enable_shadow(true);
            let a = shm.alloc("src", 16, EMPTY);
            shm.host_set(a, 2, 20);
            shm.host_set(a, 9, 90);
            let c = ragde_compact_rand(&mut m, &mut shm, a, 2, 8).expect("placed");
            assert_eq!(c.count, 2);
            let r = m.analysis_report().unwrap();
            assert_eq!(r.contract.unwrap().algorithm, "inplace/ragde_rand");
            assert!(r.is_clean(), "seed {seed}:\n{}", r.render());
            assert_eq!(r.seed_dependent_races, 0, "seed {seed}");
            assert_eq!(r.unconfirmed_arbitrary_races, 0, "seed {seed}");
            contested += r.deterministic_races;
        }
        assert!(contested > 0, "no dart contest across any seed");
    }

    #[test]
    fn det_compacts_and_reports_modulus() {
        let (mut m, mut shm, a) = setup(1000, &[(3, 30), (501, 40), (998, 50)]);
        let c = ragde_compact_det(&mut m, &mut shm, a, 4).expect("within bound");
        assert_eq!(c.count, 3);
        let p = c.modulus.unwrap();
        assert!(p >= 256, "p ≥ bound⁴");
        assert_eq!(payloads(&shm, &c), vec![30, 40, 50]);
        // each payload at its computed slot
        for &(i, v) in &[(3usize, 30i64), (501, 40), (998, 50)] {
            assert_eq!(shm.get(c.dst, i % p as usize), v);
        }
        // executed cost: count step + scatter step only
        assert_eq!(m.metrics.steps, 2);
        assert_eq!(m.metrics.charged_steps, 3);
    }

    #[test]
    fn det_detects_overflow() {
        let occ: Vec<(usize, i64)> = (0..20).map(|i| (i * 7, i as i64)).collect();
        let (mut m, mut shm, a) = setup(200, &occ);
        assert!(ragde_compact_det(&mut m, &mut shm, a, 10).is_none());
        assert!(ragde_compact_det(&mut m, &mut shm, a, 20).is_some());
    }

    #[test]
    fn det_empty_and_single() {
        let (mut m, mut shm, a) = setup(64, &[]);
        let c = ragde_compact_det(&mut m, &mut shm, a, 2).unwrap();
        assert_eq!(c.count, 0);
        let (mut m, mut shm, a) = setup(64, &[(63, 9)]);
        let c = ragde_compact_det(&mut m, &mut shm, a, 2).unwrap();
        assert_eq!(payloads(&shm, &c), vec![9]);
    }

    #[test]
    fn det_adversarial_positions() {
        // arithmetic progressions are the classic bad case for modulus
        // hashing — the search must skip divisor-heavy moduli
        for stride in [1usize, 16, 252, 255] {
            let occ: Vec<(usize, i64)> = (0..8).map(|j| (j * stride, 100 + j as i64)).collect();
            let (mut m, mut shm, a) = setup(2048, &occ);
            let c = ragde_compact_det(&mut m, &mut shm, a, 8).unwrap();
            assert_eq!(
                payloads(&shm, &c),
                (0..8).map(|j| 100 + j as i64).collect::<Vec<_>>(),
                "stride={stride}"
            );
        }
    }

    #[test]
    fn rand_compacts_whp() {
        let occ: Vec<(usize, i64)> = (0..6).map(|i| (i * 31 + 5, i as i64 + 1)).collect();
        let (mut m, mut shm, a) = setup(500, &occ);
        let c = ragde_compact_rand(&mut m, &mut shm, a, 6, 4).expect("should place all");
        assert_eq!(c.count, 6);
        assert_eq!(payloads(&shm, &c), vec![1, 2, 3, 4, 5, 6]);
        assert!(c.modulus.is_none());
        // O(1) steps: count + 3 per round + final OR
        assert_eq!(m.metrics.steps, 1 + 3 * 4 + 1);
    }

    #[test]
    fn rand_detects_overflow() {
        let occ: Vec<(usize, i64)> = (0..9).map(|i| (i, 1)).collect();
        let (mut m, mut shm, a) = setup(50, &occ);
        assert!(ragde_compact_rand(&mut m, &mut shm, a, 4, 4).is_none());
    }

    #[test]
    fn rand_many_seeds_never_lose_payloads() {
        for seed in 0..20u64 {
            let mut shm = Shm::new();
            let a = shm.alloc("src", 300, EMPTY);
            let mut rng = ipch_pram::rng::SplitMix64::new(seed);
            let mut expect = Vec::new();
            for _ in 0..10 {
                let i = rng.next_below(300) as usize;
                if shm.get(a, i) == EMPTY {
                    shm.host_set(a, i, 1000 + i as i64);
                    expect.push(1000 + i as i64);
                }
            }
            expect.sort_unstable();
            let mut m = Machine::new(seed);
            match ragde_compact_rand(&mut m, &mut shm, a, 10, 5) {
                Some(c) => assert_eq!(payloads(&shm, &c), expect, "seed={seed}"),
                None => panic!("seed={seed}: placement failed with huge area"),
            }
        }
    }

    #[test]
    fn leftmost_on_compacted_area_is_constant_time() {
        // integration with the pram primitive used by random vote
        let (mut m, mut shm, a) = setup(100, &[(40, 7), (80, 8)]);
        let c = ragde_compact_det(&mut m, &mut shm, a, 2).unwrap();
        let bits = c.dst;
        let idx = primitives::leftmost_nonzero(&mut m, &mut shm, bits);
        // EMPTY = -1 is nonzero; ensure we found *some* occupied slot, using
        // a materialized 0/1 view instead
        let n = shm.len(bits);
        let view = shm.alloc("view", n, 0);
        m.step(&mut shm, 0..n, |ctx| {
            let i = ctx.pid;
            if ctx.read(bits, i) != EMPTY {
                ctx.write(view, i, 1);
            }
        });
        let idx2 = primitives::leftmost_nonzero(&mut m, &mut shm, view);
        assert!(idx.is_some() && idx2.is_some());
        let v = shm.get(bits, idx2.unwrap());
        assert!(v == 7 || v == 8);
    }
}
