//! Failure sweeping (paper §2.3).
//!
//! *A technique for improving the confidence bounds of an iterative or
//! recursive randomized algorithm.* Run a randomized solver for its time
//! budget on n/m subproblems of size m; the expected number of failures is
//! (n/m)·p(m) ≤ 1. Compact the failed subproblem ids into a small area
//! with Ragde's algorithm, then assign each failure a super-linear block of
//! processors and re-solve it with a deterministic brute-force method.
//!
//! [`failure_sweep`] is the generic combinator: the caller supplies
//!
//! * `attempt(child_machine, shm, j) -> bool` — run subproblem `j` within
//!   its budget, reporting success; all `attempt`s are accounted as running
//!   in parallel (time = max, work = sum, via
//!   [`ipch_pram::Metrics::absorb_parallel`]);
//! * `brute(child_machine, shm, j)` — the super-linear-processor oracle,
//!   guaranteed to succeed; likewise accounted in parallel across failures.
//!
//! The combinator itself contributes the failure-marking step and the
//! Ragde compaction, exactly as in the paper. If more than `bound`
//! subproblems fail, the compaction *detects* it and the combinator falls
//! back to brute-forcing every failure anyway (reporting
//! `compaction_overflow = true`); the paper's analysis makes this an
//! exponentially unlikely event (Lemma 2.5's 1 − 2^{−n^{1/16}}), which the
//! T9 experiment measures.

use ipch_pram::{Machine, Metrics, Shm, EMPTY};

use crate::ragde::ragde_compact_det;

/// Report of one failure-sweeping pass.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Number of subproblems attempted.
    pub total: usize,
    /// Ids of subproblems whose randomized attempt failed.
    pub failures: Vec<usize>,
    /// Whether the number of failures exceeded `bound` (compaction would
    /// have overflowed — the exponentially-rare event).
    pub compaction_overflow: bool,
    /// Number of failures re-solved by the brute-force oracle.
    pub swept: usize,
}

/// Run `attempt` on every subproblem, then sweep the failures (see module
/// docs). `bound` is the compaction capacity (the paper uses n^{1/16}
/// failures compacted into an n^{1/4} area).
pub fn failure_sweep<A, B>(
    m: &mut Machine,
    shm: &mut Shm,
    n_sub: usize,
    bound: usize,
    mut attempt: A,
    mut brute: B,
) -> SweepReport
where
    A: FnMut(&mut Machine, &mut Shm, usize) -> bool,
    B: FnMut(&mut Machine, &mut Shm, usize),
{
    // Phase 1: all subproblems attempt in parallel.
    let mut children: Vec<Metrics> = Vec::with_capacity(n_sub);
    let mut failed: Vec<usize> = Vec::new();
    for j in 0..n_sub {
        let mut child = m.child(j as u64 ^ 0x5eed);
        if !attempt(&mut child, shm, j) {
            failed.push(j);
        }
        children.push(child.metrics);
    }
    m.metrics.absorb_parallel(&children);

    // Phase 2: each failed subproblem's representative processor marks its
    // id (one step over the subproblem ids).
    let flags = shm.alloc("sweep.flags", n_sub.max(1), EMPTY);
    let failed_for_step = failed.clone();
    m.step(shm, 0..n_sub, move |ctx| {
        let j = ctx.pid;
        if failed_for_step.binary_search(&j).is_ok() {
            ctx.write(flags, j, j as i64);
        }
    });

    // Phase 3: Ragde-compact the failure ids.
    let compaction = ragde_compact_det(m, shm, flags, bound);
    let compaction_overflow = compaction.is_none();

    // Phase 4: brute-force each failure with its super-linear processor
    // block, in parallel across failures.
    let sweep_list: Vec<usize> = match &compaction {
        Some(c) => shm
            .slice(c.dst)
            .iter()
            .copied()
            .filter(|&x| x != EMPTY)
            .map(|x| x as usize)
            .collect(),
        // overflow: the paper's guarantee was missed; resolve everything
        // anyway so the algorithm stays correct, and report the event.
        None => failed.clone(),
    };
    let mut brute_children: Vec<Metrics> = Vec::with_capacity(sweep_list.len());
    for &j in &sweep_list {
        let mut child = m.child(j as u64 ^ 0xb007);
        brute(&mut child, shm, j);
        brute_children.push(child.metrics);
    }
    m.metrics.absorb_parallel(&brute_children);

    SweepReport {
        total: n_sub,
        failures: failed,
        compaction_overflow,
        swept: sweep_list.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_failures_no_sweep() {
        let mut m = Machine::new(1);
        let mut shm = Shm::new();
        let r = failure_sweep(
            &mut m,
            &mut shm,
            20,
            4,
            |_, _, _| true,
            |_, _, _| panic!("no brute expected"),
        );
        assert!(r.failures.is_empty());
        assert_eq!(r.swept, 0);
        assert!(!r.compaction_overflow);
    }

    #[test]
    fn failures_are_swept_exactly_once() {
        let mut m = Machine::new(2);
        let mut shm = Shm::new();
        let mut brute_calls: Vec<usize> = Vec::new();
        let r = failure_sweep(
            &mut m,
            &mut shm,
            50,
            4,
            |_, _, j| j % 17 != 0, // 0, 17, 34 fail
            |_, _, j| brute_calls.push(j),
        );
        assert_eq!(r.failures, vec![0, 17, 34]);
        brute_calls.sort_unstable();
        assert_eq!(brute_calls, vec![0, 17, 34]);
        assert!(!r.compaction_overflow);
    }

    #[test]
    fn overflow_detected_and_still_resolved() {
        let mut m = Machine::new(3);
        let mut shm = Shm::new();
        let mut brute_calls = 0usize;
        let r = failure_sweep(
            &mut m,
            &mut shm,
            30,
            2,                    // capacity 2, but 10 failures
            |_, _, j| j % 3 != 0, // 10 failures
            |_, _, _| brute_calls += 1,
        );
        assert!(r.compaction_overflow);
        assert_eq!(r.failures.len(), 10);
        assert_eq!(brute_calls, 10);
        assert_eq!(r.swept, 10);
    }

    /// The overflow path, end to end through the *real* machinery rather
    /// than a counting stub: an installed fault plan (forced-false coin
    /// flips) starves the §3.1 random-sample procedure inside every
    /// attempt, the resulting mass failure exceeds the paper-style
    /// compaction capacity, and [`ragde_compact_det`] — not a mock —
    /// detects the overflow. The combinator must report the event and
    /// still brute-force every failure exactly once.
    #[test]
    fn injected_mass_failure_overflows_real_compaction_and_sweeps() {
        use crate::sample::random_sample;
        use ipch_pram::{FaultPlan, RngBias};

        let mut m = Machine::new(9);
        m.install_faults(FaultPlan {
            // every per-processor coin comes up false: no sampler ever
            // throws a dart, so placed = 0 < k/2 and each attempt fails
            rng_bias: Some(RngBias {
                rate: 1.0,
                force: false,
            }),
            ..FaultPlan::default()
        });
        let mut shm = Shm::new();
        let n_sub = 24;
        let k = 8;
        let active: Vec<usize> = (0..64).collect();
        let mut solved: Vec<usize> = Vec::new();
        let r = failure_sweep(
            &mut m,
            &mut shm,
            n_sub,
            4, // capacity far under the injected failure mass
            |child, shm, _j| {
                shm.scope(|shm| {
                    let out = random_sample(child, shm, &active, 64, k, 3);
                    out.size_in_bounds(k)
                })
            },
            |_, _, j| solved.push(j),
        );
        assert_eq!(r.failures.len(), n_sub, "bias must starve every attempt");
        assert!(
            r.compaction_overflow,
            "real Ragde compaction must detect more than `bound` failures"
        );
        assert_eq!(r.swept, n_sub);
        solved.sort_unstable();
        assert_eq!(solved, (0..n_sub).collect::<Vec<_>>());
        // the parent's metrics saw the injected bias from inside the children
        assert!(m.metrics.faults.biased_streams > 0);
    }

    #[test]
    fn parallel_time_accounting() {
        // 8 attempts, each costing 5 child steps: parallel time adds 5, not 40.
        let mut m = Machine::new(4);
        let mut shm = Shm::new();
        let probe = shm.alloc("probe", 8, 0);
        let r = failure_sweep(
            &mut m,
            &mut shm,
            8,
            2,
            |child, shm, j| {
                for _ in 0..5 {
                    child.step(shm, j..j + 1, |ctx| {
                        let i = ctx.pid;
                        let v = ctx.read(probe, i);
                        ctx.write(probe, i, v + 1);
                    });
                }
                true
            },
            |_, _, _| {},
        );
        assert!(r.failures.is_empty());
        // 5 (parallel attempts) + 1 (mark) + ragde's executed 2 + brute 0
        assert_eq!(m.metrics.steps, 5 + 1 + 2);
        // work: 8 subproblems × 5 steps × 1 proc + mark 8 + ragde 2×8
        assert_eq!(m.metrics.work, 40 + 8 + 16);
        assert_eq!(shm.slice(probe), &[5i64; 8] as &[i64]);
    }

    #[test]
    fn zero_subproblems() {
        let mut m = Machine::new(5);
        let mut shm = Shm::new();
        let r = failure_sweep(&mut m, &mut shm, 0, 2, |_, _, _| true, |_, _, _| {});
        assert_eq!(r.total, 0);
        assert!(!r.compaction_overflow);
    }
}
