//! # ipch-inplace — the paper's Section 3 in-place techniques
//!
//! "In-place" in Ghouse–Goodrich means: procedures *defined on a subset of
//! elements of the input* that work *without re-ordering the input*, using
//! o(n) workspace. A virtual processor stands by each element; subproblems
//! are divided logically rather than by physically compacting arrays. This
//! crate implements the four basic techniques of §3 plus the
//! failure-sweeping combinator of §2.3:
//!
//! * [`ragde`] — approximate compaction (Lemma 2.1): k ≤ bound occupied
//!   cells of an array compressed into an area of size ~bound⁴ in O(1)
//!   steps. Deterministic (mod-prime hashing) and randomized (dart-throwing)
//!   variants.
//! * [`compact`] — *in-place* approximate compaction (Lemma 3.2): the
//!   iterative group-refinement scheme with workspace m^(4ε+δ) and ≤ 1/δ
//!   rounds.
//! * [`sample`] — the random-sample procedure (§3.1, Lemma 3.1): Θ(k)
//!   uniform sample into a 16k workspace by dart-throwing with CRCW
//!   collision detection, ≤ d retry rounds.
//! * [`vote`] — the random-vote procedure (Corollary 3.1): one uniformly
//!   random element via a sample + leftmost-non-zero.
//! * [`sweep`] — failure sweeping (§2.3): run a randomized solver for its
//!   budget on every subproblem, compact the (rare) failures with Ragde's
//!   algorithm, and re-solve each failure with super-linear processors via
//!   a brute-force oracle.

pub mod compact;
pub mod ragde;
pub mod sample;
pub mod supervised;
pub mod sweep;
pub mod vote;

/// All in-place-technique plans for the static checker
/// ([`ipch_pram::verify`]), in the crate's canonical order.
///
/// Four of the five are expected to yield `NeedsDynamic`: their
/// exclusivity rests on number-theoretic (mod-prime) or randomized
/// (dart-throwing) arguments outside the symbolic index language, and the
/// plans say so rather than overclaim.
pub fn verify_plans() -> Vec<ipch_pram::verify::AlgorithmPlan> {
    vec![
        ragde::det_verify_plan(),
        ragde::rand_verify_plan(),
        compact::verify_plan(),
        sample::verify_plan(),
        vote::verify_plan(),
    ]
}

#[cfg(test)]
mod verify_tests {
    use ipch_pram::verify::{verify_all, Verdict, VerifyConfig};

    #[test]
    fn inplace_plans_verify_with_honest_fallback() {
        // n = 0 runs zero processors everywhere: every plan is trivially
        // static-verified, so the sweep starts at 1.
        for n in [1usize, 2, 64, 4096] {
            let reports = verify_all(&super::verify_plans(), n, &VerifyConfig::default()).unwrap();
            assert_eq!(reports.len(), 5);
            for r in &reports {
                let expect = if r.algorithm == "inplace/vote" {
                    Verdict::VerifiedStatic
                } else {
                    Verdict::NeedsDynamic
                };
                assert_eq!(r.verdict, expect, "{} at n={n}", r.algorithm);
            }
        }
    }

    #[test]
    fn needs_dynamic_reports_carry_reasons() {
        let reports = verify_all(&super::verify_plans(), 256, &VerifyConfig::default()).unwrap();
        for r in reports
            .iter()
            .filter(|r| r.verdict == Verdict::NeedsDynamic)
        {
            assert!(
                !r.dynamic_reasons.is_empty(),
                "{} lacks fallback reasons",
                r.algorithm
            );
        }
    }
}
