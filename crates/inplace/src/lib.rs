//! # ipch-inplace — the paper's Section 3 in-place techniques
//!
//! "In-place" in Ghouse–Goodrich means: procedures *defined on a subset of
//! elements of the input* that work *without re-ordering the input*, using
//! o(n) workspace. A virtual processor stands by each element; subproblems
//! are divided logically rather than by physically compacting arrays. This
//! crate implements the four basic techniques of §3 plus the
//! failure-sweeping combinator of §2.3:
//!
//! * [`ragde`] — approximate compaction (Lemma 2.1): k ≤ bound occupied
//!   cells of an array compressed into an area of size ~bound⁴ in O(1)
//!   steps. Deterministic (mod-prime hashing) and randomized (dart-throwing)
//!   variants.
//! * [`compact`] — *in-place* approximate compaction (Lemma 3.2): the
//!   iterative group-refinement scheme with workspace m^(4ε+δ) and ≤ 1/δ
//!   rounds.
//! * [`sample`] — the random-sample procedure (§3.1, Lemma 3.1): Θ(k)
//!   uniform sample into a 16k workspace by dart-throwing with CRCW
//!   collision detection, ≤ d retry rounds.
//! * [`vote`] — the random-vote procedure (Corollary 3.1): one uniformly
//!   random element via a sample + leftmost-non-zero.
//! * [`sweep`] — failure sweeping (§2.3): run a randomized solver for its
//!   budget on every subproblem, compact the (rare) failures with Ragde's
//!   algorithm, and re-solve each failure with super-linear processors via
//!   a brute-force oracle.

pub mod compact;
pub mod ragde;
pub mod sample;
pub mod supervised;
pub mod sweep;
pub mod vote;
