//! The random-vote procedure (paper Corollary 3.1).
//!
//! *An in-place random vote, choosing one out of n elements in an array,
//! can be performed in constant time with n processors on a randomized
//! CRCW PRAM, using Θ(k) work space, where it is uniformly random with
//! probability ≥ 1 − 2(e/2)^{−k}.*
//!
//! Per the paper: take a random sample, then pick any one element of it by
//! a method that does not favour any point — "as the location written to
//! is uniformly random, the first location in the work space that has been
//! written to could have been written by any point with equal probability,
//! and can be found in constant time" (Observation 2.1). We do exactly
//! that: [`crate::sample::random_sample`] followed by the Eppstein–Galil
//! leftmost-non-zero primitive.

use ipch_pram::{primitives, Machine, ModelClass, ModelContract, RaceExpectation, Shm, EMPTY};

use crate::sample::random_sample;

/// Concurrency contract: inherits the sample procedure's Priority claim
/// contest; the leftmost-one election is Combine(min) — all deterministic.
pub const VOTE_CONTRACT: ModelContract = ModelContract {
    algorithm: "inplace/vote",
    class: ModelClass::Crcw,
    races: RaceExpectation::Deterministic,
};

/// Symbolic step structure of [`random_vote`] for the static checker
/// ([`ipch_pram::verify`]): the 0/1 view scatter is one-to-one, the
/// block-OR writes agree (mark 1), and the knockout leaves exactly one
/// announcing winner (the effective access set of the final step is a
/// single processor). The sampling itself carries its own contract and
/// plan ([`crate::sample::verify_plan`]).
pub fn verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    use ipch_pram::WritePolicy;
    let mut p = AlgorithmPlan::new(VOTE_CONTRACT);
    let view = p.array("vote.view", Affine::n());
    let flagged = p.array("lmz.flagged", Affine::n());
    let loser = p.array("lmz.loser", Affine::n());
    let winner = p.array("lmz.winner", Affine::k(1));
    p.step(
        StepPlan::new("slot-view", Affine::n(), WritePolicy::Arbitrary)
            .write_uniform(view, IndexSet::Exact(Affine::pid())),
    );
    // pid/b for the run-time block size b: bounded by the flag array
    p.step(
        StepPlan::new("block-or", Affine::n(), WritePolicy::Arbitrary)
            .read(view, IndexSet::Exact(Affine::pid()))
            .write_uniform(
                flagged,
                IndexSet::Within {
                    lo: Affine::k(0),
                    hi: Affine::n().plus(-1),
                },
            ),
    );
    p.step(
        StepPlan::new("block-knockout", Affine::n2(), WritePolicy::Arbitrary).write_uniform(
            loser,
            IndexSet::Within {
                lo: Affine::k(0),
                hi: Affine::n().plus(-1),
            },
        ),
    );
    // the knockout's unique survivor announces itself: one effective writer
    p.step(
        StepPlan::new("winner-announce", Affine::k(1), WritePolicy::Arbitrary)
            .write(winner, IndexSet::Exact(Affine::k(0))),
    );
    p
}

/// Choose one element of `active` uniformly at random, in place.
///
/// Returns `None` when the (constant-time) procedure produced an empty
/// sample — an event of probability ≤ 2(e/2)^{−k} that callers treat as a
/// failure to retry or sweep.
pub fn random_vote(
    m: &mut Machine,
    shm: &mut Shm,
    active: &[usize],
    universe: usize,
    k: usize,
    attempts: usize,
) -> Option<usize> {
    m.declare_contract(&VOTE_CONTRACT);
    if active.is_empty() {
        return None;
    }
    let out = random_sample(m, shm, active, universe, k, attempts);
    if out.sample.is_empty() {
        return None;
    }
    // 0/1 view of the claimed slots, then leftmost-one (both O(1) steps).
    let ws = out.workspace;
    let n = shm.len(ws);
    shm.scope(|shm| {
        let view = shm.alloc("vote.view", n, 0);
        m.kernel_scatter(shm, 0..n, |t, i| {
            if t.read(ws, i) != EMPTY {
                Some((view, i, 1))
            } else {
                None
            }
        });
        let slot = primitives::leftmost_nonzero(m, shm, view)?;
        Some(shm.get(ws, slot) as usize)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vote_returns_active_element() {
        let m = Machine::new(1);
        let mut shm = Shm::new();
        let active: Vec<usize> = (0..1000).filter(|i| i % 3 == 0).collect();
        for tag in 0..20 {
            let mut child = m.child(tag);
            let v = random_vote(&mut child, &mut shm, &active, 1000, 8, 4).unwrap();
            assert_eq!(v % 3, 0);
        }
    }

    #[test]
    fn vote_single_element() {
        let mut m = Machine::new(2);
        let mut shm = Shm::new();
        assert_eq!(random_vote(&mut m, &mut shm, &[42], 100, 4, 4), Some(42));
    }

    #[test]
    fn vote_empty_set() {
        let mut m = Machine::new(3);
        let mut shm = Shm::new();
        assert_eq!(random_vote(&mut m, &mut shm, &[], 10, 4, 4), None);
    }

    #[test]
    fn vote_constant_time() {
        let steps_for = |mcount: usize| {
            let mut m = Machine::new(4);
            let mut shm = Shm::new();
            let active: Vec<usize> = (0..mcount).collect();
            random_vote(&mut m, &mut shm, &active, mcount, 8, 4).unwrap();
            m.metrics.steps
        };
        assert_eq!(steps_for(500), steps_for(50_000));
    }

    #[test]
    fn vote_roughly_uniform() {
        let mcount = 50;
        let trials = 3000;
        let mut counts = vec![0u64; mcount];
        let active: Vec<usize> = (0..mcount).collect();
        for seed in 0..trials {
            let mut m = Machine::new(seed as u64 + 7);
            let mut shm = Shm::new();
            if let Some(v) = random_vote(&mut m, &mut shm, &active, mcount, 8, 4) {
                counts[v] += 1;
            }
        }
        let total: u64 = counts.iter().sum();
        assert!(total as usize >= trials * 9 / 10, "too many vote failures");
        let expect = total as f64 / mcount as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        // 49 dof; 99.9% critical ≈ 85. Generous slack.
        assert!(chi2 < 110.0, "chi2 = {chi2}");
    }
}
