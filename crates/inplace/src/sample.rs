//! The random-sample procedure (paper §3.1, Lemma 3.1).
//!
//! *An in-place random sample of size Θ(k), from an array of size n, can be
//! found in constant time with n processors on a randomized CRCW PRAM,
//! using work space of size Θ(k). It is uniformly random with probability
//! ≥ 1 − 2(e/2)^{−k}.*
//!
//! Procedure (verbatim from the paper, executed step-for-step on the
//! simulator):
//!
//! 1. Each processor decides whether it will attempt a write, with
//!    probability 2k/m.
//! 2. Each attempter chooses a random location in the 16k workspace and
//!    attempts to write its id there if it is unoccupied.
//! 3. Every successful writer checks whether any other processor attempted
//!    the same location — the unsuccessful ones re-attempt their write,
//!    poisoning the cell.
//! 4. Writers whose location suffered no collision claim it (the paper has
//!    them write their point's coordinates; we write the element id — the
//!    coordinates stay in the read-only input, which is the in-place
//!    discipline). Collided attempters repeat steps 2–4, up to `d` rounds.
//!
//! The procedure never re-orders the input and the sample lives entirely
//! in the Θ(k) workspace.

use ipch_pram::{
    ArrayId, Machine, ModelClass, ModelContract, RaceExpectation, Shm, WritePolicy, EMPTY,
};

/// Poison marker for a contested workspace cell (any non-`EMPTY` constant:
/// step 4 only tests occupancy, and a constant keeps the concurrent poison
/// writes a benign same-value race).
const POISON: i64 = 1;

/// Concurrency contract: Arbitrary-CRCW in the paper; the claim contest
/// resolves by Priority (any winner is valid — contested cells get
/// poisoned), so every race is a deterministic function of the coin flips.
pub const SAMPLE_CONTRACT: ModelContract = ModelContract {
    algorithm: "inplace/sample",
    class: ModelClass::Crcw,
    races: RaceExpectation::Deterministic,
};

/// Outcome of one run of the random-sample procedure.
#[derive(Clone, Debug)]
pub struct SampleOutcome {
    /// The sampled element ids (order = workspace slot order).
    pub sample: Vec<usize>,
    /// Workspace array of size 16k: claimed slots hold element ids.
    pub workspace: ArrayId,
    /// How many processors decided to attempt (step 1).
    pub attempted: usize,
    /// How many attempters were placed (= `sample.len()`).
    pub placed: usize,
}

impl SampleOutcome {
    /// Lemma 3.1's size guarantee: `k/2 ≤ |sample| ≤ 4k`.
    pub fn size_in_bounds(&self, k: usize) -> bool {
        2 * self.sample.len() >= k && self.sample.len() <= 4 * k
    }
}

/// Run the random-sample procedure over the elements in `active` (element
/// ids double as processor ids; `universe` bounds them, i.e. the input
/// array length). Targets a sample of size Θ(k) in a 16k workspace with at
/// most `attempts` retry rounds, using the paper's default attempt
/// probability 2k/m.
///
/// # Examples
///
/// ```
/// use ipch_inplace::sample::random_sample;
/// use ipch_pram::{Machine, Shm};
///
/// let mut m = Machine::new(3);
/// let mut shm = Shm::new();
/// let active: Vec<usize> = (0..500).filter(|i| i % 5 == 0).collect();
/// let out = random_sample(&mut m, &mut shm, &active, 500, 8, 4);
/// assert!(out.size_in_bounds(8));                 // k/2 ≤ |S| ≤ 4k
/// assert!(out.sample.iter().all(|e| e % 5 == 0)); // subset of `active`
/// ```
pub fn random_sample(
    m: &mut Machine,
    shm: &mut Shm,
    active: &[usize],
    universe: usize,
    k: usize,
    attempts: usize,
) -> SampleOutcome {
    random_sample_with_p(m, shm, active, universe, k, attempts, None)
}

/// [`random_sample`] with an explicit attempt probability, as required by
/// the survivor schedule of the in-place bridge-finding procedure (§3.3
/// step 3: `p_j = min{1, 2k·p_{j−1}}`, independent of the current survivor
/// count). `None` uses the default 2k/m.
/// Symbolic step structure of [`random_sample`] for the static checker
/// ([`ipch_pram::verify`]). The dart targets are coin-chosen workspace
/// slots and the claim step writes only where the thrower won the
/// Priority contest — outside the symbolic index language — so the plan
/// declares those accesses opaque and the verdict is honestly
/// `NeedsDynamic`: the collision-protocol exclusivity is confirmed by the
/// dynamic analyzer.
pub fn verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    let mut p = AlgorithmPlan::new(SAMPLE_CONTRACT);
    let claim = p.array("sample.claim", Affine::n());
    let attempt = p.array("sample.attempt", Affine::n());
    let placed = p.array("sample.placed", Affine::n());
    let try_slot = p.array("sample.try", Affine::n());
    let first = p.array("sample.first", Affine::n());
    let second = p.array("sample.second", Affine::n());
    p.step(
        StepPlan::new("coin-flip", Affine::n(), WritePolicy::Arbitrary)
            .write_uniform(attempt, IndexSet::Exact(Affine::pid())),
    );
    p.step(
        StepPlan::new("slot-pick", Affine::n(), WritePolicy::Arbitrary)
            .read(attempt, IndexSet::Exact(Affine::pid()))
            .read(placed, IndexSet::Exact(Affine::pid()))
            .write(try_slot, IndexSet::Exact(Affine::pid())),
    );
    p.step(
        StepPlan::new("claim-contest", Affine::n(), WritePolicy::PriorityMin)
            .read(try_slot, IndexSet::Exact(Affine::pid()))
            .write(first, IndexSet::Opaque),
    );
    // losers poison contested cells with a constant — per-cell uniform
    p.step(
        StepPlan::new("poison", Affine::n(), WritePolicy::Arbitrary)
            .read(try_slot, IndexSet::Exact(Affine::pid()))
            .write_uniform(second, IndexSet::Opaque),
    );
    p.step(
        StepPlan::new("winner-claim", Affine::n(), WritePolicy::Arbitrary)
            .read(try_slot, IndexSet::Exact(Affine::pid()))
            .write(claim, IndexSet::Opaque)
            .write(placed, IndexSet::Exact(Affine::pid())),
    );
    p
}

pub fn random_sample_with_p(
    m: &mut Machine,
    shm: &mut Shm,
    active: &[usize],
    universe: usize,
    k: usize,
    attempts: usize,
    p_override: Option<f64>,
) -> SampleOutcome {
    m.declare_contract(&SAMPLE_CONTRACT);
    assert!(k >= 1);
    let mcount = active.len();
    let ws_len = 16 * k;
    let workspace = shm.alloc("sample.claim", ws_len, EMPTY);
    if mcount == 0 {
        return SampleOutcome {
            sample: vec![],
            workspace,
            attempted: 0,
            placed: 0,
        };
    }
    let p_attempt = p_override
        .unwrap_or(2.0 * k as f64 / mcount as f64)
        .min(1.0);

    // Private registers, indexed by element id — scoped so iterated
    // samples (votes, bridge rounds) recycle the same slots. The claimed
    // workspace itself is the caller's and stays unscoped.
    let attempted = shm.scope(|shm| {
        let attempt = shm.alloc("sample.attempt", universe, 0);
        let placed = shm.alloc("sample.placed", universe, 0);
        let try_slot = shm.alloc("sample.try", universe, EMPTY);

        // Step 1: coin flips (per-processor RNG — stays a generic step).
        m.step(shm, active, |ctx| {
            let pid = ctx.pid;
            if ctx.rng().bernoulli(p_attempt) {
                ctx.write(attempt, pid, 1);
            }
        });
        let attempted = shm.slice(attempt).iter().filter(|&&x| x != 0).count();

        for _round in 0..attempts {
            // this round's collision-protocol cells, recycled across rounds
            shm.scope(|shm| {
                let first = shm.alloc("sample.first", ws_len, EMPTY);
                let second = shm.alloc("sample.second", ws_len, EMPTY);

                // Step 2a: pick a slot (per-processor RNG — generic step).
                m.step(shm, active, |ctx| {
                    let pid = ctx.pid;
                    if ctx.read(attempt, pid) != 0 && ctx.read(placed, pid) == 0 {
                        let s = ctx.rng().next_below(ws_len as u64) as i64;
                        ctx.write(try_slot, pid, s);
                    }
                });
                // Step 2b: attempt the write if the slot is unoccupied.
                //
                // The paper runs this on an Arbitrary-CRCW machine; any
                // winner is correct, because a contested `first` cell is
                // poisoned in step 3 and claimed by nobody. We resolve the
                // contest by Priority instead: the committed memory is then
                // a deterministic function of the coin flips, not of the
                // simulator's tiebreak seed (the analyzer classifies the
                // race Deterministic rather than SeedDependent, and report
                // equality across execution modes is exact).
                m.kernel_scatter_with_policy(shm, active, WritePolicy::PriorityMin, |t, pid| {
                    if t.read(attempt, pid) != 0 && t.read(placed, pid) == 0 {
                        let s = t.read(try_slot, pid) as usize;
                        if t.read(workspace, s) == EMPTY {
                            return Some((first, s, pid as i64));
                        }
                    }
                    None
                });
                // Step 3: losers re-attempt, poisoning the cell. The poison
                // value is a constant — every poisoner writes the same
                // thing (a benign race), and step 4 only tests occupancy.
                m.kernel_scatter(shm, active, |t, pid| {
                    if t.read(attempt, pid) != 0 && t.read(placed, pid) == 0 {
                        let s = t.read(try_slot, pid) as usize;
                        if t.read(workspace, s) == EMPTY && t.read(first, s) != pid as i64 {
                            return Some((second, s, POISON));
                        }
                    }
                    None
                });
                // Step 4: collision-free winners claim their slot (writes two
                // arrays per processor — not a kernel shape, stays generic).
                m.step(shm, active, |ctx| {
                    let pid = ctx.pid;
                    if ctx.read(attempt, pid) != 0 && ctx.read(placed, pid) == 0 {
                        let s = ctx.read(try_slot, pid) as usize;
                        if ctx.read(first, s) == pid as i64 && ctx.read(second, s) == EMPTY {
                            ctx.write(workspace, s, pid as i64);
                            ctx.write(placed, pid, 1);
                        }
                    }
                });
            });
        }
        attempted
    });

    let sample: Vec<usize> = shm
        .slice(workspace)
        .iter()
        .filter(|&&x| x != EMPTY)
        .map(|&x| x as usize)
        .collect();
    let placed_count = sample.len();
    SampleOutcome {
        sample,
        workspace,
        attempted,
        placed: placed_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mcount: usize, k: usize, seed: u64) -> (SampleOutcome, Machine) {
        let mut m = Machine::new(seed);
        let mut shm = Shm::new();
        let active: Vec<usize> = (0..mcount).collect();
        let out = random_sample(&mut m, &mut shm, &active, mcount, k, 4);
        (out, m)
    }

    #[test]
    fn sample_size_theta_k() {
        for seed in 0..10 {
            let (out, _) = run(10_000, 32, seed);
            assert!(
                out.size_in_bounds(32),
                "seed {seed}: size {}",
                out.sample.len()
            );
        }
    }

    #[test]
    fn sample_elements_valid_and_distinct() {
        let (out, _) = run(5_000, 16, 3);
        let mut seen = std::collections::HashSet::new();
        for &e in &out.sample {
            assert!(e < 5_000);
            assert!(seen.insert(e), "element sampled twice");
        }
    }

    #[test]
    fn constant_time() {
        let (_, m1) = run(1_000, 8, 1);
        let (_, m2) = run(100_000, 8, 1);
        assert_eq!(
            m1.metrics.steps, m2.metrics.steps,
            "steps must not depend on m"
        );
        assert_eq!(m1.metrics.steps, 1 + 4 * 4);
    }

    #[test]
    fn scattered_active_set() {
        let mut m = Machine::new(9);
        let mut shm = Shm::new();
        let active: Vec<usize> = (0..20_000).filter(|i| i % 7 == 3).collect();
        let out = random_sample(&mut m, &mut shm, &active, 20_000, 16, 4);
        for &e in &out.sample {
            assert_eq!(e % 7, 3, "sampled element not in the active subset");
        }
        assert!(out.size_in_bounds(16));
    }

    #[test]
    fn tiny_populations() {
        // m < k: everyone attempts (p = 1) and can be placed
        let (out, _) = run(3, 8, 5);
        assert_eq!(out.attempted, 3);
        assert_eq!(out.sample.len(), 3);
        let (out1, _) = run(1, 1, 6);
        assert_eq!(out1.sample, vec![0]);
        let (out0, _) = run(0, 4, 7);
        assert!(out0.sample.is_empty());
    }

    #[test]
    fn uniformity_chi_squared() {
        // Each element should be equally likely to appear in the sample.
        let mcount = 200;
        let k = 10;
        let trials = 2000;
        let mut counts = vec![0u64; mcount];
        for seed in 0..trials {
            let (out, _) = run(mcount, k, seed as u64 + 1000);
            for &e in &out.sample {
                counts[e] += 1;
            }
        }
        let total: u64 = counts.iter().sum();
        let expect = total as f64 / mcount as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        // 199 dof; 99.9% critical ≈ 272. Allow generous slack.
        assert!(chi2 < 320.0, "chi2 = {chi2}, expect/elem = {expect}");
    }

    /// Regression for the claim-step fix: the step-2b contest runs under
    /// Priority, so the analyzer must see contested cells as Deterministic
    /// races (never SeedDependent) and the declared contract must hold.
    #[test]
    fn analyzer_pins_priority_claim() {
        use ipch_pram::AnalyzeConfig;
        let mut contested = 0;
        for seed in 0..8 {
            let mut m = Machine::new(seed);
            m.enable_analysis(AnalyzeConfig::default());
            let mut shm = Shm::new();
            shm.enable_shadow(true);
            let active: Vec<usize> = (0..10_000).collect();
            random_sample(&mut m, &mut shm, &active, 10_000, 32, 4);
            let r = m.analysis_report().unwrap();
            assert_eq!(r.contract.unwrap().algorithm, "inplace/sample");
            assert!(r.is_clean(), "seed {seed}:\n{}", r.render());
            assert_eq!(r.seed_dependent_races, 0, "seed {seed}");
            assert_eq!(r.unconfirmed_arbitrary_races, 0, "seed {seed}");
            contested += r.deterministic_races;
        }
        // ~64 attempts into 512 slots: contests are statistically certain.
        assert!(contested > 0, "no claim contest across any seed");
    }

    #[test]
    fn workspace_is_theta_k() {
        let mut m = Machine::new(2);
        let mut shm = Shm::new();
        let active: Vec<usize> = (0..50_000).collect();
        let out = random_sample(&mut m, &mut shm, &active, 50_000, 25, 4);
        assert_eq!(shm.len(out.workspace), 16 * 25);
    }
}
