//! Request and response types of the serving runtime.

use std::time::Duration;

use ipch_geom::{Point2, Point3, UpperHull};
use ipch_hull3d::Facet;
use ipch_pram::{FaultPlan, Outcome};

use crate::breaker::Tier;

/// Which 2-D hull algorithm a request asks for (both are supervised; the
/// breaker tracks them independently).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hull2dAlgo {
    /// §3 output-sensitive algorithm on unsorted input.
    Unsorted,
    /// Deterministic divide-and-conquer merge tree.
    Dac,
}

/// The computation a request asks the service to run.
#[derive(Clone, Debug)]
pub enum Workload {
    /// 2-D upper hull of `points`.
    Hull2d {
        /// Input points (need not be sorted).
        points: Vec<Point2>,
        /// Algorithm choice.
        algo: Hull2dAlgo,
    },
    /// 3-D upper hull of `points`.
    Hull3d {
        /// Input points.
        points: Vec<Point3>,
    },
}

impl Workload {
    /// The breaker key / algorithm name this workload is served by (matches
    /// the supervised wrappers' `RunError::algorithm()` names).
    pub fn algorithm(&self) -> &'static str {
        match self {
            Workload::Hull2d {
                algo: Hull2dAlgo::Unsorted,
                ..
            } => "hull2d/unsorted",
            Workload::Hull2d {
                algo: Hull2dAlgo::Dac,
                ..
            } => "hull2d/dac",
            Workload::Hull3d { .. } => "hull3d/unsorted3d",
        }
    }

    /// Number of input points.
    pub fn len(&self) -> usize {
        match self {
            Workload::Hull2d { points, .. } => points.len(),
            Workload::Hull3d { points } => points.len(),
        }
    }

    /// True when the workload carries no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One request to the service.
#[derive(Clone, Debug)]
pub struct Request {
    /// Tenant identifier (the per-tenant concurrency limit keys on this).
    pub tenant: String,
    /// Machine seed for the run (replayable: same seed + workload + tier →
    /// same simulated execution).
    pub seed: u64,
    /// What to compute.
    pub workload: Workload,
    /// Per-request deadline (falls back to the service default; `None` on
    /// both = no deadline).
    pub deadline: Option<Duration>,
    /// Fault-injection plan installed on the request's machine (chaos
    /// testing; `None` in production traffic).
    pub chaos: Option<FaultPlan>,
}

impl Request {
    /// A plain request with no deadline and no chaos.
    pub fn new(tenant: impl Into<String>, seed: u64, workload: Workload) -> Self {
        Self {
            tenant: tenant.into(),
            seed,
            workload,
            deadline: None,
            chaos: None,
        }
    }
}

/// The certified value a completed request returns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResponseValue {
    /// 2-D upper hull (vertex ids into the request's point array).
    Hull2d(UpperHull),
    /// 3-D upper-hull facets.
    Hull3d(Vec<Facet>),
}

/// A completed request: the certified value plus its provenance.
#[derive(Clone, Debug)]
pub struct Response {
    /// The (certificate-verified) result.
    pub value: ResponseValue,
    /// Degradation tier the request was served at.
    pub tier: Tier,
    /// Supervised outcome (`None` when served at [`Tier::Sequential`],
    /// which runs no supervisor).
    pub outcome: Option<Outcome>,
    /// Attempts the supervisor made (0 at the sequential tier).
    pub attempts: u32,
    /// Simulated PRAM steps the request cost (its machine's metrics are
    /// absorbed into the service aggregate; this is the headline number).
    pub sim_steps: u64,
}
