//! `hulld` — demo traffic driver for the resilient serving runtime.
//!
//! Starts a [`Service`], pushes a mixed batch of requests at it (clean
//! traffic, chaos-injected runs, tight deadlines, malformed inputs, and a
//! few client cancellations), and prints the `/health` snapshot at the
//! end. Usage:
//!
//! ```text
//! hulld [REQUESTS] [WORKERS] [SEED] [--shards S] [--batch-window W] [--batch-max B] [--no-precheck]
//! ```
//!
//! Defaults: 200 requests, 2 workers, seed 0xD1CE. The sharding and
//! batching knobs also read the environment (`IPCH_SHARDS`,
//! `IPCH_BATCH_WINDOW`, `IPCH_BATCH_MAX`); an explicit flag wins over its
//! env var. `--no-precheck` (or `IPCH_PRECHECK=0`) disables the static
//! plan check at admission. Exits non-zero if any request is lost (the
//! resolution invariant fails) — the same guarantee the chaos suite
//! enforces, here as an executable smoke test.

use std::time::Duration;

use ipch_geom::{Point2, Point3};
use ipch_pram::FaultPlan;
use ipch_service::{Hull2dAlgo, Request, Service, ServiceConfig, ServiceError, Workload};

/// SplitMix64 step — the driver's own tiny deterministic stream, so the
/// demo replays identically for a given seed.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn points2(rng: &mut u64, n: usize) -> Vec<Point2> {
    (0..n)
        .map(|_| {
            let x = (mix(rng) >> 11) as f64 / (1u64 << 53) as f64;
            let y = (mix(rng) >> 11) as f64 / (1u64 << 53) as f64;
            Point2 { x, y }
        })
        .collect()
}

fn points3(rng: &mut u64, n: usize) -> Vec<Point3> {
    (0..n)
        .map(|_| {
            let x = (mix(rng) >> 11) as f64 / (1u64 << 53) as f64;
            let y = (mix(rng) >> 11) as f64 / (1u64 << 53) as f64;
            let z = (mix(rng) >> 11) as f64 / (1u64 << 53) as f64;
            Point3 { x, y, z }
        })
        .collect()
}

/// A knob sourced from an env var, overridable by a CLI flag.
fn env_knob(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let defaults = ServiceConfig::default();
    let mut shards = env_knob("IPCH_SHARDS", defaults.shards);
    let mut batch_window = env_knob("IPCH_BATCH_WINDOW", defaults.batch_window);
    let mut batch_max = env_knob("IPCH_BATCH_MAX", defaults.batch_max);
    let mut precheck = env_knob("IPCH_PRECHECK", usize::from(defaults.precheck_plans)) != 0;

    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let flag = |args: &mut dyn Iterator<Item = String>| {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{a} expects a number"))
        };
        match a.as_str() {
            "--shards" => shards = flag(&mut args),
            "--batch-window" => batch_window = flag(&mut args),
            "--batch-max" => batch_max = flag(&mut args),
            "--no-precheck" => precheck = false,
            _ => positional.push(a),
        }
    }
    let mut positional = positional.into_iter();
    let requests: usize = positional
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    let workers: usize = positional.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let seed: u64 = positional
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(0xD1CE);

    let cfg = ServiceConfig {
        workers,
        queue_capacity: 32,
        per_tenant_inflight: 12,
        shards,
        batch_window,
        batch_max,
        precheck_plans: precheck,
        ..ServiceConfig::default()
    };
    println!(
        "hulld: kernel backend {:?} (threshold {}), {} simulator lane(s) \
         [IPCH_KERNEL_BACKEND / IPCH_KERNEL_PAR_THRESHOLD / IPCH_THREADS]",
        cfg.tuning.kernel_backend,
        cfg.tuning.kernel_par_threshold,
        ipch_pram::pool::configured_lanes(),
    );
    println!(
        "hulld: {} queue shard(s), batch window {} / max {} \
         [IPCH_SHARDS / IPCH_BATCH_WINDOW / IPCH_BATCH_MAX]",
        cfg.shards, cfg.batch_window, cfg.batch_max,
    );
    println!(
        "hulld: static plan precheck {} [--no-precheck / IPCH_PRECHECK]",
        if cfg.precheck_plans { "on" } else { "off" },
    );
    let svc = Service::new(cfg);

    let mut rng = seed;
    let tenants = ["alpha", "beta", "gamma"];
    let mut tickets = Vec::new();
    let (mut shed_at_admission, mut completed, mut failed, mut shed_later) =
        (0u64, 0u64, 0u64, 0u64);

    for i in 0..requests {
        let r = mix(&mut rng);
        let n = 16 + (r % 240) as usize;
        let workload = match r % 3 {
            0 => Workload::Hull2d {
                points: points2(&mut rng, n),
                algo: Hull2dAlgo::Unsorted,
            },
            1 => Workload::Hull2d {
                points: points2(&mut rng, n),
                algo: Hull2dAlgo::Dac,
            },
            _ => Workload::Hull3d {
                points: points3(&mut rng, n),
            },
        };
        let mut req = Request::new(tenants[i % tenants.len()], r, workload);
        match r % 10 {
            // A slice of chaos traffic: corrupted commits defeat the
            // certificate and exercise retry, fallback, and the breakers.
            0 | 1 => {
                req.chaos = Some(FaultPlan {
                    corrupt_rate: 0.5,
                    ..FaultPlan::default()
                })
            }
            // Tight deadlines: some expire in queue, some mid-run.
            2 => req.deadline = Some(Duration::from_micros(r % 300)),
            // Malformed input: typed rejection, no steps run.
            3 => {
                if let Workload::Hull2d { points, .. } = &mut req.workload {
                    points[0].y = f64::NAN;
                }
            }
            _ => {}
        }
        let cancel_this = r.is_multiple_of(17);
        match svc.submit(req) {
            Ok(t) => {
                if cancel_this {
                    t.cancel();
                }
                tickets.push(t);
            }
            Err(e) => {
                assert!(matches!(e, ServiceError::Rejected { .. }));
                shed_at_admission += 1;
            }
        }
        // Keep some back-pressure but let the queue breathe.
        if i % 8 == 7 {
            svc.drain();
        }
    }
    svc.drain();

    for t in tickets {
        match t.wait() {
            Ok(_) => completed += 1,
            Err(e) if e.is_shed() => shed_later += 1,
            Err(_) => failed += 1,
        }
    }

    let health = svc.health();
    print!("{}", health.render());
    println!(
        "driver: completed={completed} failed_typed={failed} \
         shed_at_admission={shed_at_admission} shed_in_queue={shed_later}"
    );

    let stats = health.stats;
    if stats.submitted != stats.total_resolved() {
        eprintln!(
            "LOST REQUESTS: submitted={} resolved={}",
            stats.submitted,
            stats.total_resolved()
        );
        std::process::exit(1);
    }
    let m = svc.shutdown();
    println!(
        "aggregate: steps={} work={} attempts={} fallbacks={} cancellations={}",
        m.steps, m.work, m.supervisor.attempts, m.supervisor.fallbacks, m.supervisor.cancellations
    );
}
