//! Per-algorithm circuit breaker with tiered graceful degradation.
//!
//! The PR 4 supervisor already turns individual failures into retries and
//! fallbacks — but each request pays for that resilience *after* launching
//! the expensive randomized attempt. When failures arrive in streaks (a
//! poisoned input distribution, an injected fault plan, a misbehaving
//! tenant), the service should stop paying up front. The breaker watches
//! each algorithm's supervised outcomes and degrades the *whole algorithm*
//! through three tiers:
//!
//! 1. [`Tier::Full`] — supervised parallel run with the configured retry
//!    budget. The normal state.
//! 2. [`Tier::ReducedRetry`] — supervised run with a single attempt
//!    (straight to the deterministic fallback on failure): under a failure
//!    streak, retries are wasted work with correlated causes.
//! 3. [`Tier::Sequential`] — the direct sequential exact algorithm
//!    (monotone chain / gift wrapping), no randomized machinery at all.
//!    Slow in the simulated-cost model but deterministic and dependable.
//!
//! **Strain signal.** A request *strains* the breaker when its supervised
//! outcome was [`Outcome::Retried`]/[`Outcome::FellBack`], when it ended in
//! an algorithm error, or when its handler panicked. Results that say
//! nothing about the algorithm's health are *neutral*: cancellations,
//! deadline expiries, and invalid inputs neither strain nor repair the
//! streak. Clean first-try results reset it.
//!
//! **State machine.** `trip_after` consecutive strained results trip the
//! breaker one tier down (and reset the streak, so the next tier gets a
//! full streak of its own before tripping further). A degraded tier counts
//! the requests it serves; after `probe_after` of them the next planned
//! request becomes a **half-open probe**, dispatched at the tier above. At
//! most one probe is outstanding at a time — everyone else keeps the safe
//! degraded tier while a probe is in flight. A clean probe recovers one
//! tier (recovering into [`Tier::Full`] is counted as a breaker recovery);
//! a strained probe closes the half-open window and the degraded tier
//! starts counting toward the next probe from zero. Neutral probe results
//! simply release the window (the probe said nothing).
//!
//! [`Outcome::Retried`]: ipch_pram::Outcome::Retried
//! [`Outcome::FellBack`]: ipch_pram::Outcome::FellBack

use ipch_pram::ServiceStats;

/// Degradation tier a request is served at (ordered: lower is healthier).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Supervised parallel run with the full retry budget.
    Full,
    /// Supervised run with a single attempt (fallback-first posture).
    ReducedRetry,
    /// Direct sequential exact algorithm; no randomized machinery.
    Sequential,
}

impl Tier {
    /// The next tier down (saturating at [`Tier::Sequential`]).
    fn worse(self) -> Tier {
        match self {
            Tier::Full => Tier::ReducedRetry,
            _ => Tier::Sequential,
        }
    }

    /// The next tier up (saturating at [`Tier::Full`]).
    fn better(self) -> Tier {
        match self {
            Tier::Sequential => Tier::ReducedRetry,
            _ => Tier::Full,
        }
    }
}

/// What a finished request tells its breaker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Signal {
    /// Healthy result (first-try success, or a clean sequential run).
    Clean,
    /// The algorithm struggled: retried, fell back, errored, or panicked.
    Strained,
    /// Says nothing about algorithm health (cancelled, deadline expired,
    /// invalid input).
    Neutral,
}

/// Breaker thresholds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive strained results that trip one tier down.
    pub trip_after: u32,
    /// Requests served in a degraded tier before a half-open probe.
    pub probe_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            trip_after: 3,
            probe_after: 8,
        }
    }
}

/// Per-algorithm breaker state. Driven by the runtime under its lock:
/// [`Breaker::plan`] before dispatch, [`Breaker::report`] after the result.
#[derive(Clone, Copy, Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    tier: Tier,
    /// Consecutive strained results at the current tier.
    strain_streak: u32,
    /// Requests served since entering the current (degraded) tier or since
    /// the last failed probe.
    served_degraded: u32,
    /// A half-open probe is in flight.
    probing: bool,
}

/// The dispatch decision for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Plan {
    /// Tier to serve the request at.
    pub tier: Tier,
    /// This request is the half-open probe (served one tier above the
    /// breaker's current tier).
    pub probe: bool,
}

impl Breaker {
    /// A closed (healthy) breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            tier: Tier::Full,
            strain_streak: 0,
            served_degraded: 0,
            probing: false,
        }
    }

    /// Current tier (what the health snapshot reports).
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Current consecutive-strain count.
    pub fn strain_streak(&self) -> u32 {
        self.strain_streak
    }

    /// True while a half-open probe is outstanding.
    pub fn probing(&self) -> bool {
        self.probing
    }

    /// Decide the tier for the next request, possibly opening the half-open
    /// window.
    pub fn plan(&mut self, stats: &mut ServiceStats) -> Plan {
        if self.tier != Tier::Full && !self.probing && self.served_degraded >= self.cfg.probe_after
        {
            self.probing = true;
            stats.breaker_probes += 1;
            return Plan {
                tier: self.tier.better(),
                probe: true,
            };
        }
        if self.tier != Tier::Full {
            self.served_degraded += 1;
        }
        Plan {
            tier: self.tier,
            probe: false,
        }
    }

    /// Feed back the result of a request planned by [`Breaker::plan`].
    pub fn report(&mut self, plan: Plan, signal: Signal, stats: &mut ServiceStats) {
        if plan.probe {
            self.probing = false;
            match signal {
                Signal::Clean => {
                    // Recover one tier; a fresh degraded count starts (or
                    // the breaker is fully closed again).
                    self.tier = self.tier.better();
                    self.strain_streak = 0;
                    self.served_degraded = 0;
                    if self.tier == Tier::Full {
                        stats.breaker_recoveries += 1;
                    }
                }
                Signal::Strained => {
                    // Stay degraded; restart the count toward the next probe.
                    self.served_degraded = 0;
                }
                Signal::Neutral => {
                    // The probe said nothing; leave the count so another
                    // probe opens soon.
                }
            }
            return;
        }
        match signal {
            Signal::Clean => self.strain_streak = 0,
            Signal::Neutral => {}
            Signal::Strained => {
                self.strain_streak += 1;
                if self.strain_streak >= self.cfg.trip_after && self.tier != Tier::Sequential {
                    self.tier = self.tier.worse();
                    self.strain_streak = 0;
                    self.served_degraded = 0;
                    self.probing = false;
                    stats.breaker_trips += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(b: &mut Breaker, stats: &mut ServiceStats, signal: Signal) -> Plan {
        let plan = b.plan(stats);
        b.report(plan, signal, stats);
        plan
    }

    #[test]
    fn stays_closed_on_clean_traffic() {
        let mut b = Breaker::new(BreakerConfig::default());
        let mut s = ServiceStats::default();
        for _ in 0..100 {
            let p = drive(&mut b, &mut s, Signal::Clean);
            assert_eq!(p.tier, Tier::Full);
            assert!(!p.probe);
        }
        assert_eq!(s.breaker_trips, 0);
    }

    #[test]
    fn strain_streak_trips_one_tier_then_the_next() {
        let cfg = BreakerConfig {
            trip_after: 3,
            probe_after: 100,
        };
        let mut b = Breaker::new(cfg);
        let mut s = ServiceStats::default();
        for _ in 0..3 {
            drive(&mut b, &mut s, Signal::Strained);
        }
        assert_eq!(b.tier(), Tier::ReducedRetry);
        assert_eq!(s.breaker_trips, 1);
        for _ in 0..3 {
            drive(&mut b, &mut s, Signal::Strained);
        }
        assert_eq!(b.tier(), Tier::Sequential);
        assert_eq!(s.breaker_trips, 2);
        // Sequential is the floor
        for _ in 0..10 {
            drive(&mut b, &mut s, Signal::Strained);
        }
        assert_eq!(b.tier(), Tier::Sequential);
        assert_eq!(s.breaker_trips, 2);
    }

    #[test]
    fn clean_results_reset_the_streak() {
        let mut b = Breaker::new(BreakerConfig {
            trip_after: 3,
            probe_after: 100,
        });
        let mut s = ServiceStats::default();
        for _ in 0..10 {
            drive(&mut b, &mut s, Signal::Strained);
            drive(&mut b, &mut s, Signal::Strained);
            drive(&mut b, &mut s, Signal::Clean);
        }
        assert_eq!(b.tier(), Tier::Full);
        assert_eq!(s.breaker_trips, 0);
    }

    #[test]
    fn neutral_results_leave_the_streak_untouched() {
        let mut b = Breaker::new(BreakerConfig {
            trip_after: 3,
            probe_after: 100,
        });
        let mut s = ServiceStats::default();
        drive(&mut b, &mut s, Signal::Strained);
        drive(&mut b, &mut s, Signal::Strained);
        for _ in 0..5 {
            drive(&mut b, &mut s, Signal::Neutral);
        }
        assert_eq!(b.strain_streak(), 2);
        drive(&mut b, &mut s, Signal::Strained);
        assert_eq!(b.tier(), Tier::ReducedRetry);
    }

    #[test]
    fn half_open_probe_recovers_tier_by_tier() {
        let cfg = BreakerConfig {
            trip_after: 2,
            probe_after: 3,
        };
        let mut b = Breaker::new(cfg);
        let mut s = ServiceStats::default();
        // trip to Sequential
        for _ in 0..4 {
            drive(&mut b, &mut s, Signal::Strained);
        }
        assert_eq!(b.tier(), Tier::Sequential);
        // serve probe_after requests at the degraded tier
        for _ in 0..3 {
            let p = drive(&mut b, &mut s, Signal::Clean);
            assert_eq!(p.tier, Tier::Sequential);
        }
        // next plan is the half-open probe at the tier above
        let p = b.plan(&mut s);
        assert!(p.probe);
        assert_eq!(p.tier, Tier::ReducedRetry);
        b.report(p, Signal::Clean, &mut s);
        assert_eq!(b.tier(), Tier::ReducedRetry);
        assert_eq!(s.breaker_probes, 1);
        assert_eq!(s.breaker_recoveries, 0, "not yet at Full");
        // again: serve, probe, recover to Full
        for _ in 0..3 {
            drive(&mut b, &mut s, Signal::Clean);
        }
        let p = b.plan(&mut s);
        assert!(p.probe);
        assert_eq!(p.tier, Tier::Full);
        b.report(p, Signal::Clean, &mut s);
        assert_eq!(b.tier(), Tier::Full);
        assert_eq!(s.breaker_recoveries, 1);
    }

    #[test]
    fn failed_probe_stays_degraded_and_reopens_later() {
        let cfg = BreakerConfig {
            trip_after: 2,
            probe_after: 2,
        };
        let mut b = Breaker::new(cfg);
        let mut s = ServiceStats::default();
        drive(&mut b, &mut s, Signal::Strained);
        drive(&mut b, &mut s, Signal::Strained);
        assert_eq!(b.tier(), Tier::ReducedRetry);
        drive(&mut b, &mut s, Signal::Clean);
        drive(&mut b, &mut s, Signal::Clean);
        let p = b.plan(&mut s);
        assert!(p.probe && p.tier == Tier::Full);
        b.report(p, Signal::Strained, &mut s);
        assert_eq!(b.tier(), Tier::ReducedRetry, "failed probe: no recovery");
        // window reopens after probe_after more requests
        drive(&mut b, &mut s, Signal::Clean);
        drive(&mut b, &mut s, Signal::Clean);
        let p = b.plan(&mut s);
        assert!(p.probe);
        assert_eq!(s.breaker_probes, 2);
    }

    #[test]
    fn only_one_probe_outstanding_at_a_time() {
        let cfg = BreakerConfig {
            trip_after: 1,
            probe_after: 1,
        };
        let mut b = Breaker::new(cfg);
        let mut s = ServiceStats::default();
        drive(&mut b, &mut s, Signal::Strained);
        drive(&mut b, &mut s, Signal::Clean); // served_degraded reaches 1
        let p1 = b.plan(&mut s);
        assert!(p1.probe);
        // while the probe is in flight, others stay at the degraded tier
        let p2 = b.plan(&mut s);
        assert!(!p2.probe);
        assert_eq!(p2.tier, Tier::ReducedRetry);
        b.report(p2, Signal::Clean, &mut s);
        b.report(p1, Signal::Clean, &mut s);
        assert_eq!(b.tier(), Tier::Full);
    }
}
