//! `ipch-service` — a deadline-aware resilient serving runtime over the
//! supervised convex-hull algorithms.
//!
//! The paper's algorithms are Las Vegas: always correct, randomized in
//! running time, already wrapped in a verify-and-retry supervisor
//! (`ipch_pram::supervise`). This crate adds the *serving* layer a
//! long-lived process needs on top of that:
//!
//! - **Admission control** ([`Service::submit`]): a bounded queue and
//!   per-tenant in-flight limits. Overload is shed *explicitly* — a typed
//!   [`ServiceError::Rejected`] with an exponential-backoff `retry_after`
//!   hint — never a silent drop.
//! - **Cooperative cancellation**: every request carries a
//!   [`CancelToken`](ipch_pram::CancelToken) (deadline-armed when the
//!   request or service config sets one) that the PRAM machine polls at
//!   every step boundary and between kernel chunks, so a cancelled or
//!   expired request aborts within one simulated step with a typed error
//!   and its partial metrics intact.
//! - **Tiered graceful degradation** ([`Breaker`]): per-algorithm circuit
//!   breakers watch for strain (retries, fallbacks, errors, panics) and
//!   walk the algorithm down [`Tier::Full`] → [`Tier::ReducedRetry`] →
//!   [`Tier::Sequential`] (direct exact hull, still certificate-checked),
//!   recovering through half-open probes.
//! - **Panic isolation**: each request runs under `catch_unwind`; a panic
//!   resolves that request as a typed
//!   [`RunError::Panic`](ipch_pram::RunError::Panic) and the service keeps
//!   serving.
//! - **Observability** ([`Service::health`]): queue depth, in-flight
//!   count, breaker states, and the [`ServiceStats`](ipch_pram::ServiceStats)
//!   counters, whose resolution invariant (`submitted` = sum of terminal
//!   outcomes) makes "no lost request" checkable.
//!
//! ```
//! use ipch_service::{Hull2dAlgo, Request, Service, ServiceConfig, Workload};
//!
//! let svc = Service::new(ServiceConfig::default());
//! let points = (0..32)
//!     .map(|i| ipch_geom::Point2 { x: i as f64, y: -(i as f64 - 16.0).powi(2) })
//!     .collect();
//! let ticket = svc
//!     .submit(Request::new("tenant-a", 42, Workload::Hull2d {
//!         points,
//!         algo: Hull2dAlgo::Unsorted,
//!     }))
//!     .expect("admitted");
//! let resp = ticket.wait().expect("certified hull");
//! assert!(resp.sim_steps > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod error;
pub mod request;
pub mod runtime;

pub use breaker::{Breaker, BreakerConfig, Plan, Signal, Tier};
pub use error::{RejectReason, ServiceError};
pub use request::{Hull2dAlgo, Request, Response, ResponseValue, Workload};
pub use runtime::{BreakerView, Health, Service, ServiceConfig, Ticket};
